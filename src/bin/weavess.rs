//! `weavess` — command-line interface over the library.
//!
//! ```text
//! weavess build  --algo NSG --base base.fvecs --out index.wvss [--threads N] [--seed S]
//! weavess search --index index.wvss --base base.fvecs --queries q.fvecs \
//!                [--k 10] [--beam 60] [--out results.ivecs]
//! weavess eval   --algo HNSW --base base.fvecs --queries q.fvecs --gt gt.ivecs \
//!                [--k 10] [--threads N]
//! weavess gt     --base base.fvecs --queries q.fvecs --k 100 --out gt.ivecs
//! weavess info   --index index.wvss
//! weavess serve  --index index.wvss --base base.fvecs --queries q.fvecs \
//!                [--k 10] [--beam 60] [--workers N] [--sample-every 64] \
//!                [--audit-every 16] [--trace-out trace.json] [--metrics-out m.prom]
//! ```
//!
//! Only algorithms with self-contained seed strategies can round-trip
//! through `build`/`search` files (see `weavess::core::persist`); `eval`
//! works for every algorithm because it builds in-process.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use weavess::core::algorithms::Algo;
use weavess::core::index::{AnnIndex, SearchContext};
use weavess::core::persist::{load_index, save_index};
use weavess::data::ground_truth::ground_truth;
use weavess::data::io::{read_fvecs, read_ivecs, write_ivecs};
use weavess::data::metrics::mean_recall;
use weavess::graph::connectivity::weak_components;
use weavess::graph::metrics::degree_stats;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "build" => cmd_build(&opts),
        "search" => cmd_search(&opts),
        "eval" => cmd_eval(&opts),
        "gt" => cmd_gt(&opts),
        "info" => cmd_info(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
weavess — graph-based approximate nearest neighbor search

USAGE:
  weavess build  --algo <NAME> --base <fvecs> --out <wvss> [--threads N] [--seed S]
  weavess search --index <wvss> --base <fvecs> --queries <fvecs> [--k 10] [--beam 60] [--out <ivecs>]
  weavess eval   --algo <NAME> --base <fvecs> --queries <fvecs> --gt <ivecs> [--k 10] [--beam 60] [--threads N]
  weavess gt     --base <fvecs> --queries <fvecs> [--k 100] [--threads N] --out <ivecs>
  weavess info   --index <wvss>
  weavess serve  --index <wvss> --base <fvecs> --queries <fvecs> [--k 10] [--beam 60]
                 [--workers N] [--sample-every 64] [--audit-every 16]
                 [--trace-out <json>] [--metrics-out <prom>]

Algorithms: KGraph NGT-panng NGT-onng SPTAG-KDT SPTAG-BKT NSW IEH FANNG
            HNSW EFANNA DPG NSG HCNNG Vamana NSSG k-DR OA";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{flag}'"));
        };
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), value.clone());
    }
    Ok(opts)
}

fn need<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing --{key}"))
}

fn num<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad value '{v}'")),
    }
}

fn algo_by_name(name: &str) -> Result<Algo, String> {
    Algo::all()
        .iter()
        .copied()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown algorithm '{name}'"))
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn cmd_build(opts: &Opts) -> Result<(), String> {
    let algo = algo_by_name(need(opts, "algo")?)?;
    let base = read_fvecs(Path::new(need(opts, "base")?)).map_err(|e| e.to_string())?;
    let out = PathBuf::from(need(opts, "out")?);
    let threads = num(opts, "threads", default_threads())?;
    let seed = num(opts, "seed", 1u64)?;
    eprintln!(
        "building {} on {} points (dim {}, {threads} threads)...",
        algo.name(),
        base.len(),
        base.dim()
    );
    let t0 = std::time::Instant::now();
    // Persisting needs a FlatIndex with self-contained seeds.
    let flat = build_flat(algo, &base, threads, seed).ok_or_else(|| {
        format!(
            "{} cannot be persisted (auxiliary seed structure); use 'eval' instead",
            algo.name()
        )
    })?;
    eprintln!("built in {:.2}s", t0.elapsed().as_secs_f64());
    save_index(&out, &flat).map_err(|e| e.to_string())?;
    eprintln!("saved {}", out.display());
    Ok(())
}

/// Builds the subset of algorithms whose indexes are persistable.
fn build_flat(
    algo: Algo,
    base: &weavess::data::Dataset,
    threads: usize,
    seed: u64,
) -> Option<weavess::core::index::FlatIndex> {
    use weavess::core::algorithms::*;
    match algo {
        Algo::KGraph => Some(kgraph::build(
            base,
            &kgraph::KGraphParams::tuned(threads, seed),
        )),
        Algo::Nsw => Some(nsw::build(base, &nsw::NswParams::tuned(threads, seed))),
        Algo::Fanng => Some(fanng::build(
            base,
            &fanng::FanngParams::tuned(threads, seed),
        )),
        Algo::Dpg => Some(dpg::build(base, &dpg::DpgParams::tuned(threads, seed))),
        Algo::Nsg => Some(nsg::build(base, &nsg::NsgParams::tuned(threads, seed))),
        Algo::Vamana => Some(vamana::build(
            base,
            &vamana::VamanaParams::tuned(threads, seed),
        )),
        Algo::Nssg => Some(nssg::build(base, &nssg::NssgParams::tuned(threads, seed))),
        Algo::Kdr => Some(kdr::build(base, &kdr::KdrParams::tuned(threads, seed))),
        Algo::Oa => Some(oa::build(base, &oa::OaParams::tuned(threads, seed))),
        _ => None,
    }
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    let index = load_index(Path::new(need(opts, "index")?)).map_err(|e| e.to_string())?;
    let base = read_fvecs(Path::new(need(opts, "base")?)).map_err(|e| e.to_string())?;
    let queries = read_fvecs(Path::new(need(opts, "queries")?)).map_err(|e| e.to_string())?;
    let k = num(opts, "k", 10usize)?;
    let beam = num(opts, "beam", 60usize)?;
    if base.len() != index.graph.len() {
        return Err(format!(
            "index covers {} points but base file holds {}",
            index.graph.len(),
            base.len()
        ));
    }
    let mut ctx = SearchContext::new(base.len());
    let t0 = std::time::Instant::now();
    let results: Vec<Vec<u32>> = (0..queries.len() as u32)
        .map(|qi| {
            index
                .search(&base, queries.point(qi), k, beam, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "{} queries in {:.3}s ({:.0} QPS, {:.0} distance computations/query)",
        queries.len(),
        secs,
        queries.len() as f64 / secs,
        ctx.stats.ndc as f64 / queries.len() as f64
    );
    match opts.get("out") {
        Some(out) => {
            write_ivecs(Path::new(out), &results).map_err(|e| e.to_string())?;
            eprintln!("wrote {out}");
        }
        None => {
            for (qi, row) in results.iter().enumerate() {
                println!("{qi}: {row:?}");
            }
        }
    }
    Ok(())
}

fn cmd_eval(opts: &Opts) -> Result<(), String> {
    let algo = algo_by_name(need(opts, "algo")?)?;
    let base = read_fvecs(Path::new(need(opts, "base")?)).map_err(|e| e.to_string())?;
    let queries = read_fvecs(Path::new(need(opts, "queries")?)).map_err(|e| e.to_string())?;
    let gt = read_ivecs(Path::new(need(opts, "gt")?)).map_err(|e| e.to_string())?;
    let k = num(opts, "k", 10usize)?;
    let beam = num(opts, "beam", 60usize)?;
    let threads = num(opts, "threads", default_threads())?;
    let seed = num(opts, "seed", 1u64)?;
    if gt.len() != queries.len() {
        return Err("ground truth and query counts differ".into());
    }
    let t0 = std::time::Instant::now();
    let index = algo.build(&base, threads, seed);
    let build_secs = t0.elapsed().as_secs_f64();
    let mut ctx = SearchContext::new(base.len());
    let t0 = std::time::Instant::now();
    let results: Vec<Vec<u32>> = (0..queries.len() as u32)
        .map(|qi| {
            index
                .search(&base, queries.point(qi), k, beam, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    let truth: Vec<Vec<u32>> = gt
        .iter()
        .map(|row| row[..k.min(row.len())].to_vec())
        .collect();
    println!(
        "{}: build {:.2}s | Recall@{k} {:.4} | {:.0} QPS | {:.0} NDC/query | speedup {:.1}x",
        algo.name(),
        build_secs,
        mean_recall(&results, &truth),
        queries.len() as f64 / secs,
        ctx.stats.ndc as f64 / queries.len() as f64,
        base.len() as f64 / (ctx.stats.ndc as f64 / queries.len() as f64)
    );
    Ok(())
}

fn cmd_gt(opts: &Opts) -> Result<(), String> {
    let base = read_fvecs(Path::new(need(opts, "base")?)).map_err(|e| e.to_string())?;
    let queries = read_fvecs(Path::new(need(opts, "queries")?)).map_err(|e| e.to_string())?;
    let k = num(opts, "k", 100usize)?;
    let threads = num(opts, "threads", default_threads())?;
    let out = need(opts, "out")?;
    eprintln!("computing exact {k}-NN for {} queries...", queries.len());
    let gt = ground_truth(&base, &queries, k, threads);
    write_ivecs(Path::new(out), &gt).map_err(|e| e.to_string())?;
    eprintln!("wrote {out}");
    Ok(())
}

/// Serves the query file through the batch engine with the full
/// observability stack attached: per-query flight recorder (seeded
/// tail-sampling), online recall auditor (exact shadow re-answers), and
/// the latency/recall SLO engine. Prometheus exposition goes to stdout
/// or `--metrics-out`; `--trace-out` writes the sampled flights as
/// Chrome trace-event JSON for `chrome://tracing` / Perfetto.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    use weavess::core::audit::{AuditConfig, RecallAuditor, SloEngine, SloPolicy};
    use weavess::core::serve::{EngineOptions, QueryEngine};
    use weavess::core::telemetry::{query_fingerprint, FlightOptions, FlightRecorder};

    let index = load_index(Path::new(need(opts, "index")?)).map_err(|e| e.to_string())?;
    let base = read_fvecs(Path::new(need(opts, "base")?)).map_err(|e| e.to_string())?;
    let queries = read_fvecs(Path::new(need(opts, "queries")?)).map_err(|e| e.to_string())?;
    let k = num(opts, "k", 10usize)?;
    let beam = num(opts, "beam", 60usize)?;
    let workers = num(opts, "workers", default_threads())?;
    let sample_every = num(opts, "sample-every", 64u64)?;
    let audit_every = num(opts, "audit-every", 16u64)?;
    if base.len() != index.graph.len() {
        return Err(format!(
            "index covers {} points but base file holds {}",
            index.graph.len(),
            base.len()
        ));
    }

    let engine = QueryEngine::with_options(
        &index,
        &base,
        EngineOptions {
            workers,
            ..EngineOptions::default()
        },
    );
    let recorder = FlightRecorder::new(FlightOptions {
        sample_every,
        ..FlightOptions::default()
    });
    let t0 = std::time::Instant::now();
    let report = engine.search_batch_flights(&queries, k, beam, &recorder);
    let secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "{} queries in {:.3}s ({:.0} QPS); {} flights recorded ({} sampled)",
        queries.len(),
        secs,
        queries.len() as f64 / secs,
        recorder.recorded_total(),
        recorder.sampled_total(),
    );

    let auditor = RecallAuditor::new(
        &base,
        AuditConfig {
            sample_every: audit_every,
            k,
            ..AuditConfig::default()
        },
    );
    for qi in 0..queries.len() as u32 {
        let q = queries.point(qi);
        auditor.observe(
            query_fingerprint(q),
            q,
            &report.results[qi as usize],
            index.overlay_edges() > 0,
        );
    }
    while auditor.run_pending() > 0 {}
    let audit = auditor.snapshot();
    let mut slo = SloEngine::new(SloPolicy::default());
    let slo_report = slo.evaluate(&engine.snapshot().latency, &audit);
    eprintln!(
        "audit: {} exact re-answers, live Recall@{k} {:.4} [{:.4}, {:.4}]; \
         SLO latency={} recall={}",
        audit.audited_total,
        audit.recall,
        audit.ci_low,
        audit.ci_high,
        slo_report.latency_state.name(),
        slo_report.recall_state.name(),
    );

    if let Some(path) = opts.get("trace-out") {
        std::fs::write(path, recorder.chrome_trace_json()).map_err(|e| e.to_string())?;
        eprintln!("wrote Chrome trace to {path}");
    }
    let mut prom = engine.metrics_prometheus();
    prom.push_str(&audit.to_prometheus());
    prom.push_str(&slo_report.to_prometheus());
    match opts.get("metrics-out") {
        Some(path) => {
            std::fs::write(path, &prom).map_err(|e| e.to_string())?;
            eprintln!("wrote metrics to {path}");
        }
        None => print!("{prom}"),
    }
    Ok(())
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let index = load_index(Path::new(need(opts, "index")?)).map_err(|e| e.to_string())?;
    let s = degree_stats(&index.graph);
    println!("algorithm : {}", index.name);
    println!("vertices  : {}", index.graph.len());
    println!("edges     : {}", index.graph.num_edges());
    println!("degree    : avg {:.1}, max {}, min {}", s.avg, s.max, s.min);
    println!("components: {}", weak_components(&index.graph));
    println!("router    : {:?}", index.router);
    println!("seeds     : {}", index.seeds.label());
    println!("memory    : {:.1} MB", index.memory_bytes() as f64 / 1e6);
    Ok(())
}
