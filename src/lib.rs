//! # weavess
//!
//! A from-scratch Rust reproduction of *"A Comprehensive Survey and
//! Experimental Comparison of Graph-Based Approximate Nearest Neighbor
//! Search"* (PVLDB 14(1), 2021): seventeen graph-ANNS algorithms, the
//! survey's seven-component pipeline, every auxiliary index they need,
//! and a bench harness regenerating each table and figure.
//!
//! This facade crate re-exports the workspace:
//!
//! - [`data`] — datasets, distances, synthetic generators, ground truth,
//!   metrics (`Recall@k`, LID, speedup).
//! - [`graph`] — adjacency structures, exact base graphs (KNNG/RNG/MST),
//!   connectivity, index metrics.
//! - [`trees`] — KD-forest, VP-tree, balanced k-means tree, TP
//!   partitioning, LSH.
//! - [`core`] — the C1–C7 components, routing strategies, the pipeline
//!   builder, the algorithms (`core::algorithms::Algo` is the entry
//!   point), and the concurrent batch serving engine
//!   (`core::serve::QueryEngine`).
//! - [`ml`] — the §5.5 ML-based optimizations (learned routing, adaptive
//!   early termination, dimensionality reduction).
//!
//! # Example
//!
//! ```
//! use weavess::core::algorithms::Algo;
//! use weavess::core::index::SearchContext;
//! use weavess::data::synthetic::MixtureSpec;
//!
//! // 2 000 points in 16 dimensions, 10 held-out queries.
//! let (base, queries) = MixtureSpec::table10(16, 2_000, 4, 5.0, 10).generate();
//!
//! // Build any surveyed algorithm through the uniform interface.
//! let index = Algo::Hnsw.build(&base, /*threads=*/2, /*seed=*/42);
//!
//! // Search with a beam (candidate-set size) of 40.
//! let mut ctx = SearchContext::new(base.len());
//! let nearest = index.search(&base, queries.point(0), /*k=*/5, /*beam=*/40, &mut ctx);
//! assert_eq!(nearest.len(), 5);
//! // Work accounting behind the paper's speedup metric:
//! assert!(ctx.stats.ndc > 0);
//! ```

pub use weavess_core as core;
pub use weavess_data as data;
pub use weavess_graph as graph;
pub use weavess_ml as ml;
pub use weavess_trees as trees;
