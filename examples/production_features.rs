//! Production features beyond the survey's evaluation loop: persist a
//! built index to disk, reload it without rebuilding, route over
//! quantized vectors to shrink resident memory, and answer query batches
//! in parallel.
//!
//! ```sh
//! cargo run --release --example production_features
//! ```

use weavess::core::algorithms::nsg::{self, NsgParams};
use weavess::core::index::{search_batch, AnnIndex, SearchContext};
use weavess::core::persist::{load_index, save_index};
use weavess::core::quantized::QuantizedIndex;
use weavess::core::search::{SearchScratch, SearchStats};
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::mean_recall;
use weavess::data::synthetic::MixtureSpec;

fn main() {
    let spec = MixtureSpec {
        intrinsic_dim: Some(9),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(64, 10_000, 8, 5.0, 200)
    };
    let (base, queries) = spec.generate();
    let gt = ground_truth(&base, &queries, 10, 4);

    // Build once (the expensive part)...
    let t0 = std::time::Instant::now();
    let index = nsg::build(&base, &NsgParams::tuned(4, 1));
    println!("built NSG in {:.2}s", t0.elapsed().as_secs_f64());

    // ...persist, and reload instantly.
    let path = std::env::temp_dir().join("weavess_example.wvss");
    save_index(&path, &index).expect("save");
    let t0 = std::time::Instant::now();
    let loaded = load_index(&path).expect("load");
    println!(
        "reloaded from {} in {:.3}s ({} KB on disk)",
        path.display(),
        t0.elapsed().as_secs_f64(),
        std::fs::metadata(&path).unwrap().len() / 1024
    );

    // Parallel batch search on the reloaded index.
    let t0 = std::time::Instant::now();
    let (results, stats) = search_batch(&loaded, &base, &queries, 10, 60, 4);
    let ids: Vec<Vec<u32>> = results
        .iter()
        .map(|r| r.iter().map(|n| n.id).collect())
        .collect();
    println!(
        "batch of {} queries: Recall@10 {:.3}, {:.0} QPS aggregate, {} NDC total",
        queries.len(),
        mean_recall(&ids, &gt),
        queries.len() as f64 / t0.elapsed().as_secs_f64(),
        stats.ndc
    );

    // Quantized routing: 4x smaller resident vectors, full-precision
    // rerank, codes fused next to the adjacency for one-chase expansions.
    let q_idx =
        QuantizedIndex::new(loaded.graph.clone(), &base, vec![base.medoid()]).with_fused_layout();
    let mut scratch = SearchScratch::new(base.len());
    let mut qstats = SearchStats::default();
    let mut full_evals = 0u64;
    let q_ids: Vec<Vec<u32>> = (0..queries.len() as u32)
        .map(|qi| {
            q_idx
                .search(
                    &base,
                    queries.point(qi),
                    10,
                    60,
                    &mut scratch,
                    &mut qstats,
                    &mut full_evals,
                )
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();
    let full_route = loaded.graph.memory_bytes() + base.memory_bytes();
    let split_route = loaded.graph.memory_bytes() + q_idx.codes_memory_bytes();
    println!(
        "quantized routing: Recall@10 {:.3}, graph+codes {:.1} MB vs {:.1} MB full precision \
         ({:.1} MB total with the fused arena resident)",
        mean_recall(&q_ids, &gt),
        split_route as f64 / 1e6,
        full_route as f64 / 1e6,
        q_idx.memory_bytes() as f64 / 1e6
    );

    // Serial baseline for comparison.
    let mut ctx = SearchContext::new(base.len());
    let t0 = std::time::Instant::now();
    for qi in 0..queries.len() as u32 {
        loaded.search(&base, queries.point(qi), 10, 60, &mut ctx);
    }
    println!(
        "serial baseline: {:.0} QPS single-thread",
        queries.len() as f64 / t0.elapsed().as_secs_f64()
    );
}
