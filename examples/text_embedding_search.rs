//! Domain scenario: semantic search over hard, high-LID text embeddings
//! (a GloVe-like workload — the paper's hardest dataset).
//!
//! Demonstrates the survey's hard-dataset guidance in action: pick an
//! RNG-based index (§6 Table 7 recommends HNSW/NSG/HCNNG for S4), then
//! auto-tune the beam to hit a recall service-level objective.
//!
//! ```sh
//! cargo run --release --example text_embedding_search
//! ```

use weavess::core::algorithms::Algo;
use weavess::core::index::SearchContext;
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::recall;
use weavess::data::synthetic::MixtureSpec;

fn main() {
    // GloVe-like: 100-dimensional, high intrinsic dimension (hard), many
    // soft topic clusters on a shared manifold.
    let spec = MixtureSpec {
        intrinsic_dim: Some(20),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(100, 10_000, 12, 5.0, 300)
    };
    let (base, queries) = spec.generate();
    let gt = ground_truth(&base, &queries, 10, 4);
    println!(
        "text-embedding workload: {} vectors, dim 100 (hard, high LID)",
        base.len()
    );

    // Hard-dataset picks vs a KNNG baseline the paper shows degrading.
    for algo in [Algo::Hnsw, Algo::Nsg, Algo::Hcnng, Algo::KGraph] {
        let index = algo.build(&base, 4, 1);
        let mut ctx = SearchContext::new(base.len());
        // Auto-tune: smallest beam meeting the 0.95 Recall@10 SLO.
        let target = 0.95;
        let mut chosen = None;
        for beam in [10usize, 20, 40, 80, 160, 320] {
            let mut r = 0.0;
            ctx.take_stats();
            let t0 = std::time::Instant::now();
            for qi in 0..queries.len() as u32 {
                let res = index.search(&base, queries.point(qi), 10, beam, &mut ctx);
                let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
                r += recall(&ids, &gt[qi as usize]);
            }
            let secs = t0.elapsed().as_secs_f64();
            let rec = r / queries.len() as f64;
            if rec >= target {
                chosen = Some((beam, rec, queries.len() as f64 / secs));
                break;
            }
        }
        match chosen {
            Some((beam, rec, qps)) => println!(
                "{:<8} meets Recall@10 >= {target} at beam {beam:<4} ({rec:.3}, {qps:.0} QPS)",
                index.name()
            ),
            None => println!(
                "{:<8} cannot meet Recall@10 >= {target} within beam 320 (recall ceiling)",
                index.name()
            ),
        }
    }
}
