//! Extension features beyond the survey's core evaluation — its §6
//! "Tendencies/Challenges" items, implemented:
//!
//! 1. **Real-time updates**: a dynamic HNSW with interleaved inserts,
//!    tombstone deletes, and searches — no rebuild.
//! 2. **Hybrid queries**: attribute-filtered search (e.g. "nearest
//!    products in category 2").
//!
//! ```sh
//! cargo run --release --example dynamic_and_filtered
//! ```

use weavess::core::algorithms::hnsw::HnswParams;
use weavess::core::algorithms::hnsw_dynamic::DynamicHnsw;
use weavess::core::search::{filtered_beam_search, SearchScratch, SearchStats};
use weavess::data::ground_truth::knn_scan;
use weavess::data::synthetic::MixtureSpec;
use weavess::graph::base::exact_knng;

fn main() {
    let spec = MixtureSpec {
        intrinsic_dim: Some(8),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(32, 6_000, 5, 5.0, 5)
    };
    let (stream, queries) = spec.generate();

    // --- 1. Dynamic index: insert, search, delete, search again. ---
    let mut idx = DynamicHnsw::new(stream.dim(), HnswParams::tuned(0, 42));
    let t0 = std::time::Instant::now();
    for i in 0..stream.len() as u32 {
        idx.insert(stream.point(i));
    }
    println!(
        "streamed {} inserts in {:.2}s ({:.0} inserts/s)",
        idx.len(),
        t0.elapsed().as_secs_f64(),
        idx.len() as f64 / t0.elapsed().as_secs_f64()
    );
    let q = queries.point(0);
    let before = idx.search(q, 5, 60);
    println!(
        "top-5 before deletes: {:?}",
        before.iter().map(|n| n.id).collect::<Vec<_>>()
    );
    for n in &before[..3] {
        idx.delete(n.id);
    }
    let after = idx.search(q, 5, 60);
    println!(
        "top-5 after deleting the top-3: {:?} (tombstones: {:.1}%)",
        after.iter().map(|n| n.id).collect::<Vec<_>>(),
        idx.tombstone_fraction() * 100.0
    );
    assert!(after.iter().all(|n| !before[..3].contains(n)));

    // --- 2. Hybrid query: nearest neighbors within one "category". ---
    // Category = id % 4; we want the nearest category-2 items.
    let g = exact_knng(&stream, 16, 4);
    let category = |id: u32| id % 4 == 2;
    let mut scratch = SearchScratch::new(stream.len());
    let mut stats = SearchStats::default();
    scratch.next_epoch();
    let hits = filtered_beam_search(
        &stream,
        &g,
        q,
        &[0, 1500, 3000, 4500],
        5,
        80,
        &category,
        &mut scratch,
        &mut stats,
    );
    let exact: Vec<u32> = knn_scan(&stream, q, stream.len(), None)
        .into_iter()
        .filter(|n| category(n.id))
        .take(5)
        .map(|n| n.id)
        .collect();
    println!(
        "hybrid query (category 2 only): got {:?}, exact {:?}",
        hits.iter().map(|n| n.id).collect::<Vec<_>>(),
        exact
    );
}
