//! Domain scenario: accelerate an image-feature workload (SIFT-like) with
//! the ML-based optimizations of §5.5 — and see their preprocessing/memory
//! price, the paper's Table 6/24 trade-off.
//!
//! ```sh
//! cargo run --release --example ml_accelerated
//! ```

use weavess::core::algorithms::nsg::{self, NsgParams};
use weavess::core::index::{AnnIndex, SearchContext};
use weavess::core::search::SearchScratch;
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::recall;
use weavess::data::synthetic::MixtureSpec;
use weavess::ml::{ml1, ml3};

fn main() {
    // SIFT-like image features: dim 128, intrinsic dimension ~9.
    let spec = MixtureSpec {
        intrinsic_dim: Some(9),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(128, 8_000, 8, 5.0, 200)
    };
    let (base, queries) = spec.generate();
    let gt = ground_truth(&base, &queries, 1, 4);
    let nq = queries.len() as f64;

    // Baseline NSG.
    let t0 = std::time::Instant::now();
    let base_idx = nsg::build(&base, &NsgParams::tuned(4, 1));
    let base_build = t0.elapsed().as_secs_f64();
    let mut ctx = SearchContext::new(base.len());
    let mut r = 0.0;
    for qi in 0..queries.len() as u32 {
        let res = base_idx.search(&base, queries.point(qi), 1, 40, &mut ctx);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        r += recall(&ids, &gt[qi as usize][..1]);
    }
    let stats = ctx.take_stats();
    println!(
        "NSG      : build {base_build:.1}s | Recall@1 {:.3} | {:.0} NDC/query",
        r / nq,
        stats.ndc as f64 / nq
    );

    // ML1: routing over PCA-compressed vectors with full rerank.
    let m1 = ml1::optimize(&base, base_idx.graph.clone(), vec![base.medoid()], 16);
    let mut scratch = SearchScratch::new(base.len());
    let mut r = 0.0;
    let mut eff = 0.0;
    for qi in 0..queries.len() as u32 {
        let (res, s) = m1.search(&base, queries.point(qi), 1, 40, &mut scratch);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        r += recall(&ids, &gt[qi as usize][..1]);
        eff += s.effective_ndc(16, base.dim());
    }
    println!(
        "NSG+ML1  : +{:.1}s preprocessing, +{:.1} MB | Recall@1 {:.3} | {:.0} effective NDC/query",
        m1.preprocessing_secs,
        m1.extra_memory_bytes() as f64 / 1e6,
        r / nq,
        eff / nq
    );

    // ML3: search in a learned (PCA) low-dimensional space, rerank.
    let m3 = ml3::optimize(&base, 16, &NsgParams::tuned(4, 1));
    let (mut mctx, _) = m3.context();
    let mut r = 0.0;
    let mut eff = 0.0;
    for qi in 0..queries.len() as u32 {
        let (res, re, fe) = m3.search(&base, queries.point(qi), 1, 40, &mut mctx);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        r += recall(&ids, &gt[qi as usize][..1]);
        eff += fe as f64 + re as f64 * 16.0 / base.dim() as f64;
    }
    println!(
        "NSG+ML3  : {:.1}s preprocessing, +{:.1} MB | Recall@1 {:.3} | {:.0} effective NDC/query",
        m3.preprocessing_secs,
        m3.extra_memory_bytes() as f64 / 1e6,
        r / nq,
        eff / nq
    );
    println!("\n(the paper's §5.5 conclusion: ML add-ons improve the trade-off but\n cost preprocessing time and memory — visible above at miniature scale)");
}
