//! Quickstart: build one graph index, search it, check the answer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use weavess::core::algorithms::hnsw::{self, HnswParams};
use weavess::core::index::{AnnIndex, SearchContext};
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::recall;
use weavess::data::synthetic::MixtureSpec;

fn main() {
    // 1. A dataset: 10k 32-dimensional points in 8 fuzzy clusters, plus
    //    200 held-out queries. Swap in `weavess::data::io::read_fvecs` to
    //    load SIFT1M-style files instead.
    let spec = MixtureSpec::table10(32, 10_000, 8, 5.0, 200);
    let (base, queries) = spec.generate();
    println!("dataset: {} points, dim {}", base.len(), base.dim());

    // 2. Build an HNSW index (any of the 17 surveyed algorithms works the
    //    same way; see `weavess::core::algorithms`).
    let t0 = std::time::Instant::now();
    let index = hnsw::build(&base, &HnswParams::tuned(0, 42));
    println!(
        "built HNSW in {:.2}s ({} layers, {:.1} MB)",
        t0.elapsed().as_secs_f64(),
        index.num_layers(),
        index.memory_bytes() as f64 / 1e6
    );

    // 3. Search: k nearest neighbors per query, with a beam (candidate
    //    set size) controlling the accuracy/speed trade-off.
    let k = 10;
    let beam = 60;
    let mut ctx = SearchContext::new(base.len());
    let gt = ground_truth(&base, &queries, k, 4);
    let t0 = std::time::Instant::now();
    let mut total_recall = 0.0;
    for qi in 0..queries.len() as u32 {
        let result = index.search(&base, queries.point(qi), k, beam, &mut ctx);
        let ids: Vec<u32> = result.iter().map(|n| n.id).collect();
        total_recall += recall(&ids, &gt[qi as usize]);
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = ctx.take_stats();
    println!(
        "searched {} queries: Recall@{k} = {:.3}, {:.0} QPS, {:.0} distance \
         computations/query (speedup {:.0}x over linear scan)",
        queries.len(),
        total_recall / queries.len() as f64,
        queries.len() as f64 / secs,
        stats.ndc as f64 / queries.len() as f64,
        base.len() as f64 / (stats.ndc as f64 / queries.len() as f64),
    );
}
