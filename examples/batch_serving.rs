//! Serve a query batch through the concurrent [`QueryEngine`] and compare
//! throughput and tail latency across worker counts — the serving-side
//! counterpart of the paper's single-thread QPS tables.
//!
//! Results are bit-identical at every worker count: the engine reseeds
//! each query's RNG from the query vector, so neither the worker count
//! nor the batch order changes what any query returns.
//!
//! ```sh
//! cargo run --release --example batch_serving
//! ```

use weavess::core::algorithms::Algo;
use weavess::core::serve::{EngineOptions, QueryEngine};
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::recall;
use weavess::data::synthetic::MixtureSpec;

fn main() {
    let spec = MixtureSpec {
        intrinsic_dim: Some(10),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(32, 8_000, 6, 5.0, 500)
    };
    let (base, queries) = spec.generate();
    let k = 10;
    let beam = 60;
    let gt = ground_truth(&base, &queries, k, 4);

    let index = Algo::Hnsw.build(&base, 4, 1);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!(
        "Serving {} queries (k={k}, beam={beam}) on HNSW over {} points\n",
        queries.len(),
        base.len()
    );
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "workers", "QPS", "p50(ms)", "p95(ms)", "p99(ms)", "NDC/q", "Recall@10"
    );

    let mut baseline: Option<Vec<Vec<weavess::data::Neighbor>>> = None;
    for workers in [1usize, 2, cores.max(2)] {
        let engine = QueryEngine::with_options(
            index.as_ref(),
            &base,
            EngineOptions {
                workers,
                ..EngineOptions::default()
            },
        );
        let report = engine.search_batch(&queries, k, beam);
        let mean_recall: f64 = report
            .results
            .iter()
            .enumerate()
            .map(|(qi, res)| {
                let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
                recall(&ids, &gt[qi])
            })
            .sum::<f64>()
            / queries.len() as f64;
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "{:>7} {:>9.0} {:>9.3} {:>9.3} {:>9.3} {:>9.0} {:>10.4}",
            report.workers,
            report.qps(),
            ms(report.latency.p50),
            ms(report.latency.p95),
            ms(report.latency.p99),
            report.stats.ndc as f64 / queries.len() as f64,
            mean_recall
        );
        match &baseline {
            None => baseline = Some(report.results),
            Some(b) => assert_eq!(
                b, &report.results,
                "results must be bit-identical at any worker count"
            ),
        }
    }
    println!("\nAll worker counts returned bit-identical results.");
}
