//! Compare several surveyed algorithms head to head on one dataset — a
//! miniature of the paper's Figures 5–8.
//!
//! ```sh
//! cargo run --release --example compare_algorithms
//! ```

use weavess::core::algorithms::Algo;
use weavess::core::index::SearchContext;
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::recall;
use weavess::data::synthetic::MixtureSpec;

fn main() {
    let spec = MixtureSpec {
        intrinsic_dim: Some(10),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(32, 8_000, 6, 5.0, 200)
    };
    let (base, queries) = spec.generate();
    let k = 10;
    let gt = ground_truth(&base, &queries, k, 4);
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>8} {:>9}",
        "algorithm", "build(s)", "size(MB)", "Recall@10", "QPS", "speedup"
    );

    for algo in [
        Algo::KGraph,
        Algo::Nsw,
        Algo::Hnsw,
        Algo::Nsg,
        Algo::Nssg,
        Algo::Dpg,
        Algo::Hcnng,
        Algo::Oa,
    ] {
        let t0 = std::time::Instant::now();
        let index = algo.build(&base, 4, 1);
        let build = t0.elapsed().as_secs_f64();

        let mut ctx = SearchContext::new(base.len());
        let t0 = std::time::Instant::now();
        let mut r = 0.0;
        for qi in 0..queries.len() as u32 {
            let res = index.search(&base, queries.point(qi), k, 60, &mut ctx);
            let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
            r += recall(&ids, &gt[qi as usize]);
        }
        let secs = t0.elapsed().as_secs_f64();
        let stats = ctx.take_stats();
        let ndc = stats.ndc as f64 / queries.len() as f64;
        println!(
            "{:<10} {:>9.2} {:>9.1} {:>10.3} {:>8.0} {:>9.1}",
            index.name(),
            build,
            index.memory_bytes() as f64 / 1e6,
            r / queries.len() as f64,
            queries.len() as f64 / secs,
            base.len() as f64 / ndc,
        );
    }
    println!("\n(beam fixed at 60; raise it for higher recall, lower for more QPS)");
}
