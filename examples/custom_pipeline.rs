//! Compose your own graph-ANNS algorithm from the survey's seven
//! components (§4's pipeline) — the same machinery behind the paper's
//! Figure 10 component study and the §6 optimized algorithm.
//!
//! ```sh
//! cargo run --release --example custom_pipeline
//! ```

use weavess::core::index::{AnnIndex, SearchContext};
use weavess::core::nndescent::NnDescentParams;
use weavess::core::pipeline::{
    CandidateChoice, ConnectivityChoice, InitChoice, PipelineBuilder, SeedChoice, SelectionChoice,
};
use weavess::core::search::Router;
use weavess::data::ground_truth::ground_truth;
use weavess::data::metrics::recall;
use weavess::data::synthetic::MixtureSpec;

fn main() {
    let spec = MixtureSpec {
        intrinsic_dim: Some(10),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(32, 8_000, 6, 5.0, 200)
    };
    let (base, queries) = spec.generate();
    let gt = ground_truth(&base, &queries, 10, 4);

    // A custom recipe: EFANNA-style KD-tree initialization, NSSG-style
    // 2-hop candidates, Vamana's relaxed alpha rule, LSH seeds like IEH,
    // DFS connectivity like NSG, and HCNNG's guided routing.
    let custom = PipelineBuilder {
        init: InitChoice::KdTree {
            n_trees: 4,
            checks_per_tree: 150,
            nd: NnDescentParams {
                k: 40,
                l: 60,
                iters: 4,
                sample: 15,
                reverse: 30,
                seed: 7,
                threads: 4,
            },
        },
        candidates: CandidateChoice::Expansion { cap: 100 },
        selection: SelectionChoice::RngAlpha {
            degree: 32,
            alpha: 1.2,
        },
        seeds: SeedChoice::Lsh {
            tables: 4,
            bits: 12,
            count: 8,
        },
        connectivity: ConnectivityChoice::DfsRepair,
        router: Router::Guided,
        threads: 4,
        seed: 7,
        name: "custom",
    };

    // The paper's Table 13 benchmark configuration, for reference.
    let benchmark = PipelineBuilder::benchmark(8, 4);

    for (label, builder) in [("custom", &custom), ("benchmark", &benchmark)] {
        let t0 = std::time::Instant::now();
        let index = builder.build(&base);
        let build = t0.elapsed().as_secs_f64();
        let mut ctx = SearchContext::new(base.len());
        let mut r = 0.0;
        for qi in 0..queries.len() as u32 {
            let res = index.search(&base, queries.point(qi), 10, 60, &mut ctx);
            let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
            r += recall(&ids, &gt[qi as usize]);
        }
        let stats = ctx.take_stats();
        println!(
            "{label:>10}: built {build:.2}s, Recall@10 {:.3}, {:.0} NDC/query",
            r / queries.len() as f64,
            stats.ndc as f64 / queries.len() as f64
        );
    }
}
