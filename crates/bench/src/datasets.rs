//! Named evaluation datasets with ground truth attached.

use weavess_data::ground_truth::ground_truth;
use weavess_data::metrics::dataset_lid;
use weavess_data::synthetic::{standins, table10_specs, MixtureSpec};
use weavess_data::Dataset;

/// Ground-truth depth computed for every dataset (covers Recall@1 and
/// Recall@10; the paper precomputes 20/100).
pub const GT_K: usize = 20;

/// One evaluation dataset, ready to run.
pub struct NamedDataset {
    /// Name as printed in the paper's tables.
    pub name: String,
    /// Base vectors.
    pub base: Dataset,
    /// Query vectors.
    pub queries: Dataset,
    /// Exact `GT_K` nearest neighbors per query.
    pub gt: Vec<Vec<u32>>,
}

impl NamedDataset {
    /// Builds from a generated pair.
    pub fn from_pair(name: &str, base: Dataset, queries: Dataset, threads: usize) -> Self {
        let gt = ground_truth(&base, &queries, GT_K, threads);
        NamedDataset {
            name: name.to_string(),
            base,
            queries,
            gt,
        }
    }

    /// Builds from a [`MixtureSpec`].
    pub fn from_spec(name: &str, spec: &MixtureSpec, threads: usize) -> Self {
        let (base, queries) = spec.generate();
        Self::from_pair(name, base, queries, threads)
    }

    /// Measured MLE-LID (Table 3's difficulty column). The neighborhood
    /// size scales with cardinality so small harness-scale datasets still
    /// probe *local* structure.
    pub fn lid(&self, threads: usize) -> f64 {
        let k = (self.base.len() / 40).clamp(20, 100);
        dataset_lid(&self.base, k, 200, threads)
    }
}

/// The eight real-world stand-ins at `scale` (Table 3), hardest last.
pub fn real_world_standins(scale: f64, threads: usize) -> Vec<NamedDataset> {
    standins::all(scale)
        .iter()
        .map(|s| NamedDataset::from_spec(s.name, &s.spec, threads))
        .collect()
}

/// A fast two-dataset subset mirroring the paper's §5.4 choice of "one
/// simple (SIFT1M), one hard (GIST1M)" dataset.
pub fn simple_and_hard(scale: f64, threads: usize) -> Vec<NamedDataset> {
    standins::all(scale)
        .iter()
        .filter(|s| s.name == "SIFT1M" || s.name == "GIST1M")
        .map(|s| NamedDataset::from_spec(s.name, &s.spec, threads))
        .collect()
}

/// The paper's 12 synthetic datasets (Table 10) at `scale`.
pub fn synthetic_table10(scale: f64, threads: usize) -> Vec<NamedDataset> {
    table10_specs(scale)
        .iter()
        .map(|(name, spec)| NamedDataset::from_spec(name, spec, threads))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standins_carry_ground_truth() {
        let sets = real_world_standins(0.002, 4);
        assert_eq!(sets.len(), 8);
        for s in &sets {
            assert_eq!(s.gt.len(), s.queries.len());
            assert!(s.gt.iter().all(|row| row.len() == GT_K));
        }
    }

    #[test]
    fn simple_and_hard_picks_the_paper_pair() {
        let pair = simple_and_hard(0.002, 4);
        let names: Vec<&str> = pair.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["SIFT1M", "GIST1M"]);
    }
}
