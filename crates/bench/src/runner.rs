//! Shared experiment machinery: timed builds, beam sweeps, target-recall
//! searches.

use crate::datasets::NamedDataset;
use weavess_core::algorithms::Algo;
use weavess_core::index::{AnnIndex, SearchContext};
use weavess_core::serve::{EngineOptions, QueryEngine};
use weavess_core::telemetry::{Histogram, RecordingTracer};
use weavess_data::metrics::recall;
use weavess_graph::connectivity::weak_components;
use weavess_graph::metrics::{degree_stats, graph_quality, DegreeStats};

/// A built index plus its construction report.
pub struct BuildReport {
    /// Algorithm name.
    pub name: &'static str,
    /// Wall-clock build seconds.
    pub build_secs: f64,
    /// Total index bytes (graph + auxiliary structures).
    pub index_bytes: usize,
    /// The index.
    pub index: Box<dyn AnnIndex>,
}

/// Builds one algorithm, timed.
pub fn build_timed(algo: Algo, ds: &NamedDataset, threads: usize, seed: u64) -> BuildReport {
    let t0 = std::time::Instant::now();
    let index = algo.build(&ds.base, threads, seed);
    let build_secs = t0.elapsed().as_secs_f64();
    BuildReport {
        name: algo.name(),
        build_secs,
        index_bytes: index.memory_bytes(),
        index,
    }
}

/// Index-structure metrics (Table 4 / Table 11 rows).
pub struct GraphReport {
    /// Graph quality vs the exact KNNG.
    pub gq: f64,
    /// Degree statistics.
    pub degrees: DegreeStats,
    /// Weakly-connected components.
    pub cc: usize,
    /// Out-degree histogram: `degree_histogram[d]` counts vertices with
    /// out-degree `d` (the raw distribution behind Table 11's max/min).
    pub degree_histogram: Vec<usize>,
}

/// Computes Table 4 metrics for a built index. `exact` is the exact KNNG
/// neighbor lists (see [`weavess_data::ground_truth::exact_knn_graph`]).
pub fn graph_report(index: &dyn AnnIndex, exact: &[Vec<u32>]) -> GraphReport {
    let g = index.graph();
    GraphReport {
        gq: graph_quality(g, exact),
        degrees: degree_stats(g),
        cc: weak_components(g),
        degree_histogram: g.degree_histogram(),
    }
}

/// Nearest-rank percentile (`p` in (0, 1]) read off an out-degree
/// histogram (`hist[d]` = vertex count at degree `d`). Returns 0 for an
/// empty histogram.
pub fn degree_percentile(hist: &[usize], p: f64) -> usize {
    let total: usize = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as usize).max(1);
    let mut cum = 0usize;
    for (d, &c) in hist.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return d;
        }
    }
    hist.len().saturating_sub(1)
}

/// One point of a beam sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Candidate-set size (the paper's CS).
    pub beam: usize,
    /// Mean Recall@k.
    pub recall: f64,
    /// Queries per second (single thread, like the paper).
    pub qps: f64,
    /// Mean distance computations per query.
    pub ndc: f64,
    /// Mean hops (query path length) per query.
    pub hops: f64,
    /// Speedup = |S| / NDC.
    pub speedup: f64,
}

/// Runs the full query set at one beam width.
pub fn run_at_beam(index: &dyn AnnIndex, ds: &NamedDataset, k: usize, beam: usize) -> SweepPoint {
    let mut ctx = SearchContext::new(ds.base.len());
    let nq = ds.queries.len();
    let t0 = std::time::Instant::now();
    let mut total_recall = 0.0;
    for qi in 0..nq as u32 {
        let res = index.search(&ds.base, ds.queries.point(qi), k, beam, &mut ctx);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        total_recall += recall(&ids, &ds.gt[qi as usize][..k.min(ds.gt[qi as usize].len())]);
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = ctx.take_stats();
    let ndc = stats.ndc as f64 / nq as f64;
    SweepPoint {
        beam,
        recall: total_recall / nq as f64,
        qps: nq as f64 / secs.max(1e-9),
        ndc,
        hops: stats.hops as f64 / nq as f64,
        speedup: ds.base.len() as f64 / ndc.max(1e-9),
    }
}

/// One point of a threaded serving sweep: the batch engine's throughput
/// and latency distribution at a fixed beam and worker count.
#[derive(Debug, Clone, Copy)]
pub struct ServingPoint {
    /// Candidate-set size (the paper's CS).
    pub beam: usize,
    /// Worker threads serving the batch.
    pub threads: usize,
    /// Mean Recall@k over the batch.
    pub recall: f64,
    /// Queries per second over the batch wall-clock.
    pub qps: f64,
    /// Median per-query latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-query latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
    /// Mean distance computations per query.
    pub ndc: f64,
}

/// Runs the full query set through the batch [`QueryEngine`] at one beam
/// width and worker count (the threaded counterpart of [`run_at_beam`]).
pub fn run_batch_at_beam(
    index: &dyn AnnIndex,
    ds: &NamedDataset,
    k: usize,
    beam: usize,
    threads: usize,
) -> ServingPoint {
    let engine = QueryEngine::with_options(
        index,
        &ds.base,
        EngineOptions {
            workers: threads,
            ..EngineOptions::default()
        },
    );
    let report = engine.search_batch(&ds.queries, k, beam);
    let nq = ds.queries.len().max(1);
    let mut total_recall = 0.0;
    for (qi, res) in report.results.iter().enumerate() {
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        total_recall += recall(&ids, &ds.gt[qi][..k.min(ds.gt[qi].len())]);
    }
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    ServingPoint {
        beam,
        threads: report.workers,
        recall: total_recall / nq as f64,
        qps: report.qps(),
        p50_ms: ms(report.latency.p50),
        p95_ms: ms(report.latency.p95),
        p99_ms: ms(report.latency.p99),
        ndc: report.stats.ndc as f64 / nq as f64,
    }
}

/// Per-query routing-shape distributions over a full query set: how many
/// hops searches take, and how many of those are spent escaping the entry
/// region (Table 5's path-length analysis, online).
pub struct RouteHists {
    /// Hops (expanded vertices) per query.
    pub hops: Histogram,
    /// Entry-to-first-improvement: hops before the route first beat the
    /// best seed distance (a query that never improves records its full
    /// hop count — it spent the whole route "escaping").
    pub entry_to_improve: Histogram,
}

/// Runs the full query set traced at one beam width, collecting the
/// hop-count and entry-to-first-improvement histograms.
pub fn route_histograms(
    index: &dyn AnnIndex,
    ds: &NamedDataset,
    k: usize,
    beam: usize,
) -> RouteHists {
    let mut ctx = SearchContext::new(ds.base.len());
    let mut tracer = RecordingTracer::new();
    let mut hops = Histogram::new();
    let mut entry_to_improve = Histogram::new();
    for qi in 0..ds.queries.len() as u32 {
        tracer.clear();
        index.search_traced(
            &ds.base,
            ds.queries.point(qi),
            k,
            beam,
            &mut ctx,
            &mut tracer,
        );
        hops.record(tracer.hops() as u64);
        entry_to_improve.record(tracer.first_improvement_hop().unwrap_or(tracer.hops()) as u64);
    }
    RouteHists {
        hops,
        entry_to_improve,
    }
}

/// The default beam schedule for recall/efficiency curves (the paper's
/// high-precision region).
pub fn default_beams(k: usize) -> Vec<usize> {
    let mut beams: Vec<usize> = vec![k, 20, 30, 40, 60, 80, 120, 160, 240, 320, 480]
        .into_iter()
        .filter(|&b| b >= k)
        .collect();
    beams.dedup();
    beams
}

/// Sweeps beams, producing one curve (Figures 7/8/20/21).
pub fn sweep(
    index: &dyn AnnIndex,
    ds: &NamedDataset,
    k: usize,
    beams: &[usize],
) -> Vec<SweepPoint> {
    beams
        .iter()
        .map(|&b| run_at_beam(index, ds, k, b))
        .collect()
}

/// Finds the smallest scheduled beam reaching `target` Recall@k, returning
/// its sweep point (the Table 5 methodology: CS at a fixed recall).
/// Returns the best achieved point when the target is never reached
/// (the paper's "+" ceiling marker), with `reached = false`.
pub fn at_target_recall(
    index: &dyn AnnIndex,
    ds: &NamedDataset,
    k: usize,
    target: f64,
) -> (SweepPoint, bool) {
    let mut best: Option<SweepPoint> = None;
    for &beam in &default_beams(k) {
        let p = run_at_beam(index, ds, k, beam);
        if p.recall >= target {
            return (p, true);
        }
        if best.is_none_or(|b| p.recall > b.recall) {
            best = Some(p);
        }
    }
    (best.expect("at least one beam evaluated"), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::NamedDataset;
    use weavess_data::synthetic::MixtureSpec;

    fn tiny() -> NamedDataset {
        let spec = MixtureSpec::table10(8, 1_000, 3, 3.0, 50);
        NamedDataset::from_spec("tiny", &spec, 4)
    }

    #[test]
    fn degree_percentile_reads_the_histogram() {
        // 3 vertices at degree 0, 5 at degree 2, 2 at degree 7.
        let hist = vec![3usize, 0, 5, 0, 0, 0, 0, 2];
        assert_eq!(degree_percentile(&hist, 0.1), 0);
        assert_eq!(degree_percentile(&hist, 0.5), 2);
        assert_eq!(degree_percentile(&hist, 1.0), 7);
        assert_eq!(degree_percentile(&[], 0.5), 0);
    }

    #[test]
    fn graph_report_histogram_is_consistent_with_degree_stats() {
        let ds = tiny();
        let report = build_timed(Algo::KGraph, &ds, 2, 1);
        let exact = weavess_data::ground_truth::exact_knn_graph(&ds.base, 10, 2);
        let g = graph_report(report.index.as_ref(), &exact);
        let total: usize = g.degree_histogram.iter().sum();
        assert_eq!(total, ds.base.len());
        assert_eq!(g.degree_histogram.len() - 1, g.degrees.max);
        assert_eq!(degree_percentile(&g.degree_histogram, 1.0), g.degrees.max);
    }

    #[test]
    fn build_and_sweep_produce_consistent_numbers() {
        let ds = tiny();
        let report = build_timed(Algo::KGraph, &ds, 2, 1);
        assert!(report.build_secs > 0.0);
        assert!(report.index_bytes > 0);
        let points = sweep(report.index.as_ref(), &ds, 10, &[10, 80]);
        assert_eq!(points.len(), 2);
        assert!(points[1].recall >= points[0].recall - 0.02);
        assert!(points[1].ndc > points[0].ndc);
        assert!(points[0].speedup > 1.0);
    }

    #[test]
    fn batch_sweep_matches_serial_recall_and_ndc() {
        let ds = tiny();
        let report = build_timed(Algo::KGraph, &ds, 2, 1);
        let serial = run_at_beam(report.index.as_ref(), &ds, 10, 60);
        for threads in [1usize, 4] {
            let p = run_batch_at_beam(report.index.as_ref(), &ds, 10, 60, threads);
            assert_eq!(p.threads, threads);
            assert!(p.qps > 0.0);
            assert!(p.p50_ms <= p.p95_ms && p.p95_ms <= p.p99_ms);
            // Engine reseeds per query, so recall can differ slightly from
            // the shared-RNG serial loop on random-seeded indexes, but the
            // two measurements describe the same index and beam.
            assert!(
                (p.recall - serial.recall).abs() < 0.05,
                "{} vs {}",
                p.recall,
                serial.recall
            );
            assert!((p.ndc - serial.ndc).abs() / serial.ndc < 0.2);
        }
    }

    #[test]
    fn route_histograms_cover_every_query() {
        let ds = tiny();
        let report = build_timed(Algo::KGraph, &ds, 2, 1);
        let h = route_histograms(report.index.as_ref(), &ds, 10, 40);
        assert_eq!(h.hops.count(), ds.queries.len() as u64);
        assert_eq!(h.entry_to_improve.count(), ds.queries.len() as u64);
        // Escaping the entry region cannot take longer than the route.
        assert!(h.entry_to_improve.percentile(0.5) <= h.hops.percentile(0.5));
    }

    #[test]
    fn target_recall_search_reports_ceiling() {
        let ds = tiny();
        let report = build_timed(Algo::KGraph, &ds, 2, 1);
        let (p, reached) = at_target_recall(report.index.as_ref(), &ds, 10, 0.5);
        assert!(reached);
        assert!(p.recall >= 0.5);
        let (_, reached_impossible) = at_target_recall(report.index.as_ref(), &ds, 10, 1.01);
        assert!(!reached_impossible);
    }
}
