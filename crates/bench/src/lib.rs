#![warn(missing_docs)]

//! Experiment harness regenerating every table and figure of the survey's
//! evaluation (§5 and the appendices).
//!
//! Each paper artifact has one binary under `src/bin/` (see DESIGN.md's
//! experiment index); this library holds what they share:
//!
//! - [`datasets`]: the real-world stand-ins and Table 10 synthetic sets,
//!   with ground truth attached.
//! - [`runner`]: build reports, beam sweeps (recall / QPS / NDC / hops),
//!   and target-recall searches.
//! - [`report`]: aligned-table printing and CSV export to `results/`.
//! - [`workload`]: the clustered-data + Zipf-skewed-query serving
//!   workload shared by `adapt_bench` and `serve_bench`.
//!
//! Environment knobs (all binaries):
//! - `WEAVESS_SCALE` — cardinality scale for the stand-ins (default 0.003,
//!   i.e. SIFT1M → 3 000 points; raise on bigger machines).
//! - `WEAVESS_THREADS` — construction threads (default: all cores).
//! - `WEAVESS_QUERY_THREADS` — batch-serving worker threads for the
//!   threaded QPS/latency tables (default: all cores).
//! - `WEAVESS_ALGOS` — comma-separated algorithm filter (default: all).

pub mod datasets;
pub mod plot;
pub mod report;
pub mod runner;
pub mod tuning;
pub mod workload;

/// Reads the cardinality scale from `WEAVESS_SCALE`.
pub fn env_scale() -> f64 {
    std::env::var("WEAVESS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.003)
}

/// Reads the construction thread count from `WEAVESS_THREADS`.
pub fn env_threads() -> usize {
    std::env::var("WEAVESS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Reads the batch-serving worker count from `WEAVESS_QUERY_THREADS`
/// (default: all cores). This is the thread count the serving tables
/// (`search_eval`'s QPS/latency columns) are measured at; construction
/// threads are governed separately by `WEAVESS_THREADS`.
pub fn env_query_threads() -> usize {
    std::env::var("WEAVESS_QUERY_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Reads the algorithm filter from `WEAVESS_ALGOS` (names as in the
/// paper's tables, comma separated); `None` = all.
pub fn env_algos() -> Option<Vec<String>> {
    std::env::var("WEAVESS_ALGOS").ok().map(|s| {
        s.split(',')
            .map(|x| x.trim().to_string())
            .filter(|x| !x.is_empty())
            .collect()
    })
}

/// Reads the dataset filter from `WEAVESS_DATASETS` (names as in Table 3,
/// comma separated); `None` = all.
pub fn env_datasets() -> Option<Vec<String>> {
    std::env::var("WEAVESS_DATASETS").ok().map(|s| {
        s.split(',')
            .map(|x| x.trim().to_string())
            .filter(|x| !x.is_empty())
            .collect()
    })
}

/// Applies the `WEAVESS_DATASETS` filter to a dataset list.
pub fn select_datasets(sets: Vec<datasets::NamedDataset>) -> Vec<datasets::NamedDataset> {
    match env_datasets() {
        None => sets,
        Some(names) => sets
            .into_iter()
            .filter(|d| names.iter().any(|n| n.eq_ignore_ascii_case(&d.name)))
            .collect(),
    }
}

/// Selects algorithms honoring the `WEAVESS_ALGOS` filter.
pub fn select_algos(all: &[weavess_core::algorithms::Algo]) -> Vec<weavess_core::algorithms::Algo> {
    match env_algos() {
        None => all.to_vec(),
        Some(names) => all
            .iter()
            .copied()
            .filter(|a| names.iter().any(|n| n.eq_ignore_ascii_case(a.name())))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_core::algorithms::Algo;

    /// One test mutates the process environment for all the env_* helpers
    /// (a single #[test] so parallel tests never race on env vars).
    #[test]
    fn env_knobs_parse_and_filter() {
        std::env::set_var("WEAVESS_SCALE", "0.25");
        assert_eq!(env_scale(), 0.25);
        std::env::remove_var("WEAVESS_SCALE");
        assert_eq!(env_scale(), 0.003);

        std::env::set_var("WEAVESS_THREADS", "3");
        assert_eq!(env_threads(), 3);
        std::env::remove_var("WEAVESS_THREADS");
        assert!(env_threads() >= 1);

        std::env::set_var("WEAVESS_QUERY_THREADS", "5");
        assert_eq!(env_query_threads(), 5);
        std::env::remove_var("WEAVESS_QUERY_THREADS");
        assert!(env_query_threads() >= 1);

        std::env::set_var("WEAVESS_ALGOS", "nsg, HNSW ,kgraph");
        let picked = select_algos(Algo::all());
        let names: Vec<&str> = picked.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["KGraph", "HNSW", "NSG"]);
        std::env::remove_var("WEAVESS_ALGOS");
        assert_eq!(select_algos(Algo::all()).len(), Algo::all().len());

        std::env::set_var("WEAVESS_DATASETS", "sift1m");
        let sets = datasets::real_world_standins(0.002, 2);
        let picked = select_datasets(sets);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].name, "SIFT1M");
        std::env::remove_var("WEAVESS_DATASETS");
    }
}
