//! Parameter tuning on a validation split — the §5.1 "Parameters"
//! methodology: "we randomly sample a certain percentage of data points
//! from the base dataset to form a validation dataset. We search for the
//! optimal value of all the adjustable parameters ... to make the
//! algorithms' search performance reach the optimal level", scored in the
//! high-recall region.

use crate::datasets::NamedDataset;
use weavess_core::index::{AnnIndex, SearchContext};
use weavess_data::ground_truth::ground_truth;
use weavess_data::metrics::recall;
use weavess_data::Dataset;

/// A validation workload: held-out queries sampled from the base set with
/// their exact neighbors (computed against the full base, like the paper).
pub struct ValidationSplit {
    /// Validation query vectors (sampled base points).
    pub queries: Dataset,
    /// Exact `k` nearest base points per validation query (the query point
    /// itself is excluded so tuning is not rewarded for self-retrieval).
    pub gt: Vec<Vec<u32>>,
    /// Each validation query's own base id (excluded from scoring).
    pub own_ids: Vec<u32>,
}

/// Samples `frac` of the base points (strided, deterministic) as
/// validation queries and computes their ground truth.
pub fn validation_split(ds: &NamedDataset, frac: f64, k: usize, threads: usize) -> ValidationSplit {
    let n = ds.base.len();
    let count = ((n as f64 * frac) as usize).clamp(20, 500);
    let stride = (n / count).max(1);
    let ids: Vec<u32> = (0..count).map(|i| (i * stride) as u32).collect();
    let queries = ds.base.subset(&ids);
    // Ground truth against the full base, excluding each query's own id.
    let gt_with_self = ground_truth(&ds.base, &queries, k + 1, threads);
    let gt = gt_with_self
        .into_iter()
        .zip(&ids)
        .map(|(row, &own)| row.into_iter().filter(|&x| x != own).take(k).collect())
        .collect();
    ValidationSplit {
        queries,
        gt,
        own_ids: ids,
    }
}

/// A boxed index-builder closure.
pub type Builder<'a> = Box<dyn Fn(&Dataset) -> Box<dyn AnnIndex> + 'a>;

/// One tuning candidate: a label and a builder closure.
pub struct Candidate<'a> {
    /// Parameter-setting label, e.g. `"R=30,L=60"`.
    pub label: String,
    /// Builds the index for this setting.
    pub build: Builder<'a>,
}

/// Tuning outcome for one candidate.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The candidate's label.
    pub label: String,
    /// Mean Recall@k on the validation split at the evaluation beam.
    pub recall: f64,
    /// Mean distance computations per validation query.
    pub ndc: f64,
    /// Build seconds.
    pub build_secs: f64,
    /// The score candidates are ranked by.
    pub score: f64,
}

/// Grid-searches the candidates on a validation split, ranking by recall
/// first and NDC second (the paper's "high recall areas' search
/// performance primarily is concerned"). Returns all results sorted best
/// first.
pub fn grid_search(
    ds: &NamedDataset,
    split: &ValidationSplit,
    candidates: Vec<Candidate<'_>>,
    k: usize,
    beam: usize,
) -> Vec<TuneResult> {
    let mut results: Vec<TuneResult> = Vec::with_capacity(candidates.len());
    for c in candidates {
        let t0 = std::time::Instant::now();
        let index = (c.build)(&ds.base);
        let build_secs = t0.elapsed().as_secs_f64();
        let mut ctx = SearchContext::new(ds.base.len());
        let mut total_recall = 0.0;
        for qi in 0..split.queries.len() as u32 {
            // Ask for one extra and drop the query's own base point: a
            // validation query retrieves itself at distance zero, which
            // must not count for or against the setting.
            let own = split.own_ids[qi as usize];
            let res: Vec<u32> = index
                .search(&ds.base, split.queries.point(qi), k + 1, beam, &mut ctx)
                .iter()
                .map(|n| n.id)
                .filter(|&id| id != own)
                .take(k)
                .collect();
            total_recall += recall(&res, &split.gt[qi as usize]);
        }
        let nq = split.queries.len() as f64;
        let r = total_recall / nq;
        let ndc = ctx.stats.ndc as f64 / nq;
        // Lexicographic-ish score: recall dominates (rounded to 0.005),
        // cheaper NDC breaks ties.
        let score = (r * 200.0).round() * 1e9 - ndc;
        results.push(TuneResult {
            label: c.label,
            recall: r,
            ndc,
            build_secs,
            score,
        });
    }
    results.sort_by(|a, b| b.score.total_cmp(&a.score));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_core::algorithms::nsg::{self, NsgParams};
    use weavess_data::synthetic::MixtureSpec;

    fn dataset() -> NamedDataset {
        let spec = MixtureSpec {
            intrinsic_dim: Some(6),
            noise: 0.05,
            shared_subspace: true,
            ..MixtureSpec::table10(16, 1_500, 3, 5.0, 30)
        };
        NamedDataset::from_spec("tune-test", &spec, 2)
    }

    #[test]
    fn validation_split_excludes_self_matches() {
        let ds = dataset();
        let split = validation_split(&ds, 0.05, 10, 2);
        assert!(split.queries.len() >= 20);
        // Every gt row has k entries, none at distance zero to the query
        // (the query itself was excluded; duplicates aside).
        for (qi, row) in split.gt.iter().enumerate() {
            assert_eq!(row.len(), 10);
            let q = split.queries.point(qi as u32);
            // The nearest retained neighbor may be near but the row must
            // not contain the query's own base id (strided: qi * stride).
            let own = (qi * (ds.base.len() / split.queries.len()).max(1)) as u32;
            assert!(!row.contains(&own), "row {qi} contains its own id");
            let _ = q;
        }
    }

    #[test]
    fn grid_search_prefers_higher_recall_then_lower_ndc() {
        let ds = dataset();
        let split = validation_split(&ds, 0.05, 10, 2);
        // Candidates: a crippled NSG (near-degenerate degree) vs a
        // reasonable one.
        let candidates = vec![
            Candidate {
                label: "R=2".into(),
                build: Box::new(|base: &Dataset| {
                    let mut p = NsgParams::tuned(2, 1);
                    p.r = 2;
                    Box::new(nsg::build(base, &p)) as Box<dyn AnnIndex>
                }),
            },
            Candidate {
                label: "R=30".into(),
                build: Box::new(|base: &Dataset| {
                    Box::new(nsg::build(base, &NsgParams::tuned(2, 1))) as Box<dyn AnnIndex>
                }),
            },
        ];
        let results = grid_search(&ds, &split, candidates, 10, 20);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "R=30", "{results:?}");
        assert!(results[0].recall >= results[1].recall);
    }
}
