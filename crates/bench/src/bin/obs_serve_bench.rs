//! Serving-tier observability bench — flight-recorder overhead and
//! online recall-auditor fidelity; splices `flight`/`audit` blocks into
//! the `BENCH_obs.json` artifact.
//!
//! Two gates, both hard-failing under `--smoke`:
//!
//! - **flight sampling overhead**: the recorded batch path
//!   ([`QueryEngine::search_batch_flights`] at the default 1-in-64
//!   sampling) must stay within 5% QPS of the recorder-off path,
//!   measured interleaved best-of-5 like `obs_bench`;
//! - **audit fidelity**: on a seeded [`ZipfWorkload`], the auditor's
//!   95% Wilson interval must cover the exact offline recall of the
//!   full query set.

use std::time::Instant;
use weavess_bench::report::{banner, f, Table};
use weavess_bench::workload::ZipfWorkload;
use weavess_core::audit::{AuditConfig, RecallAuditor, SloEngine, SloPolicy};
use weavess_core::components::SeedStrategy;
use weavess_core::index::FlatIndex;
use weavess_core::search::Router;
use weavess_core::serve::{EngineOptions, QueryEngine};
use weavess_core::telemetry::flight::parse_json;
use weavess_core::telemetry::{query_fingerprint, FlightOptions, FlightRecorder};
use weavess_data::ground_truth::ground_truth;
use weavess_graph::base::exact_knng;

const K: usize = 10;
const BEAM: usize = 64;
const TRIALS: usize = 5;

/// One timed trial (~0.3s of repeated full passes), as in `obs_bench`:
/// callers interleave competing entry points round-robin so clock drift
/// and background load bias neither.
fn qps_trial<F: FnMut()>(nq: usize, pass: &mut F) -> f64 {
    let mut queries = 0usize;
    let t0 = Instant::now();
    loop {
        pass();
        queries += nq;
        if t0.elapsed().as_secs_f64() > 0.3 {
            break;
        }
    }
    queries as f64 / t0.elapsed().as_secs_f64()
}

/// Splices the `flight`/`audit` blocks into an existing `BENCH_obs.json`
/// (idempotently replacing any previous splice), or writes a standalone
/// artifact when `obs_bench` has not run yet.
fn splice_artifact(flight_block: &str, audit_block: &str) {
    let addition = format!(",\n  \"flight\": {flight_block},\n  \"audit\": {audit_block}\n}}\n");
    let merged = match std::fs::read_to_string("BENCH_obs.json") {
        Ok(existing) => {
            let head = match existing.find(",\n  \"flight\"") {
                Some(pos) => &existing[..pos],
                None => existing.trim_end().trim_end_matches('}').trim_end(),
            };
            format!("{head}{addition}")
        }
        Err(_) => format!(
            "{{\n  \"bench\": \"obs\",\n  \"note\": \"obs_serve_bench ran standalone\"{addition}"
        ),
    };
    std::fs::write("BENCH_obs.json", &merged).expect("write BENCH_obs.json");
    println!("\nspliced flight/audit blocks into BENCH_obs.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (n, dim, nq) = if smoke {
        (2_000, 16, 300)
    } else {
        (20_000, 32, 600)
    };
    let mode = if cfg!(feature = "paper-fidelity") {
        "paper-fidelity"
    } else {
        "default"
    };
    banner(&format!(
        "Serving observability bench (mode={mode}, n={n}, dim={dim}, nq={nq}, beam={BEAM}, host cores={host})"
    ));

    let workload = ZipfWorkload::new(n, dim, 8, 1.2, nq, 42);
    let (base, queries) = workload.generate();
    let idx = FlatIndex {
        name: "obs-serve",
        graph: exact_knng(&base, 10, host),
        // Random seeds reach every cluster; the engine reseeds its RNG
        // per query fingerprint, so results stay deterministic.
        seeds: SeedStrategy::Random { count: 8 },
        router: Router::BestFirst,
    };
    let engine = QueryEngine::with_options(
        &idx,
        &base,
        EngineOptions {
            workers: host.min(4),
            ..EngineOptions::default()
        },
    );

    // --- Flight overhead: recorder-off vs recorder-on (default 1-in-64
    // sampling), interleaved best-of-5, identical results asserted. ---
    let recorder = FlightRecorder::new(FlightOptions::default());
    let off = engine.search_batch(&queries, K, BEAM);
    let on = engine.search_batch_flights(&queries, K, BEAM, &recorder);
    assert_eq!(
        off.results, on.results,
        "recorded path changed search results"
    );
    let mut pass_off = || {
        std::hint::black_box(engine.search_batch(&queries, K, BEAM));
    };
    let mut pass_on = || {
        std::hint::black_box(engine.search_batch_flights(&queries, K, BEAM, &recorder));
    };
    pass_off();
    pass_on();
    let (mut qps_off, mut qps_on) = (0.0f64, 0.0f64);
    for _ in 0..TRIALS {
        qps_off = qps_off.max(qps_trial(nq, &mut pass_off));
        qps_on = qps_on.max(qps_trial(nq, &mut pass_on));
    }
    let overhead_pct = (1.0 - qps_on / qps_off) * 100.0;
    let mut t = Table::new(vec!["batch entry point", "QPS", "overhead"]);
    t.row(vec![
        "search_batch (recorder off)".into(),
        f(qps_off, 0),
        "-".into(),
    ]);
    t.row(vec![
        "search_batch_flights (1-in-64)".into(),
        f(qps_on, 0),
        format!("{overhead_pct:.2}%"),
    ]);
    banner("Flight-recorder overhead (best-of-5, interleaved)");
    t.print();

    // The export surfaces stay well-formed under real traffic.
    parse_json(&recorder.chrome_trace_json()).expect("chrome trace must be valid JSON");
    let stable_flights = recorder
        .dump_stable()
        .lines()
        .filter(|l| l.starts_with("flight "))
        .count();

    // --- Audit fidelity: live estimate vs exact offline recall. ---
    let auditor = RecallAuditor::new(
        &base,
        AuditConfig {
            sample_every: if smoke { 2 } else { 4 },
            k: K,
            ..AuditConfig::default()
        },
    );
    for qi in 0..queries.len() as u32 {
        let fp = query_fingerprint(queries.point(qi));
        auditor.observe(fp, queries.point(qi), &off.results[qi as usize], false);
    }
    let mut ticks = 0usize;
    while auditor.run_pending() > 0 {
        ticks += 1;
    }
    let audit = auditor.snapshot();

    let truth = ground_truth(&base, &queries, K, host);
    let mut hits = 0u64;
    let mut trials = 0u64;
    for (qi, exact) in truth.iter().enumerate() {
        trials += exact.len() as u64;
        hits += off.results[qi]
            .iter()
            .take(exact.len())
            .filter(|nb| exact.contains(&nb.id))
            .count() as u64;
    }
    let offline = hits as f64 / trials as f64;
    let ci_covers = audit.ci_low <= offline && offline <= audit.ci_high;

    let mut slo = SloEngine::new(SloPolicy::default());
    let slo_report = slo.evaluate(&engine.snapshot().latency, &audit);

    let mut a = Table::new(vec!["quantity", "value"]);
    a.row(vec![
        "audited / sampled".into(),
        format!("{} / {}", audit.audited_total, audit.sampled_total),
    ]);
    a.row(vec![
        "live recall (95% CI)".into(),
        format!(
            "{:.4} [{:.4}, {:.4}]",
            audit.recall, audit.ci_low, audit.ci_high
        ),
    ]);
    a.row(vec!["exact offline recall".into(), format!("{offline:.4}")]);
    a.row(vec!["CI covers offline".into(), ci_covers.to_string()]);
    a.row(vec![
        "SLO states (latency/recall)".into(),
        format!(
            "{}/{}",
            slo_report.latency_state.name(),
            slo_report.recall_state.name()
        ),
    ]);
    banner("Online recall audit vs exact offline recall");
    a.print();

    let flight_block = format!(
        "{{\"sampled\": {}, \"recorded\": {}, \"stable_flights\": {stable_flights}, \
         \"qps_off\": {qps_off:.1}, \"qps_on\": {qps_on:.1}, \
         \"overhead_pct\": {overhead_pct:.3}}}",
        recorder.sampled_total(),
        recorder.recorded_total(),
    );
    let audit_block = format!(
        "{{\"sampled\": {}, \"audited\": {}, \"ticks\": {ticks}, \
         \"recall\": {:.6}, \"ci\": [{:.6}, {:.6}], \"offline_recall\": {offline:.6}, \
         \"ci_covers_offline\": {ci_covers}, \"slo\": {}}}",
        audit.sampled_total,
        audit.audited_total,
        audit.recall,
        audit.ci_low,
        audit.ci_high,
        slo_report.to_json(),
    );
    splice_artifact(&flight_block, &audit_block);

    if smoke {
        if overhead_pct > 5.0 {
            eprintln!(
                "FAIL: flight sampling overhead {overhead_pct:.2}% exceeds the 5% smoke budget"
            );
            std::process::exit(1);
        }
        if !ci_covers {
            eprintln!(
                "FAIL: audited recall CI [{:.4}, {:.4}] does not cover exact offline recall {offline:.4}",
                audit.ci_low, audit.ci_high
            );
            std::process::exit(1);
        }
    }
    println!(
        "flight overhead {overhead_pct:.2}% (smoke budget 5%); audit CI covers offline: {ci_covers}"
    );
}
