//! Appendix D / Table 2 / Figure 14 — empirical complexity: build time and
//! search NDC (at a fixed recall) as the cardinality grows, with log-log
//! slope fits recovering each algorithm's exponents.
//!
//! Dataset characteristics follow Table 8: d=32, 10 clusters, sd=5; the
//! cardinality ladder is scaled to the harness (`WEAVESS_SCALE` multiplies
//! the base size).

use weavess_bench::datasets::NamedDataset;
use weavess_bench::report::{banner, f, Table};
use weavess_bench::runner::{at_target_recall, build_timed};
use weavess_bench::{env_scale, env_threads, select_algos};
use weavess_core::algorithms::Algo;
use weavess_data::synthetic::MixtureSpec;

const TARGET_RECALL: f64 = 0.99;

/// Least-squares slope of log(y) vs log(x).
fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.max(1e-12).ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = lx.iter().map(|a| (a - mx) * (a - mx)).sum();
    cov / var.max(1e-12)
}

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let algos = select_algos(Algo::all());
    // Table 8 ladder, scaled: 1x, 2x, 4x, 8x around a small base.
    let base_n = ((100_000.0 * scale) as usize).clamp(1_000, 100_000);
    let sizes: Vec<usize> = vec![base_n, base_n * 2, base_n * 4, base_n * 8];
    banner(&format!(
        "Complexity fits over n = {sizes:?} (d=32, 10 clusters, sd=5)"
    ));

    let sets: Vec<NamedDataset> = sizes
        .iter()
        .map(|&n| {
            let spec = MixtureSpec::table10(32, n, 10, 5.0, 200);
            NamedDataset::from_spec(&format!("n={n}"), &spec, threads)
        })
        .collect();

    let mut raw = Table::new(vec!["Alg", "n", "Build(s)", "NDC@0.9", "Recall"]);
    let mut fits = Table::new(vec!["Alg", "build exponent", "search exponent (NDC)"]);

    for &algo in &algos {
        let mut build_secs = Vec::new();
        let mut ndcs = Vec::new();
        for ds in &sets {
            let report = build_timed(algo, ds, threads, 1);
            let (pt, _) = at_target_recall(report.index.as_ref(), ds, 10, TARGET_RECALL);
            raw.row(vec![
                algo.name().to_string(),
                ds.base.len().to_string(),
                f(report.build_secs, 2),
                f(pt.ndc, 0),
                f(pt.recall, 3),
            ]);
            build_secs.push(report.build_secs.max(1e-6));
            ndcs.push(pt.ndc);
            eprintln!("{} at n={} done", algo.name(), ds.base.len());
        }
        let xs: Vec<f64> = sets.iter().map(|s| s.base.len() as f64).collect();
        fits.row(vec![
            algo.name().to_string(),
            f(loglog_slope(&xs, &build_secs), 2),
            f(loglog_slope(&xs, &ndcs), 2),
        ]);
    }

    banner("Figure 14 raw points");
    raw.print();
    raw.write_csv("fig14_complexity_points").expect("csv");
    banner("Table 2 (empirical): log-log exponents");
    fits.print();
    fits.write_csv("table02_complexity_fits").expect("csv");
    println!(
        "\nNote: build exponents compare against Table 2's |S|-powers; the\n\
         search exponent is the slope of NDC (the cost measure behind\n\
         speedup) at Recall@10 >= {TARGET_RECALL}."
    );
}
