//! Index-construction evaluation (§5.2) over all algorithms and all
//! stand-in datasets, from one build pass:
//!
//! - **Figure 5** — construction time;
//! - **Figure 6** — index size (MB);
//! - **Table 4** — graph quality (GQ), average out-degree (AD), weakly
//!   connected components (CC);
//! - **Table 11** — maximum/minimum out-degree.

use weavess_bench::datasets::real_world_standins;
use weavess_bench::report::{banner, f, mb, Table};
use weavess_bench::runner::{build_timed, degree_percentile, graph_report};
use weavess_bench::{env_scale, env_threads, select_algos};
use weavess_core::algorithms::Algo;
use weavess_data::ground_truth::exact_knn_graph;

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let algos = select_algos(Algo::all());
    let sets = weavess_bench::select_datasets(real_world_standins(scale, threads));
    banner(&format!(
        "Index construction evaluation: {} algorithms x {} datasets (scale={scale})",
        algos.len(),
        sets.len()
    ));

    let mut fig5 = Table::new(
        std::iter::once("Alg".to_string())
            .chain(sets.iter().map(|s| s.name.clone()))
            .collect::<Vec<_>>(),
    );
    let mut fig6 = fig5_clone_header(&sets, "Alg");
    let mut table4 = Table::new(vec!["Alg", "Dataset", "GQ", "AD", "CC"]);
    let mut table11 = Table::new(vec![
        "Alg", "Dataset", "D_max", "D_min", "D_p50", "D_p90", "D_p99",
    ]);
    let mut degree_hist = Table::new(vec!["Alg", "Dataset", "degree", "count"]);

    // Exact KNNG (K=10) per dataset for the GQ metric.
    let exacts: Vec<Vec<Vec<u32>>> = sets
        .iter()
        .map(|s| exact_knn_graph(&s.base, 10, threads))
        .collect();

    for &algo in &algos {
        let mut secs_row = vec![algo.name().to_string()];
        let mut size_row = vec![algo.name().to_string()];
        for (ds, exact) in sets.iter().zip(&exacts) {
            let report = build_timed(algo, ds, threads, 1);
            secs_row.push(f(report.build_secs, 2));
            size_row.push(mb(report.index_bytes));
            let g = graph_report(report.index.as_ref(), exact);
            table4.row(vec![
                algo.name().to_string(),
                ds.name.clone(),
                f(g.gq, 3),
                f(g.degrees.avg, 1),
                g.cc.to_string(),
            ]);
            table11.row(vec![
                algo.name().to_string(),
                ds.name.clone(),
                g.degrees.max.to_string(),
                g.degrees.min.to_string(),
                degree_percentile(&g.degree_histogram, 0.50).to_string(),
                degree_percentile(&g.degree_histogram, 0.90).to_string(),
                degree_percentile(&g.degree_histogram, 0.99).to_string(),
            ]);
            for (d, &count) in g.degree_histogram.iter().enumerate() {
                if count > 0 {
                    degree_hist.row(vec![
                        algo.name().to_string(),
                        ds.name.clone(),
                        d.to_string(),
                        count.to_string(),
                    ]);
                }
            }
            eprintln!(
                "built {} on {} in {:.2}s",
                algo.name(),
                ds.name,
                report.build_secs
            );
        }
        fig5.row(secs_row);
        fig6.row(size_row);
    }

    banner("Figure 5: index construction time (s)");
    fig5.print();
    fig5.write_csv("fig05_construction_time").expect("csv");
    banner("Figure 6: index size (MB)");
    fig6.print();
    fig6.write_csv("fig06_index_size").expect("csv");
    banner("Table 4: graph quality / average out-degree / connected components");
    table4.print();
    table4.write_csv("table04_graph_stats").expect("csv");
    banner("Table 11: out-degree extremes and percentiles");
    table11.print();
    table11.write_csv("table11_degrees").expect("csv");
    // Raw distribution for external plotting; only non-empty bins are
    // emitted, so the CSV stays compact even for hub-heavy graphs.
    degree_hist
        .write_csv("table11_degree_histogram")
        .expect("csv");
    eprintln!("wrote raw out-degree histogram CSV (table11_degree_histogram)");
}

fn fig5_clone_header(sets: &[weavess_bench::datasets::NamedDataset], first: &str) -> Table {
    Table::new(
        std::iter::once(first.to_string())
            .chain(sets.iter().map(|s| s.name.clone()))
            .collect::<Vec<_>>(),
    )
}
