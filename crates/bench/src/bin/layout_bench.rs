//! Memory-layout benchmark — the `BENCH_layout.json` artifact.
//!
//! Builds one NSG index, then re-hosts it on every cell of the
//! {original, BFS-reordered} × {split CSR+matrix, fused arena} matrix and
//! measures fixed-beam search with software prefetch off and on. The
//! layout layer's contract is that only the memory-access pattern moves:
//! every cell must return bit-identical results (ids and distance bits,
//! after mapping through the permutation) and identical NDC/hops to the
//! plain [`FlatIndex`] baseline — the table reports that identity check
//! next to each QPS figure.
//!
//! `--smoke` shrinks the dataset for CI. The host's
//! `available_parallelism` is recorded so QPS numbers read honestly.

use std::time::Instant;
use weavess_bench::report::{banner, f, Table};
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::components::SeedStrategy;
use weavess_core::index::{AnnIndex, FlatIndex, SearchContext};
use weavess_core::search::SearchStats;
use weavess_core::{LayoutIndex, NodeLayout};
use weavess_data::ground_truth::ground_truth;
use weavess_data::metrics::recall;
use weavess_data::prefetch::set_prefetch_enabled;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::{Dataset, Neighbor};

const SEED: u64 = 7;
const K: usize = 10;
const BEAM: usize = 64;

/// NSG seeds are build-time fixed (the medoid), so a structural clone is
/// exact. Anything else would mean the build changed underneath us.
fn clone_flat(idx: &FlatIndex) -> FlatIndex {
    let SeedStrategy::Fixed(v) = &idx.seeds else {
        panic!("NSG should carry fixed seeds");
    };
    FlatIndex {
        name: idx.name,
        graph: idx.graph.clone(),
        seeds: SeedStrategy::Fixed(v.clone()),
        router: idx.router.clone(),
    }
}

/// One full pass over the query set: results + accumulated stats.
fn run_all(idx: &dyn AnnIndex, ds: &Dataset, qs: &Dataset) -> (Vec<Vec<Neighbor>>, SearchStats) {
    let mut ctx = SearchContext::new(ds.len());
    let out = (0..qs.len() as u32)
        .map(|qi| idx.search(ds, qs.point(qi), K, BEAM, &mut ctx))
        .collect();
    (out, ctx.stats)
}

/// Repeats query passes until ~0.5s has elapsed and returns QPS.
fn measure_qps(idx: &dyn AnnIndex, ds: &Dataset, qs: &Dataset) -> f64 {
    let mut ctx = SearchContext::new(ds.len());
    // Warmup pass: fault in every page of the layout under test.
    for qi in 0..qs.len() as u32 {
        idx.search(ds, qs.point(qi), K, BEAM, &mut ctx);
    }
    let mut queries = 0usize;
    let t0 = Instant::now();
    loop {
        for qi in 0..qs.len() as u32 {
            std::hint::black_box(idx.search(ds, qs.point(qi), K, BEAM, &mut ctx));
        }
        queries += qs.len();
        if t0.elapsed().as_secs_f64() > 0.5 {
            break;
        }
    }
    queries as f64 / t0.elapsed().as_secs_f64()
}

fn identical(a: &[Vec<Neighbor>], b: &[Vec<Neighbor>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|(p, q)| p.id == q.id && p.dist.to_bits() == q.dist.to_bits())
        })
}

struct Cell {
    label: String,
    reordered: bool,
    layout: &'static str,
    prefetch: bool,
    qps: f64,
    recall_at_10: f64,
    ndc: u64,
    hops: u64,
    results_identical: bool,
    graph_bytes: usize,
    vector_bytes: usize,
    arena_bytes: usize,
    arena_padding_bytes: usize,
    permutation_bytes: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (n, dim, nq) = if smoke {
        (1_500, 16, 50)
    } else {
        (20_000, 48, 200)
    };
    let mode = if cfg!(feature = "paper-fidelity") {
        "paper-fidelity"
    } else {
        "default"
    };
    banner(&format!(
        "Memory layout bench (mode={mode}, n={n}, dim={dim}, beam={BEAM}, host cores={host})"
    ));

    let spec = MixtureSpec {
        intrinsic_dim: Some(12),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(dim, n, 8, 5.0, nq)
    };
    let (base, queries) = spec.generate();
    let gt = ground_truth(&base, &queries, K, host);

    let t0 = Instant::now();
    let flat = nsg::build(&base, &NsgParams::tuned(host, SEED));
    println!("built NSG in {:.1}s", t0.elapsed().as_secs_f64());

    // Baseline: the FlatIndex as every earlier PR measured it (prefetch
    // on — the global default).
    set_prefetch_enabled(true);
    let (baseline, baseline_stats) = run_all(&flat, &base, &queries);
    let baseline_qps = measure_qps(&flat, &base, &queries);
    let base_recall: f64 = (0..queries.len())
        .map(|i| {
            let ids: Vec<u32> = baseline[i].iter().map(|n| n.id).collect();
            recall(&ids, &gt[i])
        })
        .sum::<f64>()
        / queries.len() as f64;

    let mut table = Table::new(vec![
        "layout".to_string(),
        "prefetch".to_string(),
        "QPS".to_string(),
        "vs split".to_string(),
        "Recall@10".to_string(),
        "NDC".to_string(),
        "identical".to_string(),
    ]);
    let mut cells: Vec<Cell> = Vec::new();
    let mut split_baseline_qps = 0.0;
    for reordered in [false, true] {
        for layout in [NodeLayout::Split, NodeLayout::Fused] {
            let li = LayoutIndex::from_flat(clone_flat(&flat), &base, layout, reordered);
            let stats = li.layout_stats();
            for prefetch in [false, true] {
                set_prefetch_enabled(prefetch);
                let (results, search_stats) = run_all(&li, &base, &queries);
                let qps = measure_qps(&li, &base, &queries);
                let results_identical = identical(&results, &baseline)
                    && search_stats.ndc == baseline_stats.ndc
                    && search_stats.hops == baseline_stats.hops;
                assert!(
                    results_identical,
                    "layout={layout:?} reordered={reordered} prefetch={prefetch} \
                     diverged from the FlatIndex baseline"
                );
                let recall_at_10: f64 = (0..queries.len())
                    .map(|i| {
                        let ids: Vec<u32> = results[i].iter().map(|n| n.id).collect();
                        recall(&ids, &gt[i])
                    })
                    .sum::<f64>()
                    / queries.len() as f64;
                let label = format!(
                    "{}+{}",
                    if reordered { "reordered" } else { "original" },
                    if layout == NodeLayout::Fused {
                        "fused"
                    } else {
                        "split"
                    }
                );
                if !reordered && layout == NodeLayout::Split && !prefetch {
                    split_baseline_qps = qps;
                }
                table.row(vec![
                    label.clone(),
                    if prefetch { "on" } else { "off" }.to_string(),
                    f(qps, 0),
                    format!("{:.2}x", qps / split_baseline_qps),
                    f(recall_at_10, 4),
                    search_stats.ndc.to_string(),
                    results_identical.to_string(),
                ]);
                cells.push(Cell {
                    label,
                    reordered,
                    layout: if layout == NodeLayout::Fused {
                        "fused"
                    } else {
                        "split"
                    },
                    prefetch,
                    qps,
                    recall_at_10,
                    ndc: search_stats.ndc,
                    hops: search_stats.hops,
                    results_identical,
                    graph_bytes: stats.graph_bytes,
                    vector_bytes: stats.vector_bytes,
                    arena_bytes: stats.arena_bytes,
                    arena_padding_bytes: stats.arena_padding_bytes,
                    permutation_bytes: stats.permutation_bytes,
                });
            }
        }
    }
    set_prefetch_enabled(true);
    table.print();
    println!(
        "\nFlatIndex baseline: QPS={} Recall@10={} NDC={}",
        f(baseline_qps, 0),
        f(base_recall, 4),
        baseline_stats.ndc
    );

    let best = cells.iter().max_by(|a, b| a.qps.total_cmp(&b.qps)).unwrap();
    println!(
        "best cell: {} prefetch={} at {:.2}x the split/no-prefetch QPS",
        best.label,
        if best.prefetch { "on" } else { "off" },
        best.qps / split_baseline_qps
    );

    // JSON artifact, build_bench-style.
    let mut cell_json = String::new();
    for c in &cells {
        cell_json.push_str(&format!(
            "    {{\"label\": \"{}\", \"reordered\": {}, \"layout\": \"{}\", \"prefetch\": {}, \
             \"qps\": {:.1}, \"recall_at_10\": {:.4}, \"ndc\": {}, \"hops\": {}, \
             \"results_identical\": {}, \"graph_bytes\": {}, \"vector_bytes\": {}, \
             \"arena_bytes\": {}, \"arena_padding_bytes\": {}, \"permutation_bytes\": {}}},\n",
            c.label,
            c.reordered,
            c.layout,
            c.prefetch,
            c.qps,
            c.recall_at_10,
            c.ndc,
            c.hops,
            c.results_identical,
            c.graph_bytes,
            c.vector_bytes,
            c.arena_bytes,
            c.arena_padding_bytes,
            c.permutation_bytes,
        ));
    }
    cell_json.truncate(cell_json.trim_end_matches(",\n").len());
    let json = format!(
        "{{\n  \"bench\": \"layout\",\n  \"mode\": \"{mode}\",\n  \"smoke\": {smoke},\n  \
         \"host_available_parallelism\": {host},\n  \
         \"host_features\": \"{}\",\n  \"kernel_tier\": \"{}\",\n  \"n\": {n},\n  \"dim\": {dim},\n  \
         \"k\": {K},\n  \"beam\": {BEAM},\n  \"baseline\": {{\"qps\": {baseline_qps:.1}, \
         \"recall_at_10\": {base_recall:.4}, \"ndc\": {}}},\n  \"cells\": [\n{cell_json}\n  ]\n}}\n",
        weavess_data::host_features(),
        weavess_data::KernelTier::active(),
        baseline_stats.ndc
    );
    std::fs::write("BENCH_layout.json", &json).expect("write BENCH_layout.json");
    println!("\nwrote BENCH_layout.json");
}
