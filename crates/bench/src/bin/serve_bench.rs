//! Sharded serving-tier benchmark — the `BENCH_serve.json` artifact.
//!
//! Two halves, matching the tier's two promises:
//!
//! 1. **Determinism.** With an exact per-shard configuration (every shard
//!    point seeded, beam ≥ shard size) the scatter-gather results at 1,
//!    2, 4, and 8 shards must be bit-identical to the unsharded engine,
//!    for all five search routines — the invariant
//!    `crates/core/tests/sharding.rs` certifies; this binary re-checks it
//!    on its own data and records `results_identical` in the artifact.
//! 2. **Serving under load.** A realistic configuration (NSG shards,
//!    finite beam) on the shared clustered + Zipf-skewed-query workload
//!    ([`weavess_bench::workload::ZipfWorkload`], the one `adapt_bench`
//!    mines), behind the admission queue, driven by an *open-loop*
//!    arrival process: inter-arrival gaps are drawn `-ln(U)/λ` from a
//!    seeded RNG (Poisson-like), client threads fire at the schedule
//!    regardless of completions, and latency is measured from the
//!    *scheduled* arrival — so queueing delay under overload is charged
//!    to the server, not silently absorbed (no coordinated omission).
//!    The sweep reports achieved QPS and p50/p95/p99 per offered rate,
//!    plus queue coalescing stats and the fleet's merged metrics.
//!
//! `--smoke` shrinks everything for CI and exits non-zero if the
//! determinism check fails.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use weavess_bench::report::{banner, f, Table};
use weavess_bench::workload::ZipfWorkload;
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::components::seeds::SeedStrategy;
use weavess_core::index::FlatIndex;
use weavess_core::locality::{LayoutIndex, NodeLayout};
use weavess_core::search::Router;
use weavess_core::serve::{EngineOptions, QueryEngine};
use weavess_core::shard::{BatchQueue, QueueOptions, ShardSet, ShardedEngine};
use weavess_core::telemetry::Histogram;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::base::exact_knng;

const K: usize = 10;
const PARTITION_SEED: u64 = 0xD15C0;
const ARRIVAL_SEED: u64 = 0xA221;

fn identical(a: &[Vec<Neighbor>], b: &[Vec<Neighbor>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|(p, q)| p.id == q.id && p.dist.to_bits() == q.dist.to_bits())
        })
}

/// The exact per-shard configuration: all points seeded, so any router
/// with beam ≥ shard size returns the true local top-k.
fn exact_flat(ds: &Dataset, router: &Router) -> FlatIndex {
    FlatIndex {
        name: "exact",
        graph: exact_knng(ds, 4, 1),
        seeds: SeedStrategy::Fixed((0..ds.len() as u32).collect()),
        router: router.clone(),
    }
}

/// Checks merged-vs-unsharded bit identity for one router across shard
/// counts; returns false (and prints the first divergence) on mismatch.
fn identity_check(base: &Dataset, queries: &Dataset, router: &Router, counts: &[usize]) -> bool {
    let beam = base.len();
    let flat = exact_flat(base, router);
    let index = LayoutIndex::try_from_flat(flat, base, NodeLayout::Split, false)
        .expect("unsharded exact index");
    let unsharded = QueryEngine::with_options(
        &index,
        base,
        EngineOptions {
            workers: 2,
            seed: 42,
        },
    );
    let reference = unsharded.search_batch(queries, K, beam).results;
    for &shards in counts {
        let set = ShardSet::build(
            base,
            shards,
            PARTITION_SEED,
            NodeLayout::Split,
            false,
            0,
            |ds: &Dataset, _| exact_flat(ds, router),
        )
        .expect("shard build");
        let engine = ShardedEngine::with_options(
            &set,
            EngineOptions {
                workers: 2,
                seed: 42,
            },
        );
        let merged = engine.search_batch(queries, K, beam).results;
        if !identical(&merged, &reference) {
            eprintln!("DIVERGENCE: {router:?} at {shards} shards");
            return false;
        }
    }
    true
}

struct SweepPoint {
    offered_qps: f64,
    achieved_qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    queries: u64,
    batches: u64,
    mean_batch: f64,
}

/// One open-loop run at `offered_qps`: `n_arrivals` scheduled arrivals
/// with exponential gaps, fired by `clients` threads (thread `j` owns
/// arrivals `i ≡ j mod clients`), each blocking on the queue and charging
/// latency from the scheduled instant.
fn open_loop_run(
    queue: &BatchQueue<'_, ShardedEngine<'_>>,
    queries: &Dataset,
    offered_qps: f64,
    n_arrivals: usize,
    clients: usize,
) -> SweepPoint {
    let mut rng = StdRng::seed_from_u64(ARRIVAL_SEED ^ offered_qps.to_bits());
    let mut schedule = Vec::with_capacity(n_arrivals);
    let mut t = 0.0f64;
    for _ in 0..n_arrivals {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / offered_qps;
        schedule.push(Duration::from_secs_f64(t));
    }

    let before = queue.stats();
    let start = Instant::now();
    let hists: Vec<Histogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let schedule = &schedule;
                scope.spawn(move || {
                    let mut lat = Histogram::new();
                    let nq = queries.len() as u32;
                    for (i, &sched) in schedule.iter().enumerate().skip(c).step_by(clients) {
                        if let Some(wait) = sched.checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let qi = i as u32 % nq;
                        std::hint::black_box(queue.submit(queries.point(qi)));
                        // From the *scheduled* arrival: late starts (a
                        // blocked client) count against the server.
                        let done = start.elapsed();
                        lat.record(done.saturating_sub(sched).as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();
    let after = queue.stats();

    let mut latency = Histogram::new();
    for h in &hists {
        latency.merge(h);
    }
    let queries_run = after.queries_total - before.queries_total;
    let batches = after.batches_total - before.batches_total;
    SweepPoint {
        offered_qps,
        achieved_qps: n_arrivals as f64 / wall.as_secs_f64().max(1e-12),
        // `percentile` takes p in [0, 1]; the previous 50.0/95.0/99.0
        // clamped to 1.0 and silently reported the max three times over.
        p50_us: latency.percentile(0.50) as f64 / 1_000.0,
        p95_us: latency.percentile(0.95) as f64 / 1_000.0,
        p99_us: latency.percentile(0.99) as f64 / 1_000.0,
        queries: queries_run,
        batches,
        mean_batch: queries_run as f64 / (batches as f64).max(1.0),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mode = if cfg!(feature = "paper-fidelity") {
        "paper-fidelity"
    } else {
        "default"
    };

    // --- Half 1: the determinism invariant, exact shards. ---
    let (n_exact, nq_exact) = if smoke { (600, 16) } else { (2_000, 48) };
    let (exact_base, exact_queries) = MixtureSpec::table10(16, n_exact, 3, 5.0, nq_exact)
        .with_seed(99)
        .generate();
    let shard_counts = [1usize, 2, 4, 8];
    let routers = [
        Router::BestFirst,
        Router::Range { epsilon: 0.1 },
        Router::Backtrack { extra: 4 },
        Router::Guided,
        Router::TwoStage {
            stage1_beam_frac: 1.0,
        },
    ];
    banner(&format!(
        "Sharded serving bench (mode={mode}, host cores={host}) — determinism: \
         n={n_exact}, {} routers x shards {:?}",
        routers.len(),
        shard_counts
    ));
    let mut results_identical = true;
    let mut id_table = Table::new(vec!["router", "shards checked", "bit-identical"]);
    for router in &routers {
        let ok = identity_check(&exact_base, &exact_queries, router, &shard_counts);
        results_identical &= ok;
        id_table.row(vec![
            format!("{router:?}"),
            format!("{shard_counts:?}"),
            ok.to_string(),
        ]);
    }
    id_table.print();

    // --- Half 2: open-loop QPS sweep on a realistic fleet, driven by the
    // skewed serving workload (balanced clustered data, Zipf-hot queries).
    let (n, dim, nq, shards) = if smoke {
        (1_500, 16, 50, 2)
    } else {
        (12_000, 32, 200, 4)
    };
    const SKEW: f64 = 1.5;
    let (base, queries) = ZipfWorkload::new(n, dim, 8, SKEW, nq, 7).generate();
    banner(&format!(
        "Building {shards}-shard NSG fleet (n={n}, dim={dim}, query skew Zipf({SKEW}))"
    ));
    let t0 = Instant::now();
    let set = ShardSet::build(
        &base,
        shards,
        PARTITION_SEED,
        NodeLayout::Fused,
        true,
        0,
        |ds: &Dataset, s| nsg::build(ds, &NsgParams::tuned(host, 7 + s as u64)),
    )
    .expect("fleet build");
    let build_secs = t0.elapsed().as_secs_f64();
    println!(
        "built in {} s, {} points, {:.1} MiB of index",
        f(build_secs, 2),
        set.total_points(),
        set.memory_bytes() as f64 / (1024.0 * 1024.0)
    );
    let engine = ShardedEngine::with_options(
        &set,
        EngineOptions {
            workers: (host / shards).max(1),
            seed: 42,
        },
    );
    let queue_opts = QueueOptions {
        max_batch: 32,
        max_delay: Duration::from_millis(1),
        k: K,
        beam: 64,
    };
    let queue = BatchQueue::new(&engine, queue_opts.clone());

    let rates: &[f64] = if smoke {
        &[200.0, 500.0]
    } else {
        &[500.0, 1_000.0, 2_000.0, 4_000.0]
    };
    let clients = (host * 2).clamp(4, 32);
    // Warm the shard engines and the queue path before timing.
    for qi in 0..queries.len().min(16) as u32 {
        std::hint::black_box(queue.submit(queries.point(qi)));
    }

    banner(&format!(
        "Open-loop sweep (Poisson-like arrivals, seed {ARRIVAL_SEED:#x}, {clients} clients, \
         max_batch={}, max_delay={:?})",
        queue_opts.max_batch, queue_opts.max_delay
    ));
    let mut sweep = Vec::new();
    let mut sweep_table = Table::new(vec![
        "offered QPS",
        "achieved QPS",
        "p50 us",
        "p95 us",
        "p99 us",
        "batches",
        "mean batch",
    ]);
    for &rate in rates {
        // ~1 second of traffic per point, capped so smoke stays quick.
        let n_arrivals = (rate as usize).clamp(50, 4_000);
        let point = open_loop_run(&queue, &queries, rate, n_arrivals, clients);
        sweep_table.row(vec![
            f(point.offered_qps, 0),
            f(point.achieved_qps, 0),
            f(point.p50_us, 0),
            f(point.p95_us, 0),
            f(point.p99_us, 0),
            point.batches.to_string(),
            f(point.mean_batch, 2),
        ]);
        sweep.push(point);
    }
    sweep_table.print();

    let fleet = engine.fleet_report();
    banner("Fleet metrics (Prometheus, first lines)");
    for line in fleet.to_prometheus().lines().take(8) {
        println!("  {line}");
    }

    // --- Artifact. ---
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "{{\"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \"p50_us\": {:.1}, \
                 \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"queries\": {}, \"batches\": {}, \
                 \"mean_batch\": {:.2}}}",
                p.offered_qps,
                p.achieved_qps,
                p.p50_us,
                p.p95_us,
                p.p99_us,
                p.queries,
                p.batches,
                p.mean_batch,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{mode}\",\n  \"smoke\": {smoke},\n  \
         \"host_available_parallelism\": {host},\n  \
         \"host_features\": \"{}\",\n  \"kernel_tier\": \"{}\",\n  \
         \"determinism\": {{\"n\": {n_exact}, \"queries\": {nq_exact}, \
         \"partition_seed\": {PARTITION_SEED}, \"shard_counts\": [1, 2, 4, 8], \
         \"routers\": {}, \"results_identical\": {results_identical}}},\n  \
         \"fleet\": {{\"n\": {n}, \"dim\": {dim}, \"shards\": {shards}, \
         \"workload\": \"zipf\", \"skew\": {SKEW}, \
         \"algo\": \"NSG\", \"build_secs\": {build_secs:.2}, \
         \"workers_per_shard\": {}, \"k\": {K}, \"beam\": {}}},\n  \
         \"queue\": {{\"max_batch\": {}, \"max_delay_us\": {}, \"clients\": {clients}, \
         \"arrival_seed\": {ARRIVAL_SEED}}},\n  \
         \"sweep\": [\n    {}\n  ],\n  \"fleet_metrics\": {}\n}}\n",
        weavess_data::host_features(),
        weavess_data::KernelTier::active(),
        routers.len(),
        (host / shards).max(1),
        queue_opts.beam,
        queue_opts.max_batch,
        queue_opts.max_delay.as_micros(),
        sweep_json.join(",\n    "),
        fleet.to_json(),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    if !results_identical {
        eprintln!("FAIL: sharded results diverged from the unsharded engine");
        std::process::exit(1);
    }
    println!(
        "determinism: {} routers bit-identical across shards {:?}",
        routers.len(),
        shard_counts
    );
}
