//! Appendix J / Table 12 — scalability over the synthetic-dataset axes:
//! dimensionality (8/32/128), cardinality (¼x/1x/4x), cluster count
//! (1/10/100), and per-cluster standard deviation (1/5/10). Reports
//! construction time (CT) and QPS at the target recall for every
//! algorithm on every variant.

use weavess_bench::datasets::NamedDataset;
use weavess_bench::report::{banner, f, Table};
use weavess_bench::runner::{at_target_recall, build_timed};
use weavess_bench::{env_scale, env_threads, select_algos};
use weavess_core::algorithms::Algo;
use weavess_data::synthetic::MixtureSpec;

const TARGET_RECALL: f64 = 0.99;

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let algos = select_algos(Algo::all());
    let base_n = ((100_000.0 * scale) as usize).clamp(1_000, 100_000);
    let nq = (base_n / 20).clamp(100, 1_000);

    // (axis, label, spec)
    let variants: Vec<(&str, String, MixtureSpec)> = vec![
        (
            "dim",
            "d=8".into(),
            MixtureSpec::table10(8, base_n, 10, 5.0, nq),
        ),
        (
            "dim",
            "d=32".into(),
            MixtureSpec::table10(32, base_n, 10, 5.0, nq),
        ),
        (
            "dim",
            "d=128".into(),
            MixtureSpec::table10(128, base_n, 10, 5.0, nq),
        ),
        (
            "cardinality",
            format!("n={}", base_n / 4),
            MixtureSpec::table10(32, base_n / 4, 10, 5.0, nq / 2),
        ),
        (
            "cardinality",
            format!("n={base_n}"),
            MixtureSpec::table10(32, base_n, 10, 5.0, nq),
        ),
        (
            "cardinality",
            format!("n={}", base_n * 4),
            MixtureSpec::table10(32, base_n * 4, 10, 5.0, nq),
        ),
        (
            "clusters",
            "c=1".into(),
            MixtureSpec::table10(32, base_n, 1, 5.0, nq),
        ),
        (
            "clusters",
            "c=10".into(),
            MixtureSpec::table10(32, base_n, 10, 5.0, nq),
        ),
        (
            "clusters",
            "c=100".into(),
            MixtureSpec::table10(32, base_n, 100, 5.0, nq),
        ),
        (
            "std",
            "sd=1".into(),
            MixtureSpec::table10(32, base_n, 10, 1.0, nq),
        ),
        (
            "std",
            "sd=5".into(),
            MixtureSpec::table10(32, base_n, 10, 5.0, nq),
        ),
        (
            "std",
            "sd=10".into(),
            MixtureSpec::table10(32, base_n, 10, 10.0, nq),
        ),
    ];

    banner(&format!(
        "Table 12: scalability over d / n / clusters / sd (base n={base_n})"
    ));
    let mut t = Table::new(vec!["Axis", "Variant", "Alg", "CT(s)", "QPS@0.9", "Recall"]);
    for (axis, label, spec) in &variants {
        let ds = NamedDataset::from_spec(label, spec, threads);
        for &algo in &algos {
            let report = build_timed(algo, &ds, threads, 1);
            let (pt, reached) = at_target_recall(report.index.as_ref(), &ds, 10, TARGET_RECALL);
            t.row(vec![
                axis.to_string(),
                label.clone(),
                algo.name().to_string(),
                f(report.build_secs, 2),
                if reached {
                    f(pt.qps, 0)
                } else {
                    format!("{}*", f(pt.qps, 0))
                },
                f(pt.recall, 3),
            ]);
            eprintln!("{} on {label} done", algo.name());
        }
    }
    t.print();
    t.write_csv("table12_scalability").expect("csv");
    println!("('*' = recall target not reached; QPS at the best achieved recall)");
}
