//! Table 7 — scenario recommendations, recomputed from measurements on
//! the simple/hard dataset pair rather than copied from the paper:
//!
//! - S1 frequent updates → smallest construction time + index size;
//! - S2 rapid KNNG construction → highest GQ per construction second;
//! - S3 external memory → smallest query path length at target recall;
//! - S4 hard datasets → best speedup at target recall on the hard set;
//! - S5 simple datasets → best speedup at target recall on the simple set;
//! - S6 GPU (cache-bound) → smallest candidate set at target recall;
//! - S7 limited memory → smallest average degree + memory overhead.

use weavess_bench::datasets::simple_and_hard;
use weavess_bench::report::{banner, Table};
use weavess_bench::runner::{at_target_recall, build_timed, graph_report};
use weavess_bench::{env_scale, env_threads, select_algos};
use weavess_core::algorithms::Algo;
use weavess_data::ground_truth::exact_knn_graph;

const K: usize = 10;
const TARGET_RECALL: f64 = 0.99;

struct Row {
    name: &'static str,
    dataset: String,
    build_secs: f64,
    bytes: usize,
    gq: f64,
    ad: f64,
    cs: usize,
    pl: f64,
    speedup: f64,
    reached: bool,
}

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let algos = select_algos(Algo::all());
    let sets = simple_and_hard(scale, threads);
    banner(&format!("Table 7 inputs (scale={scale})"));

    let mut rows: Vec<Row> = Vec::new();
    for ds in &sets {
        let exact = exact_knn_graph(&ds.base, 10, threads);
        for &algo in &algos {
            let report = build_timed(algo, ds, threads, 1);
            let g = graph_report(report.index.as_ref(), &exact);
            let (pt, reached) = at_target_recall(report.index.as_ref(), ds, K, TARGET_RECALL);
            rows.push(Row {
                name: algo.name(),
                dataset: ds.name.clone(),
                build_secs: report.build_secs,
                bytes: report.index_bytes,
                gq: g.gq,
                ad: g.degrees.avg,
                cs: pt.beam,
                pl: pt.hops,
                speedup: pt.speedup,
                reached,
            });
            eprintln!("{} on {} done", algo.name(), ds.name);
        }
    }

    let top3 = |scored: Vec<(&str, f64)>| -> String {
        // Aggregate per algorithm (mean over datasets), then rank.
        let mut agg: Vec<(&str, f64, usize)> = Vec::new();
        for (name, v) in scored {
            match agg.iter_mut().find(|(n, _, _)| *n == name) {
                Some(slot) => {
                    slot.1 += v;
                    slot.2 += 1;
                }
                None => agg.push((name, v, 1)),
            }
        }
        let mut means: Vec<(&str, f64)> =
            agg.iter().map(|&(n, sum, c)| (n, sum / c as f64)).collect();
        means.sort_by(|a, b| b.1.total_cmp(&a.1));
        means
            .iter()
            .take(3)
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let on = |pred: &dyn Fn(&Row) -> bool, score: &dyn Fn(&Row) -> f64| -> Vec<(&str, f64)> {
        rows.iter()
            .filter(|r| pred(r))
            .map(|r| (r.name, score(r)))
            .collect()
    };
    let any = |_: &Row| true;
    let reached = |r: &Row| r.reached;
    let hard = |r: &Row| r.dataset == "GIST1M" && r.reached;
    let simple = |r: &Row| r.dataset == "SIFT1M" && r.reached;

    let mut t = Table::new(vec!["Scenario", "Measured top-3", "Paper (Table 7)"]);
    t.row(vec![
        "S1 frequent updates".to_string(),
        top3(on(&any, &|r| {
            -(r.build_secs + r.bytes as f64 / 50_000_000.0)
        })),
        "NSG, NSSG".to_string(),
    ]);
    t.row(vec![
        "S2 rapid KNNG construction".to_string(),
        top3(on(&any, &|r| r.gq / r.build_secs.max(1e-3))),
        "KGraph, EFANNA, DPG".to_string(),
    ]);
    t.row(vec![
        "S3 external memory (small PL)".to_string(),
        top3(on(&reached, &|r| -r.pl)),
        "DPG, HCNNG".to_string(),
    ]);
    t.row(vec![
        "S4 hard datasets".to_string(),
        top3(on(&hard, &|r| r.speedup)),
        "HNSW, NSG, HCNNG".to_string(),
    ]);
    t.row(vec![
        "S5 simple datasets".to_string(),
        top3(on(&simple, &|r| r.speedup)),
        "DPG, NSG, HCNNG, NSSG".to_string(),
    ]);
    t.row(vec![
        "S6 GPU / small candidate set".to_string(),
        top3(on(&reached, &|r| -(r.cs as f64))),
        "NGT".to_string(),
    ]);
    t.row(vec![
        "S7 limited memory".to_string(),
        top3(on(&any, &|r| -(r.ad + r.bytes as f64 / 10_000_000.0))),
        "NSG, NSSG".to_string(),
    ]);
    banner("Table 7: scenario recommendations (measured vs paper)");
    t.print();
    t.write_csv("table07_recommendations").expect("csv");
}
