//! Trace-driven adaptation benchmark — the `BENCH_adapt.json` artifact.
//!
//! The closed observation loop, end to end, on the skewed serving
//! workload ([`weavess_bench::workload::ZipfWorkload`]):
//!
//! 1. build an NSG index and re-host it on the fused, BFS-reordered
//!    layout (the serving configuration);
//! 2. find the baseline operating point: the smallest scheduled beam
//!    reaching the target recall;
//! 3. record a *trace* query set — a large held-out sample from the same
//!    Zipf demand (production traffic), disjoint from the evaluation
//!    queries — at that beam, folding the routes into a
//!    [`weavess_core::telemetry::TraceAggregate`];
//! 4. adapt (catapult shortcut edges + hub-aware entry refresh) and
//!    re-measure: recall parity at the *fixed* baseline beam, then the
//!    adapted index's own iso-recall operating point — the mean-hops/NDC
//!    reductions and p99 are the artifact's headline numbers;
//! 5. certify determinism: the adapted index's serialized bytes must be
//!    identical when mining runs at 1, 2, and 8 threads.
//!
//! `--smoke` shrinks the workload for CI. The exit code is non-zero when
//! the determinism digests diverge or adapted recall at the fixed beam
//! regresses by more than 0.001 — in smoke and full runs alike.

use weavess_bench::datasets::NamedDataset;
use weavess_bench::report::{banner, f, Table};
use weavess_bench::runner::{default_beams, run_at_beam, run_batch_at_beam, SweepPoint};
use weavess_bench::workload::ZipfWorkload;
use weavess_bench::{env_query_threads, env_threads};
use weavess_core::adapt::AdaptParams;
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::components::seeds::SeedStrategy;
use weavess_core::index::{AnnIndex, FlatIndex, SearchContext};
use weavess_core::locality::{LayoutIndex, NodeLayout};
use weavess_core::persist::write_layout_index;
use weavess_core::telemetry::{RecordingTracer, TraceAggregate};

const K: usize = 10;
const TARGET_RECALL: f64 = 0.85;
const RECALL_TOLERANCE: f64 = 0.001;
const MINING_THREADS: [usize; 3] = [1, 2, 8];

/// NSG's seed strategy is `Fixed`, so the built index clones exactly —
/// what lets one build feed the baseline, the adapted copy, and the
/// per-thread-count determinism replicas.
fn clone_flat(idx: &FlatIndex) -> FlatIndex {
    let SeedStrategy::Fixed(v) = &idx.seeds else {
        panic!("NSG seeds are Fixed");
    };
    FlatIndex {
        name: idx.name,
        graph: idx.graph.clone(),
        seeds: SeedStrategy::Fixed(v.clone()),
        router: idx.router.clone(),
    }
}

/// FNV-1a over the index's serialized bytes (the exact on-disk WVSL
/// stream, overlay segment included).
fn index_digest(index: &LayoutIndex) -> u64 {
    let mut bytes = Vec::new();
    write_layout_index(&mut bytes, index).expect("serialize index");
    let mut d: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        d ^= b as u64;
        d = d.wrapping_mul(0x0000_0100_0000_01b3);
    }
    d
}

/// Records every trace query's route at `beam` and folds it into an
/// aggregate (index id space — the ids `search_traced` reports for a
/// reordered layout). The trace set needs no ground truth, only routes.
fn record_traces(
    index: &LayoutIndex,
    base: &weavess_data::Dataset,
    traffic: &weavess_data::Dataset,
    beam: usize,
) -> TraceAggregate {
    let mut agg = TraceAggregate::new(base.len());
    let mut ctx = SearchContext::new(base.len());
    let mut tracer = RecordingTracer::new();
    for qi in 0..traffic.len() as u32 {
        tracer.clear();
        index.search_traced(base, traffic.point(qi), K, beam, &mut ctx, &mut tracer);
        agg.absorb(&tracer);
    }
    agg
}

/// The smallest scheduled beam whose recall reaches `target`, or the
/// best-recall point when nothing does.
fn at_recall(index: &dyn AnnIndex, ds: &NamedDataset, target: f64) -> (SweepPoint, bool) {
    let mut best: Option<SweepPoint> = None;
    for &beam in &default_beams(K) {
        let p = run_at_beam(index, ds, K, beam);
        if p.recall >= target {
            return (p, true);
        }
        if best.is_none_or(|b| p.recall > b.recall) {
            best = Some(p);
        }
    }
    (best.expect("at least one beam"), false)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = env_threads();
    let query_threads = env_query_threads();
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mode = if cfg!(feature = "paper-fidelity") {
        "paper-fidelity"
    } else {
        "default"
    };

    // The skewed workload: balanced clustered base, Zipf-hot queries.
    // Traces come from a much larger held-out sample of the same demand
    // (the production traffic); evaluation queries stay unseen by mining.
    let (n, dim, clusters, nq, n_trace) = if smoke {
        (2_000, 16, 8, 150, 1_500)
    } else {
        (12_000, 32, 8, 400, 6_000)
    };
    const SKEW: f64 = 1.5;
    const TRACE_SEED: u64 = 1_000_003;
    let workload = ZipfWorkload::new(n, dim, clusters, SKEW, nq, 7);
    let (base, queries) = workload.generate();
    let traffic = workload.extra_queries(n_trace, TRACE_SEED);
    banner(&format!(
        "Adaptation bench (mode={mode}, host cores={host}): n={n}, dim={dim}, \
         {clusters} clusters, Zipf({SKEW}), {n_trace} trace + {nq} eval queries"
    ));
    let ds = NamedDataset::from_pair("zipf", base, queries, threads);

    let t0 = std::time::Instant::now();
    let flat = nsg::build(&ds.base, &NsgParams::tuned(threads, 1));
    let build_secs = t0.elapsed().as_secs_f64();
    let baseline = LayoutIndex::from_flat(clone_flat(&flat), &ds.base, NodeLayout::Fused, true);
    println!("NSG built in {} s", f(build_secs, 2));

    // Baseline operating point.
    let (pt_base, reached) = at_recall(&baseline, &ds, TARGET_RECALL);
    if !reached {
        eprintln!(
            "note: baseline recall ceiling {:.4} below target {TARGET_RECALL}; \
             using its best beam",
            pt_base.recall
        );
    }
    println!(
        "baseline: beam={} recall={} hops={} ndc={}",
        pt_base.beam,
        f(pt_base.recall, 4),
        f(pt_base.hops, 1),
        f(pt_base.ndc, 0)
    );

    // Record the production traffic at the baseline operating point.
    let t1 = std::time::Instant::now();
    let agg = record_traces(&baseline, &ds.base, &traffic, pt_base.beam);
    let trace_secs = t1.elapsed().as_secs_f64();
    println!(
        "traced {} routes in {} s: {} candidate pairs, {} KiB aggregate",
        agg.routes(),
        f(trace_secs, 2),
        agg.num_pairs(),
        agg.memory_bytes() / 1024
    );

    // Adapt a copy; the baseline stays live for the before-side numbers.
    let params = AdaptParams {
        min_gap: 2.0,
        min_traffic: 3,
        max_extra_degree: 4,
        refresh_entries: 12,
        ..AdaptParams::default()
    };
    let mut adapted = LayoutIndex::from_flat(clone_flat(&flat), &ds.base, NodeLayout::Fused, true);
    let t2 = std::time::Instant::now();
    let report = adapted.adapt(&ds.base, &agg, &params).expect("adapt");
    let adapt_secs = t2.elapsed().as_secs_f64();
    println!(
        "adapted in {} s: {} candidates -> {} catapult edges on {} vertices, {} entries",
        f(adapt_secs, 2),
        report.candidates,
        report.edges_added,
        report.vertices_extended,
        report.entries.len()
    );

    // WEAVESS_ADAPT_DEBUG=1 prints the full recall/hops curve of both
    // sides — the view that shows *where* on the beam schedule adaptation
    // pays (low-beam operating points) and where it washes out.
    if std::env::var("WEAVESS_ADAPT_DEBUG").is_ok() {
        for &b in &default_beams(K) {
            let pb = run_at_beam(&baseline, &ds, K, b);
            let pa = run_at_beam(&adapted, &ds, K, b);
            println!(
                "beam={b}: base recall {:.4} hops {:.1} | adapted recall {:.4} hops {:.1}",
                pb.recall, pb.hops, pa.recall, pa.hops
            );
        }
    }
    // WEAVESS_ADAPT_DEBUG=1 prints the full recall/hops curve of both
    // sides — the view that shows *where* on the beam schedule adaptation
    // pays (low-beam operating points) and where it washes out.
    if std::env::var("WEAVESS_ADAPT_DEBUG").is_ok() {
        for &b in &default_beams(K) {
            let pb = run_at_beam(&baseline, &ds, K, b);
            let pa = run_at_beam(&adapted, &ds, K, b);
            println!(
                "beam={b}: base recall {:.4} hops {:.1} | adapted recall {:.4} hops {:.1}",
                pb.recall, pb.hops, pa.recall, pa.hops
            );
        }
    }
    if std::env::var("WEAVESS_ADAPT_DEBUG").is_ok() {
        for &e in &report.entries {
            let ep = ds.base.point(e);
            let cluster = (0..clusters as u32)
                .min_by(|&a, &b| {
                    ds.base
                        .dist_to(ep, a)
                        .partial_cmp(&ds.base.dist_to(ep, b))
                        .unwrap()
                })
                .unwrap();
            println!("dbge entry={e} cluster={cluster} terminals_visible_in_original_space");
        }
    }
    // Recall parity at the *fixed* baseline beam.
    let fixed = run_at_beam(&adapted, &ds, K, pt_base.beam);
    let regression = pt_base.recall - fixed.recall;
    let parity_ok = regression <= RECALL_TOLERANCE;

    // The adapted index's own iso-recall operating point.
    let (pt_adapt, _) = at_recall(&adapted, &ds, pt_base.recall - RECALL_TOLERANCE);
    let hops_reduction = 1.0 - pt_adapt.hops / pt_base.hops.max(1e-9);
    let ndc_reduction = 1.0 - pt_adapt.ndc / pt_base.ndc.max(1e-9);

    // Threaded serving latency at each side's operating point.
    let sp_base = run_batch_at_beam(&baseline, &ds, K, pt_base.beam, query_threads);
    let sp_adapt = run_batch_at_beam(&adapted, &ds, K, pt_adapt.beam, query_threads);

    let mut table = Table::new(vec![
        "side",
        "beam",
        "Recall@10",
        "hops",
        "NDC",
        "QPS(1t)",
        "p99(ms)",
    ]);
    table.row(vec![
        "base".into(),
        pt_base.beam.to_string(),
        f(pt_base.recall, 4),
        f(pt_base.hops, 1),
        f(pt_base.ndc, 0),
        f(pt_base.qps, 0),
        f(sp_base.p99_ms, 3),
    ]);
    table.row(vec![
        "adapted".into(),
        pt_adapt.beam.to_string(),
        f(pt_adapt.recall, 4),
        f(pt_adapt.hops, 1),
        f(pt_adapt.ndc, 0),
        f(pt_adapt.qps, 0),
        f(sp_adapt.p99_ms, 3),
    ]);
    banner("Before vs after at iso-recall");
    table.print();
    println!(
        "mean hops {}%, NDC {}%, overlay edges {}, recall at fixed beam {} -> {}",
        f(-100.0 * hops_reduction, 1),
        f(-100.0 * ndc_reduction, 1),
        adapted.overlay_edges(),
        f(pt_base.recall, 4),
        f(fixed.recall, 4),
    );

    // Determinism: byte-identical adapted index at 1/2/8 mining threads.
    let digests: Vec<u64> = MINING_THREADS
        .iter()
        .map(|&t| {
            let mut idx =
                LayoutIndex::from_flat(clone_flat(&flat), &ds.base, NodeLayout::Fused, true);
            idx.adapt(
                &ds.base,
                &agg,
                &AdaptParams {
                    threads: t,
                    ..params.clone()
                },
            )
            .expect("adapt");
            index_digest(&idx)
        })
        .collect();
    let identical = digests.windows(2).all(|w| w[0] == w[1]);
    println!(
        "determinism: digests {:016x?} at {MINING_THREADS:?} mining threads -> identical={identical}",
        digests
    );

    let json = format!(
        "{{\n  \"bench\": \"adapt\",\n  \"mode\": \"{mode}\",\n  \"smoke\": {smoke},\n  \
         \"host_available_parallelism\": {host},\n  \
         \"host_features\": \"{}\",\n  \"kernel_tier\": \"{}\",\n  \
         \"workload\": {{\"n\": {n}, \"dim\": {dim}, \"clusters\": {clusters}, \
         \"skew\": {SKEW}, \"queries\": {nq}, \"seed\": 7}},\n  \
         \"build\": {{\"algo\": \"NSG\", \"layout\": \"fused+reorder\", \
         \"build_secs\": {build_secs:.2}}},\n  \
         \"traces\": {{\"routes\": {}, \"pairs\": {}, \"aggregate_bytes\": {}, \
         \"beam\": {}}},\n  \
         \"adapt\": {{\"min_gap\": {}, \"min_traffic\": {}, \"max_extra_degree\": {}, \"max_reach\": {}, \
         \"refresh_entries\": {}, \"candidates\": {}, \"edges_added\": {}, \
         \"vertices_extended\": {}, \"entries\": {}, \"adapt_secs\": {adapt_secs:.3}}},\n  \
         \"baseline\": {{\"beam\": {}, \"recall\": {:.4}, \"hops\": {:.2}, \"ndc\": {:.1}, \
         \"qps\": {:.0}, \"p99_ms\": {:.3}}},\n  \
         \"adapted\": {{\"beam\": {}, \"recall\": {:.4}, \"hops\": {:.2}, \"ndc\": {:.1}, \
         \"qps\": {:.0}, \"p99_ms\": {:.3}}},\n  \
         \"parity\": {{\"fixed_beam\": {}, \"recall_base\": {:.4}, \"recall_adapted\": {:.4}, \
         \"regression\": {:.4}, \"ok\": {parity_ok}}},\n  \
         \"reduction\": {{\"hops_pct\": {:.1}, \"ndc_pct\": {:.1}}},\n  \
         \"determinism\": {{\"mining_threads\": {MINING_THREADS:?}, \
         \"digests\": [{}], \"identical\": {identical}}}\n}}\n",
        weavess_data::host_features(),
        weavess_data::KernelTier::active(),
        agg.routes(),
        agg.num_pairs(),
        agg.memory_bytes(),
        pt_base.beam,
        params.min_gap,
        params.min_traffic,
        params.max_extra_degree,
        params.max_reach,
        params.refresh_entries,
        report.candidates,
        report.edges_added,
        report.vertices_extended,
        report.entries.len(),
        pt_base.beam,
        pt_base.recall,
        pt_base.hops,
        pt_base.ndc,
        pt_base.qps,
        sp_base.p99_ms,
        pt_adapt.beam,
        pt_adapt.recall,
        pt_adapt.hops,
        pt_adapt.ndc,
        pt_adapt.qps,
        sp_adapt.p99_ms,
        pt_base.beam,
        pt_base.recall,
        fixed.recall,
        regression,
        100.0 * hops_reduction,
        100.0 * ndc_reduction,
        digests
            .iter()
            .map(|d| format!("\"{d:016x}\""))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write("BENCH_adapt.json", &json).expect("write BENCH_adapt.json");
    println!("\nwrote BENCH_adapt.json");

    if !identical {
        eprintln!("FAIL: adapted index bytes diverge across mining thread counts");
        std::process::exit(1);
    }
    if !parity_ok {
        eprintln!(
            "FAIL: adapted recall at fixed beam regressed by {:.4} (> {RECALL_TOLERANCE})",
            regression
        );
        std::process::exit(1);
    }
    println!(
        "ok: identical at {MINING_THREADS:?} threads, recall regression {:.4} <= {RECALL_TOLERANCE}",
        regression.max(0.0)
    );
}
