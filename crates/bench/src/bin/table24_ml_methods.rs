//! §5.5 + Appendix R — the ML-based optimizations: NSG+ML1 (learned
//! routing stand-in), HNSW+ML2 (learned early termination), NSG+ML3
//! (learned dimensionality reduction) against plain NSG, on SIFT100K /
//! GIST100K stand-ins (scaled):
//!
//! - **Tables 6 & 24** — index processing time (IPT) and extra memory
//!   consumption (MC);
//! - **Figures 9 & 19** — Speedup vs Recall@1 trade-off rows (ML1 is
//!   limited to k=1, so the paper reports Recall@1 here).

use weavess_bench::datasets::NamedDataset;
use weavess_bench::report::{banner, f, mb, Table};
use weavess_bench::{env_scale, env_threads};
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::index::{AnnIndex, SearchContext};
use weavess_core::search::{SearchScratch, VisitedPool};
use weavess_data::metrics::recall;
use weavess_data::synthetic::MixtureSpec;
use weavess_ml::ml1;
use weavess_ml::ml2::{self, Ml2Params};
use weavess_ml::ml3;

const BEAMS: [usize; 4] = [10, 20, 40, 80];

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    // SIFT100K / GIST100K stand-ins: real dims, low intrinsic dimension.
    let n = ((100_000.0 * scale * 10.0) as usize).clamp(2_000, 100_000);
    let sift = MixtureSpec {
        intrinsic_dim: Some(9),
        noise: 0.05,
        ..MixtureSpec::table10(128, n, 10, 5.0, 200)
    };
    let gist = MixtureSpec {
        intrinsic_dim: Some(19),
        noise: 0.05,
        ..MixtureSpec::table10(960, n / 4, 10, 5.0, 100)
    };
    let sets = vec![
        NamedDataset::from_spec("SIFT100K", &sift, threads),
        NamedDataset::from_spec("GIST100K", &gist, threads),
    ];
    banner(&format!("ML-based optimizations (n={n})"));

    let mut t24 = Table::new(vec!["Method", "Dataset", "IPT(s)", "MC(MB)"]);
    let mut fig19 = Table::new(vec!["Method", "Dataset", "beam", "Recall@1", "Speedup"]);

    for ds in &sets {
        let nsg_params = NsgParams::tuned(threads, 1);
        let t0 = std::time::Instant::now();
        let base = nsg::build(&ds.base, &nsg_params);
        let base_secs = t0.elapsed().as_secs_f64();
        let medoid = ds.base.medoid();
        let dsn = ds.base.len() as f64;

        // --- plain NSG baseline ---
        t24.row(vec![
            "NSG".to_string(),
            ds.name.clone(),
            f(base_secs, 1),
            mb(base.memory_bytes() + ds.base.memory_bytes()),
        ]);
        let mut ctx = SearchContext::new(ds.base.len());
        for &beam in &BEAMS {
            let mut r = 0.0;
            ctx.take_stats();
            for qi in 0..ds.queries.len() as u32 {
                let res = base.search(&ds.base, ds.queries.point(qi), 1, beam, &mut ctx);
                let ids: Vec<u32> = res.iter().map(|x| x.id).collect();
                r += recall(&ids, &ds.gt[qi as usize][..1]);
            }
            let stats = ctx.take_stats();
            fig19.row(vec![
                "NSG".to_string(),
                ds.name.clone(),
                beam.to_string(),
                f(r / ds.queries.len() as f64, 4),
                f(dsn / (stats.ndc as f64 / ds.queries.len() as f64), 1),
            ]);
        }

        // --- NSG + ML1 ---
        let m1 = ml1::optimize(&ds.base, base.graph.clone(), vec![medoid], 16);
        t24.row(vec![
            "NSG+ML1".to_string(),
            ds.name.clone(),
            f(base_secs + m1.preprocessing_secs, 1),
            mb(base.memory_bytes() + ds.base.memory_bytes() + m1.extra_memory_bytes()),
        ]);
        let mut scratch = SearchScratch::new(ds.base.len());
        let mut visited = VisitedPool::new(ds.base.len());
        for &beam in &BEAMS {
            let mut r = 0.0;
            let mut eff = 0.0;
            for qi in 0..ds.queries.len() as u32 {
                let (res, s) = m1.search(&ds.base, ds.queries.point(qi), 1, beam, &mut scratch);
                let ids: Vec<u32> = res.iter().map(|x| x.id).collect();
                r += recall(&ids, &ds.gt[qi as usize][..1]);
                eff += s.effective_ndc(16, ds.base.dim());
            }
            fig19.row(vec![
                "NSG+ML1".to_string(),
                ds.name.clone(),
                beam.to_string(),
                f(r / ds.queries.len() as f64, 4),
                f(dsn / (eff / ds.queries.len() as f64), 1),
            ]);
        }

        // --- HNSW + ML2 ---
        let t0 = std::time::Instant::now();
        let hnsw = weavess_core::algorithms::hnsw::build(
            &ds.base,
            &weavess_core::algorithms::hnsw::HnswParams::tuned(1, 1),
        );
        let hnsw_secs = t0.elapsed().as_secs_f64();
        // Train on a held-out half of the queries, evaluate on the rest.
        let half = ds.queries.len() / 2;
        let train = ds.queries.subset(&(0..half as u32).collect::<Vec<_>>());
        let m2 = ml2::optimize(
            &ds.base,
            hnsw.graph().clone(),
            vec![hnsw.enter_point()],
            &train,
            &Ml2Params::default(),
        );
        t24.row(vec![
            "HNSW+ML2".to_string(),
            ds.name.clone(),
            f(hnsw_secs + m2.training_secs, 1),
            mb(hnsw.memory_bytes() + ds.base.memory_bytes() + m2.extra_memory_bytes()),
        ]);
        for &beam in &BEAMS {
            let mut r = 0.0;
            let mut ndc = 0u64;
            let eval: Vec<u32> = (half as u32..ds.queries.len() as u32).collect();
            for &qi in &eval {
                let (res, n, _) = m2.search(&ds.base, ds.queries.point(qi), 1, beam, &mut visited);
                let ids: Vec<u32> = res.iter().map(|x| x.id).collect();
                r += recall(&ids, &ds.gt[qi as usize][..1]);
                ndc += n;
            }
            fig19.row(vec![
                "HNSW+ML2".to_string(),
                ds.name.clone(),
                beam.to_string(),
                f(r / eval.len() as f64, 4),
                f(dsn / (ndc as f64 / eval.len() as f64), 1),
            ]);
        }

        // --- NSG + ML3 ---
        let m3 = ml3::optimize(&ds.base, 16, &nsg_params);
        t24.row(vec![
            "NSG+ML3".to_string(),
            ds.name.clone(),
            f(m3.preprocessing_secs, 1),
            mb(ds.base.memory_bytes() + m3.extra_memory_bytes()),
        ]);
        let (mut mctx, _) = m3.context();
        for &beam in &BEAMS {
            let mut r = 0.0;
            let mut eff = 0.0;
            for qi in 0..ds.queries.len() as u32 {
                let (res, re, fe) = m3.search(&ds.base, ds.queries.point(qi), 1, beam, &mut mctx);
                let ids: Vec<u32> = res.iter().map(|x| x.id).collect();
                r += recall(&ids, &ds.gt[qi as usize][..1]);
                eff += fe as f64 + re as f64 * 16.0 / ds.base.dim() as f64;
            }
            fig19.row(vec![
                "NSG+ML3".to_string(),
                ds.name.clone(),
                beam.to_string(),
                f(r / ds.queries.len() as f64, 4),
                f(dsn / (eff / ds.queries.len() as f64), 1),
            ]);
        }
        eprintln!("{} done", ds.name);
    }

    banner("Tables 6/24: index processing time and memory consumption");
    t24.print();
    t24.write_csv("table24_ml_methods").expect("csv");
    banner("Figures 9/19: Speedup vs Recall@1");
    fig19.print();
    fig19.write_csv("fig19_ml_curves").expect("csv");
}
