//! Appendix Q / Table 23, Figures 17–18 — variance of the randomized
//! algorithms: Vamana (random initialization) and NSSG (random seeds)
//! rebuilt with three different RNG seeds. The paper's finding: single
//! trials sit close to the average; search curves nearly overlap.

use weavess_bench::datasets::real_world_standins;
use weavess_bench::report::{banner, f, mb, Table};
use weavess_bench::runner::{build_timed, run_at_beam};
use weavess_bench::{env_scale, env_threads};
use weavess_core::algorithms::Algo;

const K: usize = 10;
const SEEDS: [u64; 3] = [1, 2, 3];

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    // The paper uses four datasets for this appendix; take the first four
    // stand-ins (UQ-V, Msong, Audio, SIFT1M).
    let sets: Vec<_> = weavess_bench::select_datasets(
        real_world_standins(scale, threads)
            .into_iter()
            .take(4)
            .collect(),
    );
    banner(&format!("Randomized-trial variance (scale={scale})"));

    let mut t23 = Table::new(vec!["Alg", "Dataset", "Trial", "ICT(s)", "IS(MB)"]);
    let mut curves = Table::new(vec![
        "Alg",
        "Dataset",
        "Trial",
        "beam",
        "Recall@10",
        "Speedup",
    ]);
    let mut spreads = Table::new(vec![
        "Alg",
        "Dataset",
        "ICT avg(s)",
        "ICT spread(%)",
        "Recall@beam80 spread",
    ]);

    for algo in [Algo::Vamana, Algo::Nssg] {
        for ds in &sets {
            let mut icts = Vec::new();
            let mut recalls80 = Vec::new();
            for (i, &seed) in SEEDS.iter().enumerate() {
                let report = build_timed(algo, ds, threads, seed);
                icts.push(report.build_secs);
                t23.row(vec![
                    algo.name().to_string(),
                    ds.name.clone(),
                    format!("{}", (b'a' + i as u8) as char),
                    f(report.build_secs, 2),
                    mb(report.index_bytes),
                ]);
                for &beam in &[20usize, 40, 80, 160] {
                    let p = run_at_beam(report.index.as_ref(), ds, K, beam);
                    if beam == 80 {
                        recalls80.push(p.recall);
                    }
                    curves.row(vec![
                        algo.name().to_string(),
                        ds.name.clone(),
                        format!("{}", (b'a' + i as u8) as char),
                        beam.to_string(),
                        f(p.recall, 4),
                        f(p.speedup, 1),
                    ]);
                }
                eprintln!("{} trial {} on {} done", algo.name(), i, ds.name);
            }
            let avg = icts.iter().sum::<f64>() / icts.len() as f64;
            let spread =
                icts.iter().map(|x| (x - avg).abs()).fold(0.0f64, f64::max) / avg.max(1e-9) * 100.0;
            let rmin = recalls80.iter().cloned().fold(f64::INFINITY, f64::min);
            let rmax = recalls80.iter().cloned().fold(0.0f64, f64::max);
            spreads.row(vec![
                algo.name().to_string(),
                ds.name.clone(),
                f(avg, 2),
                f(spread, 1),
                f(rmax - rmin, 4),
            ]);
        }
    }

    banner("Table 23: per-trial construction time and index size");
    t23.print();
    t23.write_csv("table23_random_trials").expect("csv");
    banner("Figures 17-18: per-trial search curves");
    curves.print();
    curves.write_csv("fig17_18_trial_curves").expect("csv");
    banner("Trial spread summary (the appendix's 'single ~ average' claim)");
    spreads.print();
    spreads.write_csv("table23_trial_spreads").expect("csv");
}
