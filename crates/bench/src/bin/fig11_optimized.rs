//! §6 "Improvement" + Appendix P — the optimized algorithm (OA) against
//! the state of the art (NSG, NSSG, HCNNG, HNSW, DPG) on the simple/hard
//! dataset pair:
//!
//! - **Table 19** — construction time;
//! - **Table 20** — index size;
//! - **Table 21** — GQ / AD / CC;
//! - **Table 22** — CS / PL / MO at target recall;
//! - **Figures 11 & 16** — Speedup vs Recall@10 curves.

use weavess_bench::datasets::simple_and_hard;
use weavess_bench::report::{banner, f, mb, Table};
use weavess_bench::runner::{at_target_recall, build_timed, default_beams, graph_report, sweep};
use weavess_bench::{env_scale, env_threads};
use weavess_core::algorithms::Algo;
use weavess_data::ground_truth::exact_knn_graph;

const K: usize = 10;
const TARGET_RECALL: f64 = 0.99;

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let sets = simple_and_hard(scale, threads);
    let algos = [
        Algo::Oa,
        Algo::Nsg,
        Algo::Nssg,
        Algo::Hcnng,
        Algo::Hnsw,
        Algo::Dpg,
    ];
    banner(&format!("OA vs state of the art (scale={scale})"));

    let mut t19 = Table::new(vec!["Alg", "Dataset", "Build(s)"]);
    let mut t20 = Table::new(vec!["Alg", "Dataset", "Size(MB)"]);
    let mut t21 = Table::new(vec!["Alg", "Dataset", "GQ", "AD", "CC"]);
    let mut t22 = Table::new(vec!["Alg", "Dataset", "CS", "PL", "MO(MB)", "Recall"]);
    let mut fig11 = Table::new(vec![
        "Alg",
        "Dataset",
        "beam",
        "Recall@10",
        "Speedup",
        "QPS",
    ]);

    for ds in &sets {
        let exact = exact_knn_graph(&ds.base, 10, threads);
        for &algo in &algos {
            let report = build_timed(algo, ds, threads, 1);
            t19.row(vec![
                algo.name().to_string(),
                ds.name.clone(),
                f(report.build_secs, 2),
            ]);
            t20.row(vec![
                algo.name().to_string(),
                ds.name.clone(),
                mb(report.index_bytes),
            ]);
            let g = graph_report(report.index.as_ref(), &exact);
            t21.row(vec![
                algo.name().to_string(),
                ds.name.clone(),
                f(g.gq, 3),
                f(g.degrees.avg, 1),
                g.cc.to_string(),
            ]);
            let (pt, reached) = at_target_recall(report.index.as_ref(), ds, K, TARGET_RECALL);
            t22.row(vec![
                algo.name().to_string(),
                ds.name.clone(),
                if reached {
                    pt.beam.to_string()
                } else {
                    format!("{}+", pt.beam)
                },
                f(pt.hops, 0),
                mb(report.index_bytes + ds.base.memory_bytes()),
                f(pt.recall, 3),
            ]);
            for p in sweep(report.index.as_ref(), ds, K, &default_beams(K)) {
                fig11.row(vec![
                    algo.name().to_string(),
                    ds.name.clone(),
                    p.beam.to_string(),
                    f(p.recall, 4),
                    f(p.speedup, 1),
                    f(p.qps, 0),
                ]);
            }
            eprintln!("{} on {} done", algo.name(), ds.name);
        }
    }

    banner("Table 19: construction time (s)");
    t19.print();
    t19.write_csv("table19_oa_build_time").expect("csv");
    banner("Table 20: index size (MB)");
    t20.print();
    t20.write_csv("table20_oa_index_size").expect("csv");
    banner("Table 21: GQ / AD / CC");
    t21.print();
    t21.write_csv("table21_oa_graph_stats").expect("csv");
    banner(&format!(
        "Table 22: CS / PL / MO at Recall@10 >= {TARGET_RECALL}"
    ));
    t22.print();
    t22.write_csv("table22_oa_search_stats").expect("csv");
    banner("Figures 11/16: Speedup vs Recall@10");
    fig11.print();
    fig11.write_csv("fig11_optimized").expect("csv");
}
