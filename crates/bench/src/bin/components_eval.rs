//! Component study (§5.4) on the unified benchmark algorithm (Table 13),
//! one simple and one hard dataset (SIFT1M / GIST1M stand-ins):
//!
//! - **Figure 10(a–f)** — search performance when exactly one component
//!   is swapped (C1, C2, C3, C4/C6, C5, C7);
//! - **Table 15** — construction time per component variant;
//! - **Figure 15 / Table 14** — NN-Descent iteration-count study
//!   (Appendix L).

use weavess_bench::datasets::{simple_and_hard, NamedDataset};
use weavess_bench::report::{banner, f, Table};
use weavess_bench::runner::{default_beams, SweepPoint};
use weavess_bench::{env_scale, env_threads};
use weavess_core::index::{AnnIndex, SearchContext};
use weavess_core::nndescent::NnDescentParams;
use weavess_core::pipeline::{
    CandidateChoice, ConnectivityChoice, InitChoice, PipelineBuilder, SeedChoice, SelectionChoice,
};
use weavess_core::rnndescent::RnnDescentParams;
use weavess_core::search::Router;
use weavess_data::metrics::recall;

const K: usize = 10;

fn sweep_flat(idx: &weavess_core::index::FlatIndex, ds: &NamedDataset) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &beam in &default_beams(K) {
        let mut ctx = SearchContext::new(ds.base.len());
        let t0 = std::time::Instant::now();
        let mut total = 0.0;
        for qi in 0..ds.queries.len() as u32 {
            let res = idx.search(&ds.base, ds.queries.point(qi), K, beam, &mut ctx);
            let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
            total += recall(&ids, &ds.gt[qi as usize][..K]);
        }
        let secs = t0.elapsed().as_secs_f64();
        let stats = ctx.take_stats();
        let nq = ds.queries.len() as f64;
        out.push(SweepPoint {
            beam,
            recall: total / nq,
            qps: nq / secs.max(1e-9),
            ndc: stats.ndc as f64 / nq,
            hops: stats.hops as f64 / nq,
            speedup: ds.base.len() as f64 / (stats.ndc as f64 / nq).max(1e-9),
        });
    }
    out
}

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let sets = simple_and_hard(scale, threads);
    banner(&format!("Component study (scale={scale})"));

    let nd = move |iters: usize| NnDescentParams {
        k: 40,
        l: 60,
        iters,
        sample: 15,
        reverse: 30,
        seed: 0xBE11C4,
        threads,
    };

    // (component, variant label, mutator)
    type Mutator = Box<dyn Fn(&mut PipelineBuilder)>;
    let variants: Vec<(&str, &str, Mutator)> = vec![
        ("C1", "C1_NSG", Box::new(|_b: &mut PipelineBuilder| {})),
        (
            "C1",
            "C1_KGraph",
            Box::new(|b| b.init = InitChoice::Random { k: 40 }),
        ),
        (
            "C1",
            "C1_EFANNA",
            Box::new(move |b| {
                b.init = InitChoice::KdTree {
                    n_trees: 4,
                    checks_per_tree: 100,
                    nd: nd(4),
                }
            }),
        ),
        (
            "C1",
            "C1_RNND",
            Box::new(move |b| b.init = InitChoice::RnnDescent(RnnDescentParams::matching(&nd(8)))),
        ),
        ("C2", "C2_NSSG", Box::new(|_b| {})),
        (
            "C2",
            "C2_DPG",
            Box::new(|b| b.candidates = CandidateChoice::Direct),
        ),
        (
            "C2",
            "C2_NSW",
            Box::new(|b| b.candidates = CandidateChoice::Search { beam: 60, cap: 100 }),
        ),
        ("C3", "C3_HNSW", Box::new(|_b| {})),
        (
            "C3",
            "C3_KGraph",
            Box::new(|b| b.selection = SelectionChoice::Closest { degree: 30 }),
        ),
        (
            "C3",
            "C3_NSSG",
            Box::new(|b| {
                b.selection = SelectionChoice::Angle {
                    degree: 30,
                    min_deg: 60.0,
                }
            }),
        ),
        (
            "C3",
            "C3_DPG",
            Box::new(|b| b.selection = SelectionChoice::Dpg { kappa: 20 }),
        ),
        (
            "C3",
            "C3_Vamana",
            Box::new(|b| {
                b.selection = SelectionChoice::RngAlpha {
                    degree: 30,
                    alpha: 2.0,
                }
            }),
        ),
        ("C4", "C4_NSSG", Box::new(|_b| {})),
        ("C4", "C4_NSG", Box::new(|b| b.seeds = SeedChoice::Medoid)),
        (
            "C4",
            "C4_HCNNG",
            Box::new(|b| {
                b.seeds = SeedChoice::KdLeaf {
                    n_trees: 4,
                    count: 8,
                }
            }),
        ),
        (
            "C4",
            "C4_IEH",
            Box::new(|b| {
                b.seeds = SeedChoice::Lsh {
                    tables: 4,
                    bits: 12,
                    count: 8,
                }
            }),
        ),
        (
            "C4",
            "C4_NGT",
            Box::new(|b| {
                b.seeds = SeedChoice::VpTree {
                    count: 8,
                    checks: 128,
                }
            }),
        ),
        (
            "C4",
            "C4_SPTAG-BKT",
            Box::new(|b| {
                b.seeds = SeedChoice::BkTree {
                    count: 8,
                    checks: 128,
                }
            }),
        ),
        (
            "C4",
            "C4_OPQ(Douze)",
            Box::new(|b| b.seeds = SeedChoice::Pq { m: 8, count: 8 }),
        ),
        ("C5", "C5_IEH(none)", Box::new(|_b| {})),
        (
            "C5",
            "C5_NSG(dfs)",
            Box::new(|b| b.connectivity = ConnectivityChoice::DfsRepair),
        ),
        ("C7", "C7_NSW", Box::new(|_b| {})),
        (
            "C7",
            "C7_NGT",
            Box::new(|b| b.router = Router::Range { epsilon: 0.1 }),
        ),
        (
            "C7",
            "C7_FANNG",
            Box::new(|b| b.router = Router::Backtrack { extra: 8 }),
        ),
        ("C7", "C7_HCNNG", Box::new(|b| b.router = Router::Guided)),
    ];

    let mut fig10 = Table::new(vec![
        "Component",
        "Variant",
        "Dataset",
        "beam",
        "Recall@10",
        "QPS",
        "Speedup",
    ]);
    let mut table15 = Table::new(vec!["Component", "Variant", "Dataset", "Build(s)"]);

    for (component, label, mutate) in &variants {
        for ds in &sets {
            let mut b = PipelineBuilder::benchmark(8, threads);
            mutate(&mut b);
            let (idx, _, total_secs) = b.build_timed(&ds.base);
            table15.row(vec![
                component.to_string(),
                label.to_string(),
                ds.name.clone(),
                f(total_secs, 2),
            ]);
            for p in sweep_flat(&idx, ds) {
                fig10.row(vec![
                    component.to_string(),
                    label.to_string(),
                    ds.name.clone(),
                    p.beam.to_string(),
                    f(p.recall, 4),
                    f(p.qps, 0),
                    f(p.speedup, 1),
                ]);
            }
            eprintln!("{label} on {} done", ds.name);
        }
    }

    banner("Figure 10: component search performance");
    fig10.print();
    fig10.write_csv("fig10_components").expect("csv");
    banner("Table 15: component construction time");
    table15.print();
    table15.write_csv("table15_component_build").expect("csv");

    // --- Figure 15 / Table 14: NN-Descent iterations ---
    let mut fig15 = Table::new(vec!["iters", "Dataset", "beam", "Recall@10", "QPS"]);
    let mut table14 = Table::new(vec!["Dataset", "iter=4", "iter=6", "iter=8", "iter=10"]);
    for ds in &sets {
        let mut times = vec![ds.name.clone()];
        for iters in [4usize, 6, 8, 10] {
            let b = PipelineBuilder::benchmark(iters, threads);
            let (idx, _, total_secs) = b.build_timed(&ds.base);
            times.push(f(total_secs, 2));
            for p in sweep_flat(&idx, ds) {
                fig15.row(vec![
                    iters.to_string(),
                    ds.name.clone(),
                    p.beam.to_string(),
                    f(p.recall, 4),
                    f(p.qps, 0),
                ]);
            }
            eprintln!("iters={iters} on {} done", ds.name);
        }
        table14.row(times);
    }
    banner("Figure 15: search performance vs NN-Descent iterations");
    fig15.print();
    fig15.write_csv("fig15_iterations").expect("csv");
    banner("Table 14: construction time vs NN-Descent iterations (s)");
    table14.print();
    table14
        .write_csv("table14_iteration_build_time")
        .expect("csv");
}
