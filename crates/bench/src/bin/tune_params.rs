//! Parameter tuning demo (§5.1 "Parameters"): grid-search NSG's `R`/`L`
//! and HNSW's `M` on a validation split sampled from the base set, and
//! report the winning settings — the procedure behind every "optimal
//! parameters" claim in the paper's evaluation.

use weavess_bench::datasets::simple_and_hard;
use weavess_bench::report::{banner, f, Table};
use weavess_bench::tuning::{grid_search, validation_split, Candidate};
use weavess_bench::{env_scale, env_threads};
use weavess_core::algorithms::{hnsw, nsg};
use weavess_core::index::AnnIndex;
use weavess_data::Dataset;

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let sets = simple_and_hard(scale, threads);
    banner(&format!(
        "Parameter tuning on validation splits (scale={scale})"
    ));

    let mut t = Table::new(vec![
        "Dataset",
        "Algorithm",
        "Setting",
        "Recall@10",
        "NDC",
        "Build(s)",
        "rank",
    ]);
    for ds in &sets {
        let split = validation_split(ds, 0.05, 10, threads);

        // NSG grid: R x L.
        let mut nsg_candidates = Vec::new();
        for r in [20usize, 30, 40] {
            for l in [40usize, 60, 80] {
                nsg_candidates.push(Candidate {
                    label: format!("R={r},L={l}"),
                    build: Box::new(move |base: &Dataset| {
                        let mut p = nsg::NsgParams::tuned(threads, 1);
                        p.r = r;
                        p.l = l;
                        Box::new(nsg::build(base, &p)) as Box<dyn AnnIndex>
                    }),
                });
            }
        }
        for (rank, res) in grid_search(ds, &split, nsg_candidates, 10, 60)
            .iter()
            .enumerate()
        {
            t.row(vec![
                ds.name.clone(),
                "NSG".to_string(),
                res.label.clone(),
                f(res.recall, 4),
                f(res.ndc, 0),
                f(res.build_secs, 2),
                (rank + 1).to_string(),
            ]);
        }

        // HNSW grid: M.
        let mut hnsw_candidates = Vec::new();
        for m in [8usize, 16, 24] {
            hnsw_candidates.push(Candidate {
                label: format!("M={m}"),
                build: Box::new(move |base: &Dataset| {
                    let mut p = hnsw::HnswParams::tuned(1, 1);
                    p.m = m;
                    p.m0 = 2 * m;
                    Box::new(hnsw::build(base, &p)) as Box<dyn AnnIndex>
                }),
            });
        }
        for (rank, res) in grid_search(ds, &split, hnsw_candidates, 10, 60)
            .iter()
            .enumerate()
        {
            t.row(vec![
                ds.name.clone(),
                "HNSW".to_string(),
                res.label.clone(),
                f(res.recall, 4),
                f(res.ndc, 0),
                f(res.build_secs, 2),
                (rank + 1).to_string(),
            ]);
        }
        eprintln!("{} tuned", ds.name);
    }
    banner("Validation-split grid search (rank 1 = chosen setting)");
    t.print();
    t.write_csv("tune_params").expect("csv");
}
