//! Tables 2 & 9 — the taxonomy summary: base graph, construction strategy,
//! edge type, and routing family per algorithm, straight from the
//! implementation's own metadata (the Figure 3 roadmap in table form).
//! Empirical complexity exponents come from `fig14_complexity`.

use weavess_bench::report::{banner, Table};
use weavess_core::algorithms::Algo;

fn main() {
    banner("Tables 2/9: algorithm taxonomy");
    let mut t = Table::new(vec![
        "Algorithm",
        "Base graph",
        "Construction",
        "Edge",
        "Routing",
    ]);
    for &algo in Algo::all() {
        t.row(vec![
            algo.name().to_string(),
            algo.base_graph().to_string(),
            algo.construction_strategy().to_string(),
            algo.edge_type().to_string(),
            algo.routing().to_string(),
        ]);
    }
    t.print();
    t.write_csv("table02_taxonomy").expect("csv");
    println!("\n(empirical build/search exponents: run fig14_complexity)");
}
