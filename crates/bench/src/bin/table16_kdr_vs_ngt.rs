//! Appendix N / Tables 16–18 — k-DR against both NGT variants on every
//! stand-in dataset: construction time and index size (Table 16), index
//! and search characteristics (Table 17), plus speedup-recall curve rows
//! (the appendix's Figures 20/21 series for these algorithms).

use weavess_bench::datasets::real_world_standins;
use weavess_bench::report::{banner, f, mb, Table};
use weavess_bench::runner::{at_target_recall, build_timed, default_beams, graph_report, sweep};
use weavess_bench::{env_scale, env_threads};
use weavess_core::algorithms::Algo;
use weavess_data::ground_truth::exact_knn_graph;

const K: usize = 10;
const TARGET_RECALL: f64 = 0.99;

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let sets = weavess_bench::select_datasets(real_world_standins(scale, threads));
    let algos = [Algo::Kdr, Algo::NgtPanng, Algo::NgtOnng];
    banner(&format!("k-DR vs NGT (scale={scale})"));

    let mut t16 = Table::new(vec!["Alg", "Dataset", "ICT(s)", "IS(MB)"]);
    let mut t17 = Table::new(vec![
        "Alg", "Dataset", "GQ", "AD", "CC", "CS", "PL", "MO(MB)",
    ]);
    let mut curves = Table::new(vec!["Alg", "Dataset", "beam", "Recall@10", "Speedup"]);

    for ds in &sets {
        let exact = exact_knn_graph(&ds.base, 10, threads);
        for &algo in &algos {
            let report = build_timed(algo, ds, threads, 1);
            t16.row(vec![
                algo.name().to_string(),
                ds.name.clone(),
                f(report.build_secs, 2),
                mb(report.index_bytes),
            ]);
            let g = graph_report(report.index.as_ref(), &exact);
            let (pt, reached) = at_target_recall(report.index.as_ref(), ds, K, TARGET_RECALL);
            t17.row(vec![
                algo.name().to_string(),
                ds.name.clone(),
                f(g.gq, 3),
                f(g.degrees.avg, 1),
                g.cc.to_string(),
                if reached {
                    pt.beam.to_string()
                } else {
                    format!("{}+", pt.beam)
                },
                f(pt.hops, 0),
                mb(report.index_bytes + ds.base.memory_bytes()),
            ]);
            for p in sweep(report.index.as_ref(), ds, K, &default_beams(K)) {
                curves.row(vec![
                    algo.name().to_string(),
                    ds.name.clone(),
                    p.beam.to_string(),
                    f(p.recall, 4),
                    f(p.speedup, 1),
                ]);
            }
            eprintln!("{} on {} done", algo.name(), ds.name);
        }
    }

    banner("Table 16: construction time and index size");
    t16.print();
    t16.write_csv("table16_kdr_ngt_build").expect("csv");
    banner("Table 17: index and search characteristics");
    t17.print();
    t17.write_csv("table17_kdr_ngt_stats").expect("csv");
    banner("Speedup vs Recall@10 series (k-DR / NGT rows of Figs 20-21)");
    curves.print();
    curves.write_csv("table18_kdr_ngt_curves").expect("csv");
}
