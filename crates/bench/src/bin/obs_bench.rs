//! Telemetry-overhead benchmark — the `BENCH_obs.json` artifact.
//!
//! The telemetry layer's contract is *zero overhead when off*: routing
//! with a [`NoopTracer`] must return bit-identical results, identical
//! [`weavess_core::search::SearchStats`], and indistinguishable QPS
//! relative to the plain `search()` entry point. This binary measures all
//! three on an NSG index, captures a route trace twice to prove the dump
//! is byte-stable, records [`weavess_core::BuildProfile`]s for HNSW, NSG,
//! NSG with the RNN-Descent C1 swapped in, and OA, and exercises the
//! engine's Prometheus/JSON exposition.
//!
//! `--smoke` shrinks the dataset for CI and exits non-zero when the
//! tracer-off overhead exceeds 5% (the full run targets < 2%).

use std::time::Instant;
use weavess_bench::report::{banner, f, Table};
use weavess_core::algorithms::hnsw::{self, HnswParams};
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::algorithms::oa::{self, OaParams};
use weavess_core::index::{AnnIndex, SearchContext};
use weavess_core::search::SearchStats;
use weavess_core::serve::{EngineOptions, QueryEngine};
use weavess_core::telemetry::{profile_build, BuildProfile, NoopTracer, RecordingTracer};
use weavess_data::synthetic::MixtureSpec;
use weavess_data::{Dataset, Neighbor};

const SEED: u64 = 7;
const K: usize = 10;
const BEAM: usize = 64;
const TRIALS: usize = 5;

/// One full pass over the query set with the plain entry point.
fn run_plain(idx: &dyn AnnIndex, ds: &Dataset, qs: &Dataset) -> (Vec<Vec<Neighbor>>, SearchStats) {
    let mut ctx = SearchContext::new(ds.len());
    let out = (0..qs.len() as u32)
        .map(|qi| idx.search(ds, qs.point(qi), K, BEAM, &mut ctx))
        .collect();
    (out, ctx.stats)
}

/// One full pass with a `NoopTracer` threaded through `search_traced`.
fn run_noop(idx: &dyn AnnIndex, ds: &Dataset, qs: &Dataset) -> (Vec<Vec<Neighbor>>, SearchStats) {
    let mut ctx = SearchContext::new(ds.len());
    let out = (0..qs.len() as u32)
        .map(|qi| idx.search_traced(ds, qs.point(qi), K, BEAM, &mut ctx, &mut NoopTracer))
        .collect();
    (out, ctx.stats)
}

/// One timed trial: repeats full passes over the query set for ~0.3s and
/// returns the QPS. Callers interleave trials of competing entry points
/// round-robin so clock drift and background load bias none of them.
fn qps_trial<F: FnMut()>(nq: usize, pass: &mut F) -> f64 {
    let mut queries = 0usize;
    let t0 = Instant::now();
    loop {
        pass();
        queries += nq;
        if t0.elapsed().as_secs_f64() > 0.3 {
            break;
        }
    }
    queries as f64 / t0.elapsed().as_secs_f64()
}

fn identical(a: &[Vec<Neighbor>], b: &[Vec<Neighbor>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|(p, q)| p.id == q.id && p.dist.to_bits() == q.dist.to_bits())
        })
}

fn profile_json(p: &BuildProfile) -> String {
    p.to_json()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (n, dim, nq) = if smoke {
        (1_500, 16, 50)
    } else {
        (20_000, 48, 200)
    };
    let mode = if cfg!(feature = "paper-fidelity") {
        "paper-fidelity"
    } else {
        "default"
    };
    banner(&format!(
        "Telemetry overhead bench (mode={mode}, n={n}, dim={dim}, beam={BEAM}, host cores={host})"
    ));

    let spec = MixtureSpec {
        intrinsic_dim: Some(12),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(dim, n, 8, 5.0, nq)
    };
    let (base, queries) = spec.generate();

    // --- Build profiles: per-component wall time and NDC. ---
    let (flat, profile_nsg) =
        profile_build("NSG", || nsg::build(&base, &NsgParams::tuned(host, SEED)));
    let (_, profile_hnsw) = profile_build("HNSW", || {
        hnsw::build(&base, &HnswParams::tuned(host, SEED))
    });
    let (_, profile_oa) = profile_build("OA", || oa::build(&base, &OaParams::tuned(host, SEED)));
    let (_, profile_rnn) = profile_build("NSG(RNN-C1)", || {
        nsg::build(&base, &NsgParams::tuned(host, SEED).with_rnn_c1())
    });
    let mut spans_table = Table::new(vec!["Builder", "Component", "secs", "NDC"]);
    for p in [&profile_hnsw, &profile_nsg, &profile_rnn, &profile_oa] {
        for s in &p.spans {
            spans_table.row(vec![
                p.name.clone(),
                s.component.to_string(),
                f(s.secs, 3),
                s.ndc.to_string(),
            ]);
        }
    }
    banner("Build-phase spans (wall seconds and NDC per pipeline component)");
    spans_table.print();

    // --- Identity: plain vs NoopTracer vs RecordingTracer. ---
    let (plain_results, plain_stats) = run_plain(&flat, &base, &queries);
    let (noop_results, noop_stats) = run_noop(&flat, &base, &queries);
    let noop_identical = identical(&plain_results, &noop_results) && plain_stats == noop_stats;
    assert!(
        noop_identical,
        "NoopTracer changed results or stats (ndc {} vs {})",
        plain_stats.ndc, noop_stats.ndc
    );

    let mut rec = RecordingTracer::new();
    let mut ctx = SearchContext::new(base.len());
    let mut rec_results = Vec::with_capacity(queries.len());
    for qi in 0..queries.len() as u32 {
        rec.clear();
        rec_results.push(flat.search_traced(&base, queries.point(qi), K, BEAM, &mut ctx, &mut rec));
    }
    let rec_identical = identical(&plain_results, &rec_results) && ctx.stats == plain_stats;
    assert!(rec_identical, "RecordingTracer changed results or stats");

    // --- Route-trace byte stability + replay. ---
    let trace_query = queries.point(0);
    let mut t1 = RecordingTracer::new();
    let mut c1 = SearchContext::new(base.len());
    flat.search_traced(&base, trace_query, K, BEAM, &mut c1, &mut t1);
    let mut t2 = RecordingTracer::new();
    let mut c2 = SearchContext::new(base.len());
    flat.search_traced(&base, trace_query, K, BEAM, &mut c2, &mut t2);
    let dump = t1.dump();
    assert_eq!(dump, t2.dump(), "route dump not byte-stable across runs");
    assert!(t1.replay_check(&base, trace_query), "route replay failed");
    banner(&format!(
        "Route trace for query 0: {} hops, dump byte-stable, replay OK (first lines below)",
        t1.hops()
    ));
    for line in dump.lines().take(5) {
        println!("  {line}");
    }

    // --- Overhead: best-of-N QPS, trials interleaved round-robin. ---
    let mut pass_plain = || {
        let mut ctx = SearchContext::new(base.len());
        for qi in 0..queries.len() as u32 {
            std::hint::black_box(flat.search(&base, queries.point(qi), K, BEAM, &mut ctx));
        }
    };
    let mut pass_noop = || {
        let mut ctx = SearchContext::new(base.len());
        for qi in 0..queries.len() as u32 {
            std::hint::black_box(flat.search_traced(
                &base,
                queries.point(qi),
                K,
                BEAM,
                &mut ctx,
                &mut NoopTracer,
            ));
        }
    };
    let mut recorder = RecordingTracer::new();
    let mut pass_recording = || {
        let mut ctx = SearchContext::new(base.len());
        for qi in 0..queries.len() as u32 {
            recorder.clear();
            std::hint::black_box(flat.search_traced(
                &base,
                queries.point(qi),
                K,
                BEAM,
                &mut ctx,
                &mut recorder,
            ));
        }
    };
    // Warm each path once before timing.
    pass_plain();
    pass_noop();
    pass_recording();
    let (mut qps_plain, mut qps_noop, mut qps_recording) = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..TRIALS {
        qps_plain = qps_plain.max(qps_trial(queries.len(), &mut pass_plain));
        qps_noop = qps_noop.max(qps_trial(queries.len(), &mut pass_noop));
        qps_recording = qps_recording.max(qps_trial(queries.len(), &mut pass_recording));
    }
    let overhead_noop_pct = (1.0 - qps_noop / qps_plain) * 100.0;
    let overhead_recording_pct = (1.0 - qps_recording / qps_plain) * 100.0;
    let mut qps_table = Table::new(vec!["entry point", "QPS", "overhead vs plain"]);
    qps_table.row(vec!["search()".into(), f(qps_plain, 0), "-".into()]);
    qps_table.row(vec![
        "search_traced(Noop)".into(),
        f(qps_noop, 0),
        format!("{overhead_noop_pct:.2}%"),
    ]);
    qps_table.row(vec![
        "search_traced(Recording)".into(),
        f(qps_recording, 0),
        format!("{overhead_recording_pct:.2}%"),
    ]);
    banner("Tracer overhead (best-of-5 trials, bit-identical results checked)");
    qps_table.print();

    // --- Engine exposition: Prometheus text + JSON. ---
    let engine = QueryEngine::with_options(
        &flat,
        &base,
        EngineOptions {
            workers: host.min(4),
            ..EngineOptions::default()
        },
    );
    engine.search_batch(&queries, K, BEAM);
    let prom = engine.metrics_prometheus();
    assert!(
        prom.contains("weavess_queries_total"),
        "Prometheus exposition missing the query counter"
    );
    banner("Prometheus exposition (first lines)");
    for line in prom.lines().take(8) {
        println!("  {line}");
    }
    let metrics_json = engine.metrics_json();

    // --- Artifact. ---
    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"mode\": \"{mode}\",\n  \"smoke\": {smoke},\n  \
         \"host_available_parallelism\": {host},\n  \"n\": {n},\n  \"dim\": {dim},\n  \
         \"k\": {K},\n  \"beam\": {BEAM},\n  \"qps\": {{\"plain\": {qps_plain:.1}, \
         \"noop_traced\": {qps_noop:.1}, \"recording_traced\": {qps_recording:.1}}},\n  \
         \"overhead_pct\": {{\"noop\": {overhead_noop_pct:.3}, \
         \"recording\": {overhead_recording_pct:.3}}},\n  \
         \"noop_identical\": {noop_identical},\n  \"recording_identical\": {rec_identical},\n  \
         \"route_trace\": {{\"query\": 0, \"hops\": {}, \"byte_stable\": true, \
         \"replay_ok\": true}},\n  \
         \"build_profiles\": [\n    {},\n    {},\n    {},\n    {}\n  ],\n  \
         \"engine_metrics\": {}\n}}\n",
        t1.hops(),
        profile_json(&profile_hnsw),
        profile_json(&profile_nsg),
        profile_json(&profile_rnn),
        profile_json(&profile_oa),
        metrics_json,
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");

    if smoke && overhead_noop_pct > 5.0 {
        eprintln!("FAIL: tracer-off overhead {overhead_noop_pct:.2}% exceeds the 5% smoke budget");
        std::process::exit(1);
    }
    println!("tracer-off overhead {overhead_noop_pct:.2}% (target < 2%, smoke budget 5%)");
}
