//! Ablation study of the optimized algorithm's design choices (beyond the
//! paper: §6 asserts each pick; this measures what each contributes).
//!
//! Variants, each degrading exactly one choice of OA:
//! - `no-two-stage` — C7 falls back to plain best-first;
//! - `no-dfs-repair` — C5 skipped;
//! - `closest-selection` — C3 falls back to distance-only;
//! - `search-candidates` — C2 uses NSG-style per-point graph search
//!   (the expensive acquisition OA deliberately avoids);
//! - `entries-1` / `entries-32` — C4 entry-count sensitivity.

use weavess_bench::datasets::simple_and_hard;
use weavess_bench::report::{banner, f, Table};
use weavess_bench::runner::{default_beams, SweepPoint};
use weavess_bench::{env_scale, env_threads};
use weavess_core::index::{AnnIndex, SearchContext};
use weavess_core::nndescent::NnDescentParams;
use weavess_core::pipeline::{
    CandidateChoice, ConnectivityChoice, InitChoice, PipelineBuilder, SeedChoice, SelectionChoice,
};
use weavess_core::search::Router;
use weavess_data::metrics::recall;

const K: usize = 10;

fn oa_builder(threads: usize) -> PipelineBuilder {
    PipelineBuilder {
        init: InitChoice::NnDescent(NnDescentParams {
            k: 40,
            l: 60,
            iters: 8,
            sample: 15,
            reverse: 30,
            seed: 0x0A0A,
            threads,
        }),
        candidates: CandidateChoice::Expansion { cap: 100 },
        selection: SelectionChoice::RngAlpha {
            degree: 30,
            alpha: 1.0,
        },
        seeds: SeedChoice::FixedRandom { count: 8 },
        connectivity: ConnectivityChoice::DfsRepair,
        router: Router::TwoStage {
            stage1_beam_frac: 0.4,
        },
        threads,
        seed: 0x0A0A,
        name: "OA",
    }
}

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let sets = simple_and_hard(scale, threads);
    banner(&format!("OA design-choice ablations (scale={scale})"));

    type Mutator = Box<dyn Fn(&mut PipelineBuilder)>;
    let variants: Vec<(&str, Mutator)> = vec![
        ("OA (full)", Box::new(|_b: &mut PipelineBuilder| {})),
        ("no-two-stage", Box::new(|b| b.router = Router::BestFirst)),
        (
            "no-dfs-repair",
            Box::new(|b| b.connectivity = ConnectivityChoice::None),
        ),
        (
            "closest-selection",
            Box::new(|b| b.selection = SelectionChoice::Closest { degree: 30 }),
        ),
        (
            "search-candidates",
            Box::new(|b| b.candidates = CandidateChoice::Search { beam: 60, cap: 100 }),
        ),
        (
            "entries-1",
            Box::new(|b| b.seeds = SeedChoice::FixedRandom { count: 1 }),
        ),
        (
            "entries-32",
            Box::new(|b| b.seeds = SeedChoice::FixedRandom { count: 32 }),
        ),
    ];

    let mut t = Table::new(vec![
        "Variant",
        "Dataset",
        "Build(s)",
        "beam",
        "Recall@10",
        "NDC",
        "Speedup",
    ]);
    for (label, mutate) in &variants {
        for ds in &sets {
            let mut b = oa_builder(threads);
            mutate(&mut b);
            let (idx, _, secs) = b.build_timed(&ds.base);
            for &beam in &default_beams(K)[..6] {
                let p = run(&idx, ds, beam);
                t.row(vec![
                    label.to_string(),
                    ds.name.clone(),
                    f(secs, 2),
                    beam.to_string(),
                    f(p.recall, 4),
                    f(p.ndc, 0),
                    f(p.speedup, 1),
                ]);
            }
            eprintln!("{label} on {} done", ds.name);
        }
    }
    banner("OA ablations: search performance per degraded choice");
    t.print();
    t.write_csv("ablation_oa").expect("csv");
}

fn run(
    idx: &weavess_core::index::FlatIndex,
    ds: &weavess_bench::datasets::NamedDataset,
    beam: usize,
) -> SweepPoint {
    let mut ctx = SearchContext::new(ds.base.len());
    let t0 = std::time::Instant::now();
    let mut total = 0.0;
    for qi in 0..ds.queries.len() as u32 {
        let res = idx.search(&ds.base, ds.queries.point(qi), K, beam, &mut ctx);
        let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
        total += recall(&ids, &ds.gt[qi as usize][..K]);
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = ctx.take_stats();
    let nq = ds.queries.len() as f64;
    SweepPoint {
        beam,
        recall: total / nq,
        qps: nq / secs.max(1e-9),
        ndc: stats.ndc as f64 / nq,
        hops: stats.hops as f64 / nq,
        speedup: ds.base.len() as f64 / (stats.ndc as f64 / nq).max(1e-9),
    }
}
