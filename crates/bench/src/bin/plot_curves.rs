//! Renders the Figure 7/8-style curves from `results/fig07_08_search_curves.csv`
//! as terminal plots (run `search_eval` first). Optional args: a dataset
//! name and a metric (`qps` or `speedup`).
//!
//! ```sh
//! cargo run --release -p weavess-bench --bin plot_curves            # all
//! cargo run --release -p weavess-bench --bin plot_curves -- GIST1M speedup
//! ```

use std::collections::BTreeMap;
use weavess_bench::plot::{ascii_plot, Series};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only_dataset = args.first().cloned();
    let metric = args.get(1).cloned().unwrap_or_else(|| "qps".into());
    let path = "results/fig07_08_search_curves.csv";
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("missing {path}; run the search_eval binary first");
        std::process::exit(1);
    };
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next().unwrap_or("").split(',').collect();
    let col = |name: &str| header.iter().position(|h| *h == name);
    let (Some(c_ds), Some(c_alg), Some(c_recall)) = (col("Dataset"), col("Alg"), col("Recall@10"))
    else {
        eprintln!("unexpected csv header in {path}");
        std::process::exit(1);
    };
    let c_metric = match metric.as_str() {
        "speedup" => col("Speedup"),
        _ => col("QPS"),
    }
    .expect("metric column");

    // dataset -> algorithm -> points
    let mut data: BTreeMap<String, BTreeMap<String, Vec<(f64, f64)>>> = BTreeMap::new();
    for line in lines {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() <= c_metric {
            continue;
        }
        let ds = cells[c_ds].to_string();
        if let Some(only) = &only_dataset {
            if !ds.eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let (Ok(x), Ok(y)) = (
            cells[c_recall].parse::<f64>(),
            cells[c_metric].parse::<f64>(),
        ) else {
            continue;
        };
        data.entry(ds)
            .or_default()
            .entry(cells[c_alg].to_string())
            .or_default()
            .push((x, y));
    }
    if data.is_empty() {
        eprintln!("no rows matched");
        std::process::exit(1);
    }
    for (ds, algs) in &data {
        let series: Vec<Series> = algs
            .iter()
            .map(|(alg, pts)| Series {
                label: alg.clone(),
                points: pts.clone(),
            })
            .collect();
        println!(
            "{}",
            ascii_plot(
                &format!(
                    "{} vs Recall@10 on {ds} (high-precision region, log y)",
                    metric
                ),
                "Recall@10",
                &metric,
                &series,
                100,
                24,
                true,
            )
        );
    }
}
