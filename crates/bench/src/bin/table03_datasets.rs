//! Table 3 — statistics of the (stand-in) real-world datasets: dimension,
//! cardinality, query count, and measured MLE-LID, next to the paper's
//! reported LID. The reproduction target is the LID *ranking* (difficulty
//! order), which drives every "simple vs hard dataset" finding in §5.

use weavess_bench::datasets::real_world_standins;
use weavess_bench::report::{banner, f, Table};
use weavess_bench::{env_scale, env_threads};
use weavess_data::synthetic::standins;

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    banner(&format!("Table 3: dataset statistics (scale={scale})"));
    let paper: Vec<(String, f32)> = standins::all(scale)
        .iter()
        .map(|s| (s.name.to_string(), s.paper_lid))
        .collect();
    let sets = weavess_bench::select_datasets(real_world_standins(scale, threads));
    let mut t = Table::new(vec![
        "Dataset",
        "Dimension",
        "# Base",
        "# Query",
        "LID (paper)",
        "LID (measured)",
    ]);
    let mut measured: Vec<(String, f64)> = Vec::new();
    for ds in &sets {
        let lid = ds.lid(threads);
        let paper_lid = paper
            .iter()
            .find(|(n, _)| *n == ds.name)
            .map(|(_, l)| *l)
            .unwrap_or(f32::NAN);
        measured.push((ds.name.clone(), lid));
        t.row(vec![
            ds.name.clone(),
            ds.base.dim().to_string(),
            ds.base.len().to_string(),
            ds.queries.len().to_string(),
            f(paper_lid as f64, 1),
            f(lid, 1),
        ]);
    }
    t.print();
    let path = t.write_csv("table03_datasets").expect("write csv");
    println!("csv: {}", path.display());

    // Rank agreement between paper LID and measured LID.
    let mut by_paper: Vec<&String> = paper.iter().map(|(n, _)| n).collect();
    by_paper.sort_by(|a, b| {
        let la = paper.iter().find(|(n, _)| n == *a).unwrap().1;
        let lb = paper.iter().find(|(n, _)| n == *b).unwrap().1;
        la.total_cmp(&lb)
    });
    let mut by_measured: Vec<&String> = measured.iter().map(|(n, _)| n).collect();
    by_measured.sort_by(|a, b| {
        let la = measured.iter().find(|(n, _)| n == *a).unwrap().1;
        let lb = measured.iter().find(|(n, _)| n == *b).unwrap().1;
        la.total_cmp(&lb)
    });
    let agree = by_paper
        .iter()
        .zip(&by_measured)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "difficulty-order agreement: {agree}/{} positions",
        by_paper.len()
    );
}
