//! Distance-kernel microbenchmark — the perf trajectory's seed artifact.
//!
//! Measures, per dimension, the ns/distance of the scalar reference kernel,
//! the unrolled multi-accumulator kernel, and the batched
//! [`Dataset::dist_to_many`] path; then an end-to-end fixed-beam search
//! comparison (QPS and Recall@10) driving the same best-first discipline
//! through all three scoring paths. Emits `BENCH_kernels.json` at the repo
//! root alongside an aligned table on stdout.
//!
//! Both runs use integer-valued coordinates, so every partial sum is exact
//! in f32 and the three paths are bit-equal by construction — the results
//! identity reported here is a hard guarantee, not a tolerance check.

use std::hint::black_box;
use std::time::Instant;
use weavess_bench::env_threads;
use weavess_bench::report::{banner, f, Table};
use weavess_core::search::{beam_search, SearchScratch, SearchStats};
use weavess_data::distance::{scalar, unrolled};
use weavess_data::ground_truth::ground_truth;
use weavess_data::neighbor::{insert_into_pool, Neighbor};
use weavess_data::synthetic::MixtureSpec;
use weavess_data::Dataset;
use weavess_graph::base::exact_knng;
use weavess_graph::CsrGraph;

/// Dimensions for the ns/distance sweep (96/128 cover the acceptance bar;
/// 960 is GIST-shaped).
const DIMS: [usize; 6] = [8, 32, 96, 128, 256, 960];
/// Points scored per microbench pass.
const MICRO_N: usize = 4_096;
/// Element-op budget per kernel per dimension (keeps each timing ~0.1-0.3 s).
const MICRO_BUDGET: usize = 200_000_000;

/// Deterministic small-integer dataset: coordinates in [-16, 16].
fn integer_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut state = seed | 1;
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % 33) as f32 - 16.0
                })
                .collect()
        })
        .collect();
    Dataset::from_rows(&rows)
}

/// Times `passes` scans of `ds` against `query` through `kernel`; returns
/// ns per distance.
fn time_kernel(
    ds: &Dataset,
    query: &[f32],
    passes: usize,
    kernel: fn(&[f32], &[f32]) -> f32,
) -> f64 {
    let mut acc = 0.0f32;
    let t0 = Instant::now();
    for _ in 0..passes {
        for i in 0..ds.len() as u32 {
            acc += kernel(black_box(query), ds.point(i));
        }
    }
    let ns = t0.elapsed().as_nanos() as f64;
    black_box(acc);
    ns / (passes * ds.len()) as f64
}

/// Times the batched `dist_to_many` path; returns ns per distance.
fn time_batched(ds: &Dataset, query: &[f32], passes: usize) -> f64 {
    let ids: Vec<u32> = (0..ds.len() as u32).collect();
    let mut out: Vec<f32> = Vec::new();
    let mut acc = 0.0f32;
    let t0 = Instant::now();
    for _ in 0..passes {
        ds.dist_to_many(black_box(query), &ids, &mut out);
        acc += out.iter().sum::<f32>();
    }
    let ns = t0.elapsed().as_nanos() as f64;
    black_box(acc);
    ns / (passes * ds.len()) as f64
}

/// Best-first search over an explicit per-vertex scorer — the same
/// candidate-pool discipline as [`beam_search`], so given bit-equal
/// distances it returns bit-equal results. Used to drive the scalar and
/// unrolled kernels end-to-end without going through `Dataset`'s
/// compile-time kernel dispatch.
fn beam_search_with(
    g: &CsrGraph,
    n: usize,
    seeds: &[u32],
    beam: usize,
    visited: &mut Vec<bool>,
    dist: &mut dyn FnMut(u32) -> f32,
) -> Vec<Neighbor> {
    visited.clear();
    visited.resize(n, false);
    let mut pool: Vec<Neighbor> = Vec::new();
    let mut expanded: Vec<bool> = Vec::new();
    let push = |pool: &mut Vec<Neighbor>, expanded: &mut Vec<bool>, nb: Neighbor| {
        let pos = insert_into_pool(pool, beam, nb)?;
        expanded.insert(pos, false);
        expanded.truncate(pool.len());
        Some(pos)
    };
    for &s in seeds {
        if !std::mem::replace(&mut visited[s as usize], true) {
            push(&mut pool, &mut expanded, Neighbor::new(s, dist(s)));
        }
    }
    let mut k = 0usize;
    while k < pool.len() {
        if expanded[k] {
            k += 1;
            continue;
        }
        expanded[k] = true;
        let v = pool[k].id;
        let mut lowest = usize::MAX;
        for &u in g.neighbors(v) {
            if !std::mem::replace(&mut visited[u as usize], true) {
                if let Some(pos) = push(&mut pool, &mut expanded, Neighbor::new(u, dist(u))) {
                    lowest = lowest.min(pos);
                }
            }
        }
        if lowest <= k {
            k = lowest;
        } else {
            k += 1;
        }
    }
    pool
}

struct EndToEnd {
    qps_scalar: f64,
    qps_unrolled: f64,
    qps_batched: f64,
    recall_at_10: f64,
    identical: bool,
}

/// Fixed-beam end-to-end comparison on a clustered integer-quantized set.
fn end_to_end(dim: usize, n: usize, beam: usize, threads: usize) -> EndToEnd {
    // Clustered mixture, quantized to integers so all three scoring paths
    // are bit-equal (coords stay small; sums stay < 2^24).
    let spec = MixtureSpec {
        intrinsic_dim: Some(12),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(dim, n, 8, 5.0, 400)
    };
    let (fb, fq) = spec.generate();
    let quant = |ds: &Dataset| {
        let rows: Vec<Vec<f32>> = (0..ds.len() as u32)
            .map(|i| ds.point(i).iter().map(|x| x.round()).collect())
            .collect();
        Dataset::from_rows(&rows)
    };
    let base = quant(&fb);
    let queries = quant(&fq);
    let g = exact_knng(&base, 16, threads);
    let gt = ground_truth(&base, &queries, 10, threads);
    let seeds = [0u32, (n / 3) as u32, (2 * n / 3) as u32];
    let nq = queries.len() as u32;

    // Per-flavor search drivers, each returning all result-id lists.
    let run_kernel = |kernel: fn(&[f32], &[f32]) -> f32| -> (f64, Vec<Vec<u32>>) {
        let mut visited: Vec<bool> = Vec::new();
        let mut best = f64::INFINITY;
        let mut ids: Vec<Vec<u32>> = Vec::new();
        for _ in 0..3 {
            ids.clear();
            let t0 = Instant::now();
            for qi in 0..nq {
                let q = queries.point(qi);
                let res = beam_search_with(&g, n, &seeds, beam, &mut visited, &mut |u| {
                    kernel(q, base.point(u))
                });
                ids.push(res.iter().map(|nb| nb.id).collect());
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (nq as f64 / best, ids)
    };
    let (qps_scalar, ids_scalar) = run_kernel(scalar::squared_euclidean);
    let (qps_unrolled, ids_unrolled) = run_kernel(unrolled::squared_euclidean);

    // Batched path: the production beam search (dispatched kernels +
    // dist_to_many + reusable scratch).
    let mut scratch = SearchScratch::new(n);
    let mut stats = SearchStats::default();
    let mut best = f64::INFINITY;
    let mut ids_batched: Vec<Vec<u32>> = Vec::new();
    for _ in 0..3 {
        ids_batched.clear();
        let t0 = Instant::now();
        for qi in 0..nq {
            scratch.next_epoch();
            let res = beam_search(
                &base,
                &g,
                queries.point(qi),
                &seeds,
                beam,
                &mut scratch,
                &mut stats,
            );
            ids_batched.push(res.iter().map(|nb| nb.id).collect());
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let qps_batched = nq as f64 / best;

    let identical = ids_scalar == ids_unrolled && ids_unrolled == ids_batched;
    let mut hits = 0usize;
    let mut total = 0usize;
    for (res, truth) in ids_batched.iter().zip(gt.iter()) {
        hits += res.iter().take(10).filter(|id| truth.contains(id)).count();
        total += truth.len().min(10);
    }
    EndToEnd {
        qps_scalar,
        qps_unrolled,
        qps_batched,
        recall_at_10: hits as f64 / total as f64,
        identical,
    }
}

fn main() {
    let threads = env_threads();
    let mode = if cfg!(feature = "paper-fidelity") {
        "paper-fidelity"
    } else {
        "default"
    };
    banner(&format!("Distance kernel bench (mode={mode})"));

    let mut table = Table::new(vec![
        "dim",
        "scalar ns/d",
        "unrolled ns/d",
        "batched ns/d",
        "unrolled x",
        "batched x",
    ]);
    let mut micro_json = String::new();
    for &dim in &DIMS {
        let ds = integer_dataset(MICRO_N, dim, 0x5eed);
        let qds = integer_dataset(1, dim, 0xfeed);
        let query = qds.point(0);
        let passes = (MICRO_BUDGET / (MICRO_N * dim)).max(3);
        // Warm-up pass, then measure; best of 3 to shed scheduler noise.
        time_kernel(&ds, query, 1, scalar::squared_euclidean);
        let best3 =
            |mut m: Box<dyn FnMut() -> f64>| (0..3).map(|_| m()).fold(f64::INFINITY, f64::min);
        let s = {
            let (ds, q) = (&ds, query);
            best3(Box::new(move || {
                time_kernel(ds, q, passes, scalar::squared_euclidean)
            }))
        };
        let u = {
            let (ds, q) = (&ds, query);
            best3(Box::new(move || {
                time_kernel(ds, q, passes, unrolled::squared_euclidean)
            }))
        };
        let b = {
            let (ds, q) = (&ds, query);
            best3(Box::new(move || time_batched(ds, q, passes)))
        };
        table.row(vec![
            dim.to_string(),
            f(s, 2),
            f(u, 2),
            f(b, 2),
            f(s / u, 2),
            f(s / b, 2),
        ]);
        micro_json.push_str(&format!(
            "    {{\"dim\": {dim}, \"scalar_ns\": {s:.3}, \"unrolled_ns\": {u:.3}, \
             \"batched_ns\": {b:.3}, \"speedup_unrolled\": {su:.3}, \"speedup_batched\": {sb:.3}}},\n",
            su = s / u,
            sb = s / b,
        ));
    }
    table.print();
    micro_json.truncate(micro_json.trim_end_matches(",\n").len());

    // End-to-end: fixed beam, production-scale-ish harness set.
    let (e2e_dim, e2e_n, e2e_beam) = (128usize, 6_000usize, 64usize);
    println!("\nend-to-end: dim={e2e_dim} n={e2e_n} beam={e2e_beam} (single-thread search)");
    let e = end_to_end(e2e_dim, e2e_n, e2e_beam, threads);
    let mut t2 = Table::new(vec!["path", "QPS", "Recall@10", "identical"]);
    t2.row(vec![
        "scalar".to_string(),
        f(e.qps_scalar, 0),
        f(e.recall_at_10, 4),
        e.identical.to_string(),
    ]);
    t2.row(vec![
        "unrolled".to_string(),
        f(e.qps_unrolled, 0),
        f(e.recall_at_10, 4),
        e.identical.to_string(),
    ]);
    t2.row(vec![
        "batched".to_string(),
        f(e.qps_batched, 0),
        f(e.recall_at_10, 4),
        e.identical.to_string(),
    ]);
    t2.print();

    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"mode\": \"{mode}\",\n  \"micro_n\": {MICRO_N},\n  \
         \"ns_per_distance\": [\n{micro_json}\n  ],\n  \"end_to_end\": {{\n    \
         \"dim\": {e2e_dim}, \"n\": {e2e_n}, \"beam\": {e2e_beam},\n    \
         \"qps_scalar\": {:.1}, \"qps_unrolled\": {:.1}, \"qps_batched\": {:.1},\n    \
         \"qps_speedup_batched\": {:.3}, \"recall_at_10\": {:.4}, \"results_identical\": {}\n  }}\n}}\n",
        e.qps_scalar,
        e.qps_unrolled,
        e.qps_batched,
        e.qps_batched / e.qps_scalar,
        e.recall_at_10,
        e.identical,
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json");
}
