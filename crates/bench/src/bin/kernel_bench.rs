//! Distance-kernel microbenchmark — the perf trajectory's seed artifact.
//!
//! Measures, per dimension, the ns/distance of the scalar reference
//! kernel, the unrolled multi-accumulator kernel, the explicit AVX2+FMA
//! simd kernel, and the batched [`Dataset::dist_to_many`] path; then an
//! end-to-end fixed-beam search comparison (QPS and Recall@10) driving
//! the production beam search under each runtime-forced [`KernelTier`],
//! plus a fused-SQ8 row (quantized codes scored in-arena through the
//! asymmetric residual kernel). Emits `BENCH_kernels.json` at the repo
//! root alongside aligned tables on stdout.
//!
//! The f32 runs use integer-valued coordinates, so every partial sum is
//! exact in f32 and all tiers are bit-equal by construction — the
//! results-identity column is a hard guarantee, not a tolerance check.
//! SQ8 scoring multiplies codes by fractional step sizes, so its results
//! are tier-stable only to tolerance and are reported per tier.
//!
//! `--smoke` runs a reduced-budget version and exits non-zero if any
//! tier pair diverges beyond 1e-4 relative tolerance on sampled
//! distances, if the forced-tier searches disagree on integer data, or
//! if the simd kernel times slower than unrolled at dim >= 96 on a host
//! where it is available.

use std::hint::black_box;
use std::time::Instant;
use weavess_bench::env_threads;
use weavess_bench::report::{banner, f, Table};
use weavess_core::quantized::QuantizedIndex;
use weavess_core::search::{beam_search, SearchScratch, SearchStats};
use weavess_data::distance::{scalar, simd, unrolled, KernelTier};
use weavess_data::ground_truth::ground_truth;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::{host_features, Dataset};
use weavess_graph::base::exact_knng;

/// Dimensions for the ns/distance sweep (96/128 cover the acceptance bar;
/// 960 is GIST-shaped).
const DIMS: [usize; 6] = [8, 32, 96, 128, 256, 960];
/// Points scored per microbench pass.
const MICRO_N: usize = 4_096;
/// Element-op budget per kernel per dimension (keeps each timing ~0.1-0.3 s).
const MICRO_BUDGET: usize = 200_000_000;
/// Reduced budget for `--smoke` (CI gate, not a publishable number).
const SMOKE_BUDGET: usize = 16_000_000;

/// Deterministic small-integer dataset: coordinates in [-16, 16].
fn integer_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut state = seed | 1;
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % 33) as f32 - 16.0
                })
                .collect()
        })
        .collect();
    Dataset::from_rows(&rows)
}

/// Times `passes` scans of `ds` against `query` through `kernel`; returns
/// ns per distance.
fn time_kernel(
    ds: &Dataset,
    query: &[f32],
    passes: usize,
    kernel: fn(&[f32], &[f32]) -> f32,
) -> f64 {
    let mut acc = 0.0f32;
    let t0 = Instant::now();
    for _ in 0..passes {
        for i in 0..ds.len() as u32 {
            acc += kernel(black_box(query), ds.point(i));
        }
    }
    let ns = t0.elapsed().as_nanos() as f64;
    black_box(acc);
    ns / (passes * ds.len()) as f64
}

/// Times the batched `dist_to_many` path; returns ns per distance.
fn time_batched(ds: &Dataset, query: &[f32], passes: usize) -> f64 {
    let ids: Vec<u32> = (0..ds.len() as u32).collect();
    let mut out: Vec<f32> = Vec::new();
    let mut acc = 0.0f32;
    let t0 = Instant::now();
    for _ in 0..passes {
        ds.dist_to_many(black_box(query), &ids, &mut out);
        acc += out.iter().sum::<f32>();
    }
    let ns = t0.elapsed().as_nanos() as f64;
    black_box(acc);
    ns / (passes * ds.len()) as f64
}

/// The tiers this process can force (paper-fidelity pins scalar).
fn runnable_tiers() -> Vec<KernelTier> {
    if cfg!(feature = "paper-fidelity") {
        vec![KernelTier::Scalar]
    } else {
        KernelTier::ALL
            .into_iter()
            .filter(|t| t.is_available())
            .collect()
    }
}

fn force(tier: KernelTier) {
    if !cfg!(feature = "paper-fidelity") {
        KernelTier::force(tier).expect("forcing an available tier");
    }
}

struct TierRun {
    tier: KernelTier,
    qps_f32: f64,
    recall_f32: f64,
    qps_fused_sq8: f64,
    recall_fused_sq8: f64,
    ids_f32: Vec<Vec<u32>>,
}

struct EndToEnd {
    runs: Vec<TierRun>,
    f32_identical: bool,
}

/// Fixed-beam end-to-end comparison on a clustered integer-quantized set:
/// the production beam search under each forced tier, over both the raw
/// f32 dataset and a fused-SQ8 `QuantizedIndex` arena.
fn end_to_end(dim: usize, n: usize, beam: usize, threads: usize, reps: usize) -> EndToEnd {
    // Clustered mixture, quantized to integers so the f32 scoring paths
    // are bit-equal across tiers (coords stay small; sums stay < 2^24).
    let spec = MixtureSpec {
        intrinsic_dim: Some(12),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(dim, n, 8, 5.0, 400)
    };
    let (fb, fq) = spec.generate();
    let quant = |ds: &Dataset| {
        let rows: Vec<Vec<f32>> = (0..ds.len() as u32)
            .map(|i| ds.point(i).iter().map(|x| x.round()).collect())
            .collect();
        Dataset::from_rows(&rows)
    };
    let base = quant(&fb);
    let queries = quant(&fq);
    let g = exact_knng(&base, 16, threads);
    let gt = ground_truth(&base, &queries, 10, threads);
    let seeds = [0u32, (n / 3) as u32, (2 * n / 3) as u32];
    let nq = queries.len() as u32;
    let fused = QuantizedIndex::new(g.clone(), &base, seeds.to_vec()).with_fused_layout();

    let recall_of = |ids: &[Vec<u32>]| {
        let mut hits = 0usize;
        let mut total = 0usize;
        for (res, truth) in ids.iter().zip(gt.iter()) {
            hits += res.iter().take(10).filter(|id| truth.contains(id)).count();
            total += truth.len().min(10);
        }
        hits as f64 / total as f64
    };

    let mut runs = Vec::new();
    for tier in runnable_tiers() {
        force(tier);
        let mut scratch = SearchScratch::new(n);
        let mut stats = SearchStats::default();

        // Raw f32 path.
        let mut best = f64::INFINITY;
        let mut ids_f32: Vec<Vec<u32>> = Vec::new();
        for _ in 0..reps {
            ids_f32.clear();
            let t0 = Instant::now();
            for qi in 0..nq {
                scratch.next_epoch();
                let res = beam_search(
                    &base,
                    &g,
                    queries.point(qi),
                    &seeds,
                    beam,
                    &mut scratch,
                    &mut stats,
                );
                ids_f32.push(res.iter().map(|nb| nb.id).collect());
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let qps_f32 = nq as f64 / best;

        // Fused-SQ8 path: same beam discipline, codes scored in-arena via
        // the asymmetric residual kernel of the forced tier.
        let mut best = f64::INFINITY;
        let mut ids_sq8: Vec<Vec<u32>> = Vec::new();
        for _ in 0..reps {
            ids_sq8.clear();
            let t0 = Instant::now();
            for qi in 0..nq {
                let res = fused.search_quantized(queries.point(qi), beam, &mut scratch, &mut stats);
                ids_sq8.push(res.iter().map(|nb| nb.id).collect());
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let qps_fused_sq8 = nq as f64 / best;

        runs.push(TierRun {
            tier,
            qps_f32,
            recall_f32: recall_of(&ids_f32),
            qps_fused_sq8,
            recall_fused_sq8: recall_of(&ids_sq8),
            ids_f32,
        });
    }
    force(KernelTier::detect());

    let f32_identical = runs.windows(2).all(|w| w[0].ids_f32 == w[1].ids_f32);
    EndToEnd {
        runs,
        f32_identical,
    }
}

/// Samples kernel agreement across tiers on non-integer data; returns
/// divergence descriptions (empty = all within 1e-4 relative).
fn agreement_failures() -> Vec<String> {
    let mut fails = Vec::new();
    for &dim in &[7usize, 96, 128, 237] {
        let (ds, qs) = MixtureSpec::table10(dim, 64, 2, 5.0, 4).generate();
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            for i in 0..ds.len() as u32 {
                let p = ds.point(i);
                let s = scalar::squared_euclidean(q, p);
                let u = unrolled::squared_euclidean(q, p);
                let v = simd::squared_euclidean(q, p);
                let tol = 1e-4 * s.abs().max(1.0);
                if (s - u).abs() > tol || (s - v).abs() > tol {
                    fails.push(format!(
                        "dim {dim} q{qi} p{i}: scalar={s} unrolled={u} simd={v}"
                    ));
                }
            }
        }
    }
    fails
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = env_threads();
    let mode = if cfg!(feature = "paper-fidelity") {
        "paper-fidelity"
    } else {
        "default"
    };
    let features = host_features();
    let default_tier = KernelTier::detect();
    let simd_avail = KernelTier::Simd.is_available();
    banner(&format!(
        "Distance kernel bench (mode={mode}, tier={default_tier}, host=[{features}]{})",
        if smoke { ", SMOKE" } else { "" }
    ));

    let budget = if smoke { SMOKE_BUDGET } else { MICRO_BUDGET };
    let mut table = Table::new(vec![
        "dim",
        "scalar ns/d",
        "unrolled ns/d",
        "simd ns/d",
        "batched ns/d",
        "simd x",
        "batched x",
    ]);
    let mut micro_json = String::new();
    let mut simd_regressions = Vec::new();
    for &dim in &DIMS {
        let ds = integer_dataset(MICRO_N, dim, 0x5eed);
        let qds = integer_dataset(1, dim, 0xfeed);
        let query = qds.point(0);
        let passes = (budget / (MICRO_N * dim)).max(3);
        // Warm-up pass, then measure; best of 3 to shed scheduler noise.
        time_kernel(&ds, query, 1, scalar::squared_euclidean);
        let best3 = |kernel: fn(&[f32], &[f32]) -> f32| {
            (0..3)
                .map(|_| time_kernel(&ds, query, passes, kernel))
                .fold(f64::INFINITY, f64::min)
        };
        let s = best3(scalar::squared_euclidean);
        let u = best3(unrolled::squared_euclidean);
        let v = best3(simd::squared_euclidean);
        let b = (0..3)
            .map(|_| time_batched(&ds, query, passes))
            .fold(f64::INFINITY, f64::min);
        if simd_avail && dim >= 96 && v > u {
            simd_regressions.push(format!("dim {dim}: simd {v:.2} ns > unrolled {u:.2} ns"));
        }
        table.row(vec![
            dim.to_string(),
            f(s, 2),
            f(u, 2),
            f(v, 2),
            f(b, 2),
            f(u / v, 2),
            f(s / b, 2),
        ]);
        micro_json.push_str(&format!(
            "    {{\"dim\": {dim}, \"scalar_ns\": {s:.3}, \"unrolled_ns\": {u:.3}, \
             \"simd_ns\": {v:.3}, \"batched_ns\": {b:.3}, \"speedup_unrolled\": {su:.3}, \
             \"speedup_simd\": {sv:.3}, \"speedup_batched\": {sb:.3}}},\n",
            su = s / u,
            sv = u / v,
            sb = s / b,
        ));
    }
    table.print();
    micro_json.truncate(micro_json.trim_end_matches(",\n").len());

    // End-to-end: fixed beam, production beam search under each forced
    // tier, raw f32 and fused SQ8.
    let (e2e_dim, e2e_n, e2e_beam, reps) = if smoke {
        (128usize, 2_000usize, 32usize, 2usize)
    } else {
        (128usize, 6_000usize, 64usize, 3usize)
    };
    println!("\nend-to-end: dim={e2e_dim} n={e2e_n} beam={e2e_beam} (single-thread search)");
    let e = end_to_end(e2e_dim, e2e_n, e2e_beam, threads, reps);
    let mut t2 = Table::new(vec![
        "tier",
        "QPS f32",
        "R@10 f32",
        "QPS fused-SQ8",
        "R@10 fused-SQ8",
        "identical",
    ]);
    let mut tier_json = String::new();
    for r in &e.runs {
        t2.row(vec![
            r.tier.to_string(),
            f(r.qps_f32, 0),
            f(r.recall_f32, 4),
            f(r.qps_fused_sq8, 0),
            f(r.recall_fused_sq8, 4),
            e.f32_identical.to_string(),
        ]);
        tier_json.push_str(&format!(
            "      {{\"tier\": \"{}\", \"qps_f32\": {:.1}, \"recall_f32\": {:.4}, \
             \"qps_fused_sq8\": {:.1}, \"recall_fused_sq8\": {:.4}}},\n",
            r.tier, r.qps_f32, r.recall_f32, r.qps_fused_sq8, r.recall_fused_sq8,
        ));
    }
    t2.print();
    tier_json.truncate(tier_json.trim_end_matches(",\n").len());

    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"mode\": \"{mode}\",\n  \"smoke\": {smoke},\n  \
         \"host_features\": \"{features}\",\n  \"kernel_tier_default\": \"{default_tier}\",\n  \
         \"simd_available\": {simd_avail},\n  \"micro_n\": {MICRO_N},\n  \
         \"ns_per_distance\": [\n{micro_json}\n  ],\n  \"end_to_end\": {{\n    \
         \"dim\": {e2e_dim}, \"n\": {e2e_n}, \"beam\": {e2e_beam},\n    \
         \"tiers\": [\n{tier_json}\n    ],\n    \"f32_results_identical\": {}\n  }}\n}}\n",
        e.f32_identical,
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json");

    // Gates: agreement always checked; perf gate only meaningful with the
    // simd tier present. Divergence or regression fails the process so CI
    // can block the merge.
    let fails = agreement_failures();
    if !fails.is_empty() {
        eprintln!("TIER DIVERGENCE ({} samples):", fails.len());
        for s in fails.iter().take(10) {
            eprintln!("  {s}");
        }
        std::process::exit(1);
    }
    if !e.f32_identical {
        eprintln!("FORCED-TIER SEARCHES DIVERGED on integer data");
        std::process::exit(1);
    }
    if smoke && !simd_regressions.is_empty() {
        eprintln!("SIMD REGRESSION vs unrolled:");
        for s in &simd_regressions {
            eprintln!("  {s}");
        }
        std::process::exit(1);
    }
    println!("gates: agreement ok, forced-tier identity ok{}", {
        if smoke {
            ", simd>=unrolled at dim>=96 ok"
        } else {
            ""
        }
    });
}
