//! Search-performance evaluation (§5.3) over all algorithms and all
//! stand-in datasets, from one build pass:
//!
//! - **Figures 7 & 20** — QPS vs Recall@10 curves (single thread);
//! - **Figures 8 & 21** — Speedup (=|S|/NDC) vs Recall@10 curves;
//! - **Table 5** — candidate set size (CS), query path length (PL), and
//!   memory overhead (MO) at the target recall (0.90 at harness scale;
//!   a trailing `+` marks an algorithm that hit its recall ceiling first,
//!   like the paper's `+` entries);
//! - **Batch serving** — QPS and p50/p95/p99 latency through the
//!   concurrent [`weavess_core::serve::QueryEngine`] at the Table 5 beam,
//!   measured at 1 worker and at `WEAVESS_QUERY_THREADS` workers.

use weavess_bench::datasets::real_world_standins;
use weavess_bench::report::{banner, f, mb, Table};
use weavess_bench::runner::{
    at_target_recall, build_timed, default_beams, degree_percentile, route_histograms,
    run_batch_at_beam, sweep,
};
use weavess_bench::{env_query_threads, env_scale, env_threads, select_algos};
use weavess_core::algorithms::Algo;

const K: usize = 10;
const TARGET_RECALL: f64 = 0.99;

fn main() {
    let scale = env_scale();
    let threads = env_threads();
    let algos = select_algos(Algo::all());
    let sets = weavess_bench::select_datasets(real_world_standins(scale, threads));
    banner(&format!(
        "Search evaluation: {} algorithms x {} datasets (scale={scale}, Recall@{K})",
        algos.len(),
        sets.len()
    ));

    let mut curves = Table::new(vec![
        "Dataset",
        "Alg",
        "beam",
        "Recall@10",
        "QPS",
        "Speedup",
        "NDC",
        "PL",
    ]);
    let mut table5 = Table::new(vec![
        "Dataset", "Alg", "CS", "PL", "MO(MB)", "Recall", "D_p50", "D_p99", "H_p50", "H_p99",
        "E2I_p50", "E2I_p99",
    ]);
    let query_threads = env_query_threads();
    let mut serving = Table::new(vec![
        "Dataset",
        "Alg",
        "beam",
        "threads",
        "Recall@10",
        "QPS",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)",
    ]);

    for ds in &sets {
        banner(&format!("dataset {}", ds.name));
        for &algo in &algos {
            let report = build_timed(algo, ds, threads, 1);
            let points = sweep(report.index.as_ref(), ds, K, &default_beams(K));
            for p in &points {
                curves.row(vec![
                    ds.name.clone(),
                    algo.name().to_string(),
                    p.beam.to_string(),
                    f(p.recall, 4),
                    f(p.qps, 0),
                    f(p.speedup, 1),
                    f(p.ndc, 0),
                    f(p.hops, 1),
                ]);
            }
            let (pt, reached) = at_target_recall(report.index.as_ref(), ds, K, TARGET_RECALL);
            let cs = if reached {
                pt.beam.to_string()
            } else {
                format!("{}+", pt.beam)
            };
            // Out-degree percentiles alongside the search stats: degree is
            // what each expansion pays per hop, so the two read together.
            let hist = report.index.graph().degree_histogram();
            // Route-shape percentiles at the same beam: hop counts and the
            // entry-to-first-improvement tail (how much of each route is
            // spent escaping the entry region).
            let routes = route_histograms(report.index.as_ref(), ds, K, pt.beam);
            table5.row(vec![
                ds.name.clone(),
                algo.name().to_string(),
                cs,
                f(pt.hops, 0),
                mb(report.index_bytes + ds.base.memory_bytes()),
                f(pt.recall, 3),
                degree_percentile(&hist, 0.50).to_string(),
                degree_percentile(&hist, 0.99).to_string(),
                routes.hops.percentile(0.50).to_string(),
                routes.hops.percentile(0.99).to_string(),
                routes.entry_to_improve.percentile(0.50).to_string(),
                routes.entry_to_improve.percentile(0.99).to_string(),
            ]);
            let mut worker_counts = vec![1usize];
            if query_threads > 1 {
                worker_counts.push(query_threads);
            }
            for &w in &worker_counts {
                let sp = run_batch_at_beam(report.index.as_ref(), ds, K, pt.beam, w);
                serving.row(vec![
                    ds.name.clone(),
                    algo.name().to_string(),
                    sp.beam.to_string(),
                    sp.threads.to_string(),
                    f(sp.recall, 4),
                    f(sp.qps, 0),
                    f(sp.p50_ms, 3),
                    f(sp.p95_ms, 3),
                    f(sp.p99_ms, 3),
                ]);
            }
            eprintln!(
                "{} on {}: best recall {:.3} at beam {}",
                algo.name(),
                ds.name,
                points.last().map(|p| p.recall).unwrap_or(0.0),
                points.last().map(|p| p.beam).unwrap_or(0)
            );
        }
    }

    banner("Figures 7/8/20/21: QPS & Speedup vs Recall@10 (all series)");
    curves.print();
    curves.write_csv("fig07_08_search_curves").expect("csv");
    banner(&format!(
        "Table 5: CS / PL / MO at Recall@10 >= {TARGET_RECALL} ('+' = ceiling)"
    ));
    table5.print();
    table5.write_csv("table05_search_stats").expect("csv");
    let serving_title = if query_threads > 1 {
        format!("Batch serving at the Table 5 beam: QPS and latency, 1 vs {query_threads} workers")
    } else {
        "Batch serving at the Table 5 beam: QPS and latency, 1 worker".to_string()
    };
    banner(&serving_title);
    serving.print();
    serving.write_csv("serving_batch").expect("csv");
}
