//! Construction-parallelism benchmark — the `BENCH_build.json` artifact.
//!
//! Sweeps construction thread counts per algorithm on a clustered
//! synthetic dataset and reports, per algorithm: wall-clock build seconds
//! at each thread count, the speedup over single-threaded, and a hard
//! **identity** check — an FNV-1a digest of the built adjacency that must
//! not move with the thread count (the `core::parallel` determinism
//! contract, also enforced by `crates/core/tests/build_determinism.rs`).
//!
//! An HNSW search sanity block then confirms the parallel build changes
//! *nothing* downstream: fixed-beam Recall@10 and QPS measured over the
//! graph built at the highest thread count (byte-identical to the
//! 1-thread graph, so one measurement speaks for all).
//!
//! `--smoke` shrinks the dataset and sweep for CI. `WEAVESS_ALGOS`
//! filters the algorithm set; the default sweeps the builders with
//! substantial parallel phases. The host's `available_parallelism` is
//! recorded so speedups read honestly on small machines.

use std::time::Instant;
use weavess_bench::report::{banner, f, Table};
use weavess_bench::select_algos;
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::algorithms::nssg::{self, NssgParams};
use weavess_core::algorithms::oa::{self, OaParams};
use weavess_core::algorithms::Algo;
use weavess_core::index::{AnnIndex, FlatIndex, SearchContext};
use weavess_data::ground_truth::ground_truth;
use weavess_data::metrics::recall;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::Dataset;

const SEED: u64 = 7;

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn adjacency_digest(index: &dyn AnnIndex) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325_u64;
    for l in &index.graph().to_lists() {
        fnv1a(&mut digest, &(l.len() as u32).to_le_bytes());
        for &x in l {
            fnv1a(&mut digest, &x.to_le_bytes());
        }
    }
    digest
}

struct AlgoRow {
    name: &'static str,
    seconds: Vec<f64>, // aligned with the thread sweep
    identical: bool,
}

struct RnnRow {
    name: &'static str,
    nnd_seconds: Vec<f64>, // aligned with the thread sweep
    rnn_seconds: Vec<f64>, // aligned with the thread sweep
    nnd_recall: f64,
    rnn_recall: f64,
    identical: bool,
}

/// Fixed-beam Recall@10 of one index over the query set.
fn index_recall(
    idx: &FlatIndex,
    base: &Dataset,
    queries: &Dataset,
    gt: &[Vec<u32>],
    beam: usize,
) -> f64 {
    let mut ctx = SearchContext::new(base.len());
    let mut total = 0.0;
    for qi in 0..queries.len() as u32 {
        let r: Vec<u32> = idx
            .search(base, queries.point(qi), 10, beam, &mut ctx)
            .iter()
            .map(|x| x.id)
            .collect();
        total += recall(&r, &gt[qi as usize]);
    }
    total / queries.len() as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (n, dim, sweep): (usize, usize, Vec<usize>) = if smoke {
        (1_200, 16, vec![1, 2])
    } else {
        (10_000, 32, vec![1, 2, 4, 8])
    };
    let mode = if cfg!(feature = "paper-fidelity") {
        "paper-fidelity"
    } else {
        "default"
    };
    banner(&format!(
        "Construction parallelism bench (mode={mode}, n={n}, host cores={host})"
    ));

    // Default to the builders with substantial parallel phases; smoke
    // trims further. WEAVESS_ALGOS overrides either list.
    let default_names: &[&str] = if smoke {
        &["HNSW", "NSW", "KGraph", "NSG"]
    } else {
        &[
            "HNSW", "NSW", "KGraph", "NSG", "NSSG", "Vamana", "HCNNG", "OA",
        ]
    };
    let algos: Vec<Algo> = if std::env::var("WEAVESS_ALGOS").is_ok() {
        select_algos(Algo::all())
    } else {
        Algo::all()
            .iter()
            .copied()
            .filter(|a| default_names.contains(&a.name()))
            .collect()
    };

    let spec = MixtureSpec {
        intrinsic_dim: Some(12),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(dim, n, 8, 5.0, if smoke { 50 } else { 200 })
    };
    let (base, queries) = spec.generate();

    let mut header = vec!["algo".to_string()];
    header.extend(sweep.iter().map(|t| format!("t={t} (s)")));
    header.push("speedup".to_string());
    header.push("identical".to_string());
    let mut table = Table::new(header);

    let mut rows: Vec<AlgoRow> = Vec::new();
    for &algo in &algos {
        let mut seconds = Vec::with_capacity(sweep.len());
        let mut digests = Vec::with_capacity(sweep.len());
        for &t in &sweep {
            let t0 = Instant::now();
            let idx = algo.build(&base, t, SEED);
            seconds.push(t0.elapsed().as_secs_f64());
            digests.push(adjacency_digest(idx.as_ref()));
        }
        let identical = digests.windows(2).all(|w| w[0] == w[1]);
        assert!(
            identical,
            "{} built different graphs across thread counts: {digests:x?}",
            algo.name()
        );
        let speedup = seconds[0] / seconds.last().unwrap();
        let mut row = vec![algo.name().to_string()];
        row.extend(seconds.iter().map(|&s| f(s, 2)));
        row.push(f(speedup, 2));
        row.push(identical.to_string());
        table.row(row);
        rows.push(AlgoRow {
            name: algo.name(),
            seconds,
            identical,
        });
    }
    table.print();

    let beam = 80usize;
    let gt = ground_truth(&base, &queries, 10, host);

    // --- RNN-Descent C1 vs NN-Descent C1 (ROADMAP item 1): the same
    // tuned NSG/NSSG/OA builds with exactly one component swapped
    // (`with_rnn_c1`). RNN builds sweep the same thread counts under the
    // same digest-identity assertion (non-zero exit on divergence), and
    // fixed-beam Recall@10 of both variants reports the quality cost of
    // the speedup. NN-Descent seconds reuse the sweep above when the
    // algorithm was in it. ---
    type BuildVariant<'a> = Box<dyn Fn(usize, bool) -> FlatIndex + 'a>;
    let rnn_algos: Vec<(&'static str, BuildVariant)> = {
        let mut v: Vec<(&'static str, BuildVariant)> = vec![(
            "NSG",
            Box::new(|t, rnn| {
                let p = NsgParams::tuned(t, SEED);
                nsg::build(&base, &if rnn { p.with_rnn_c1() } else { p })
            }),
        )];
        if !smoke {
            v.push((
                "NSSG",
                Box::new(|t, rnn| {
                    let p = NssgParams::tuned(t, SEED);
                    nssg::build(&base, &if rnn { p.with_rnn_c1() } else { p })
                }),
            ));
            v.push((
                "OA",
                Box::new(|t, rnn| {
                    let p = OaParams::tuned(t, SEED);
                    oa::build(&base, &if rnn { p.with_rnn_c1() } else { p })
                }),
            ));
        }
        v
    };
    let mut rnn_rows: Vec<RnnRow> = Vec::new();
    for (name, build) in &rnn_algos {
        // NN-Descent baseline seconds: from the main sweep when present
        // (same tuned params), otherwise measured here.
        let nnd_seconds: Vec<f64> = match rows.iter().find(|r| &r.name == name) {
            Some(r) => r.seconds.clone(),
            None => sweep
                .iter()
                .map(|&t| {
                    let t0 = Instant::now();
                    std::hint::black_box(build(t, false));
                    t0.elapsed().as_secs_f64()
                })
                .collect(),
        };
        let nnd_idx = build(*sweep.last().unwrap(), false);
        let nnd_recall = index_recall(&nnd_idx, &base, &queries, &gt, beam);
        drop(nnd_idx);

        let mut rnn_seconds = Vec::with_capacity(sweep.len());
        let mut digests = Vec::with_capacity(sweep.len());
        let mut last = None;
        for &t in &sweep {
            let t0 = Instant::now();
            let idx = build(t, true);
            rnn_seconds.push(t0.elapsed().as_secs_f64());
            digests.push(adjacency_digest(&idx));
            last = Some(idx);
        }
        let identical = digests.windows(2).all(|w| w[0] == w[1]);
        assert!(
            identical,
            "{name}(RNN-C1) built different graphs across thread counts: {digests:x?}"
        );
        let rnn_recall = index_recall(&last.unwrap(), &base, &queries, &gt, beam);
        rnn_rows.push(RnnRow {
            name,
            nnd_seconds,
            rnn_seconds,
            nnd_recall,
            rnn_recall,
            identical,
        });
    }
    let mut rnn_table = Table::new(vec![
        "algo".into(),
        "NND (s)".into(),
        "RNN (s)".into(),
        "speedup".into(),
        format!("NND R@10 (beam {beam})"),
        "RNN R@10".into(),
        "identical".into(),
    ]);
    // Each engine's build time is the minimum over its thread sweep:
    // best-vs-best is the honest "end-to-end build time" comparison on
    // any host (on the 1-core harness box it doubles as a min-of-N
    // noise filter, since every sweep point is a repeat measurement).
    let min_secs = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    for r in &rnn_rows {
        rnn_table.row(vec![
            r.name.to_string(),
            f(min_secs(&r.nnd_seconds), 2),
            f(min_secs(&r.rnn_seconds), 2),
            f(min_secs(&r.nnd_seconds) / min_secs(&r.rnn_seconds), 2),
            f(r.nnd_recall, 4),
            f(r.rnn_recall, 4),
            r.identical.to_string(),
        ]);
    }
    banner("RNN-Descent C1 vs NN-Descent C1 (one component swapped, C2-C7 unchanged)");
    rnn_table.print();

    // HNSW search sanity: recall/QPS on the widest-sweep build. The graph
    // is byte-identical to every other thread count's, so this one
    // measurement certifies them all.
    let hnsw_sanity = rows.iter().any(|r| r.name == "HNSW").then(|| {
        let idx = Algo::Hnsw.build(&base, *sweep.last().unwrap(), SEED);
        let mut ctx = SearchContext::new(base.len());
        let mut total = 0.0;
        let t0 = Instant::now();
        for qi in 0..queries.len() as u32 {
            let r: Vec<u32> = idx
                .search(&base, queries.point(qi), 10, beam, &mut ctx)
                .iter()
                .map(|x| x.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let secs = t0.elapsed().as_secs_f64();
        (total / queries.len() as f64, queries.len() as f64 / secs)
    });
    if let Some((r10, qps)) = hnsw_sanity {
        println!(
            "\nHNSW search sanity: beam={beam} Recall@10={} QPS={}",
            f(r10, 4),
            f(qps, 0)
        );
    }

    // JSON artifact, kernel_bench-style.
    let sweep_json = sweep
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let mut algo_json = String::new();
    for r in &rows {
        let secs = r
            .seconds
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        algo_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"seconds\": [{secs}], \"speedup\": {:.3}, \"identical\": {}}},\n",
            r.name,
            r.seconds[0] / r.seconds.last().unwrap(),
            r.identical,
        ));
    }
    algo_json.truncate(algo_json.trim_end_matches(",\n").len());
    let mut rnn_json = String::new();
    for r in &rnn_rows {
        let fmt_secs = |v: &[f64]| {
            v.iter()
                .map(|s| format!("{s:.3}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        rnn_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"nnd_seconds\": [{}], \"rnn_seconds\": [{}], \
             \"speedup\": {:.3}, \"nnd_recall_at_10\": {:.4}, \"rnn_recall_at_10\": {:.4}, \
             \"recall_delta\": {:.4}, \"identical\": {}}},\n",
            r.name,
            fmt_secs(&r.nnd_seconds),
            fmt_secs(&r.rnn_seconds),
            min_secs(&r.nnd_seconds) / min_secs(&r.rnn_seconds),
            r.nnd_recall,
            r.rnn_recall,
            r.nnd_recall - r.rnn_recall,
            r.identical,
        ));
    }
    rnn_json.truncate(rnn_json.trim_end_matches(",\n").len());
    let search_json = match hnsw_sanity {
        Some((r10, qps)) => {
            format!("{{\"beam\": {beam}, \"recall_at_10\": {r10:.4}, \"qps\": {qps:.1}}}")
        }
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"build\",\n  \"mode\": \"{mode}\",\n  \"smoke\": {smoke},\n  \
         \"host_available_parallelism\": {host},\n  \"n\": {n},\n  \"dim\": {dim},\n  \
         \"threads_swept\": [{sweep_json}],\n  \"algorithms\": [\n{algo_json}\n  ],\n  \
         \"rnn_c1\": [\n{rnn_json}\n  ],\n  \
         \"hnsw_search_sanity\": {search_json}\n}}\n"
    );
    std::fs::write("BENCH_build.json", &json).expect("write BENCH_build.json");
    println!("\nwrote BENCH_build.json");
}
