//! Terminal (ASCII) line plots — figure-like rendering for the
//! recall/QPS/speedup curves without a plotting dependency.

/// One plotted series: a label and its (x, y) points.
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (unsorted allowed; plotted as a scatter of markers).
    pub points: Vec<(f64, f64)>,
}

/// Marker glyphs cycled across series.
const MARKS: &[char] = &[
    'o', '+', 'x', '*', '#', '@', '%', '&', '$', '^', '~', '=', 'A', 'B', 'C', 'D', 'E',
];

/// Renders series into a `width × height` character grid with axis labels.
/// `log_y` plots the y axis in log10 (the paper's QPS/speedup axes).
pub fn ascii_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
    log_y: bool,
) -> String {
    let width = width.clamp(20, 200);
    let height = height.clamp(8, 60);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|&(x, y)| x.is_finite() && y.is_finite() && (!log_y || y > 0.0))
        .collect();
    if all.is_empty() {
        return format!("{title}: (no finite points)\n");
    }
    let ty = |y: f64| if log_y { y.log10() } else { y };
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(ty(y));
        y_max = y_max.max(ty(y));
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() || (log_y && y <= 0.0) {
                continue;
            }
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((ty(y) - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let y_top = if log_y {
        format!("1e{y_max:.1}")
    } else {
        format!("{y_max:.3}")
    };
    let y_bot = if log_y {
        format!("1e{y_min:.1}")
    } else {
        format!("{y_min:.3}")
    };
    let gutter = y_top.len().max(y_bot.len());
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            y_top.clone()
        } else if r == height - 1 {
            y_bot.clone()
        } else if r == height / 2 {
            y_label.chars().take(gutter).collect()
        } else {
            String::new()
        };
        out.push_str(&format!("{label:>gutter$} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>gutter$} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>gutter$}  {:<10}{:^w$}{:>10}\n",
        "",
        format!("{x_min:.3}"),
        x_label,
        format!("{x_max:.3}"),
        w = width.saturating_sub(20),
    ));
    // Legend.
    out.push_str("  legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{}={} ", MARKS[si % MARKS.len()], s.label));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Vec<Series> {
        vec![
            Series {
                label: "up".into(),
                points: (0..10)
                    .map(|i| (i as f64 / 10.0, 10.0 + i as f64))
                    .collect(),
            },
            Series {
                label: "down".into(),
                points: (0..10)
                    .map(|i| (i as f64 / 10.0, 100.0 - i as f64))
                    .collect(),
            },
        ]
    }

    #[test]
    fn plot_contains_markers_axes_and_legend() {
        let s = ascii_plot("t", "recall", "qps", &demo(), 40, 12, false);
        assert!(s.contains('o'));
        assert!(s.contains('+'));
        assert!(s.contains("legend: o=up +=down"));
        assert!(s.contains("recall"));
        // Grid has height+3 framing lines plus title and legend.
        assert!(s.lines().count() >= 15);
    }

    #[test]
    fn log_scale_accepts_only_positive_ys() {
        let series = vec![Series {
            label: "s".into(),
            points: vec![(0.0, 0.0), (0.5, 10.0), (1.0, 1000.0)],
        }];
        let s = ascii_plot("t", "x", "y", &series, 30, 10, true);
        assert!(s.contains("1e3.0"), "{s}");
        assert!(s.contains("1e1.0"), "{s}");
    }

    #[test]
    fn empty_series_render_placeholder() {
        let s = ascii_plot("t", "x", "y", &[], 30, 10, false);
        assert!(s.contains("no finite points"));
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let series = vec![Series {
            label: "dot".into(),
            points: vec![(0.5, 42.0)],
        }];
        let s = ascii_plot("t", "x", "y", &series, 30, 10, false);
        assert!(s.contains('o'));
    }
}
