//! Aligned-table printing and CSV export.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple column-aligned text table, printed like the paper's tables.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes as CSV into `results/<name>.csv` (created on demand).
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a float with `p` decimals.
pub fn f(x: f64, p: usize) -> String {
    format!("{x:.p$}")
}

/// Formats bytes as MB with one decimal.
pub fn mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["alg", "secs"]);
        t.row(vec!["KGraph", "1.5"]);
        t.row(vec!["NSW", "12.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("alg"));
        assert!(lines[3].contains("12.25"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(mb(2 * 1024 * 1024), "2.0");
    }
}
