//! Skewed serving workloads: a clustered base set with Zipf-distributed
//! query traffic.
//!
//! The adaptation experiments (and real serving fleets) need a workload
//! where *queries* are skewed — a few clusters take most of the traffic —
//! while the base data stays balanced.
//! [`MixtureSpec`](weavess_data::synthetic::MixtureSpec) varies the data;
//! this generator varies the *demand*: base points are dealt round-robin
//! over `clusters` Gaussian clusters (like Table 10), but each query
//! picks its cluster from a Zipf law with exponent `skew` (cluster `c`
//! with weight `1/(c+1)^skew`), so cluster 0 dominates and the tail is
//! cold. Everything is deterministic from
//! `(n, dim, clusters, skew, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::Dataset;

/// Specification of a clustered-dataset + Zipf-query workload.
///
/// ```
/// use weavess_bench::workload::ZipfWorkload;
///
/// let w = ZipfWorkload::new(1_000, 16, 8, 1.5, 100, 7);
/// let (base, queries) = w.generate();
/// assert_eq!((base.len(), base.dim()), (1_000, 16));
/// assert_eq!(queries.len(), 100);
/// // Same spec, same bytes.
/// assert_eq!(base, w.generate().0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfWorkload {
    /// Base points.
    pub n: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Gaussian clusters the base set is balanced over.
    pub clusters: usize,
    /// Zipf exponent of the query-over-cluster distribution; 0 = uniform
    /// traffic, larger = hotter head.
    pub skew: f64,
    /// Query points.
    pub n_queries: usize,
    /// Per-cluster standard deviation.
    pub std: f32,
    /// RNG seed; equal specs generate equal workloads.
    pub seed: u64,
}

impl ZipfWorkload {
    /// A workload with the default per-cluster spread (SD 5, the middle of
    /// the paper's Table 10 range).
    pub fn new(
        n: usize,
        dim: usize,
        clusters: usize,
        skew: f64,
        n_queries: usize,
        seed: u64,
    ) -> Self {
        ZipfWorkload {
            n,
            dim,
            clusters,
            skew,
            n_queries,
            std: 5.0,
            seed,
        }
    }

    /// Generates `(base, queries)`. Base points are dealt round-robin over
    /// the clusters (balanced data); queries draw their cluster from the
    /// Zipf law (skewed demand) and their position from the same
    /// per-cluster Gaussian.
    pub fn generate(&self) -> (Dataset, Dataset) {
        assert!(self.clusters >= 1, "need at least one cluster");
        assert!(self.n > 0 && self.dim > 0);
        assert!(self.skew >= 0.0, "skew must be non-negative");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let centers = self.draw_centers(&mut rng);

        let mut base = Vec::with_capacity(self.n * self.dim);
        for i in 0..self.n {
            base.extend(self.draw_point(&centers[i % self.clusters], &mut rng));
        }

        let queries = self.draw_queries(&centers, self.n_queries, &mut rng);
        (
            Dataset::from_flat(base, self.n, self.dim),
            Dataset::from_flat(queries, self.n_queries, self.dim),
        )
    }

    /// Draws an extra query set from the same cluster centers and Zipf
    /// demand but an independent RNG stream — a trace/evaluation split:
    /// adaptation mines routes from one sample of the traffic and is then
    /// measured on held-out queries from the identical distribution.
    /// Deterministic from `(self, count, seed)` and independent of
    /// [`ZipfWorkload::generate`] (the centers are re-derived, not stored).
    pub fn extra_queries(&self, count: usize, seed: u64) -> Dataset {
        let mut center_rng = StdRng::seed_from_u64(self.seed);
        let centers = self.draw_centers(&mut center_rng);
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = self.draw_queries(&centers, count, &mut rng);
        Dataset::from_flat(queries, count, self.dim)
    }

    /// Cluster centers uniform in [0, 100]^dim, matching the MixtureSpec
    /// scale so tuned build parameters carry over. Always the first draws
    /// of the workload's RNG stream, so every sampler sees the same
    /// centers.
    fn draw_centers(&self, rng: &mut StdRng) -> Vec<Vec<f32>> {
        (0..self.clusters)
            .map(|_| (0..self.dim).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect()
    }

    fn draw_point(&self, center: &[f32], rng: &mut StdRng) -> Vec<f32> {
        center
            .iter()
            .map(|&c| c + self.std * gaussian(rng))
            .collect()
    }

    /// `count` queries: cluster from the Zipf CDF, position from the
    /// per-cluster Gaussian.
    fn draw_queries(&self, centers: &[Vec<f32>], count: usize, rng: &mut StdRng) -> Vec<f32> {
        // Zipf CDF over clusters: weight of cluster c is 1/(c+1)^skew.
        let weights: Vec<f64> = (0..self.clusters)
            .map(|c| 1.0 / ((c + 1) as f64).powf(self.skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(self.clusters);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }

        let mut queries = Vec::with_capacity(count * self.dim);
        for _ in 0..count {
            let u: f64 = rng.gen();
            let c = cdf.partition_point(|&p| p < u).min(self.clusters - 1);
            queries.extend(self.draw_point(&centers[c], rng));
        }
        queries
    }
}

/// Standard Gaussian draw via Box–Muller (the [`weavess_data::synthetic`]
/// generator's is private; same construction so distributions match).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_spec_and_sensitive_to_seed() {
        let w = ZipfWorkload::new(300, 8, 4, 1.5, 50, 42);
        let (b1, q1) = w.generate();
        let (b2, q2) = w.generate();
        assert_eq!(b1, b2);
        assert_eq!(q1, q2);
        let (b3, _) = ZipfWorkload::new(300, 8, 4, 1.5, 50, 43).generate();
        assert_ne!(b1, b3);
    }

    #[test]
    fn queries_concentrate_on_the_head_cluster() {
        let w = ZipfWorkload::new(400, 8, 8, 2.0, 400, 7);
        let (base, queries) = w.generate();
        // Assign each query to its nearest base cluster representative
        // (base point c is the first draw of cluster c).
        let mut head = 0usize;
        for qi in 0..queries.len() as u32 {
            let q = queries.point(qi);
            let nearest = (0..w.clusters as u32)
                .min_by(|&a, &b| base.dist_to(q, a).partial_cmp(&base.dist_to(q, b)).unwrap())
                .unwrap();
            if nearest == 0 {
                head += 1;
            }
        }
        // Zipf(2.0) over 8 clusters puts ~62% of mass on cluster 0; with
        // 400 draws anything above 45% is unambiguous concentration.
        assert!(
            head as f64 > 0.45 * queries.len() as f64,
            "head traffic {head}/{}",
            queries.len()
        );
    }

    #[test]
    fn extra_queries_share_centers_but_not_draws() {
        let w = ZipfWorkload::new(400, 8, 4, 1.5, 50, 11);
        let (base, eval) = w.generate();
        let extra = w.extra_queries(200, 999);
        assert_eq!(extra, w.extra_queries(200, 999));
        assert_ne!(extra, w.extra_queries(200, 998));
        // Held-out queries land in the same clusters: every extra query's
        // nearest base point is within cluster radius, far below the
        // inter-center distance at this dimensionality.
        for qi in 0..extra.len() as u32 {
            let q = extra.point(qi);
            let nearest = (0..base.len() as u32)
                .map(|v| base.dist_to(q, v))
                .fold(f32::INFINITY, f32::min);
            assert!(nearest.sqrt() < 40.0, "query {qi} stranded: {nearest}");
        }
        // And they are not the evaluation queries re-issued.
        assert_ne!(extra.point(0), eval.point(0));
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let w = ZipfWorkload::new(200, 4, 4, 0.0, 400, 3);
        let (base, queries) = w.generate();
        let mut counts = vec![0usize; w.clusters];
        for qi in 0..queries.len() as u32 {
            let q = queries.point(qi);
            let nearest = (0..w.clusters as u32)
                .min_by(|&a, &b| base.dist_to(q, a).partial_cmp(&base.dist_to(q, b)).unwrap())
                .unwrap();
            counts[nearest as usize] += 1;
        }
        // Each cluster expects ~100 of 400; none should be starved.
        assert!(counts.iter().all(|&c| c > 40), "{counts:?}");
    }
}
