//! Distance-kernel micro-benchmarks: the inner loop every experiment's
//! numbers rest on. Dimensions follow the survey's datasets (SIFT 128,
//! GIST 960).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::distance::{cosine_angle_at, euclidean, squared_euclidean};

fn vecs(dim: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut gen = || (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    (gen(), gen(), gen())
}

fn bench_kernels(c: &mut Criterion) {
    for dim in [128usize, 960] {
        let (a, b, p) = vecs(dim);
        c.bench_function(&format!("squared_euclidean_d{dim}"), |bench| {
            bench.iter(|| squared_euclidean(black_box(&a), black_box(&b)))
        });
        c.bench_function(&format!("euclidean_d{dim}"), |bench| {
            bench.iter(|| euclidean(black_box(&a), black_box(&b)))
        });
        c.bench_function(&format!("cosine_angle_at_d{dim}"), |bench| {
            bench.iter(|| cosine_angle_at(black_box(&p), black_box(&a), black_box(&b)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kernels
}
criterion_main!(benches);
