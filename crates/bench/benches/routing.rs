//! Routing-strategy micro-benchmarks (C7): one query through each router
//! on the same prebuilt graph — the per-query cost behind Figures 7/8.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use weavess_core::search::{Router, SearchScratch, SearchStats};
use weavess_data::synthetic::MixtureSpec;
use weavess_data::Dataset;
use weavess_graph::base::exact_knng;
use weavess_graph::CsrGraph;

fn setup() -> (Dataset, Dataset, CsrGraph) {
    let spec = MixtureSpec {
        intrinsic_dim: Some(8),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(32, 5_000, 5, 5.0, 16)
    };
    let (base, queries) = spec.generate();
    let graph = exact_knng(&base, 20, 4);
    (base, queries, graph)
}

fn bench_routers(c: &mut Criterion) {
    let (base, queries, graph) = setup();
    let mut scratch = SearchScratch::new(base.len());
    let seeds: Vec<u32> = (0..8u32).map(|i| i * 617 % base.len() as u32).collect();
    let routers = [
        ("best_first", Router::BestFirst),
        ("range_eps0.1", Router::Range { epsilon: 0.1 }),
        ("backtrack_8", Router::Backtrack { extra: 8 }),
        ("guided", Router::Guided),
        (
            "two_stage",
            Router::TwoStage {
                stage1_beam_frac: 0.4,
            },
        ),
    ];
    for (name, router) in &routers {
        c.bench_function(&format!("route_{name}_beam60"), |bench| {
            let mut qi = 0u32;
            bench.iter(|| {
                let q = queries.point(qi % queries.len() as u32);
                qi += 1;
                scratch.next_epoch();
                let mut stats = SearchStats::default();
                black_box(router.search(
                    &base,
                    &graph,
                    black_box(q),
                    &seeds,
                    60,
                    &mut scratch,
                    &mut stats,
                ))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_routers
}
criterion_main!(benches);
