//! Construction micro-benchmarks: NN-Descent refinement and the C3
//! neighbor-selection rules — the per-point costs behind Figure 5 and
//! Table 15.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use weavess_core::components::selection::{
    select_angle, select_closest, select_dpg, select_mst, select_rng_alpha,
};
use weavess_core::nndescent::{nn_descent, NnDescentParams};
use weavess_data::ground_truth::knn_scan;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::Dataset;

fn dataset(n: usize) -> Dataset {
    MixtureSpec {
        intrinsic_dim: Some(8),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(32, n, 5, 5.0, 10)
    }
    .generate()
    .0
}

fn bench_nn_descent(c: &mut Criterion) {
    let ds = dataset(2_000);
    c.bench_function("nn_descent_2k_iter2", |bench| {
        bench.iter(|| {
            let params = NnDescentParams {
                k: 20,
                l: 30,
                iters: 2,
                sample: 10,
                reverse: 15,
                seed: 1,
                threads: 1,
            };
            black_box(nn_descent(&ds, &params, None))
        })
    });
}

fn bench_selection(c: &mut Criterion) {
    let ds = dataset(2_000);
    let p = 7u32;
    let candidates = knn_scan(&ds, ds.point(p), 100, Some(p));
    c.bench_function("select_closest_100", |bench| {
        bench.iter(|| black_box(select_closest(black_box(&candidates), 30)))
    });
    c.bench_function("select_rng_alpha1_100", |bench| {
        bench.iter(|| black_box(select_rng_alpha(&ds, p, black_box(&candidates), 30, 1.0)))
    });
    c.bench_function("select_rng_alpha2_100", |bench| {
        bench.iter(|| black_box(select_rng_alpha(&ds, p, black_box(&candidates), 30, 2.0)))
    });
    c.bench_function("select_angle60_100", |bench| {
        bench.iter(|| black_box(select_angle(&ds, p, black_box(&candidates), 30, 60.0)))
    });
    c.bench_function("select_dpg_k20_100", |bench| {
        bench.iter(|| black_box(select_dpg(&ds, p, black_box(&candidates), 20)))
    });
    c.bench_function("select_mst_100", |bench| {
        bench.iter(|| black_box(select_mst(&ds, p, black_box(&candidates))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_nn_descent, bench_selection
}
criterion_main!(benches);
