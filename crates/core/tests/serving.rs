//! Integration tests for the concurrent batch query engine: determinism
//! across worker counts on real algorithm indexes, and a stress test
//! hammering one shared engine with overlapping batches.

use weavess_core::algorithms::Algo;
use weavess_core::serve::{EngineOptions, QueryEngine};
use weavess_data::synthetic::MixtureSpec;
use weavess_data::{Dataset, Neighbor};

fn dataset() -> (Dataset, Dataset) {
    let spec = MixtureSpec {
        intrinsic_dim: Some(6),
        noise: 0.05,
        shared_subspace: true,
        ..MixtureSpec::table10(16, 1_500, 3, 5.0, 40)
    };
    spec.generate()
}

/// The tentpole's acceptance bar: the engine's per-query results AND its
/// aggregated work counters are bit-identical at 1, 2, and 8 workers, on
/// both a fixed-seed index (HNSW) and a random-seed index (KGraph, whose
/// per-query seed draws go through the engine's deterministic reseeding).
///
/// This runs under the default (unrolled, batch-scored) kernels; the CI
/// `paper-fidelity` job re-runs it under the scalar reference kernels, so
/// worker-count determinism is certified in both kernel modes.
#[test]
fn engine_results_identical_across_1_2_8_workers() {
    let (base, queries) = dataset();
    for algo in [Algo::Hnsw, Algo::KGraph] {
        let index = algo.build(&base, 2, 1);
        let run = |workers: usize| {
            let engine = QueryEngine::with_options(
                index.as_ref(),
                &base,
                EngineOptions { workers, seed: 42 },
            );
            engine.search_batch(&queries, 10, 60)
        };
        let baseline = run(1);
        assert_eq!(baseline.results.len(), queries.len());
        assert!(baseline.stats.ndc > 0);
        for workers in [2usize, 8] {
            let multi = run(workers);
            assert_eq!(
                multi.results,
                baseline.results,
                "{}: results changed at {workers} workers",
                algo.name()
            );
            assert_eq!(
                multi.stats,
                baseline.stats,
                "{}: aggregated stats changed at {workers} workers",
                algo.name()
            );
        }
    }
}

/// Stress: one engine over one shared index serves overlapping batches
/// from many caller threads — mixed batch sizes including 0 and 1 — with
/// no panic, no lost queries, and every batch equal to the serial
/// reference for its queries.
#[test]
fn overlapping_batches_on_shared_engine_match_serial() {
    let (base, queries) = dataset();
    let index = Algo::Hnsw.build(&base, 2, 1);
    let engine = QueryEngine::with_options(
        index.as_ref(),
        &base,
        EngineOptions {
            workers: 2,
            seed: 7,
        },
    );
    let k = 10;
    let beam = 50;

    // Serial reference via the engine's own single-query path (per-query
    // seeding makes this the ground truth for every batch below).
    let serial: Vec<Vec<Neighbor>> = (0..queries.len() as u32)
        .map(|qi| engine.search_one(queries.point(qi), k, beam))
        .collect();

    // Each caller thread runs several batches: a rotated full batch, an
    // empty batch, and a single-query batch.
    let caller_threads = 4;
    let rounds = 3;
    let total_answered = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..caller_threads as u32 {
            let engine = &engine;
            let queries = &queries;
            let serial = &serial;
            let total_answered = &total_answered;
            scope.spawn(move || {
                let nq = queries.len() as u32;
                for round in 0..rounds as u32 {
                    // Rotated permutation: distinct order per (thread, round).
                    let ids: Vec<u32> = (0..nq).map(|i| (i + t + round * 5) % nq).collect();
                    let report = engine.search_batch(&queries.subset(&ids), k, beam);
                    assert_eq!(report.results.len(), ids.len(), "lost queries");
                    for (pos, &qi) in ids.iter().enumerate() {
                        assert_eq!(
                            report.results[pos], serial[qi as usize],
                            "thread {t} round {round} query {qi} diverged"
                        );
                    }
                    total_answered
                        .fetch_add(report.results.len(), std::sync::atomic::Ordering::Relaxed);

                    let empty = engine.search_batch(&queries.subset(&[]), k, beam);
                    assert!(empty.results.is_empty());

                    let solo_id = (t + round) % nq;
                    let solo = engine.search_batch(&queries.subset(&[solo_id]), k, beam);
                    assert_eq!(solo.results.len(), 1);
                    assert_eq!(solo.results[0], serial[solo_id as usize]);
                    total_answered.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(
        total_answered.load(std::sync::atomic::Ordering::Relaxed),
        caller_threads * rounds * (queries.len() + 1)
    );
    // The scratch pool stayed bounded by peak concurrency, not query count.
    assert!(engine.pooled_contexts() <= caller_threads * 2 + 1);
}
