//! Parser-based conformance suite for the metrics exposition surfaces.
//!
//! Every Prometheus text block the serving tier can emit is checked
//! against the exposition-format rules a real scraper enforces:
//!
//! - every sample series has a matching `# HELP` and `# TYPE` line
//!   *above* its first sample, and each family is declared exactly once;
//! - histogram `le` buckets are cumulative, end with `le="+Inf"`, and
//!   the `+Inf` bucket equals the family's `_count`;
//! - series names are stable across snapshots of the same process (no
//!   per-scrape renames — dashboards key on them);
//! - every JSON surface parses with the in-tree JSON parser.

use std::collections::{BTreeMap, BTreeSet};

use weavess_core::audit::{AuditConfig, RecallAuditor, SloEngine, SloPolicy};
use weavess_core::components::SeedStrategy;
use weavess_core::index::FlatIndex;
use weavess_core::search::Router;
use weavess_core::serve::QueryEngine;
use weavess_core::shard::{BatchQueue, QueueOptions, ShardSet, ShardedEngine};
use weavess_core::telemetry::flight::parse_json;
use weavess_core::telemetry::query_fingerprint;
use weavess_core::NodeLayout;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::Dataset;
use weavess_graph::base::exact_knng;

const K: usize = 10;
const BEAM: usize = 24;

/// One parsed sample line: family name (label-set and value stripped),
/// the optional `le` label, and the value.
struct Sample {
    family: String,
    series: String,
    le: Option<String>,
    value: f64,
}

fn parse_sample(line: &str) -> Sample {
    let (series, value) = line.rsplit_once(' ').expect("sample has a value");
    let name_end = series.find('{').unwrap_or(series.len());
    let name = &series[..name_end];
    // `_bucket`/`_sum`/`_count` samples belong to their histogram family.
    let family = name
        .strip_suffix("_bucket")
        .or_else(|| name.strip_suffix("_sum"))
        .or_else(|| name.strip_suffix("_count"))
        .unwrap_or(name)
        .to_string();
    let le = series[name_end..]
        .split(&['{', ',', '}'][..])
        .filter_map(|kv| kv.trim().strip_prefix("le=\""))
        .map(|v| v.trim_end_matches('"').to_string())
        .next();
    Sample {
        family,
        series: series.to_string(),
        le,
        value: value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}")),
    }
}

/// Enforces the exposition-format rules and returns the set of series
/// names (for cross-snapshot stability checks). Bucket series are
/// excluded from the returned set: histograms render sparsely (only
/// occupied buckets), so the `le` set legitimately grows with traffic
/// while every other series name must stay fixed.
fn check_exposition(text: &str) -> BTreeSet<String> {
    let mut helped = BTreeSet::new();
    let mut typed = BTreeMap::new(); // family -> declared type
    let mut series = BTreeSet::new();
    let mut seen = BTreeSet::new();
    let mut buckets: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let fam = rest.split(' ').next().unwrap().to_string();
            assert!(helped.insert(fam.clone()), "duplicate HELP for {fam}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let fam = it.next().unwrap().to_string();
            let ty = it.next().expect("TYPE has a kind").to_string();
            assert!(
                ["counter", "gauge", "histogram"].contains(&ty.as_str()),
                "unknown type {ty} for {fam}"
            );
            assert!(
                typed.insert(fam.clone(), ty).is_none(),
                "duplicate TYPE for {fam}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let s = parse_sample(line);
        assert!(
            helped.contains(&s.family),
            "sample before/without HELP: {line}"
        );
        let ty = typed
            .get(&s.family)
            .unwrap_or_else(|| panic!("sample before/without TYPE: {line}"));
        if s.series.contains("_bucket") {
            assert_eq!(ty, "histogram", "{line}");
            // Bucket series carry exactly one le label each; group them
            // by everything except the le pair so labeled histograms
            // (if ever added) would still check per-series.
            let key = s.family.clone();
            buckets
                .entry(key)
                .or_default()
                .push((s.le.clone().expect("bucket has le"), s.value));
        } else if s.series.ends_with("_count") && *ty == "histogram" {
            counts.insert(s.family.clone(), s.value);
        }
        let is_bucket = s.series.contains("_bucket");
        assert!(
            seen.insert(s.series.clone()),
            "duplicate series: {}",
            s.series
        );
        if !is_bucket {
            series.insert(s.series.clone());
        }
    }

    // Histogram bucket discipline.
    for (fam, ty) in &typed {
        if ty != "histogram" {
            continue;
        }
        let bs = buckets
            .get(fam)
            .unwrap_or_else(|| panic!("histogram {fam} has no buckets"));
        assert_eq!(bs.last().unwrap().0, "+Inf", "{fam} must end at +Inf");
        let mut prev = f64::NEG_INFINITY;
        for (le, v) in bs {
            assert!(*v >= prev, "{fam} buckets not cumulative at le={le}");
            prev = *v;
        }
        let count = counts
            .get(fam)
            .unwrap_or_else(|| panic!("histogram {fam} has no _count"));
        assert_eq!(bs.last().unwrap().1, *count, "{fam}: +Inf bucket != _count");
    }
    series
}

fn dataset(n: usize, nq: usize) -> (Dataset, Dataset) {
    MixtureSpec::table10(12, n, 3, 5.0, nq)
        .with_seed(321)
        .generate()
}

fn shard_builder(d: &Dataset, _s: usize) -> FlatIndex {
    FlatIndex {
        name: "expo-shard",
        graph: exact_knng(d, 6, 1),
        seeds: SeedStrategy::Fixed((0..d.len() as u32).collect()),
        router: Router::BestFirst,
    }
}

#[test]
fn engine_prometheus_exposition_conforms_and_is_stable() {
    let (ds, qs) = dataset(300, 40);
    let idx = FlatIndex {
        name: "expo",
        graph: exact_knng(&ds, 8, 2),
        seeds: SeedStrategy::Fixed(vec![0]),
        router: Router::BestFirst,
    };
    let engine = QueryEngine::new(&idx, &ds);
    engine.search_batch(&qs, K, BEAM);
    let first = check_exposition(&engine.metrics_prometheus());
    assert!(!first.is_empty());
    // More traffic must change values, never series names.
    engine.search_batch(&qs, K, BEAM);
    let second = check_exposition(&engine.metrics_prometheus());
    assert_eq!(first, second, "series names must be scrape-stable");
    // The JSON surface parses.
    parse_json(&engine.metrics_json()).expect("metrics_json is valid JSON");
}

#[test]
fn fleet_exposition_with_queue_audit_and_slo_conforms() {
    let (ds, qs) = dataset(400, 60);
    let set = ShardSet::build(&ds, 2, 0xD15C0, NodeLayout::Fused, false, 1, shard_builder)
        .expect("shard build");
    let engine = ShardedEngine::new(&set);
    let report = engine.search_batch(&qs, K, BEAM);

    // Exercise the queue so its wait histogram is non-empty.
    let queue = BatchQueue::new(
        &engine,
        QueueOptions {
            max_batch: 4,
            max_delay: std::time::Duration::from_millis(2),
            k: K,
            beam: BEAM,
        },
    );
    std::thread::scope(|scope| {
        for qi in 0..16u32 {
            let queue = &queue;
            let q = qs.point(qi);
            scope.spawn(move || queue.submit(q));
        }
    });

    // And the auditor + SLO engine on real served traffic.
    let auditor = RecallAuditor::new(
        &ds,
        AuditConfig {
            sample_every: 2,
            ..AuditConfig::default()
        },
    )
    .with_shard_map(
        {
            let mut shard_of = vec![0u32; ds.len()];
            for (s, shard) in set.shards().iter().enumerate() {
                for &gid in shard.global_ids() {
                    shard_of[gid as usize] = s as u32;
                }
            }
            shard_of
        },
        2,
    );
    for qi in 0..qs.len() as u32 {
        let fp = query_fingerprint(qs.point(qi));
        auditor.observe(fp, qs.point(qi), &report.results[qi as usize], false);
    }
    while auditor.run_pending() > 0 {}
    let audit = auditor.snapshot();
    let mut slo = SloEngine::new(SloPolicy::default());
    let slo_report = slo.evaluate(&engine.fleet_report().merged.latency, &audit);

    let full = engine
        .fleet_report()
        .with_queue(queue.snapshot())
        .with_audit(audit.clone())
        .with_slo(slo_report.clone());
    let first = check_exposition(&full.to_prometheus());
    for expected in [
        "weavess_fleet_queries_total",
        "weavess_queue_depth",
        "weavess_queue_wait_nanoseconds",
        "weavess_audit_recall",
        "weavess_audit_shard_recall",
        "weavess_slo_recall_state",
        "weavess_slo_latency_burn",
    ] {
        assert!(
            first.iter().any(|s| s.starts_with(expected)),
            "missing series family {expected}"
        );
    }

    // Stability: another round of traffic, same series names.
    let report2 = engine.search_batch(&qs, K, BEAM);
    for qi in 0..qs.len() as u32 {
        let fp = query_fingerprint(qs.point(qi));
        auditor.observe(fp, qs.point(qi), &report2.results[qi as usize], false);
    }
    while auditor.run_pending() > 0 {}
    let audit2 = auditor.snapshot();
    let slo2 = slo.evaluate(&engine.fleet_report().merged.latency, &audit2);
    let again = engine
        .fleet_report()
        .with_queue(queue.snapshot())
        .with_audit(audit2)
        .with_slo(slo2);
    let second = check_exposition(&again.to_prometheus());
    assert_eq!(first, second, "series names must be scrape-stable");

    // Every JSON surface parses with the in-tree parser.
    parse_json(&full.to_json()).expect("fleet JSON is valid");
    parse_json(&again.to_json()).expect("fleet JSON is valid");
}
