//! Layout-equivalence suite: a BFS-reordered, fused-arena index is the
//! *same index* as the original split layout, renamed.
//!
//! For every one of the five search routines, running over the reordered
//! fused arena with permuted seeds must return exactly the permuted
//! neighbor set — same distances to the bit, same NDC and hops — as the
//! original CSR + matrix. The permutation must survive a persist
//! round-trip, and the prefetch toggle must never change a result.

use proptest::prelude::*;
use weavess_core::components::SeedStrategy;
use weavess_core::index::{AnnIndex, FlatIndex, SearchContext};
use weavess_core::persist::{load_layout_index, save_layout_index};
use weavess_core::search::{
    backtrack_search, beam_search, filtered_beam_search, guided_search, range_search, Router,
    SearchScratch, SearchStats,
};
use weavess_core::{LayoutIndex, NodeLayout};
use weavess_data::prefetch::set_prefetch_enabled;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::base::exact_knng;
use weavess_graph::reorder::{bfs_order, Permutation};
use weavess_graph::{CsrGraph, FusedArena};

fn setup(seed: u64, n: usize) -> (Dataset, Dataset, CsrGraph) {
    let spec = MixtureSpec::table10(12, n, 3, 5.0, 4).with_seed(seed);
    let (base, queries) = spec.generate();
    let g = exact_knng(&base, 8, 1);
    (base, queries, g)
}

/// Reorder + fuse: the alternative physical hosting of (ds, g).
fn reorder_and_fuse(ds: &Dataset, g: &CsrGraph) -> (Permutation, CsrGraph, Dataset, FusedArena) {
    let perm = bfs_order(g, ds.medoid());
    let rg = perm.apply_to_graph(g);
    let rds = perm.apply_to_dataset(ds);
    let arena = FusedArena::with_vectors(&rg, &rds);
    (perm, rg, rds, arena)
}

/// Maps a result pool from index id space back to original ids and
/// re-sorts into the canonical (distance, original id) order.
fn to_original(perm: &Permutation, mut pool: Vec<Neighbor>) -> Vec<Neighbor> {
    for n in &mut pool {
        n.id = perm.to_old(n.id);
    }
    pool.sort_unstable();
    pool
}

fn assert_pools_identical(a: &[Neighbor], b: &[Neighbor], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: pool lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{what}: ids diverge");
        assert_eq!(
            x.dist.to_bits(),
            y.dist.to_bits(),
            "{what}: distance bits diverge at id {}",
            x.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract, routine by routine: every search over the
    /// reordered fused arena is the permuted image of the same search
    /// over the original layout, with identical `SearchStats`.
    #[test]
    fn all_five_routines_agree_modulo_permutation(
        seed in 0u64..120,
        beam in 4usize..40,
    ) {
        let (ds, qs, g) = setup(seed, 350);
        let (perm, rg, _rds, arena) = reorder_and_fuse(&ds, &g);
        let seeds = [0u32, 175, 349];
        let mapped: Vec<u32> = seeds.iter().map(|&s| perm.to_new(s)).collect();
        let mut sc_a = SearchScratch::new(ds.len());
        let mut sc_b = SearchScratch::new(ds.len());
        for qi in 0..qs.len().min(2) as u32 {
            let q = qs.point(qi);

            let mut st_a = SearchStats::default();
            let mut st_b = SearchStats::default();
            sc_a.next_epoch();
            let a = beam_search(&ds, &g, q, &seeds, beam, &mut sc_a, &mut st_a);
            sc_b.next_epoch();
            let b = beam_search(&arena, &arena, q, &mapped, beam, &mut sc_b, &mut st_b);
            assert_pools_identical(&a, &to_original(&perm, b), "beam");
            prop_assert!(
                st_a.pool_peak >= 1 && st_a.pool_peak <= beam as u64,
                "beam pool_peak {} out of [1, {beam}]", st_a.pool_peak
            );
            prop_assert_eq!(st_a, st_b, "beam stats");

            let mut st_a = SearchStats::default();
            let mut st_b = SearchStats::default();
            sc_a.next_epoch();
            let a = backtrack_search(&ds, &g, q, &seeds, beam, 4, &mut sc_a, &mut st_a);
            sc_b.next_epoch();
            let b = backtrack_search(&arena, &arena, q, &mapped, beam, 4, &mut sc_b, &mut st_b);
            assert_pools_identical(&a, &to_original(&perm, b), "backtrack");
            prop_assert!(st_a.pool_peak >= 1, "backtrack pool_peak missing");
            prop_assert_eq!(st_a, st_b, "backtrack stats");

            let mut st_a = SearchStats::default();
            let mut st_b = SearchStats::default();
            sc_a.next_epoch();
            let a = guided_search(&ds, &g, q, &seeds, beam, &mut sc_a, &mut st_a);
            sc_b.next_epoch();
            let b = guided_search(&arena, &arena, q, &mapped, beam, &mut sc_b, &mut st_b);
            assert_pools_identical(&a, &to_original(&perm, b), "guided");
            prop_assert!(
                st_a.pool_peak >= 1 && st_a.pool_peak <= beam as u64,
                "guided pool_peak {} out of [1, {beam}]", st_a.pool_peak
            );
            prop_assert_eq!(st_a, st_b, "guided stats");

            // The predicate sees original ids on the left and renamed ids
            // on the right; composing with `to_old` makes them the same
            // vertex set.
            let pred = |id: u32| id.is_multiple_of(3);
            let renamed_pred = |id: u32| pred(perm.to_old(id));
            let mut st_a = SearchStats::default();
            let mut st_b = SearchStats::default();
            sc_a.next_epoch();
            let a = filtered_beam_search(
                &ds, &g, q, &seeds, 5, beam, &pred, &mut sc_a, &mut st_a,
            );
            sc_b.next_epoch();
            let b = filtered_beam_search(
                &arena, &arena, q, &mapped, 5, beam, &renamed_pred, &mut sc_b, &mut st_b,
            );
            assert_pools_identical(&a, &to_original(&perm, b), "filtered");
            prop_assert!(st_a.pool_peak >= 1, "filtered pool_peak missing");
            prop_assert_eq!(st_a, st_b, "filtered stats");

            let mut st_a = SearchStats::default();
            let mut st_b = SearchStats::default();
            sc_a.next_epoch();
            let a = range_search(&ds, &g, q, &seeds, beam, 0.2, &mut sc_a, &mut st_a);
            sc_b.next_epoch();
            let b = range_search(&arena, &arena, q, &mapped, beam, 0.2, &mut sc_b, &mut st_b);
            assert_pools_identical(&a, &to_original(&perm, b), "range");
            prop_assert!(
                st_a.pool_peak >= 1 && st_a.pool_peak <= ds.len() as u64,
                "range pool_peak {} out of [1, n]", st_a.pool_peak
            );
            prop_assert_eq!(st_a, st_b, "range stats");
        }

        // The reordered CSR and arena expose the same adjacency.
        use weavess_graph::adjacency::GraphView;
        for v in 0..rg.len() as u32 {
            prop_assert_eq!(rg.neighbors(v), arena.neighbors(v));
        }
    }

    /// The permutation (and the whole layout) survives a persist
    /// round-trip: the reloaded index searches bit-identically and its
    /// permutation arrays are byte-equal.
    #[test]
    fn persisted_permutation_round_trips(seed in 0u64..40) {
        let (ds, qs, g) = setup(seed, 250);
        let flat = FlatIndex {
            name: "layout-rt",
            graph: g,
            seeds: SeedStrategy::Fixed(vec![0, 99, 249]),
            router: Router::BestFirst,
        };
        for layout in [NodeLayout::Split, NodeLayout::Fused] {
            let idx = LayoutIndex::from_flat(
                FlatIndex {
                    name: flat.name,
                    graph: flat.graph.clone(),
                    seeds: SeedStrategy::Fixed(vec![0, 99, 249]),
                    router: Router::BestFirst,
                },
                &ds,
                layout,
                true,
            );
            let path = std::env::temp_dir().join(format!(
                "weavess_layout_rt_{seed}_{layout:?}.wvsl"
            ));
            save_layout_index(&path, &idx).expect("save");
            let loaded = load_layout_index(&path, &ds).expect("load");
            let _ = std::fs::remove_file(&path);

            let (p0, p1) = (idx.permutation().unwrap(), loaded.permutation().unwrap());
            prop_assert_eq!(p0.inverse(), p1.inverse(), "{:?}", layout);
            prop_assert_eq!(loaded.layout(), layout);

            let mut c1 = SearchContext::new(ds.len());
            let mut c2 = SearchContext::new(ds.len());
            for qi in 0..qs.len().min(3) as u32 {
                let a = idx.search(&ds, qs.point(qi), 10, 40, &mut c1);
                let b = loaded.search(&ds, qs.point(qi), 10, 40, &mut c2);
                assert_pools_identical(&a, &b, "persist round-trip");
            }
            prop_assert_eq!(c1.stats, c2.stats);
        }
    }
}

/// The prefetch toggle is a pure hint: flipping it must not move a
/// single bit of any result. (Global toggle — restored before exit, and
/// harmless to concurrent tests precisely because of this property.)
#[test]
fn prefetch_toggle_never_changes_results() {
    let (ds, qs, g) = setup(7, 300);
    let (perm, _rg, _rds, arena) = reorder_and_fuse(&ds, &g);
    let seeds = [0u32, 150];
    let mapped: Vec<u32> = seeds.iter().map(|&s| perm.to_new(s)).collect();
    let mut scratch = SearchScratch::new(ds.len());
    let run = |on: bool, scratch: &mut SearchScratch| {
        set_prefetch_enabled(on);
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        for qi in 0..qs.len() as u32 {
            scratch.next_epoch();
            out.push(beam_search(
                &ds,
                &g,
                qs.point(qi),
                &seeds,
                32,
                scratch,
                &mut stats,
            ));
            scratch.next_epoch();
            out.push(beam_search(
                &arena,
                &arena,
                qs.point(qi),
                &mapped,
                32,
                scratch,
                &mut stats,
            ));
        }
        (out, stats)
    };
    let (on, stats_on) = run(true, &mut scratch);
    let (off, stats_off) = run(false, &mut scratch);
    set_prefetch_enabled(true);
    assert_eq!(stats_on, stats_off);
    for (a, b) in on.iter().zip(&off) {
        assert_pools_identical(a, b, "prefetch toggle");
    }
}
