//! Telemetry integration suite: the observability layer must never change
//! what it observes.
//!
//! - Tracing with a [`NoopTracer`] (or a [`RecordingTracer`]) through any
//!   of the five search routines is the identity: bit-identical neighbor
//!   pools and equal [`SearchStats`].
//! - A recorded route dumps byte-stably across runs and across indexes
//!   built at different thread counts, and replays against the dataset.
//! - Batch histograms and their percentiles are worker-count independent.
//! - Histogram merge is commutative and associative, so any partition of
//!   the samples yields the same distribution.
//! - [`profile_build`] attributes per-component wall time (and NDC for
//!   the search-based phases) for HNSW, NSG, and OA.

use proptest::prelude::*;
use weavess_core::algorithms::hnsw::{self, HnswParams};
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::algorithms::oa::{self, OaParams};
use weavess_core::index::AnnIndex;
use weavess_core::search::{
    backtrack_search, backtrack_search_traced, beam_search, beam_search_traced,
    filtered_beam_search, filtered_beam_search_traced, guided_search, guided_search_traced,
    range_search, range_search_traced, SearchScratch, SearchStats,
};
use weavess_core::serve::{EngineOptions, QueryEngine};
use weavess_core::telemetry::{profile_build, Histogram, NoopTracer, RecordingTracer};
use weavess_data::synthetic::MixtureSpec;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::base::exact_knng;
use weavess_graph::CsrGraph;

fn setup(seed: u64, n: usize) -> (Dataset, Dataset, CsrGraph) {
    let spec = MixtureSpec::table10(12, n, 3, 5.0, 4).with_seed(seed);
    let (base, queries) = spec.generate();
    let g = exact_knng(&base, 8, 1);
    (base, queries, g)
}

fn assert_pools_identical(a: &[Neighbor], b: &[Neighbor], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: pool lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{what}: ids diverge");
        assert_eq!(
            x.dist.to_bits(),
            y.dist.to_bits(),
            "{what}: distance bits diverge at id {}",
            x.id
        );
    }
}

fn record_all(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merge is commutative and associative, and merging any partition
    /// equals recording every sample into one histogram — the property
    /// that makes batch distributions worker-count independent.
    #[test]
    fn histogram_merge_is_order_independent(
        a in prop::collection::vec(0u64..u64::MAX, 0..40),
        b in prop::collection::vec(0u64..u64::MAX, 0..40),
        c in prop::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "commutativity");

        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associativity");

        let mut all: Vec<u64> = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &record_all(&all), "partition independence");
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(ab_c.percentile(p), a_bc.percentile(p));
        }
    }

    /// Tracing is the identity on every routine: same pools to the bit,
    /// same `SearchStats` (including `pool_peak`), whether the tracer is
    /// the no-op or a full recorder.
    #[test]
    fn tracing_is_identity_for_all_five_routines(
        seed in 0u64..80,
        beam in 4usize..40,
    ) {
        let (ds, qs, g) = setup(seed, 300);
        let seeds = [0u32, 150, 299];
        let mut sc_a = SearchScratch::new(ds.len());
        let mut sc_b = SearchScratch::new(ds.len());
        let q = qs.point(0);
        let pred = |id: u32| id.is_multiple_of(3);

        // beam: plain vs noop vs recording.
        let mut st_a = SearchStats::default();
        let mut st_b = SearchStats::default();
        sc_a.next_epoch();
        let a = beam_search(&ds, &g, q, &seeds, beam, &mut sc_a, &mut st_a);
        sc_b.next_epoch();
        let b = beam_search_traced(&ds, &g, q, &seeds, beam, &mut sc_b, &mut st_b, &mut NoopTracer);
        assert_pools_identical(&a, &b, "beam noop");
        prop_assert_eq!(st_a, st_b, "beam noop stats");
        let mut rec = RecordingTracer::new();
        let mut st_r = SearchStats::default();
        sc_b.next_epoch();
        let r = beam_search_traced(&ds, &g, q, &seeds, beam, &mut sc_b, &mut st_r, &mut rec);
        assert_pools_identical(&a, &r, "beam recording");
        prop_assert_eq!(st_a, st_r, "beam recording stats");
        prop_assert_eq!(rec.hops() as u64, st_r.hops, "one event per hop");
        prop_assert!(rec.replay_check(&ds, q), "recorded route must replay");

        // backtrack.
        let mut st_a = SearchStats::default();
        let mut st_b = SearchStats::default();
        sc_a.next_epoch();
        let a = backtrack_search(&ds, &g, q, &seeds, beam, 4, &mut sc_a, &mut st_a);
        sc_b.next_epoch();
        let b = backtrack_search_traced(
            &ds, &g, q, &seeds, beam, 4, &mut sc_b, &mut st_b, &mut NoopTracer,
        );
        assert_pools_identical(&a, &b, "backtrack noop");
        prop_assert_eq!(st_a, st_b, "backtrack noop stats");

        // guided.
        let mut st_a = SearchStats::default();
        let mut st_b = SearchStats::default();
        sc_a.next_epoch();
        let a = guided_search(&ds, &g, q, &seeds, beam, &mut sc_a, &mut st_a);
        sc_b.next_epoch();
        let b = guided_search_traced(&ds, &g, q, &seeds, beam, &mut sc_b, &mut st_b, &mut NoopTracer);
        assert_pools_identical(&a, &b, "guided noop");
        prop_assert_eq!(st_a, st_b, "guided noop stats");

        // filtered.
        let mut st_a = SearchStats::default();
        let mut st_b = SearchStats::default();
        sc_a.next_epoch();
        let a = filtered_beam_search(&ds, &g, q, &seeds, 5, beam, &pred, &mut sc_a, &mut st_a);
        sc_b.next_epoch();
        let b = filtered_beam_search_traced(
            &ds, &g, q, &seeds, 5, beam, &pred, &mut sc_b, &mut st_b, &mut NoopTracer,
        );
        assert_pools_identical(&a, &b, "filtered noop");
        prop_assert_eq!(st_a, st_b, "filtered noop stats");

        // range.
        let mut st_a = SearchStats::default();
        let mut st_b = SearchStats::default();
        sc_a.next_epoch();
        let a = range_search(&ds, &g, q, &seeds, beam, 0.2, &mut sc_a, &mut st_a);
        sc_b.next_epoch();
        let b = range_search_traced(
            &ds, &g, q, &seeds, beam, 0.2, &mut sc_b, &mut st_b, &mut NoopTracer,
        );
        assert_pools_identical(&a, &b, "range noop");
        prop_assert_eq!(st_a, st_b, "range noop stats");
    }
}

/// The same query over the same (deterministically built) index produces
/// the same route dump, byte for byte, whether the index was built with 1
/// or 4 threads, and the dump replays against the dataset.
#[test]
fn route_dump_is_byte_stable_across_runs_and_build_threads() {
    let spec = MixtureSpec::table10(12, 900, 4, 4.0, 6).with_seed(11);
    let (base, queries) = spec.generate();
    let q = queries.point(0);

    let mut dumps = Vec::new();
    for threads in [1usize, 4] {
        let idx = nsg::build(&base, &NsgParams::tuned(threads, 3));
        for _run in 0..2 {
            let mut tracer = RecordingTracer::new();
            let mut ctx = weavess_core::index::SearchContext::new(base.len());
            let res = idx.search_traced(&base, q, 10, 40, &mut ctx, &mut tracer);
            assert!(!res.is_empty());
            assert!(tracer.hops() > 0, "route must record expansions");
            assert!(tracer.replay_check(&base, q), "dump must replay");
            dumps.push(tracer.dump());
        }
    }
    for d in &dumps[1..] {
        assert_eq!(&dumps[0], d, "route dump diverged across runs/threads");
    }
}

/// Batch NDC/hop histograms, their percentiles, and the merged stats are
/// identical at 1, 2, and 8 workers; only the dynamic assignment of
/// queries to workers may differ.
#[test]
fn batch_histograms_are_worker_count_independent() {
    let spec = MixtureSpec::table10(10, 800, 4, 4.0, 60).with_seed(5);
    let (base, queries) = spec.generate();
    let idx = nsg::build(&base, &NsgParams::tuned(2, 9));

    let mut reference: Option<(Histogram, Histogram, SearchStats, Vec<Vec<Neighbor>>)> = None;
    for workers in [1usize, 2, 8] {
        let engine = QueryEngine::with_options(
            &idx,
            &base,
            EngineOptions {
                workers,
                ..EngineOptions::default()
            },
        );
        let report = engine.search_batch(&queries, 10, 40);
        assert_eq!(report.workers, workers);
        let claimed: u64 = report.per_worker.iter().map(|w| w.queries_claimed).sum();
        assert_eq!(claimed, queries.len() as u64);
        let worker_ndc: u64 = report.per_worker.iter().map(|w| w.stats.ndc).sum();
        assert_eq!(
            worker_ndc, report.stats.ndc,
            "per-worker NDC must sum to the batch total"
        );
        match &reference {
            None => {
                reference = Some((
                    report.ndc_hist.clone(),
                    report.hops_hist.clone(),
                    report.stats,
                    report.results,
                ))
            }
            Some((ndc, hops, stats, results)) => {
                assert_eq!(&report.ndc_hist, ndc, "NDC histogram at {workers} workers");
                assert_eq!(
                    &report.hops_hist, hops,
                    "hop histogram at {workers} workers"
                );
                assert_eq!(&report.stats, stats, "merged stats at {workers} workers");
                for (a, b) in results.iter().zip(&report.results) {
                    assert_pools_identical(a, b, "batch results");
                }
                for p in [0.5, 0.95, 0.99] {
                    assert_eq!(report.ndc_hist.percentile(p), ndc.percentile(p));
                    assert_eq!(report.hops_hist.percentile(p), hops.percentile(p));
                }
            }
        }
    }
}

/// `profile_build` attributes per-component cost for representative
/// builders of all three init families: HNSW (incremental insertion),
/// NSG (KNNG refinement), OA (NN-descent + angular selection).
#[test]
fn build_profiles_cover_hnsw_nsg_oa() {
    let spec = MixtureSpec::table10(10, 700, 3, 4.0, 2).with_seed(21);
    let (base, _) = spec.generate();

    let (_, hnsw_profile) = profile_build("HNSW", || hnsw::build(&base, &HnswParams::tuned(2, 4)));
    assert_eq!(hnsw_profile.name, "HNSW");
    for component in ["C1 init", "C2+C3 insertion", "freeze"] {
        assert!(
            hnsw_profile.span_secs(component).is_some(),
            "HNSW profile missing {component}: {:?}",
            hnsw_profile.spans
        );
    }
    let insertion = hnsw_profile
        .spans
        .iter()
        .find(|s| s.component == "C2+C3 insertion")
        .unwrap();
    assert!(insertion.ndc > 0, "insertion phase must attribute NDC");

    let (_, nsg_profile) = profile_build("NSG", || nsg::build(&base, &NsgParams::tuned(2, 4)));
    for component in [
        "C1 init",
        "C2+C3 candidates+selection",
        "C5 connectivity",
        "freeze",
    ] {
        assert!(
            nsg_profile.span_secs(component).is_some(),
            "NSG profile missing {component}: {:?}",
            nsg_profile.spans
        );
    }
    let refine = nsg_profile
        .spans
        .iter()
        .find(|s| s.component == "C2+C3 candidates+selection")
        .unwrap();
    assert!(refine.ndc > 0, "NSG refinement must attribute NDC");

    let (_, oa_profile) = profile_build("OA", || oa::build(&base, &OaParams::tuned(2, 4)));
    for component in [
        "C1 init",
        "C2+C3 candidates+selection",
        "C4 seeds",
        "C5 connectivity",
        "freeze",
    ] {
        assert!(
            oa_profile.span_secs(component).is_some(),
            "OA profile missing {component}: {:?}",
            oa_profile.spans
        );
    }

    for p in [&hnsw_profile, &nsg_profile, &oa_profile] {
        assert!(p.total_secs > 0.0);
        assert!(p.spans.iter().all(|s| s.secs >= 0.0));
        let json = p.to_json();
        assert!(json.contains("\"total_secs\""));
        assert!(json.contains("\"spans\""));
    }
}
