//! Cross-kernel-tier identity guard.
//!
//! The workspace runs one of three distance-kernel tiers: scalar
//! (pinned by `--features paper-fidelity`), unrolled, or explicit AVX2
//! simd — selected at runtime via [`KernelTier`]. These tests pin a
//! golden FNV-1a digest of full search traces; the SAME constant must
//! hold under every tier, so one `cargo test` run on an AVX2 host plus
//! the `paper-fidelity` CI job proves all three kernel flavors route
//! searches identically.
//!
//! The dataset uses small-integer coordinates: every squared difference and
//! every partial sum is an integer far below 2^24, so f32 arithmetic is
//! exact in ANY summation order and all kernel flavors are bit-equal by
//! construction, not merely close.
//!
//! The kernel tier is process-wide state; tests that force it serialize
//! on [`TIER_LOCK`] so libtest's parallel runner cannot interleave them.

use std::sync::Mutex;
use weavess_core::search::{beam_search, SearchScratch, SearchStats};
use weavess_data::{Dataset, KernelTier};
use weavess_graph::base::exact_knng;

/// Serializes tests that force the process-wide kernel tier.
static TIER_LOCK: Mutex<()> = Mutex::new(());

/// The tiers this process can actually run (paper-fidelity pins scalar).
fn runnable_tiers() -> Vec<KernelTier> {
    if cfg!(feature = "paper-fidelity") {
        vec![KernelTier::Scalar]
    } else {
        KernelTier::ALL
            .into_iter()
            .filter(|t| t.is_available())
            .collect()
    }
}

/// Deterministic small-integer dataset: coordinates in [-16, 16].
fn integer_dataset(n: usize, dim: usize) -> Dataset {
    let mut state = 0x9e37_79b9_u64;
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % 33) as f32 - 16.0
                })
                .collect()
        })
        .collect();
    Dataset::from_rows(&rows)
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Runs beam search for a block of queries and digests ids, distance bits,
/// and work counters.
fn search_digest() -> u64 {
    let base = integer_dataset(600, 24);
    let queries = integer_dataset(40, 24);
    let g = exact_knng(&base, 10, 2);
    let mut scratch = SearchScratch::new(base.len());
    let mut stats = SearchStats::default();
    let seeds = [0u32, 151, 313, 599];
    let mut digest = 0xcbf2_9ce4_8422_2325_u64;
    for qi in 0..queries.len() as u32 {
        scratch.next_epoch();
        let res = beam_search(
            &base,
            &g,
            queries.point(qi),
            &seeds,
            32,
            &mut scratch,
            &mut stats,
        );
        for n in &res {
            fnv1a(&mut digest, &n.id.to_le_bytes());
            fnv1a(&mut digest, &n.dist.to_bits().to_le_bytes());
        }
    }
    fnv1a(&mut digest, &stats.ndc.to_le_bytes());
    fnv1a(&mut digest, &stats.hops.to_le_bytes());
    digest
}

/// Golden digest: identical under every runnable kernel tier — the test
/// forces each available tier in turn (scalar, unrolled, simd) and
/// demands the same constant from all of them, which together with the
/// `paper-fidelity` CI job gives the full three-column digest guard.
/// If one tier diverges, that kernel flavor changed results; if every
/// tier diverges, the search itself changed (update the constant).
#[test]
fn search_trace_digest_is_kernel_tier_independent() {
    let _guard = TIER_LOCK.lock().unwrap();
    let initial = KernelTier::active();
    for tier in runnable_tiers() {
        if !cfg!(feature = "paper-fidelity") {
            KernelTier::force(tier).unwrap();
        }
        assert_eq!(
            search_digest(),
            0xc37d_01d6_cc76_4036,
            "search trace diverged on tier {tier}"
        );
    }
    if !cfg!(feature = "paper-fidelity") {
        KernelTier::force(initial).unwrap();
    }
}

/// Recall parity across tiers on *non-integer* data, where tiers are
/// only tolerance-close rather than bit-equal: reordered summation may
/// flip individual comparisons, but recall@10 over a query block must
/// agree within 0.0005 between any pair of tiers.
#[test]
fn recall_parity_across_tiers() {
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;

    let _guard = TIER_LOCK.lock().unwrap();
    let initial = KernelTier::active();
    let (base, queries) = MixtureSpec::table10(48, 1_200, 4, 5.0, 60).generate();
    let g = exact_knng(&base, 12, 2);
    let truth: Vec<Vec<u32>> = (0..queries.len() as u32)
        .map(|qi| {
            knn_scan(&base, queries.point(qi), 10, None)
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();

    let mut recalls = Vec::new();
    for tier in runnable_tiers() {
        if !cfg!(feature = "paper-fidelity") {
            KernelTier::force(tier).unwrap();
        }
        let mut scratch = SearchScratch::new(base.len());
        let mut stats = SearchStats::default();
        let mut total = 0.0f64;
        for qi in 0..queries.len() as u32 {
            scratch.next_epoch();
            let res = beam_search(
                &base,
                &g,
                queries.point(qi),
                &[0, 599, 1_199],
                40,
                &mut scratch,
                &mut stats,
            );
            let got: Vec<u32> = res.iter().take(10).map(|n| n.id).collect();
            total += recall(&truth[qi as usize], &got);
        }
        recalls.push((tier, total / queries.len() as f64));
    }
    if !cfg!(feature = "paper-fidelity") {
        KernelTier::force(initial).unwrap();
    }

    for (ta, ra) in &recalls {
        for (tb, rb) in &recalls {
            assert!(
                (ra - rb).abs() <= 0.0005,
                "recall diverged: {ta}={ra:.5} vs {tb}={rb:.5}"
            );
        }
    }
}

/// On integer data the two kernel flavors must be bit-equal — this holds in
/// both compile modes and certifies the digest constant above is valid for
/// both.
#[test]
fn kernel_flavors_bit_equal_on_integer_data() {
    use weavess_data::distance::{scalar, unrolled};
    let a = integer_dataset(64, 100);
    let b = integer_dataset(64, 100);
    for i in 0..64u32 {
        let (x, y) = (a.point(i), b.point(i));
        assert_eq!(
            scalar::squared_euclidean(x, y).to_bits(),
            unrolled::squared_euclidean(x, y).to_bits()
        );
        assert_eq!(scalar::dot(x, y).to_bits(), unrolled::dot(x, y).to_bits());
    }
}
