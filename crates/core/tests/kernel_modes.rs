//! Cross-kernel-mode identity guard.
//!
//! The workspace compiles with either the unrolled distance kernels
//! (default) or the scalar reference kernels (`--features paper-fidelity`).
//! These tests pin a golden FNV-1a digest of full search traces; the SAME
//! constants must hold under both modes, so running the suite twice —
//! `cargo test` and `cargo test --features paper-fidelity`, as CI does —
//! proves the two kernel flavors route searches identically.
//!
//! The dataset uses small-integer coordinates: every squared difference and
//! every partial sum is an integer far below 2^24, so f32 arithmetic is
//! exact in ANY summation order and the two kernel flavors are bit-equal by
//! construction, not merely close.

use weavess_core::search::{beam_search, SearchScratch, SearchStats};
use weavess_data::Dataset;
use weavess_graph::base::exact_knng;

/// Deterministic small-integer dataset: coordinates in [-16, 16].
fn integer_dataset(n: usize, dim: usize) -> Dataset {
    let mut state = 0x9e37_79b9_u64;
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % 33) as f32 - 16.0
                })
                .collect()
        })
        .collect();
    Dataset::from_rows(&rows)
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Runs beam search for a block of queries and digests ids, distance bits,
/// and work counters.
fn search_digest() -> u64 {
    let base = integer_dataset(600, 24);
    let queries = integer_dataset(40, 24);
    let g = exact_knng(&base, 10, 2);
    let mut scratch = SearchScratch::new(base.len());
    let mut stats = SearchStats::default();
    let seeds = [0u32, 151, 313, 599];
    let mut digest = 0xcbf2_9ce4_8422_2325_u64;
    for qi in 0..queries.len() as u32 {
        scratch.next_epoch();
        let res = beam_search(
            &base,
            &g,
            queries.point(qi),
            &seeds,
            32,
            &mut scratch,
            &mut stats,
        );
        for n in &res {
            fnv1a(&mut digest, &n.id.to_le_bytes());
            fnv1a(&mut digest, &n.dist.to_bits().to_le_bytes());
        }
    }
    fnv1a(&mut digest, &stats.ndc.to_le_bytes());
    fnv1a(&mut digest, &stats.hops.to_le_bytes());
    digest
}

/// Golden digest: identical under default and `paper-fidelity` kernels.
/// If this fails in exactly one mode, a kernel flavor changed results; if
/// it fails in both, the search itself changed (update the constant).
#[test]
fn search_trace_digest_is_kernel_mode_independent() {
    assert_eq!(
        search_digest(),
        0xc37d_01d6_cc76_4036,
        "search trace diverged (mode: {})",
        if cfg!(feature = "paper-fidelity") {
            "paper-fidelity scalar kernels"
        } else {
            "default unrolled kernels"
        }
    );
}

/// On integer data the two kernel flavors must be bit-equal — this holds in
/// both compile modes and certifies the digest constant above is valid for
/// both.
#[test]
fn kernel_flavors_bit_equal_on_integer_data() {
    use weavess_data::distance::{scalar, unrolled};
    let a = integer_dataset(64, 100);
    let b = integer_dataset(64, 100);
    for i in 0..64u32 {
        let (x, y) = (a.point(i), b.point(i));
        assert_eq!(
            scalar::squared_euclidean(x, y).to_bits(),
            unrolled::squared_euclidean(x, y).to_bits()
        );
        assert_eq!(scalar::dot(x, y).to_bits(), unrolled::dot(x, y).to_bits());
    }
}
