//! Integration suite for the sharded scatter-gather serving tier.
//!
//! The heart is the determinism invariant: with a fixed partition seed
//! and shards that answer exactly (every shard point seeded, beam at
//! least the shard size), the merged top-k is **bit-identical to the
//! unsharded engine at 1, 2, 4, and 8 shards** — for all five search
//! routines. Around it:
//!
//! - the merge law property-tested in isolation (k-select over any
//!   partition of the candidates, commutative, pairwise-associative);
//! - duplicate points straddling shard boundaries (distance ties must
//!   resolve by global id, exactly as the unsharded pool orders them);
//! - `SearchStats`/histogram aggregation: the fleet totals are the fold
//!   of the per-shard reports;
//! - the admission queue: latency-budget close under sparse arrivals,
//!   full-batch coalescing with per-ticket results, and a concurrent
//!   stress run — all answers equal to the unbatched reference;
//! - typed build errors ([`ShardError`], [`IndexError`]) where the seed
//!   code panicked.

use proptest::prelude::*;
use weavess_core::components::seeds::SeedStrategy;
use weavess_core::index::{FlatIndex, IndexError};
use weavess_core::locality::{LayoutIndex, NodeLayout};
use weavess_core::quantized::QuantizedIndex;
use weavess_core::search::Router;
use weavess_core::serve::{EngineOptions, QueryEngine};
use weavess_core::shard::{
    merge_topk, merge_two, BatchQueue, QueueOptions, ShardError, ShardSet, ShardedEngine,
};
use weavess_data::synthetic::MixtureSpec;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::base::exact_knng;
use weavess_graph::CsrGraph;

const PARTITION_SEED: u64 = 0xD15C0;

fn dataset(n: usize, n_queries: usize) -> (Dataset, Dataset) {
    MixtureSpec::table10(12, n, 3, 5.0, n_queries)
        .with_seed(99)
        .generate()
}

/// A shard builder whose engine answers *exactly*: every local point is a
/// fixed seed, so (with `beam >= shard len`) the router scores the whole
/// shard at the seeding stage and the local top-k is the true top-k. This
/// is the regime where the determinism invariant is exact rather than
/// statistical.
fn exact_builder(router: Router) -> impl Fn(&Dataset, usize) -> FlatIndex {
    move |ds: &Dataset, _shard: usize| FlatIndex {
        name: "exact",
        graph: exact_knng(ds, 4, 1),
        seeds: SeedStrategy::Fixed((0..ds.len() as u32).collect()),
        router: router.clone(),
    }
}

fn all_routers() -> [Router; 5] {
    [
        Router::BestFirst,
        Router::Range { epsilon: 0.1 },
        Router::Backtrack { extra: 4 },
        Router::Guided,
        // Anything below 1.0 truncates the stage-1 pool and may drop a
        // true neighbor, breaking exactness (and thus the invariant).
        Router::TwoStage {
            stage1_beam_frac: 1.0,
        },
    ]
}

fn assert_pools_identical(a: &[Neighbor], b: &[Neighbor], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: pool lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{what}: ids diverge");
        assert_eq!(
            x.dist.to_bits(),
            y.dist.to_bits(),
            "{what}: distance bits diverge at id {}",
            x.id
        );
    }
}

/// The tentpole's acceptance bar: for every one of the five routers, the
/// merged results at 1, 2, 4, and 8 shards are bit-identical to the
/// unsharded engine over the whole dataset.
///
/// This runs under the default (unrolled, batch-scored) kernels; the CI
/// `paper-fidelity` job re-runs it under the scalar reference kernels, so
/// shard-count determinism is certified in both kernel modes.
#[test]
fn sharded_results_identical_to_unsharded_at_1_2_4_8_shards() {
    let (base, queries) = dataset(600, 16);
    let k = 10;
    let beam = base.len(); // >= every shard's size: exact everywhere
    for router in all_routers() {
        let build = exact_builder(router.clone());

        // Unsharded reference: the same exact configuration over the
        // full dataset behind a plain QueryEngine.
        let flat = build(&base, 0);
        let unsharded_index =
            LayoutIndex::try_from_flat(flat, &base, NodeLayout::Split, false).unwrap();
        let unsharded = QueryEngine::with_options(
            &unsharded_index,
            &base,
            EngineOptions {
                workers: 2,
                seed: 42,
            },
        );
        let reference = unsharded.search_batch(&queries, k, beam);

        for shards in [1usize, 2, 4, 8] {
            let set = ShardSet::build(
                &base,
                shards,
                PARTITION_SEED,
                NodeLayout::Split,
                false,
                2,
                &build,
            )
            .unwrap();
            assert_eq!(set.num_shards(), shards);
            assert_eq!(set.total_points(), base.len());
            let engine = ShardedEngine::with_options(
                &set,
                EngineOptions {
                    workers: 2,
                    seed: 42,
                },
            );
            let report = engine.search_batch(&queries, k, beam);
            assert_eq!(report.results.len(), queries.len());
            for (qi, (got, want)) in report.results.iter().zip(&reference.results).enumerate() {
                assert_pools_identical(
                    got,
                    want,
                    &format!("{router:?}, {shards} shards, query {qi}"),
                );
            }
            // The batch path and the single-query path agree.
            for qi in 0..queries.len() as u32 {
                let one = engine.search_one(queries.point(qi), k, beam);
                assert_pools_identical(
                    &one,
                    &report.results[qi as usize],
                    &format!("{router:?}, {shards} shards, search_one q{qi}"),
                );
            }
        }
    }
}

/// The partition itself is a pure function of the seed: a different seed
/// deals points differently (so shard contents change), yet the merged
/// results are *still* identical — the invariant does not depend on which
/// deal the seed produced.
#[test]
fn results_are_partition_seed_invariant_under_exact_shards() {
    let (base, queries) = dataset(400, 8);
    let (k, beam) = (10, base.len());
    let build = exact_builder(Router::BestFirst);
    let run = |seed: u64| {
        let set = ShardSet::build(&base, 4, seed, NodeLayout::Split, false, 2, &build).unwrap();
        let engine = ShardedEngine::new(&set);
        engine.search_batch(&queries, k, beam).results
    };
    let a = run(PARTITION_SEED);
    let b = run(PARTITION_SEED ^ 0xFFFF_FFFF);
    for (qi, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_pools_identical(x, y, &format!("seed-invariance, query {qi}"));
    }
}

/// Duplicate vectors straddling shard boundaries: distance ties must
/// resolve by global id, identically to the unsharded pool's order.
#[test]
fn duplicate_points_across_shards_tie_break_by_global_id() {
    let (half, queries) = dataset(150, 8);
    // ids 0..150 and 150..300 hold the same vectors: every true neighbor
    // is a two-way distance tie whose halves land in different shards.
    let mut flat = Vec::with_capacity(2 * half.len() * half.dim());
    for i in 0..half.len() as u32 {
        flat.extend_from_slice(half.point(i));
    }
    for i in 0..half.len() as u32 {
        flat.extend_from_slice(half.point(i));
    }
    let base = Dataset::from_flat(flat, 2 * half.len(), half.dim());

    let build = exact_builder(Router::BestFirst);
    let k = 12;
    let beam = base.len();
    let flat_index = build(&base, 0);
    let unsharded_index =
        LayoutIndex::try_from_flat(flat_index, &base, NodeLayout::Split, false).unwrap();
    let unsharded = QueryEngine::new(&unsharded_index, &base);

    for shards in [2usize, 4] {
        let set = ShardSet::build(
            &base,
            shards,
            PARTITION_SEED,
            NodeLayout::Split,
            false,
            2,
            &build,
        )
        .unwrap();
        let engine = ShardedEngine::new(&set);
        for qi in 0..queries.len() as u32 {
            let want = unsharded.search_one(queries.point(qi), k, beam);
            let got = engine.search_one(queries.point(qi), k, beam);
            assert_pools_identical(&got, &want, &format!("{shards} shards, dup query {qi}"));
            // The duplicates really do produce ties, and ties are
            // id-ascending within equal distance.
            for w in got.windows(2) {
                if w[0].dist.to_bits() == w[1].dist.to_bits() {
                    assert!(w[0].id < w[1].id, "tie not resolved by global id");
                }
            }
            assert!(
                got.windows(2)
                    .any(|w| w[0].dist.to_bits() == w[1].dist.to_bits()),
                "construction should force distance ties in the top-k"
            );
        }
    }
}

/// Fleet aggregation: the merged batch counters are exactly the fold of
/// the per-shard reports (counts add, `pool_peak` maxes, histograms
/// merge), and the fleet report distinguishes logical queries from
/// per-shard executions.
#[test]
fn batch_stats_and_fleet_report_aggregate_per_shard_work() {
    let (base, queries) = dataset(400, 12);
    let shards = 4;
    let set = ShardSet::build(
        &base,
        shards,
        PARTITION_SEED,
        NodeLayout::Split,
        false,
        2,
        exact_builder(Router::BestFirst),
    )
    .unwrap();
    let engine = ShardedEngine::new(&set);
    let report = engine.search_batch(&queries, 10, base.len());

    assert_eq!(report.per_shard.len(), shards);
    let mut ndc = 0u64;
    let mut hops = 0u64;
    let mut pool_peak = 0u64;
    let mut ndc_hist = weavess_core::telemetry::Histogram::new();
    for sr in &report.per_shard {
        ndc += sr.stats.ndc;
        hops += sr.stats.hops;
        pool_peak = pool_peak.max(sr.stats.pool_peak);
        ndc_hist.merge(&sr.ndc_hist);
    }
    assert!(ndc > 0);
    assert_eq!(report.stats.ndc, ndc, "ndc must sum across shards");
    assert_eq!(report.stats.hops, hops, "hops must sum across shards");
    assert_eq!(report.stats.pool_peak, pool_peak, "pool_peak must max");
    assert_eq!(&report.ndc_hist, &ndc_hist, "histograms must merge");
    assert_eq!(report.ndc_hist.count(), (queries.len() * shards) as u64);

    let fleet = engine.fleet_report();
    assert_eq!(fleet.per_shard.len(), shards);
    assert_eq!(fleet.logical_queries, queries.len() as u64);
    assert_eq!(fleet.logical_batches, 1);
    assert_eq!(
        fleet.merged.queries_total,
        (queries.len() * shards) as u64,
        "merged snapshot counts per-shard executions"
    );
    let prom = engine.metrics_prometheus();
    assert!(prom.contains("weavess_fleet_queries_total"));
    assert!(prom.contains(&format!(
        "weavess_shard_queries_total{{shard=\"{}\"}}",
        shards - 1
    )));
    let json = engine.metrics_json();
    assert!(json.contains(&format!("\"shards\": {shards}")));
    assert!(json.contains("\"logical_queries\""));
}

/// Typed errors where the seed code panicked: empty datasets, impossible
/// shard counts, and graph/dataset size mismatches all come back as
/// matchable values with intact context.
#[test]
fn build_failures_return_typed_errors() {
    let (base, _) = dataset(100, 1);
    let build = exact_builder(Router::BestFirst);

    assert_eq!(
        ShardSet::build(&base, 0, 1, NodeLayout::Split, false, 1, &build).err(),
        Some(ShardError::NoShards)
    );

    let empty = Dataset::from_flat(Vec::new(), 0, 12);
    assert_eq!(
        ShardSet::build(&empty, 2, 1, NodeLayout::Split, false, 1, &build).err(),
        Some(ShardError::EmptyDataset)
    );

    // 3 points cannot fill 5 shards: the deal leaves shard 3 empty.
    let tiny = base.subset(&[0, 1, 2]);
    match ShardSet::build(&tiny, 5, 1, NodeLayout::Split, false, 1, &build) {
        Err(ShardError::EmptyShard {
            shard,
            shards: 5,
            points: 3,
        }) => assert!(shard >= 3),
        other => panic!("expected EmptyShard, got {:?}", other.err()),
    }

    // A builder returning a wrong-sized graph surfaces as a per-shard
    // index error with the shard number and the underlying cause.
    let bad = |_: &Dataset, _: usize| FlatIndex {
        name: "bad",
        graph: CsrGraph::from_lists(&[vec![0u32]]),
        seeds: SeedStrategy::Fixed(vec![0]),
        router: Router::BestFirst,
    };
    match ShardSet::build(&base, 2, 1, NodeLayout::Split, false, 1, bad) {
        Err(e @ ShardError::Index { shard: 0, source }) => {
            assert!(matches!(source, IndexError::SizeMismatch { graph: 1, .. }));
            assert!(std::error::Error::source(&e).is_some());
            assert!(!e.to_string().is_empty());
        }
        other => panic!("expected Index error, got {:?}", other.err()),
    }

    // The underlying constructors reject the same inputs directly.
    let empty_flat = FlatIndex {
        name: "t",
        graph: CsrGraph::from_lists(&Vec::<Vec<u32>>::new()),
        seeds: SeedStrategy::Fixed(Vec::new()),
        router: Router::BestFirst,
    };
    assert_eq!(
        LayoutIndex::try_from_flat(empty_flat, &empty, NodeLayout::Split, false).err(),
        Some(IndexError::EmptyDataset {
            context: "LayoutIndex"
        })
    );
    assert_eq!(
        QuantizedIndex::try_new(
            CsrGraph::from_lists(&Vec::<Vec<u32>>::new()),
            &empty,
            Vec::new()
        )
        .err(),
        Some(IndexError::EmptyDataset {
            context: "QuantizedIndex"
        })
    );
    let four = base.subset(&[0, 1, 2, 3]);
    assert_eq!(
        QuantizedIndex::try_new(CsrGraph::from_lists(&[vec![0u32]]), &four, vec![0]).err(),
        Some(IndexError::SizeMismatch {
            graph: 1,
            dataset: 4
        })
    );
}

/// Sparse arrivals: a lone submitter's batch never fills, so only the
/// latency budget can close it — the call must return (with the same
/// answer as the unbatched engine) rather than wait for a full batch.
#[test]
fn queue_closes_on_latency_budget_under_sparse_arrivals() {
    let (base, queries) = dataset(300, 4);
    let set = ShardSet::build(
        &base,
        2,
        PARTITION_SEED,
        NodeLayout::Split,
        false,
        1,
        exact_builder(Router::BestFirst),
    )
    .unwrap();
    let engine = ShardedEngine::new(&set);
    let queue = BatchQueue::new(
        &engine,
        QueueOptions {
            max_batch: 64,
            max_delay: std::time::Duration::from_millis(5),
            k: 10,
            beam: base.len(),
        },
    );
    for qi in 0..queries.len() as u32 {
        let got = queue.submit(queries.point(qi));
        let want = engine.search_one(queries.point(qi), 10, base.len());
        assert_pools_identical(&got, &want, &format!("sparse query {qi}"));
    }
    let stats = queue.stats();
    assert_eq!(stats.queries_total, queries.len() as u64);
    assert_eq!(
        stats.batches_total,
        queries.len() as u64,
        "sequential sparse submits must each close alone on the budget"
    );
    assert_eq!(stats.batch_size.max(), Some(1));
}

/// Coalescing: with `max_batch = N` and a generous budget, N concurrent
/// submitters ride one batch, and each caller still gets exactly its own
/// query's answer (results are keyed by ticket, the batch is closed in
/// submission order).
#[test]
fn queue_coalesces_full_batch_and_answers_each_ticket() {
    let (base, queries) = dataset(300, 6);
    let set = ShardSet::build(
        &base,
        2,
        PARTITION_SEED,
        NodeLayout::Split,
        false,
        1,
        exact_builder(Router::BestFirst),
    )
    .unwrap();
    let engine = ShardedEngine::new(&set);
    let n = queries.len();
    let queue = BatchQueue::new(
        &engine,
        QueueOptions {
            max_batch: n,
            max_delay: std::time::Duration::from_secs(30),
            k: 10,
            beam: base.len(),
        },
    );
    let reference: Vec<Vec<Neighbor>> = (0..n as u32)
        .map(|qi| engine.search_one(queries.point(qi), 10, base.len()))
        .collect();
    std::thread::scope(|scope| {
        for qi in 0..n as u32 {
            let queue = &queue;
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move || {
                let got = queue.submit(queries.point(qi));
                assert_pools_identical(
                    &got,
                    &reference[qi as usize],
                    &format!("coalesced query {qi}"),
                );
            });
        }
    });
    let stats = queue.stats();
    assert_eq!(stats.queries_total, n as u64);
    assert_eq!(
        stats.batches_total, 1,
        "all submitters must share one batch"
    );
    assert_eq!(stats.batch_size.max(), Some(n as u64));
}

/// Stress: many threads stream interleaved queries through one queue;
/// every answer equals the unbatched reference regardless of which batch
/// it rode in, and no query is lost or double-counted.
#[test]
fn queue_stress_concurrent_submitters_match_unbatched_reference() {
    let (base, queries) = dataset(300, 10);
    let set = ShardSet::build(
        &base,
        4,
        PARTITION_SEED,
        NodeLayout::Split,
        false,
        1,
        exact_builder(Router::BestFirst),
    )
    .unwrap();
    let engine = ShardedEngine::new(&set);
    let queue = BatchQueue::new(
        &engine,
        QueueOptions {
            max_batch: 8,
            max_delay: std::time::Duration::from_millis(2),
            k: 10,
            beam: base.len(),
        },
    );
    let reference: Vec<Vec<Neighbor>> = (0..queries.len() as u32)
        .map(|qi| engine.search_one(queries.point(qi), 10, base.len()))
        .collect();
    let threads = 6u32;
    let rounds = 20u32;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let queue = &queue;
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move || {
                let nq = queries.len() as u32;
                for r in 0..rounds {
                    let qi = (t * 7 + r) % nq;
                    let got = queue.submit(queries.point(qi));
                    assert_pools_identical(
                        &got,
                        &reference[qi as usize],
                        &format!("stress t{t} r{r} q{qi}"),
                    );
                }
            });
        }
    });
    let stats = queue.stats();
    assert_eq!(stats.queries_total, (threads * rounds) as u64);
    assert!(stats.batches_total <= stats.queries_total);
    assert_eq!(stats.batch_size.count(), stats.batches_total);
    assert_eq!(stats.queue_delay_ns.count(), stats.queries_total);
}

fn neighbors_from(raw: &[(u32, f32)]) -> Vec<Neighbor> {
    raw.iter().map(|&(id, d)| Neighbor::new(id, d)).collect()
}

fn global_k_select(mut all: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    all.sort_unstable();
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The merge law in isolation: for any candidates, any assignment of
    /// them to shards, and any k, the scatter-gather merge equals the
    /// global k-select; it is commutative in its pools and folding
    /// pairwise (a gather tree) gives the same answer.
    #[test]
    fn merge_is_a_k_select_over_any_partition(
        raw in prop::collection::vec((0u32..5_000, 0.0f32..1_000.0), 0..60),
        assign in prop::collection::vec(0usize..4, 0..60),
        k in 1usize..20,
    ) {
        let all = neighbors_from(&raw);
        // Deal candidate i to pool assign[i % assign.len()] (pool 0 when
        // no assignment was generated): an arbitrary 4-way partition.
        let mut pools: Vec<Vec<Neighbor>> = vec![Vec::new(); 4];
        for (i, n) in all.iter().enumerate() {
            let p = if assign.is_empty() { 0 } else { assign[i % assign.len()] };
            pools[p].push(*n);
        }
        // Pools arrive nearest-first from real shards; sort to match.
        for p in &mut pools {
            p.sort_unstable();
        }

        let want = global_k_select(all, k);
        let merged = merge_topk(&pools, k);
        prop_assert_eq!(&merged, &want, "merge must equal the global k-select");

        let mut reversed = pools.clone();
        reversed.reverse();
        prop_assert_eq!(merge_topk(&reversed, k), want.clone(), "commutativity");

        let mut acc: Vec<Neighbor> = Vec::new();
        for p in &pools {
            acc = merge_two(&acc, p, k);
        }
        prop_assert_eq!(acc, want, "pairwise fold (gather tree) association");
    }

    /// Shard-count bit-identity as a property: random seeds and shard
    /// counts, results always equal the 1-shard deal.
    #[test]
    fn any_shard_count_matches_single_shard(
        seed in 0u64..u64::MAX,
        shards in 2usize..6,
    ) {
        let (base, queries) = dataset(120, 3);
        let build = exact_builder(Router::BestFirst);
        let run = |s: usize| {
            let set = ShardSet::build(&base, s, seed, NodeLayout::Split, false, 1, &build)
                .unwrap();
            let engine = ShardedEngine::new(&set);
            engine.search_batch(&queries, 8, base.len()).results
        };
        let single = run(1);
        let multi = run(shards);
        for (a, b) in single.iter().zip(&multi) {
            prop_assert_eq!(a, b);
        }
    }
}
