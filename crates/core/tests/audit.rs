//! Integration suite for the online recall auditor and SLO engine.
//!
//! The quality contracts:
//!
//! - **sampling purity**: the audit decision is a pure function of
//!   `(seed, query bytes)` — replayable, independent of serving order;
//! - **statistical honesty**: on a seeded workload, the auditor's 95%
//!   Wilson interval covers the exact offline recall of the full query
//!   set, and the audited-subset estimate matches an offline recompute
//!   of the same subset exactly;
//! - **attribution**: per-shard trials split by ground-truth ownership
//!   and sum to the window totals; cohorts split base vs overlay serves;
//! - **budget**: exact scans run on the `budget_per_tick` cadence and
//!   the pending queue drops oldest (counted) past `max_pending`;
//! - **the SLO flip**: an adaptation overlay mined ungated
//!   ([`AdaptParams::ungated`]) on skewed traffic degrades recall enough
//!   that the recall SLO goes to breach while the latency SLO stays ok.

use weavess_core::adapt::AdaptParams;
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::audit::{AuditConfig, RecallAuditor, SloEngine, SloPolicy, SloState};
use weavess_core::components::SeedStrategy;
use weavess_core::index::{AnnIndex, FlatIndex, SearchContext};
use weavess_core::search::Router;
use weavess_core::serve::QueryEngine;
use weavess_core::shard::{ShardSet, ShardedEngine};
use weavess_core::telemetry::{query_fingerprint, RecordingTracer, TraceAggregate};
use weavess_core::{LayoutIndex, NodeLayout};
use weavess_data::ground_truth::knn_scan;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::Dataset;
use weavess_graph::base::exact_knng;

const K: usize = 10;
const BEAM: usize = 24;

fn setup(seed: u64, n: usize, nq: usize) -> (Dataset, Dataset) {
    MixtureSpec::table10(12, n, 3, 5.0, nq)
        .with_seed(seed)
        .generate()
}

fn flat(ds: &Dataset) -> FlatIndex {
    FlatIndex {
        name: "audit-test",
        graph: exact_knng(ds, 10, 2),
        seeds: SeedStrategy::Fixed(vec![0]),
        router: Router::BestFirst,
    }
}

fn cfg(sample_every: u64) -> AuditConfig {
    AuditConfig {
        sample_every,
        seed: 0xA0D17,
        k: K,
        window: 4096,
        budget_per_tick: 1024,
        max_pending: 4096,
    }
}

/// Exact Recall@K of `served` against a brute-force scan, with the
/// auditor's own trial semantics (every ground-truth id is one trial).
fn offline_recall(
    base: &Dataset,
    queries: &Dataset,
    served: &[Vec<weavess_data::Neighbor>],
) -> f64 {
    let mut hits = 0u64;
    let mut trials = 0u64;
    for qi in 0..queries.len() as u32 {
        let exact = knn_scan(base, queries.point(qi), K, None);
        trials += exact.len() as u64;
        hits += served[qi as usize]
            .iter()
            .take(exact.len())
            .filter(|n| exact.iter().any(|e| e.id == n.id))
            .count() as u64;
    }
    hits as f64 / trials as f64
}

#[test]
fn sampling_is_a_pure_function_of_seed_and_query() {
    let (ds, qs) = setup(11, 300, 64);
    let a = RecallAuditor::new(&ds, cfg(4));
    let b = RecallAuditor::new(&ds, cfg(4));
    let mut sampled = 0;
    for qi in 0..qs.len() as u32 {
        let fp = query_fingerprint(qs.point(qi));
        // Two independent auditors with the same config agree on every
        // query, in any order — the decision carries no internal state.
        assert_eq!(a.should_audit(fp), b.should_audit(fp));
        sampled += a.should_audit(fp) as u32;
    }
    assert!(sampled > 0, "vacuous: nothing sampled");
    assert!(sampled < qs.len() as u32, "vacuous: everything sampled");
    // A different seed draws a different subset.
    let c = RecallAuditor::new(
        &ds,
        AuditConfig {
            seed: 0xBEEF,
            ..cfg(4)
        },
    );
    let differs = (0..qs.len() as u32)
        .map(|qi| query_fingerprint(qs.point(qi)))
        .any(|fp| a.should_audit(fp) != c.should_audit(fp));
    assert!(differs);
    // Unsampled queries are never enqueued.
    for qi in 0..qs.len() as u32 {
        let fp = query_fingerprint(qs.point(qi));
        if !a.should_audit(fp) {
            assert!(!a.observe(fp, qs.point(qi), &[], false));
        }
    }
    assert_eq!(a.snapshot().pending, 0);
}

#[test]
fn audit_ci_covers_exact_offline_recall() {
    let (ds, qs) = setup(42, 900, 200);
    let idx = flat(&ds);
    let engine = QueryEngine::new(&idx, &ds);
    let report = engine.search_batch(&qs, K, BEAM);

    let auditor = RecallAuditor::new(&ds, cfg(2));
    let mut audited = Vec::new();
    for qi in 0..qs.len() as u32 {
        let fp = query_fingerprint(qs.point(qi));
        if auditor.observe(fp, qs.point(qi), &report.results[qi as usize], false) {
            audited.push(qi);
        }
    }
    while auditor.run_pending() > 0 {}
    let snap = auditor.snapshot();
    assert_eq!(snap.audited_total, audited.len() as u64);
    assert_eq!(snap.pending, 0);

    // The audited-subset estimate must equal an offline recompute of the
    // same subset (same scan, same trial semantics) to the bit.
    let sub_queries = qs.subset(&audited);
    let sub_served: Vec<_> = audited
        .iter()
        .map(|&qi| report.results[qi as usize].clone())
        .collect();
    let subset_exact = offline_recall(&ds, &sub_queries, &sub_served);
    assert_eq!(snap.recall, subset_exact);

    // And the 95% interval covers the exact offline recall of the FULL
    // workload — the auditor's estimate generalizes off its sample.
    let full = offline_recall(&ds, &qs, &report.results);
    assert!(
        snap.ci_low <= full && full <= snap.ci_high,
        "offline recall {full:.4} outside audited CI [{:.4}, {:.4}] (estimate {:.4})",
        snap.ci_low,
        snap.ci_high,
        snap.recall
    );
}

#[test]
fn budget_cadence_and_pending_drops_are_accounted() {
    let (ds, qs) = setup(7, 200, 64);
    let auditor = RecallAuditor::new(
        &ds,
        AuditConfig {
            sample_every: 1,
            budget_per_tick: 3,
            max_pending: 8,
            ..cfg(1)
        },
    );
    let served = knn_scan(&ds, qs.point(0), K, None);
    for qi in 0..12u32 {
        assert!(auditor.observe(
            query_fingerprint(qs.point(qi)),
            qs.point(qi),
            &served,
            false
        ));
    }
    // 12 offered into a queue of 8: the 4 oldest were dropped, counted.
    let snap = auditor.snapshot();
    assert_eq!(snap.sampled_total, 12);
    assert_eq!(snap.pending, 8);
    assert_eq!(snap.dropped_total, 4);
    // The background cadence drains budget_per_tick at a time.
    assert_eq!(auditor.run_pending(), 3);
    assert_eq!(auditor.run_pending(), 3);
    assert_eq!(auditor.run_pending(), 2);
    assert_eq!(auditor.run_pending(), 0);
    let snap = auditor.snapshot();
    assert_eq!(snap.audited_total, 8);
    assert_eq!(snap.window_trials, 8 * K as u64);
}

#[test]
fn per_shard_and_cohort_attribution() {
    let (ds, qs) = setup(5, 400, 80);
    let shards = 3usize;
    let set = ShardSet::build(&ds, shards, 0xD15C0, NodeLayout::Fused, false, 1, |d, _| {
        FlatIndex {
            name: "audit-shard",
            graph: exact_knng(d, 6, 1),
            seeds: SeedStrategy::Fixed((0..d.len() as u32).collect()),
            router: Router::BestFirst,
        }
    })
    .expect("shard build");
    let engine = ShardedEngine::new(&set);
    let report = engine.search_batch(&qs, K, BEAM);

    // Ground-truth ownership map: which shard holds each base id.
    let mut shard_of = vec![0u32; ds.len()];
    for (s, shard) in set.shards().iter().enumerate() {
        for &gid in shard.global_ids() {
            shard_of[gid as usize] = s as u32;
        }
    }
    let auditor = RecallAuditor::new(&ds, cfg(2)).with_shard_map(shard_of, shards);
    for qi in 0..qs.len() as u32 {
        let fp = query_fingerprint(qs.point(qi));
        auditor.observe(fp, qs.point(qi), &report.results[qi as usize], false);
    }
    while auditor.run_pending() > 0 {}
    let snap = auditor.snapshot();

    // Every ground-truth id becomes one trial for the shard that owns
    // it, so shard trials partition the window trials.
    assert_eq!(snap.per_shard.len(), shards);
    let shard_trials: u64 = snap.per_shard.iter().map(|(_, t)| t).sum();
    assert_eq!(shard_trials, snap.window_trials);
    assert!(
        snap.per_shard.iter().all(|&(_, t)| t > 0),
        "every shard should own some ground truth: {:?}",
        snap.per_shard
    );
    // All serves were tagged base-cohort.
    assert_eq!(snap.cohort_base.1, snap.window_trials);
    assert_eq!(snap.cohort_overlay, (0, 0));
}

/// Serves every query through the layout index and audits all of them
/// (`sample_every = 1`), tagging the cohort by whether the index carried
/// overlay edges. Returns the audit snapshot.
fn serve_and_audit(
    idx: &LayoutIndex,
    base: &Dataset,
    queries: &Dataset,
    beam: usize,
    auditor: &RecallAuditor<'_>,
) -> weavess_core::audit::AuditSnapshot {
    let overlay = idx.overlay_edges() > 0;
    let mut ctx = SearchContext::new(base.len());
    for qi in 0..queries.len() as u32 {
        let q = queries.point(qi);
        let served = idx.search(base, q, K, beam, &mut ctx);
        auditor.observe(query_fingerprint(q), q, &served, overlay);
    }
    while auditor.run_pending() > 0 {}
    auditor.snapshot()
}

#[test]
fn ungated_overlay_breaches_the_recall_slo_while_latency_stays_ok() {
    // More, well-separated clusters and a tight serving beam: the regime
    // where wormhole eviction actually loses cold-cluster routes.
    let (base, queries) = MixtureSpec::table10(12, 900, 6, 5.0, 150)
        .with_seed(71)
        .generate();
    let serve_beam = 10;
    let flat = nsg::build(&base, &NsgParams::tuned(2, 3));
    let mut idx = LayoutIndex::from_flat(flat, &base, NodeLayout::Fused, true);

    // Baseline: serve everything, audit everything. The engine borrow
    // ends before `adapt` needs the index mutably, so only its latency
    // histogram survives the phase.
    let baseline_latency = {
        let engine = QueryEngine::new(&idx, &base);
        let _ = engine.search_batch(&queries, K, serve_beam);
        engine.snapshot().latency
    };
    let auditor = RecallAuditor::new(&base, cfg(1));
    let baseline = serve_and_audit(&idx, &base, &queries, serve_beam, &auditor);
    assert_eq!(baseline.cohort_overlay, (0, 0));

    // Skewed traffic: a spatially coherent hot region — the third of
    // queries closest to query 0 (one cluster's worth of traffic) —
    // mined with the reach gate disabled and the entry set replaced by
    // observed hubs: the documented wormhole failure mode of
    // trace-driven adaptation, amplified.
    let mut by_dist: Vec<u32> = (1..queries.len() as u32).collect();
    let q0 = queries.point(0).to_vec();
    by_dist.sort_by_key(|&qi| {
        let d: f32 = queries
            .point(qi)
            .iter()
            .zip(&q0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        d.to_bits()
    });
    let mut hot: Vec<u32> = vec![0];
    hot.extend(&by_dist[..queries.len() / 3]);
    let hot_queries = queries.subset(&hot);
    let mut agg = TraceAggregate::new(base.len());
    let mut ctx = SearchContext::new(base.len());
    let mut tracer = RecordingTracer::new();
    for _round in 0..4 {
        for qi in 0..hot_queries.len() as u32 {
            tracer.clear();
            idx.search_traced(
                &base,
                hot_queries.point(qi),
                K,
                serve_beam,
                &mut ctx,
                &mut tracer,
            );
            agg.absorb(&tracer);
        }
    }
    let params = AdaptParams {
        min_gap: 1.0,
        min_traffic: 1,
        max_extra_degree: 8,
        refresh_entries: 8,
        keep_base_entries: false,
        ..AdaptParams::default()
    }
    .ungated();
    let outcome = idx.adapt(&base, &agg, &params).expect("adapt");
    assert!(outcome.edges_added > 0, "no overlay mined: {outcome:?}");
    assert!(idx.overlay_edges() > 0);

    // Degraded phase: fresh auditor window, same query set.
    let engine2 = QueryEngine::new(&idx, &base);
    let _ = engine2.search_batch(&queries, K, serve_beam);
    let degraded_auditor = RecallAuditor::new(&base, cfg(1));
    let degraded = serve_and_audit(&idx, &base, &queries, serve_beam, &degraded_auditor);
    assert_eq!(degraded.cohort_base, (0, 0));

    // The wormholes must have cost real recall: confidently separated
    // windows, not noise.
    assert!(
        degraded.ci_high < baseline.ci_low,
        "no confident degradation: baseline [{:.4},{:.4}] degraded [{:.4},{:.4}]",
        baseline.ci_low,
        baseline.ci_high,
        degraded.ci_low,
        degraded.ci_high
    );

    // An SLO targeting healthy recall, with a latency threshold far
    // above anything this workload produces.
    let policy = SloPolicy {
        latency_threshold_ns: 60_000_000_000, // 60s: never exceeded
        latency_budget: 0.05,
        recall_target: (degraded.ci_high + baseline.ci_low) / 2.0,
        warn_ratio: 0.5,
    };
    let mut slo = SloEngine::new(policy);
    let report = slo.evaluate(&baseline_latency, &baseline);
    assert_eq!(report.latency_state, SloState::Ok);
    assert_eq!(
        report.recall_state,
        SloState::Ok,
        "baseline should satisfy the SLO: {report:?}"
    );
    // Second evaluation windows the latency histogram to the degraded
    // phase only (bucket-wise delta) and flips recall to breach.
    let report = slo.evaluate(&engine2.snapshot().latency, &degraded);
    assert_eq!(
        report.recall_state,
        SloState::Breach,
        "ungated overlay should breach: {report:?}"
    );
    assert_eq!(report.latency_state, SloState::Ok);
    assert!(report.latency_burn < 1.0);
}
