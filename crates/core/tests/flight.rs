//! Integration suite for the per-query flight recorder.
//!
//! The contracts under test, per the observability design:
//!
//! - **compile-away**: the recorded and plain batch paths return
//!   bit-identical results (the ≤5% overhead half of the contract is
//!   `obs_serve_bench --smoke`'s gate);
//! - **deterministic sampling**: the stable dump of seed-sampled
//!   flights is byte-identical at 1/2/8 workers and across repeated
//!   runs at 1/2/4 shards, and the sampled fingerprint *set* is
//!   identical across shard counts;
//! - **stage attribution**: sharded flights carry scatter, one
//!   shard-search span per shard (with that shard's NDC), and merge;
//!   queue-admitted flights carry a queue-wait span;
//! - **Chrome export**: the trace-event JSON round-trips through the
//!   in-tree parser with the fields `chrome://tracing` requires.

use weavess_core::components::SeedStrategy;
use weavess_core::index::FlatIndex;
use weavess_core::search::Router;
use weavess_core::serve::{EngineOptions, QueryEngine};
use weavess_core::shard::{BatchQueue, QueueOptions, ShardSet, ShardedEngine};
use weavess_core::telemetry::flight::{parse_json, query_fingerprint, Stage};
use weavess_core::telemetry::{FlightOptions, FlightRecorder};
use weavess_core::NodeLayout;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::Dataset;
use weavess_graph::base::exact_knng;

const K: usize = 10;
const BEAM: usize = 40;

fn dataset(n: usize, nq: usize) -> (Dataset, Dataset) {
    MixtureSpec::table10(12, n, 3, 5.0, nq)
        .with_seed(777)
        .generate()
}

fn flat(ds: &Dataset) -> FlatIndex {
    FlatIndex {
        name: "flight-test",
        graph: exact_knng(ds, 10, 2),
        seeds: SeedStrategy::Random { count: 8 },
        router: Router::BestFirst,
    }
}

fn recorder() -> FlightRecorder {
    FlightRecorder::new(FlightOptions {
        sample_every: 4,
        capacity: 512,
        seed: 0xF11C47,
    })
}

#[test]
fn recorded_path_returns_identical_results() {
    let (ds, qs) = dataset(500, 30);
    let idx = flat(&ds);
    let engine = QueryEngine::new(&idx, &ds);
    let plain = engine.search_batch(&qs, K, BEAM);
    let rec = recorder();
    let recorded = engine.search_batch_flights(&qs, K, BEAM, &rec);
    assert_eq!(plain.results, recorded.results);
    assert_eq!(plain.stats, recorded.stats);
    assert!(rec.recorded_total() > 0, "vacuous: nothing sampled");
}

#[test]
fn stable_dump_is_byte_identical_at_1_2_8_workers() {
    let (ds, qs) = dataset(500, 40);
    let idx = flat(&ds);
    let run = |workers: usize| {
        let engine = QueryEngine::with_options(
            &idx,
            &ds,
            EngineOptions {
                workers,
                seed: 0xFEED,
            },
        );
        let rec = recorder();
        // Several batches: batch sequence numbers must line up too.
        engine.search_batch_flights(&qs, K, BEAM, &rec);
        engine.search_batch_flights(&qs.subset(&[3, 1, 4]), K, BEAM, &rec);
        rec.dump_stable()
    };
    let one = run(1);
    assert!(!one.is_empty(), "vacuous: no sampled flights");
    for workers in [2usize, 8] {
        assert_eq!(run(workers), one, "workers={workers}");
    }
    // And across repeated runs at the same worker count.
    assert_eq!(run(2), run(2));
}

fn sharded_set(ds: &Dataset, shards: usize) -> ShardSet {
    ShardSet::build(ds, shards, 0xD15C0, NodeLayout::Fused, false, 1, |d, _| {
        FlatIndex {
            name: "flight-shard",
            graph: exact_knng(d, 6, 1),
            seeds: SeedStrategy::Fixed((0..d.len() as u32).collect()),
            router: Router::BestFirst,
        }
    })
    .expect("shard build")
}

#[test]
fn sharded_dumps_are_stable_and_sample_the_same_queries_across_shard_counts() {
    let (ds, qs) = dataset(400, 40);
    let mut sampled_sets: Vec<Vec<String>> = Vec::new();
    for shards in [1usize, 2, 4] {
        let set = sharded_set(&ds, shards);
        let run = || {
            let engine = ShardedEngine::with_options(
                &set,
                EngineOptions {
                    workers: 2,
                    seed: 0xFEED,
                },
            );
            let rec = recorder();
            engine.search_batch_flights(&qs, K, BEAM, &rec);
            rec
        };
        let dump = run().dump_stable();
        // Byte-stable across repeated runs at this shard count.
        assert_eq!(run().dump_stable(), dump, "shards={shards}");
        assert!(!dump.is_empty(), "vacuous at shards={shards}");
        // Per-shard NDC differs across shard counts; the sampled
        // fingerprint set must not.
        let fps: Vec<String> = dump
            .lines()
            .filter(|l| l.starts_with("flight "))
            .map(|l| l.split_whitespace().nth(3).unwrap().to_string())
            .collect();
        sampled_sets.push(fps);
        // Stage attribution: every flight carries scatter, one
        // shard-search per shard, and merge.
        let rec = run();
        for f in rec.flights().iter().filter(|f| f.sampled) {
            let shard_spans = f
                .spans
                .iter()
                .filter(|s| s.stage == Stage::ShardSearch)
                .count();
            assert_eq!(shard_spans, shards, "shards={shards}");
            assert!(f.spans.iter().any(|s| s.stage == Stage::Scatter));
            assert!(f.spans.iter().any(|s| s.stage == Stage::Merge));
            assert!(f
                .spans
                .iter()
                .filter(|s| s.stage == Stage::ShardSearch)
                .all(|s| s.ndc > 0));
        }
    }
    assert_eq!(sampled_sets[0], sampled_sets[1]);
    assert_eq!(sampled_sets[0], sampled_sets[2]);
}

#[test]
fn sharded_recorded_results_match_plain() {
    let (ds, qs) = dataset(400, 25);
    let set = sharded_set(&ds, 3);
    let engine = ShardedEngine::new(&set);
    let plain = engine.search_batch(&qs, K, BEAM);
    let rec = recorder();
    let recorded = engine.search_batch_flights(&qs, K, BEAM, &rec);
    assert_eq!(plain.results, recorded.results);
}

#[test]
fn flight_results_match_the_batch_report() {
    let (ds, qs) = dataset(400, 40);
    let idx = flat(&ds);
    let engine = QueryEngine::new(&idx, &ds);
    let rec = recorder();
    let report = engine.search_batch_flights(&qs, K, BEAM, &rec);
    let mut checked = 0;
    for f in rec.flights().iter().filter(|f| f.sampled) {
        let expect: Vec<u32> = report.results[f.qi as usize].iter().map(|n| n.id).collect();
        assert_eq!(f.results, expect, "qi={}", f.qi);
        assert_eq!(f.fingerprint, query_fingerprint(qs.point(f.qi)));
        checked += 1;
    }
    assert!(checked > 0, "vacuous: no sampled flights");
}

#[test]
fn queue_admitted_flights_carry_a_queue_wait_span() {
    let (ds, qs) = dataset(400, 16);
    let idx = flat(&ds);
    let engine = QueryEngine::with_options(
        &idx,
        &ds,
        EngineOptions {
            workers: 2,
            seed: 7,
        },
    );
    // sample_every=1: every admitted query gets a flight.
    let rec = FlightRecorder::new(FlightOptions {
        sample_every: 1,
        capacity: 64,
        seed: 1,
    });
    let queue = BatchQueue::with_flights(
        &engine,
        QueueOptions {
            max_batch: 4,
            max_delay: std::time::Duration::from_millis(5),
            k: K,
            beam: BEAM,
        },
        &rec,
    );
    std::thread::scope(|scope| {
        for qi in 0..qs.len() as u32 {
            let queue = &queue;
            let q = qs.point(qi);
            let engine = &engine;
            scope.spawn(move || {
                let got = queue.submit(q);
                assert_eq!(got, engine.search_one(q, K, BEAM));
            });
        }
    });
    let flights = rec.flights();
    assert_eq!(
        flights.iter().filter(|f| f.sampled).count(),
        qs.len(),
        "every query should fly at sample_every=1"
    );
    for f in flights.iter().filter(|f| f.sampled) {
        assert_eq!(f.spans[0].stage, Stage::QueueWait, "fp={:x}", f.fingerprint);
        assert!(f.spans.iter().any(|s| s.stage == Stage::Search));
    }
    // Queue satellite: the admission delay histogram recorded each wait.
    let snap = queue.snapshot();
    assert_eq!(snap.stats.queue_delay_ns.count(), qs.len() as u64);
    assert_eq!(snap.depth, 0);
}

#[test]
fn chrome_trace_export_round_trips() {
    let (ds, qs) = dataset(400, 30);
    let set = sharded_set(&ds, 2);
    let engine = ShardedEngine::new(&set);
    let rec = recorder();
    engine.search_batch_flights(&qs, K, BEAM, &rec);
    let json = rec.chrome_trace_json();
    let doc = parse_json(&json).expect("export must be valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        // The complete-event fields chrome://tracing requires.
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        for key in ["name", "ts", "dur", "pid", "tid", "args"] {
            assert!(e.get(key).is_some(), "missing {key}");
        }
        names.insert(e.get("name").unwrap().as_str().unwrap().to_string());
    }
    for stage in ["scatter", "shard_search", "merge"] {
        assert!(names.contains(stage), "no {stage} events in export");
    }
}

#[test]
fn slowest_query_is_kept_even_when_not_sampled() {
    let (ds, qs) = dataset(400, 40);
    let idx = flat(&ds);
    let engine = QueryEngine::new(&idx, &ds);
    // sample_every=0: seeded sampling off, only the slowest rule keeps.
    let rec = FlightRecorder::new(FlightOptions {
        sample_every: 0,
        capacity: 64,
        seed: 1,
    });
    engine.search_batch_flights(&qs, K, BEAM, &rec);
    let flights = rec.flights();
    assert!(
        !flights.is_empty(),
        "the batch's slowest query must be kept"
    );
    assert!(flights.iter().all(|f| !f.sampled));
    // And the stable dump excludes them (they are timing-dependent).
    assert!(rec.dump_stable().is_empty());
}
