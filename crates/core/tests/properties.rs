//! Property tests for the search core.

use proptest::prelude::*;
use weavess_core::search::{
    backtrack_search, beam_search, filtered_beam_search, guided_search, range_search, Router,
    SearchScratch, SearchStats, VisitedPool,
};
use weavess_data::ground_truth::knn_scan;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::Dataset;
use weavess_graph::base::exact_knng;
use weavess_graph::CsrGraph;

fn setup(seed: u64, n: usize) -> (Dataset, Dataset, CsrGraph) {
    let spec = MixtureSpec::table10(8, n, 2, 5.0, 4).with_seed(seed);
    let (base, queries) = spec.generate();
    let g = exact_knng(&base, 8, 1);
    (base, queries, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every router returns a sorted, duplicate-free, beam-bounded result
    /// whose head is at least as close as any other returned vertex.
    #[test]
    fn routers_return_wellformed_results(
        seed in 0u64..200,
        beam in 1usize..40,
    ) {
        let (ds, qs, g) = setup(seed, 300);
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let seeds = [0u32, 150, 299];
        let q = qs.point(0);
        for router in [
            Router::BestFirst,
            Router::Range { epsilon: 0.1 },
            Router::Backtrack { extra: 4 },
            Router::Guided,
            Router::TwoStage { stage1_beam_frac: 0.5 },
        ] {
            scratch.next_epoch();
            let res = router.search(&ds, &g, q, &seeds, beam, &mut scratch, &mut stats);
            prop_assert!(res.len() <= beam, "{router:?}");
            prop_assert!(res.windows(2).all(|w| w[0] < w[1]), "{router:?} unsorted");
            for i in 0..res.len() {
                for j in (i + 1)..res.len() {
                    prop_assert!(res[i].id != res[j].id, "{router:?} dup id");
                }
            }
            // Distances are true distances to the query.
            for r in &res {
                prop_assert!((r.dist - ds.dist_to(q, r.id)).abs() < 1e-3);
            }
        }
    }

    /// Best-first search at beam >= n degenerates to an exhaustive scan of
    /// the seed-reachable component: it finds the exact nearest neighbor
    /// among reached vertices.
    #[test]
    fn saturated_beam_is_exact_on_reachable(seed in 0u64..100) {
        let (ds, qs, g) = setup(seed, 200);
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let q = qs.point(0);
        scratch.next_epoch();
        let res = beam_search(&ds, &g, q, &[0], ds.len(), &mut scratch, &mut stats);
        // Every returned vertex was reached; the best of them must be the
        // true minimum over the visited set.
        let best_visited = res
            .iter()
            .map(|n| n.dist)
            .fold(f32::INFINITY, f32::min);
        for r in &res {
            prop_assert!(r.dist >= best_visited);
        }
        prop_assert_eq!(res[0].dist, best_visited);
    }

    /// A visited pool never reports a fresh vertex as visited across
    /// epochs, and always reports repeats within one epoch.
    #[test]
    fn visited_pool_laws(ops in prop::collection::vec((0u32..64, prop::bool::ANY), 1..200)) {
        let mut pool = VisitedPool::new(64);
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &(v, new_epoch) in &ops {
            if new_epoch {
                pool.next_epoch();
                seen.clear();
            }
            let fresh = pool.visit(v);
            prop_assert_eq!(fresh, seen.insert(v));
            prop_assert!(pool.is_visited(v));
        }
    }

    /// Filtered search with predicate P returns exactly vertices of P, and
    /// its results are never better than unfiltered top-k (distance-wise
    /// the filtered k-th is >= the unfiltered k-th).
    #[test]
    fn filtered_search_is_sound(seed in 0u64..100, modulo in 2u32..5) {
        let (ds, qs, g) = setup(seed, 300);
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let q = qs.point(0);
        let filter = move |id: u32| id.is_multiple_of(modulo);
        scratch.next_epoch();
        let filtered =
            filtered_beam_search(&ds, &g, q, &[0, 150], 5, 40, &filter, &mut scratch, &mut stats);
        prop_assert!(filtered.iter().all(|n| filter(n.id)));
        scratch.next_epoch();
        let plain = beam_search(&ds, &g, q, &[0, 150], 40, &mut scratch, &mut stats);
        if let (Some(fh), Some(ph)) = (filtered.first(), plain.first()) {
            prop_assert!(fh.dist >= ph.dist - 1e-6);
        }
    }

    /// Guided search's result set is a subset of what an exhaustive scan
    /// would allow and never spends more NDC than best-first.
    #[test]
    fn guided_never_spends_more(seed in 0u64..100) {
        let (ds, qs, g) = setup(seed, 300);
        let mut scratch = SearchScratch::new(ds.len());
        let seeds = [0u32, 100, 200];
        let q = qs.point(0);
        let mut s_guided = SearchStats::default();
        scratch.next_epoch();
        guided_search(&ds, &g, q, &seeds, 20, &mut scratch, &mut s_guided);
        let mut s_beam = SearchStats::default();
        scratch.next_epoch();
        beam_search(&ds, &g, q, &seeds, 20, &mut scratch, &mut s_beam);
        prop_assert!(s_guided.ndc <= s_beam.ndc);
    }

    /// Backtracking with zero budget is identical to best-first; range
    /// search with huge epsilon explores at least as much as best-first.
    #[test]
    fn router_degenerate_cases(seed in 0u64..100) {
        let (ds, qs, g) = setup(seed, 250);
        let mut scratch = SearchScratch::new(ds.len());
        let q = qs.point(0);
        let seeds = [0u32, 120];
        let mut s1 = SearchStats::default();
        scratch.next_epoch();
        let bt = backtrack_search(&ds, &g, q, &seeds, 16, 0, &mut scratch, &mut s1);
        let mut s2 = SearchStats::default();
        scratch.next_epoch();
        let bf = beam_search(&ds, &g, q, &seeds, 16, &mut scratch, &mut s2);
        prop_assert_eq!(bt, bf);

        let mut s3 = SearchStats::default();
        scratch.next_epoch();
        range_search(&ds, &g, q, &seeds, 16, 10.0, &mut scratch, &mut s3);
        prop_assert!(s3.ndc >= s2.ndc);
    }

    /// On a fully-connected graph (every vertex adjacent to every other),
    /// one expansion reaches the entire dataset, so beam search must
    /// return exactly the brute-force top-`beam` — sorted nearest-first
    /// and duplicate-free — from any seed.
    #[test]
    fn fully_connected_beam_search_is_brute_force(
        seed in 0u64..60,
        beam in 1usize..50,
        entry in 0u32..50,
    ) {
        let spec = MixtureSpec::table10(8, 50, 2, 5.0, 4).with_seed(seed);
        let (ds, qs) = spec.generate();
        let n = ds.len() as u32;
        let lists: Vec<Vec<u32>> = (0..n)
            .map(|v| (0..n).filter(|&u| u != v).collect())
            .collect();
        let g = CsrGraph::from_lists(&lists);
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            scratch.next_epoch();
            let res = beam_search(&ds, &g, q, &[entry], beam, &mut scratch, &mut stats);
            prop_assert_eq!(res.len(), beam.min(ds.len()));
            prop_assert!(res.windows(2).all(|w| w[0] < w[1]), "unsorted/dup");
            let truth = knn_scan(&ds, q, beam, None);
            prop_assert_eq!(&res, &truth, "query {}", qi);
        }
    }

    /// Crossing the u32 epoch rollover never reports a stale visit as
    /// fresh or a fresh visit as stale: the pool keeps obeying the same
    /// set semantics as a per-epoch HashSet model right through the wrap.
    #[test]
    fn visited_pool_rollover_reports_no_stale_visits(
        remaining in 0u32..6,
        ops in prop::collection::vec((0u32..64, prop::bool::ANY), 1..300),
    ) {
        let mut pool = VisitedPool::new(64);
        pool.jump_near_rollover(remaining);
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &(v, new_epoch) in &ops {
            if new_epoch {
                pool.next_epoch();
                seen.clear();
            }
            let fresh = pool.visit(v);
            prop_assert_eq!(fresh, seen.insert(v));
            prop_assert!(pool.is_visited(v));
        }
    }

    /// With an undirected connected graph and a beam the size of the
    /// dataset, best-first search degenerates to exhaustive traversal and
    /// must return exactly the brute-force nearest neighbor.
    #[test]
    fn exhaustive_beam_matches_brute_force_top1(seed in 0u64..60) {
        let spec = MixtureSpec::table10(8, 250, 1, 5.0, 4).with_seed(seed);
        let (ds, qs) = spec.generate();
        // Symmetrize the KNNG so reachability is undirected.
        let knng = exact_knng(&ds, 10, 1);
        let mut lists: Vec<Vec<u32>> = knng.to_lists();
        for v in 0..ds.len() as u32 {
            for u in knng.neighbors(v).to_vec() {
                if !lists[u as usize].contains(&v) {
                    lists[u as usize].push(v);
                }
            }
        }
        let g = CsrGraph::from_lists(&lists);
        prop_assume!(weavess_graph::connectivity::weak_components(&g) == 1);
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            scratch.next_epoch();
            let res = beam_search(&ds, &g, q, &[0], ds.len(), &mut scratch, &mut stats);
            let truth = knn_scan(&ds, q, 1, None)[0];
            prop_assert_eq!(res[0], truth, "query {}", qi);
        }
    }
}
