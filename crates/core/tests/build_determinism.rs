//! Thread-count-independence guard for parallel construction.
//!
//! Every builder routes its parallelism through `weavess_core::parallel`
//! (fixed chunking, in-order combination, prefix-doubling batch
//! insertion), which promises a graph that is a pure function of the
//! input — never of the worker count. These tests enforce the promise the
//! same way `kernel_modes.rs` guards the distance kernels: build each
//! index at 1, 2, and 8 threads and require byte-identical results, via
//! an FNV-1a digest of the adjacency (and, where an index persists, of
//! the exact serialized bytes).
//!
//! CI runs this file under both kernel modes (default and
//! `paper-fidelity`), so the guarantee holds for either distance flavor.

use proptest::prelude::*;
use weavess_core::algorithms::hnsw::{self, HnswParams};
use weavess_core::algorithms::hnsw_dynamic::DynamicHnsw;
use weavess_core::algorithms::{nsg, nsw, Algo};
use weavess_core::index::{AnnIndex, SearchContext};
use weavess_core::nndescent::{nn_descent, NnDescentParams};
use weavess_core::persist::{write_hnsw, write_index};
use weavess_core::rnndescent::{rnn_descent, RnnDescentParams};
use weavess_data::ground_truth::ground_truth;
use weavess_data::metrics::recall;
use weavess_data::synthetic::MixtureSpec;
use weavess_data::Dataset;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Digest of a graph's full adjacency, order included.
fn adjacency_digest(lists: &[Vec<u32>]) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325_u64;
    for l in lists {
        fnv1a(&mut digest, &(l.len() as u32).to_le_bytes());
        for &x in l {
            fnv1a(&mut digest, &x.to_le_bytes());
        }
    }
    digest
}

fn dataset(n: usize) -> Dataset {
    MixtureSpec::table10(12, n, 4, 3.0, 5).generate().0
}

/// The headline guarantee: all seventeen algorithms build bit-identical
/// adjacency at 1, 2, and 8 construction threads.
#[test]
fn every_algorithm_builds_identically_at_1_2_8_threads() {
    let ds = dataset(350);
    for &algo in Algo::all() {
        let digests: Vec<u64> = THREAD_SWEEP
            .iter()
            .map(|&t| adjacency_digest(&algo.build(&ds, t, 7).graph().to_lists()))
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{} diverges across thread counts: {digests:x?}",
            algo.name()
        );
    }
}

/// Stronger check for persistable indexes: the *serialized bytes* (name,
/// router, seeds, adjacency) are identical, not just the graph.
#[test]
fn persisted_bytes_are_thread_count_independent() {
    let ds = dataset(400);
    let flat_bytes = |threads: usize| -> (Vec<u8>, Vec<u8>) {
        let mut nsw_buf = Vec::new();
        write_index(
            &mut nsw_buf,
            &nsw::build(&ds, &nsw::NswParams::tuned(threads, 3)),
        )
        .unwrap();
        let mut nsg_buf = Vec::new();
        write_index(
            &mut nsg_buf,
            &nsg::build(&ds, &nsg::NsgParams::tuned(threads, 3)),
        )
        .unwrap();
        (nsw_buf, nsg_buf)
    };
    let hnsw_bytes = |threads: usize| -> Vec<u8> {
        let mut buf = Vec::new();
        write_hnsw(&mut buf, &hnsw::build(&ds, &HnswParams::tuned(threads, 3))).unwrap();
        buf
    };
    let (nsw1, nsg1) = flat_bytes(1);
    let h1 = hnsw_bytes(1);
    for &t in &THREAD_SWEEP[1..] {
        let (nsw_t, nsg_t) = flat_bytes(t);
        assert_eq!(nsw1, nsw_t, "NSW bytes diverge at {t} threads");
        assert_eq!(nsg1, nsg_t, "NSG bytes diverge at {t} threads");
        assert_eq!(h1, hnsw_bytes(t), "HNSW bytes diverge at {t} threads");
    }
}

/// NN-Descent's pools are content-deterministic under concurrent joins;
/// the emitted k-NN lists (ids AND distance bits) must not move with the
/// thread count.
#[test]
fn nn_descent_is_thread_count_independent() {
    let ds = dataset(400);
    let run = |threads: usize| -> u64 {
        let params = NnDescentParams {
            k: 10,
            l: 20,
            iters: 4,
            sample: 8,
            reverse: 10,
            seed: 11,
            threads,
        };
        let g = nn_descent(&ds, &params, None);
        let mut digest = 0xcbf2_9ce4_8422_2325_u64;
        for row in &g {
            fnv1a(&mut digest, &(row.len() as u32).to_le_bytes());
            for n in row {
                fnv1a(&mut digest, &n.id.to_le_bytes());
                fnv1a(&mut digest, &n.dist.to_bits().to_le_bytes());
            }
        }
        digest
    };
    let base = run(1);
    for &t in &THREAD_SWEEP[1..] {
        assert_eq!(base, run(t), "NN-Descent diverges at {t} threads");
    }
}

/// RNN-Descent shares NN-Descent's determinism contract: the two-phase
/// update pass (own-chunk rewrites, then order-independent offer
/// application) must emit the same lists — ids AND distance bits — at any
/// worker count.
#[test]
fn rnn_descent_is_thread_count_independent() {
    let ds = dataset(400);
    let run = |threads: usize| -> u64 {
        let params = RnnDescentParams {
            k: 10,
            r: 12,
            l: 24,
            outer: 3,
            inner: 6,
            seed: 11,
            threads,
        };
        let g = rnn_descent(&ds, &params, None);
        let mut digest = 0xcbf2_9ce4_8422_2325_u64;
        for row in &g {
            fnv1a(&mut digest, &(row.len() as u32).to_le_bytes());
            for n in row {
                fnv1a(&mut digest, &n.id.to_le_bytes());
                fnv1a(&mut digest, &n.dist.to_bits().to_le_bytes());
            }
        }
        digest
    };
    let base = run(1);
    for &t in &THREAD_SWEEP[1..] {
        assert_eq!(base, run(t), "RNN-Descent diverges at {t} threads");
    }
}

/// Swapping C1 keeps the persisted-bytes guarantee: an NSG built from
/// RNN-Descent serializes to identical bytes at 1, 2, and 8 threads.
#[test]
fn rnn_built_nsg_persisted_bytes_are_thread_count_independent() {
    let ds = dataset(400);
    let bytes = |threads: usize| -> Vec<u8> {
        let mut buf = Vec::new();
        write_index(
            &mut buf,
            &nsg::build(&ds, &nsg::NsgParams::tuned(threads, 3).with_rnn_c1()),
        )
        .unwrap();
        buf
    };
    let b1 = bytes(1);
    for &t in &THREAD_SWEEP[1..] {
        assert_eq!(b1, bytes(t), "NSG(RNN-C1) bytes diverge at {t} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance criterion of the C1 swap, as a property over
    /// datasets: an NSG built from RNN-Descent answers queries with
    /// end-to-end Recall@10 close to the NN-Descent-built one. (The
    /// builds dominate the runtime, so the case count stays small.)
    #[test]
    fn rnn_c1_recall_stays_near_nn_descent_c1(seed in 0u64..50) {
        let (ds, qs) = MixtureSpec::table10(12, 700, 3, 3.0, 25)
            .with_seed(seed)
            .generate();
        let nnd = nsg::build(&ds, &nsg::NsgParams::tuned(4, 3));
        let rnn = nsg::build(&ds, &nsg::NsgParams::tuned(4, 3).with_rnn_c1());
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut measure = |idx: &dyn AnnIndex| -> f64 {
            let mut total = 0.0;
            for qi in 0..qs.len() as u32 {
                let ids: Vec<u32> = idx
                    .search(&ds, qs.point(qi), 10, 80, &mut ctx)
                    .iter()
                    .map(|n| n.id)
                    .collect();
                total += recall(&ids, &gt[qi as usize]);
            }
            total / qs.len() as f64
        };
        let r_nnd = measure(&nnd);
        let r_rnn = measure(&rnn);
        prop_assert!(
            r_rnn >= r_nnd - 0.02,
            "RNN-C1 recall {r_rnn:.4} fell more than 0.02 below NND-C1 {r_nnd:.4}"
        );
    }
}

/// Regression for the dynamic index: inserts, deletes, and searches after
/// a parallel bulk load behave exactly as after a single-threaded one —
/// including the mass-delete beam-escalation path, which searches through
/// a tombstone-dominated graph.
#[test]
fn dynamic_hnsw_behaves_identically_after_parallel_bulk_load() {
    let (base, extra) = MixtureSpec::table10(12, 400, 3, 3.0, 60).generate();
    let run = |threads: usize| -> (Vec<Vec<u32>>, Vec<u64>) {
        let mut idx = DynamicHnsw::bulk_load(&base, HnswParams::tuned(threads, 5));
        // Incremental inserts continue the bulk load's RNG stream.
        for i in 0..30u32 {
            idx.insert(extra.point(i));
        }
        // Mass delete: tombstone 60% of the original points, exercising
        // the escalated-beam search over a mostly-dead graph.
        for id in 0..(base.len() as u32 * 6 / 10) {
            idx.delete(id);
        }
        let mut results = Vec::new();
        let mut ndcs = Vec::new();
        for i in 30..60u32 {
            let r: Vec<u32> = idx
                .search(extra.point(i), 10, 40)
                .iter()
                .map(|n| n.id)
                .collect();
            ndcs.push(idx.take_stats().ndc);
            results.push(r);
        }
        (results, ndcs)
    };
    let (r1, s1) = run(1);
    for &t in &THREAD_SWEEP[1..] {
        let (rt, st) = run(t);
        assert_eq!(r1, rt, "search results diverge after {t}-thread bulk load");
        assert_eq!(s1, st, "search work diverges after {t}-thread bulk load");
    }
}

/// A bulk load must equal the equivalent sequence of single inserts — the
/// batch construction is an optimization, not a different algorithm
/// family (levels come from the same RNG stream either way).
#[test]
fn bulk_load_matches_index_shape_of_incremental_build() {
    let (base, qs) = MixtureSpec::table10(12, 300, 3, 3.0, 20).generate();
    let params = HnswParams::tuned(4, 9);
    let mut bulk = DynamicHnsw::bulk_load(&base, params.clone());
    let mut incr = DynamicHnsw::new(base.dim(), params);
    for i in 0..base.len() as u32 {
        incr.insert(base.point(i));
    }
    assert_eq!(bulk.len(), incr.len());
    assert_eq!(bulk.live_len(), incr.live_len());
    // The graphs differ (batch points don't see same-batch points during
    // their searches), but both must answer well: identical k, and a
    // shared majority of true neighbors.
    for qi in 0..qs.len() as u32 {
        let a: Vec<u32> = bulk
            .search(qs.point(qi), 10, 60)
            .iter()
            .map(|n| n.id)
            .collect();
        let b: Vec<u32> = incr
            .search(qs.point(qi), 10, 60)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(a.len(), b.len());
        let overlap = a.iter().filter(|x| b.contains(x)).count();
        assert!(overlap >= 5, "query {qi}: only {overlap}/10 shared");
    }
}
