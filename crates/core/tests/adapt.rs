//! Integration suite for trace-driven graph adaptation.
//!
//! The determinism contract, end to end: an adapted index is a pure
//! function of `(graph, dataset, trace aggregate, AdaptParams)` —
//! byte-identical (via the persist serialization) at any mining thread
//! count and for any ordering or partitioning of the trace set. Around
//! it:
//!
//! - the WVSL v2 catapult-overlay segment survives a persist round-trip
//!   (reordered + fused included) with bit-identical search results;
//! - recall parity at a fixed beam: adapting on observed traffic must
//!   not cost more than 0.001 Recall@10 on that traffic;
//! - every misuse is a typed [`AdaptError`], including the per-shard
//!   aggregate-count check on [`ShardSet::adapt`];
//! - the separation contract: adaptation leaves the base graph's
//!   adjacency untouched, and routes recorded *before* adaptation still
//!   pass `replay_check` afterwards.

use weavess_core::adapt::{AdaptError, AdaptParams};
use weavess_core::algorithms::nsg::{self, NsgParams};
use weavess_core::components::SeedStrategy;
use weavess_core::index::{AnnIndex, FlatIndex, SearchContext};
use weavess_core::persist::{load_layout_index, save_layout_index, write_layout_index};
use weavess_core::search::Router;
use weavess_core::shard::ShardSet;
use weavess_core::telemetry::{RecordingTracer, RouteEvent, TraceAggregate};
use weavess_core::{LayoutIndex, NodeLayout};
use weavess_data::synthetic::MixtureSpec;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::base::exact_knng;

const K: usize = 10;
const BEAM: usize = 24;

fn setup(seed: u64, n: usize, nq: usize) -> (Dataset, Dataset) {
    MixtureSpec::table10(12, n, 3, 5.0, nq)
        .with_seed(seed)
        .generate()
}

/// `FlatIndex` is consumed by `LayoutIndex::from_flat`; fixed-seed
/// configurations clone cheaply for rebuild-and-compare tests.
fn clone_flat(flat: &FlatIndex) -> FlatIndex {
    let seeds = match &flat.seeds {
        SeedStrategy::Fixed(v) => SeedStrategy::Fixed(v.clone()),
        _ => panic!("test helper only clones fixed seeds"),
    };
    FlatIndex {
        name: flat.name,
        graph: flat.graph.clone(),
        seeds,
        router: flat.router.clone(),
    }
}

/// The adapt_bench hosting: NSG on the fused arena, BFS-reordered — the
/// layout where index ids differ from caller ids, so the permutation
/// plumbing is actually exercised.
fn build_layout(base: &Dataset) -> (FlatIndex, LayoutIndex) {
    let flat = nsg::build(base, &NsgParams::tuned(2, 3));
    let idx = LayoutIndex::from_flat(clone_flat(&flat), base, NodeLayout::Fused, true);
    (flat, idx)
}

/// Mining parameters sized for the small test workload (the defaults
/// target the bench scale and would leave too few candidates here, and
/// the reach gate is widened so every seed mines at least one shortcut).
fn params() -> AdaptParams {
    AdaptParams {
        min_gap: 2.0,
        min_traffic: 1,
        max_reach: 2.0,
        ..AdaptParams::default()
    }
}

/// Records one route per query and returns both the aggregate and the
/// raw event streams (for order-permutation tests).
fn record_routes(
    idx: &LayoutIndex,
    base: &Dataset,
    queries: &Dataset,
) -> (TraceAggregate, Vec<Vec<RouteEvent>>) {
    let mut agg = TraceAggregate::new(base.len());
    let mut routes = Vec::new();
    let mut ctx = SearchContext::new(base.len());
    let mut tracer = RecordingTracer::new();
    for qi in 0..queries.len() as u32 {
        tracer.clear();
        let res = idx.search_traced(base, queries.point(qi), K, BEAM, &mut ctx, &mut tracer);
        assert!(!res.is_empty());
        agg.absorb(&tracer);
        routes.push(tracer.events.clone());
    }
    (agg, routes)
}

/// The persist serialization as the canonical byte image of an index.
fn index_bytes(idx: &LayoutIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    write_layout_index(&mut buf, idx).expect("serialize");
    buf
}

fn assert_pools_identical(a: &[Neighbor], b: &[Neighbor], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: pool lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{what}: ids diverge");
        assert_eq!(
            x.dist.to_bits(),
            y.dist.to_bits(),
            "{what}: distance bits diverge at id {}",
            x.id
        );
    }
}

/// Mining thread count is wall-clock only: the adapted index serializes
/// to the same bytes at 1, 2, and 8 threads, and the reports agree.
#[test]
fn adapted_index_is_byte_identical_at_1_2_8_mining_threads() {
    let (base, queries) = setup(31, 700, 40);
    let (flat, idx) = build_layout(&base);
    let (agg, _) = record_routes(&idx, &base, &queries);

    let mut reference: Option<(Vec<u8>, weavess_core::adapt::AdaptReport)> = None;
    for threads in [1usize, 2, 8] {
        let mut adapted = LayoutIndex::from_flat(clone_flat(&flat), &base, NodeLayout::Fused, true);
        let report = adapted
            .adapt(
                &base,
                &agg,
                &AdaptParams {
                    threads,
                    ..params()
                },
            )
            .expect("adapt");
        assert!(report.edges_added > 0, "vacuous test: no shortcuts mined");
        let bytes = index_bytes(&adapted);
        match &reference {
            None => reference = Some((bytes, report)),
            Some((b0, r0)) => {
                assert_eq!(b0, &bytes, "adapted bytes diverge at {threads} threads");
                assert_eq!(r0, &report, "adapt report diverges at {threads} threads");
            }
        }
    }
}

/// Trace ordering and trace-set partitioning are invisible: absorbing the
/// routes forwards, backwards, or as two halves merged in either order
/// adapts to the same bytes.
#[test]
fn adapted_index_is_trace_order_invariant() {
    let (base, queries) = setup(47, 700, 40);
    let (flat, idx) = build_layout(&base);
    let (_, routes) = record_routes(&idx, &base, &queries);

    let absorb_all = |order: &[&Vec<RouteEvent>]| {
        let mut agg = TraceAggregate::new(base.len());
        for r in order {
            agg.absorb_route(r);
        }
        agg
    };
    let fwd: Vec<&Vec<RouteEvent>> = routes.iter().collect();
    let rev: Vec<&Vec<RouteEvent>> = routes.iter().rev().collect();
    let (first, second) = routes.split_at(routes.len() / 2);
    let mut half_a = TraceAggregate::new(base.len());
    for r in first {
        half_a.absorb_route(r);
    }
    let mut half_b = TraceAggregate::new(base.len());
    for r in second {
        half_b.absorb_route(r);
    }
    let mut ab = half_a.clone();
    ab.merge(&half_b);
    let mut ba = half_b;
    ba.merge(&half_a);

    let mut reference: Option<Vec<u8>> = None;
    for agg in [absorb_all(&fwd), absorb_all(&rev), ab, ba] {
        let mut adapted = LayoutIndex::from_flat(clone_flat(&flat), &base, NodeLayout::Fused, true);
        let report = adapted.adapt(&base, &agg, &params()).expect("adapt");
        assert!(report.edges_added > 0, "vacuous test: no shortcuts mined");
        let bytes = index_bytes(&adapted);
        match &reference {
            None => reference = Some(bytes),
            Some(b0) => assert_eq!(b0, &bytes, "trace order leaked into the adapted index"),
        }
    }
}

/// The WVSL v2 overlay segment round-trips for both layouts: the
/// reloaded index re-serializes to the same bytes, reports the same
/// overlay edge count, and answers every query bit-identically.
#[test]
fn catapult_overlay_segment_survives_persist_round_trip() {
    let (base, queries) = setup(59, 700, 40);
    let flat = nsg::build(&base, &NsgParams::tuned(2, 3));
    for layout in [NodeLayout::Split, NodeLayout::Fused] {
        let mut idx = LayoutIndex::from_flat(clone_flat(&flat), &base, layout, true);
        let (agg, _) = record_routes(&idx, &base, &queries);
        let report = idx.adapt(&base, &agg, &params()).expect("adapt");
        assert!(report.edges_added > 0, "vacuous test: no shortcuts mined");
        assert_eq!(idx.overlay_edges(), report.edges_added);

        let path = std::env::temp_dir().join(format!("weavess_adapt_rt_{layout:?}.wvsl"));
        save_layout_index(&path, &idx).expect("save");
        let loaded = load_layout_index(&path, &base).expect("load");
        let _ = std::fs::remove_file(&path);

        assert_eq!(loaded.overlay_edges(), report.edges_added, "{layout:?}");
        assert_eq!(loaded.layout(), layout);
        assert_eq!(
            index_bytes(&idx),
            index_bytes(&loaded),
            "{layout:?}: reloaded index re-serializes differently"
        );
        let mut c1 = SearchContext::new(base.len());
        let mut c2 = SearchContext::new(base.len());
        for qi in 0..queries.len() as u32 {
            let a = idx.search(&base, queries.point(qi), K, BEAM, &mut c1);
            let b = loaded.search(&base, queries.point(qi), K, BEAM, &mut c2);
            assert_pools_identical(&a, &b, "adapted persist round-trip");
        }
        assert_eq!(c1.stats, c2.stats);
    }
}

/// Exact Recall@K of `pool` against a brute-force scan.
fn recall(base: &Dataset, q: &[f32], pool: &[Neighbor]) -> f64 {
    let mut gt: Vec<u32> = (0..base.len() as u32).collect();
    gt.sort_unstable_by_key(|&v| (base.dist_to(q, v).to_bits(), v));
    gt.truncate(K);
    let hit = pool.iter().filter(|n| gt.contains(&n.id)).count();
    hit as f64 / K as f64
}

/// Recall parity at a fixed beam: adapting on a trace of the evaluation
/// traffic itself must not lose more than 0.001 Recall@10 on it (the
/// adapt_bench smoke gate, as a unit-scale test).
#[test]
fn adaptation_keeps_recall_parity_at_fixed_beam() {
    let (base, queries) = setup(71, 700, 60);
    let (_, mut idx) = build_layout(&base);
    let (agg, _) = record_routes(&idx, &base, &queries);

    let mut ctx = SearchContext::new(base.len());
    let mean_recall = |idx: &LayoutIndex, ctx: &mut SearchContext| {
        let mut total = 0.0;
        for qi in 0..queries.len() as u32 {
            let q = queries.point(qi);
            total += recall(&base, q, &idx.search(&base, q, K, BEAM, ctx));
        }
        total / queries.len() as f64
    };
    let before = mean_recall(&idx, &mut ctx);
    let report = idx.adapt(&base, &agg, &params()).expect("adapt");
    assert!(report.edges_added > 0, "vacuous test: no shortcuts mined");
    let after = mean_recall(&idx, &mut ctx);
    assert!(
        after >= before - 0.001,
        "adaptation regressed Recall@{K} at beam {BEAM}: {before:.4} -> {after:.4}"
    );
}

/// Every misuse is a typed error: zero degree budget, aggregate/graph
/// size mismatch, wrong dataset, an empty trace set, and the per-shard
/// aggregate count.
#[test]
fn misuse_is_reported_as_typed_errors() {
    let (base, queries) = setup(83, 500, 20);
    let (flat, mut idx) = build_layout(&base);
    let (agg, _) = record_routes(&idx, &base, &queries);

    let zero = idx.adapt(
        &base,
        &agg,
        &AdaptParams {
            max_extra_degree: 0,
            ..params()
        },
    );
    assert_eq!(zero.unwrap_err(), AdaptError::ZeroDegreeBudget);

    let small = TraceAggregate::new(base.len() - 1);
    assert_eq!(
        idx.adapt(&base, &small, &params()).unwrap_err(),
        AdaptError::SizeMismatch {
            graph: base.len(),
            traces: base.len() - 1,
        }
    );

    let (other, _) = setup(84, 300, 1);
    assert_eq!(
        idx.adapt(&other, &agg, &params()).unwrap_err(),
        AdaptError::DatasetMismatch {
            graph: base.len(),
            dataset: other.len(),
        }
    );

    let empty = TraceAggregate::new(base.len());
    assert_eq!(
        idx.adapt(&base, &empty, &params()).unwrap_err(),
        AdaptError::NoTraces
    );

    // Errors surface through ShardSet::adapt too, plus its own
    // aggregate-count check.
    let mut set = ShardSet::build(&base, 2, 0xD15C0, NodeLayout::Split, false, 1, |ds, _| {
        FlatIndex {
            name: "adapt-err",
            graph: exact_knng(ds, 4, 1),
            seeds: SeedStrategy::Fixed(vec![0]),
            router: Router::BestFirst,
        }
    })
    .expect("shard build");
    assert_eq!(
        set.adapt(std::slice::from_ref(&agg), &params())
            .unwrap_err(),
        AdaptError::ShardCount { shards: 2, aggs: 1 }
    );
    for e in [
        AdaptError::ZeroDegreeBudget,
        AdaptError::NoTraces,
        AdaptError::ShardCount { shards: 2, aggs: 1 },
    ] {
        assert!(!e.to_string().is_empty());
    }
    // The index is untouched by the failed attempts.
    assert_eq!(index_bytes(&idx), {
        let fresh = LayoutIndex::from_flat(clone_flat(&flat), &base, NodeLayout::Fused, true);
        index_bytes(&fresh)
    });
}

/// The separation contract: adaptation adds an overlay and moves entries
/// but never rewrites the base graph, and routes recorded before
/// adaptation still replay against the dataset afterwards (vertex
/// distances are untouched).
#[test]
fn base_graph_and_pre_adaptation_traces_survive() {
    let (base, queries) = setup(97, 700, 60);
    let (_, mut idx) = build_layout(&base);
    let before = idx.base_graph();

    // Record and *keep* the tracers (not just the aggregate).
    let mut agg = TraceAggregate::new(base.len());
    let mut tracers = Vec::new();
    let mut ctx = SearchContext::new(base.len());
    for qi in 0..queries.len() as u32 {
        let mut tracer = RecordingTracer::new();
        idx.search_traced(&base, queries.point(qi), K, BEAM, &mut ctx, &mut tracer);
        agg.absorb(&tracer);
        tracers.push(tracer);
    }

    let report = idx.adapt(&base, &agg, &params()).expect("adapt");
    assert!(report.edges_added > 0, "vacuous test: no shortcuts mined");
    assert!(!report.entries.is_empty());

    let after = idx.base_graph();
    assert_eq!(before.len(), after.len());
    for v in 0..before.len() as u32 {
        assert_eq!(
            before.neighbors(v),
            after.neighbors(v),
            "adaptation rewrote base adjacency at vertex {v}"
        );
    }
    // Routes are recorded in index id space; replay checks them against
    // the index-space view of the dataset. Adaptation must not disturb
    // that view (no re-permutation, no vector rewrite), so the old routes
    // still verify bit-for-bit.
    let index_space = idx
        .permutation()
        .map_or_else(|| base.clone(), |p| p.apply_to_dataset(&base));
    for (qi, tracer) in tracers.iter().enumerate() {
        assert!(
            tracer.replay_check(&index_space, queries.point(qi as u32)),
            "pre-adaptation route {qi} no longer replays"
        );
    }
}
