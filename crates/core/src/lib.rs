#![warn(missing_docs)]

//! The survey's primary contribution, reimplemented: a unified
//! seven-component pipeline for graph-based ANNS and the seventeen
//! algorithms the paper analyzes through it.
//!
//! # Layout
//!
//! - [`search`]: routing strategies (C7) — best-first beam search
//!   (Algorithm 1), NGT range search, FANNG backtracking, HCNNG guided
//!   search, OA two-stage routing — plus the per-query accounting
//!   ([`search::SearchStats`]) behind the paper's NDC/speedup/path-length
//!   metrics.
//! - [`nndescent`]: NN-Descent graph refinement (KGraph's engine; shared by
//!   EFANNA, DPG, NSG, NSSG and the optimized algorithm).
//! - [`rnndescent`]: Relative NN-Descent — the faster C1 alternative that
//!   interleaves RNG-style pruning into the descent loop itself; same
//!   output shape and determinism contract as [`nndescent`], selectable
//!   per builder through [`components::init::C1Choice`].
//! - [`components`]: the C1–C6 pipeline stages as free functions and
//!   strategy enums, so any combination can be composed.
//! - [`pipeline`]: the §5.4 benchmark algorithm — a
//!   [`pipeline::PipelineBuilder`] holding one choice per component, used
//!   for controlled single-component ablations (Figure 10).
//! - [`index`]: the uniform [`index::AnnIndex`] trait every built index
//!   implements, and the [`index::FlatIndex`] (graph + seeds + router) that
//!   covers all single-layer algorithms.
//! - [`algorithms`]: one module per surveyed algorithm (Table 2 plus the
//!   appendix's k-DR and §6's optimized algorithm OA), and the dynamic
//!   HNSW extension ([`algorithms::hnsw_dynamic`]).
//! - [`parallel`]: the deterministic parallel-construction layer — fixed
//!   chunking, in-order combination, and the prefix-doubling batch
//!   scheduler; every builder's threading goes through it, so built graphs
//!   are bit-identical at any thread count.
//! - [`persist`]: save/load built indexes without rebuilding.
//! - [`quantized`]: SQ8-routed search with full-precision rerank (the §6
//!   "data encoding" challenge).
//! - [`locality`]: the cache-locality layer — BFS vertex reordering and
//!   the fused node arena behind a runtime-selectable
//!   [`locality::LayoutIndex`], results identical to the split layout.
//! - [`serve`]: the concurrent batch query engine
//!   ([`serve::QueryEngine`]) — per-worker scratch pooling, deterministic
//!   results at any worker count, batch QPS/latency accounting.
//! - [`shard`]: the sharded scatter-gather serving tier — seeded
//!   deterministic partitioning, one engine per shard behind
//!   [`shard::ShardedEngine`], an order-stable top-k merge (results
//!   independent of shard count when shards answer exactly), a
//!   latency-budgeted admission queue ([`shard::BatchQueue`]), and
//!   fleet-level metrics ([`shard::FleetReport`]).
//! - [`telemetry`]: the observability layer — log2-bucketed histograms,
//!   sharded counters, per-hop route tracing
//!   ([`telemetry::RouteTracer`]), build-phase spans
//!   ([`telemetry::BuildProfile`]), and Prometheus/JSON exposition.
//! - [`adapt`]: trace-driven graph adaptation — mines recorded routes
//!   ([`telemetry::TraceAggregate`]) for catapult shortcut edges (kept in
//!   an overlay segment, base graph untouched) and hub-aware entry
//!   refresh; deterministic at any mining thread count.
//! - [`audit`]: the online recall auditor and SLO engine — a shadow
//!   audit path that exact-scans a deterministic sample of served
//!   queries on a budget, maintains a rolling live `Recall@k` with
//!   Wilson confidence intervals (per-shard and overlay-vs-base
//!   attribution), and evaluates latency/recall burn rates into
//!   ok/warn/breach states on the existing exposition surface.

pub mod adapt;
pub mod algorithms;
pub mod audit;
pub mod components;
pub mod index;
pub mod locality;
pub mod nndescent;
pub mod parallel;
pub mod persist;
pub mod pipeline;
pub mod quantized;
pub mod rnndescent;
pub mod search;
pub mod serve;
pub mod shard;
pub mod telemetry;

pub use adapt::{AdaptError, AdaptParams, AdaptReport};
pub use audit::{
    wilson_interval, AuditConfig, AuditSnapshot, RecallAuditor, SloEngine, SloPolicy, SloReport,
    SloState,
};
pub use index::{AnnIndex, FlatIndex, IndexError, SearchContext};
pub use locality::{LayoutIndex, LayoutStats, NodeLayout};
pub use search::{Router, SearchStats};
pub use serve::{
    BatchReport, EngineOptions, EngineSnapshot, LatencySummary, QueryEngine, WorkerReport,
};
pub use shard::{
    BatchQueue, FleetReport, QueueOptions, QueueSnapshot, ShardError, ShardSet, ShardedBatchReport,
    ShardedEngine,
};
pub use telemetry::{
    query_fingerprint, BuildProfile, Flight, FlightObserver, FlightOptions, FlightRecorder,
    NoFlight, NoopTracer, RecordingTracer, RouteTracer, TraceAggregate,
};
