//! Trace-driven graph adaptation: catapult shortcut edges + hub-aware
//! entry refresh.
//!
//! The survey's cost analyses say search spends its budget on routing
//! hops and NDC, and that entry placement and long detours are where
//! skewed query distributions waste the most. This module closes the
//! observation loop opened by [`crate::telemetry::RecordingTracer`]: an
//! **offline** mining pass over a [`TraceAggregate`] that
//!
//! 1. finds recurring long detours — hop chains whose endpoints are close
//!    in distance but far apart in hops — scores the candidate shortcut
//!    `src -> dst` by observed traffic × expected hop savings, and
//!    inserts the winners under a bounded per-vertex extra-degree budget
//!    (catapult edges, after CatapultDB's trajectory-remembering edges);
//! 2. moves the fixed entry points toward the vertices searches actually
//!    converge on (hub-aware entry refresh), optionally keeping the
//!    build-time entries so structural invariants (NSG's
//!    reachability-from-medoid) survive.
//!
//! **Determinism contract.** Adaptation is a pure function of
//! `(graph, dataset, trace aggregate, AdaptParams)`. The aggregate is
//! itself order-invariant, candidate enumeration walks a `BTreeMap`,
//! scoring runs on the fixed-chunk [`crate::parallel`] scheduler, and the
//! final ranking breaks every tie down to `(src, dst)` — so the adapted
//! index is byte-identical at any mining thread count and for any
//! ordering of the trace files.
//!
//! **Separation contract.** Shortcuts live in an overlay segment
//! ([`weavess_graph::GraphOverlay`]); the base graph's bytes and the
//! caller-visible ids are untouched, and pre-adaptation traces still pass
//! `replay_check` because vertex distances never change — only extra
//! edges appear at the end of adjacency lists.

use crate::components::SeedStrategy;
use crate::locality::LayoutIndex;
use crate::parallel::{self, par_chunks_map, CHUNK};
use crate::telemetry::TraceAggregate;
use weavess_data::Dataset;
use weavess_graph::reorder::Permutation;
use weavess_graph::{merge_overlay, CsrGraph, GraphOverlay, OverlayError};

/// Tuning knobs for one adaptation pass. The defaults are the
/// `adapt_bench` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptParams {
    /// Minimum *mean* detour length (hops saved per observed traversal)
    /// for a pair to become a candidate shortcut.
    pub min_gap: f64,
    /// Minimum routes that must have traversed a pair for it to become a
    /// candidate — shortcuts should encode recurring traffic, not one
    /// query's bad luck.
    pub min_traffic: u64,
    /// Per-vertex extra-degree budget for the overlay segment. Zero is a
    /// configuration error ([`AdaptError::ZeroDegreeBudget`]), not "no
    /// adaptation".
    pub max_extra_degree: usize,
    /// Spatial reach gate, as a multiple of the source's *median* base
    /// neighbor distance: a shortcut is admitted only when
    /// `dist(src, dst) <= max_reach * median_nbr_dist(src)` — it must look
    /// like a typical edge of its source, because catapults repair
    /// *detours*: pairs close in space but far in hops. Ungated
    /// (`f64::INFINITY`), high-traffic mining also builds wormholes from
    /// the entry region into the hot region; those flood the bounded
    /// candidate pool on every query's first hops and evict the route
    /// toward cold regions before it is expanded, turning rare-cluster
    /// queries into total misses. The gate is the median rather than the
    /// maximum because the vertices where wormholes do the most damage —
    /// the navigating backbone — are precisely the ones that legitimately
    /// own a few very long edges.
    pub max_reach: f64,
    /// Global cap on inserted shortcut edges.
    pub max_edges: usize,
    /// Number of observed hub vertices to promote to entry points; 0
    /// disables entry refresh.
    pub refresh_entries: usize,
    /// Keep the build-time fixed entries and append hubs (default), vs.
    /// replace them outright. Keeping them preserves builder invariants
    /// like NSG's reachability-from-medoid.
    pub keep_base_entries: bool,
    /// Mining threads; 0 = auto (the [`crate::parallel`] convention).
    /// Never changes the output, only the wall clock.
    pub threads: usize,
}

impl Default for AdaptParams {
    fn default() -> Self {
        AdaptParams {
            min_gap: 4.0,
            min_traffic: 2,
            max_extra_degree: 4,
            max_reach: 1.0,
            max_edges: usize::MAX,
            refresh_entries: 8,
            keep_base_entries: true,
            threads: 0,
        }
    }
}

impl AdaptParams {
    /// Disables the `max_reach` median-distance gate (sets it to
    /// infinity), admitting arbitrarily long "wormhole" shortcuts.
    ///
    /// This is the documented *degradation-inducing* configuration: the
    /// gate exists precisely because ungated catapults drag searches
    /// toward hot clusters and hurt cold-cluster recall. The online
    /// recall auditor's tests use it to manufacture a real quality
    /// regression (the recall SLO must flip to breach while the latency
    /// SLO stays ok); production configurations should never ship it.
    pub fn ungated(mut self) -> Self {
        self.max_reach = f64::INFINITY;
        self
    }
}

/// A typed adaptation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// The trace aggregate covers a different vertex count than the graph.
    SizeMismatch {
        /// Vertices in the index graph.
        graph: usize,
        /// Vertices the aggregate covers.
        traces: usize,
    },
    /// The dataset does not match the index.
    DatasetMismatch {
        /// Vertices in the index graph.
        graph: usize,
        /// Points in the dataset.
        dataset: usize,
    },
    /// The aggregate absorbed no routes — nothing to mine.
    NoTraces,
    /// `max_extra_degree == 0`: the budget admits no shortcut anywhere.
    ZeroDegreeBudget,
    /// Per-shard adaptation got the wrong number of aggregates.
    ShardCount {
        /// Shards in the set.
        shards: usize,
        /// Aggregates supplied.
        aggs: usize,
    },
    /// An overlay insertion failed (defensive; the miner pre-filters).
    Overlay(OverlayError),
}

impl std::fmt::Display for AdaptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptError::SizeMismatch { graph, traces } => write!(
                f,
                "trace aggregate covers {traces} vertices but the graph has {graph}"
            ),
            AdaptError::DatasetMismatch { graph, dataset } => write!(
                f,
                "dataset has {dataset} points but the graph has {graph} vertices"
            ),
            AdaptError::NoTraces => write!(f, "trace aggregate holds no routes"),
            AdaptError::ZeroDegreeBudget => {
                write!(f, "max_extra_degree is 0: no shortcut could ever be added")
            }
            AdaptError::ShardCount { shards, aggs } => {
                write!(f, "{aggs} trace aggregates supplied for {shards} shards")
            }
            AdaptError::Overlay(e) => write!(f, "overlay insertion failed: {e}"),
        }
    }
}

impl std::error::Error for AdaptError {}

impl From<OverlayError> for AdaptError {
    fn from(e: OverlayError) -> Self {
        AdaptError::Overlay(e)
    }
}

/// What one adaptation pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptReport {
    /// Routes the aggregate was mined from.
    pub routes: u64,
    /// Candidate shortcuts that survived the traffic/gap/novelty filters.
    pub candidates: usize,
    /// Shortcut edges actually inserted (≤ candidates: budget + cap).
    pub edges_added: usize,
    /// Vertices that received at least one shortcut.
    pub vertices_extended: usize,
    /// The entry points after refresh, in **original** id space (the
    /// pre-adaptation entries when refresh is disabled or found no hubs).
    pub entries: Vec<u32>,
}

/// One scored candidate shortcut (index id space).
struct Candidate {
    src: u32,
    dst: u32,
    count: u64,
    saved: u64,
    /// Bit pattern of the endpoint distance — total order for f32 ≥ 0.
    dist_bits: u32,
}

/// Mines the aggregate for catapult shortcuts over `base` (index id
/// space) and freezes them into an overlay segment. `perm` maps index ids
/// back to the caller's dataset for endpoint-distance scoring. Returns
/// the overlay plus the number of surviving candidates.
///
/// Pure function of its arguments: see the module docs for why thread
/// count and trace ordering cannot change the result.
pub fn mine_catapults(
    base: &CsrGraph,
    ds: &Dataset,
    perm: Option<&Permutation>,
    agg: &TraceAggregate,
    params: &AdaptParams,
) -> Result<(CsrGraph, usize), AdaptError> {
    let n = base.len();
    if agg.len() != n {
        return Err(AdaptError::SizeMismatch {
            graph: n,
            traces: agg.len(),
        });
    }
    if ds.len() != n {
        return Err(AdaptError::DatasetMismatch {
            graph: n,
            dataset: ds.len(),
        });
    }
    if params.max_extra_degree == 0 {
        return Err(AdaptError::ZeroDegreeBudget);
    }
    if agg.routes() == 0 {
        return Err(AdaptError::NoTraces);
    }
    // Candidate filter, in deterministic BTreeMap (src, dst) order: enough
    // traffic, a long enough mean detour, and genuinely new (the base
    // already reaching dst from src in one hop means there is no detour to
    // cut — the router simply didn't take it).
    let mut cands: Vec<Candidate> = Vec::new();
    for (&(src, dst), stat) in agg.pairs() {
        if src == dst
            || stat.count < params.min_traffic
            || (stat.saved as f64 / stat.count as f64) < params.min_gap
            || base.neighbors(src).contains(&dst)
        {
            continue;
        }
        cands.push(Candidate {
            src,
            dst,
            count: stat.count,
            saved: stat.saved,
            dist_bits: 0,
        });
    }
    // Endpoint distances and the spatial reach gate, chunked on the
    // fixed-partition scheduler. `ds.dist` is squared Euclidean, so the
    // reach multiple is applied squared.
    let to_old = |v: u32| perm.map_or(v, |p| p.to_old(v));
    let threads = parallel::resolve_threads(params.threads);
    let reach_sq = (params.max_reach * params.max_reach) as f32;
    let scored: Vec<Vec<(u32, bool)>> = par_chunks_map(
        cands.len(),
        CHUNK,
        threads,
        || (),
        |_, range| {
            range
                .map(|i| {
                    let c = &cands[i];
                    let d = ds.dist(to_old(c.src), to_old(c.dst));
                    let mut nbr: Vec<u32> = base
                        .neighbors(c.src)
                        .iter()
                        .map(|&nb| ds.dist(to_old(c.src), to_old(nb)).to_bits())
                        .collect();
                    nbr.sort_unstable();
                    let span = nbr
                        .get(nbr.len() / 2)
                        .map_or(0.0, |&bits| f32::from_bits(bits));
                    (d.to_bits(), !reach_sq.is_finite() || d <= reach_sq * span)
                })
                .collect()
        },
    );
    let keep: Vec<bool> = scored
        .into_iter()
        .flatten()
        .enumerate()
        .map(|(i, (bits, within_reach))| {
            cands[i].dist_bits = bits;
            within_reach
        })
        .collect();
    let mut it = keep.iter();
    cands.retain(|_| *it.next().expect("one verdict per candidate"));
    // Rank: most total hops saved first, then heaviest traffic, then the
    // shortest jump (closest endpoints), then ids — a total order.
    cands.sort_unstable_by(|a, b| {
        b.saved
            .cmp(&a.saved)
            .then(b.count.cmp(&a.count))
            .then(a.dist_bits.cmp(&b.dist_bits))
            .then(a.src.cmp(&b.src))
            .then(a.dst.cmp(&b.dst))
    });
    // Greedy insertion under the budget: saturated vertices are skipped
    // (their remaining candidates lost the slot race), everything else is
    // a real error.
    let mut overlay = GraphOverlay::new(n, params.max_extra_degree);
    for c in &cands {
        if overlay.num_edges() >= params.max_edges {
            break;
        }
        if overlay.degree(c.src) >= params.max_extra_degree {
            continue;
        }
        overlay.try_add(c.src, c.dst)?;
    }
    Ok((overlay.freeze(), cands.len()))
}

/// The observed hub entry vertices, best first (index id space).
///
/// Hubs are ranked by how often searches *converged* on them (terminal
/// counts), tie-broken by raw visits then id. Terminal counts — not
/// visits — because visit counts are dominated by the old entry region,
/// which is exactly what refresh is trying to escape.
///
/// Selection is *diversified*: accepting hubs in traffic order alone
/// packs every slot into the hottest cluster, and entries concentrated
/// there hijack cold-region queries — their extra seeds flood the
/// bounded candidate pool and evict the old entry before its route to a
/// cold cluster is expanded (observed as total misses, not graceful
/// degradation). So a candidate is skipped when it lies within the
/// spacing radius of an already-accepted hub: half the median pairwise
/// distance over a stride sample of the whole dataset, a scale-free
/// threshold that separates "same region" from "different region" with
/// no tuning. Any slots spacing leaves unfilled fall back to pure
/// traffic order.
///
/// Each selected hub is then replaced by its *gateway*: the busiest
/// recorded predecessor on routes converging at that hub (max traffic,
/// then shortest mean detour, then id). Entering at the terminal itself
/// starts the search too deep — it radiates from one point, loses the
/// approach diversity of the build-time descent, and measurably drops
/// one or two true neighbors per hot query at a fixed beam. The gateway
/// is the crossroads a couple of hops upstream that those routes
/// actually funneled through, so the final approach still fans out the
/// way the traces did.
///
/// Deterministic: distances compared by their bit patterns, ties broken
/// by id.
pub fn hub_entries(
    agg: &TraceAggregate,
    ds: &Dataset,
    perm: Option<&Permutation>,
    count: usize,
) -> Vec<u32> {
    let mut ranked: Vec<u32> = (0..agg.len() as u32)
        .filter(|&v| agg.terminals()[v as usize] > 0)
        .collect();
    ranked.sort_unstable_by(|&a, &b| {
        let (ta, tb) = (agg.terminals()[a as usize], agg.terminals()[b as usize]);
        let (va, vb) = (agg.visits()[a as usize], agg.visits()[b as usize]);
        tb.cmp(&ta).then(vb.cmp(&va)).then(a.cmp(&b))
    });
    if count == 0 || ranked.len() <= count {
        ranked.truncate(count);
        return ranked;
    }

    // Spacing radius: half the median pairwise distance over a fixed
    // stride sample of the *whole dataset* — the global scale, not the
    // candidates'. (Deriving it from the top candidates fails exactly when
    // diversification matters most: under skewed traffic the top
    // candidates all sit in the hottest region, their pairwise distances
    // are local, and the radius collapses to accept them all.) `ds.dist`
    // is squared Euclidean, so half-the-distance is a quarter of the
    // squared median.
    let to_old = |v: u32| perm.map_or(v, |p| p.to_old(v));
    let stride = (ds.len() / 64).max(1) as u32;
    let sample: Vec<u32> = (0..ds.len() as u32).step_by(stride as usize).collect();
    let mut pair_dists: Vec<f32> = Vec::with_capacity(sample.len() * (sample.len() - 1) / 2);
    for (i, &a) in sample.iter().enumerate() {
        for &b in &sample[i + 1..] {
            pair_dists.push(ds.dist(a, b));
        }
    }
    pair_dists.sort_unstable_by_key(|d| d.to_bits());
    let radius = pair_dists
        .get(pair_dists.len() / 2)
        .map_or(0.0, |median| median / 4.0);

    let mut selected: Vec<u32> = Vec::with_capacity(count);
    for &c in &ranked {
        if selected.len() == count {
            break;
        }
        let spaced = selected
            .iter()
            .all(|&s| ds.dist(to_old(c), to_old(s)) >= radius);
        if spaced {
            selected.push(c);
        }
    }
    // Top up unfilled slots in traffic order.
    for &c in &ranked {
        if selected.len() == count {
            break;
        }
        if !selected.contains(&c) {
            selected.push(c);
        }
    }

    // Swap each hub for its gateway: among the hub's well-traveled
    // recorded predecessors (at least half the traffic of its busiest
    // one — early route vertices like the old entry see *every* route,
    // so raw traffic alone would just pick the old entry back), the one
    // with the smallest mean detour, i.e. the heavy crossroads nearest
    // the hub. Pairs are keyed (src, dst) in a BTreeMap, so the scan
    // order — and with the explicit tie-breaks the winner — is
    // deterministic. Mean detours are compared by exact cross
    // multiplication, no float rounding.
    let mut entries: Vec<u32> = Vec::with_capacity(selected.len());
    for &hub in &selected {
        let mut max_count = 0u64;
        for (&(src, dst), stat) in agg.pairs() {
            if dst == hub && src != hub {
                max_count = max_count.max(stat.count);
            }
        }
        let floor = (max_count / 2).max(1);
        let mut best: Option<(u64, u64, u32)> = None; // (saved, count, src)
        for (&(src, dst), stat) in agg.pairs() {
            if dst != hub || src == hub || stat.count < floor {
                continue;
            }
            let better = match best {
                None => true,
                Some((bs, bc, bsrc)) => {
                    // saved/count < bs/bc  <=>  saved*bc < bs*count.
                    let (lhs, rhs) = (
                        stat.saved as u128 * bc as u128,
                        bs as u128 * stat.count as u128,
                    );
                    lhs < rhs
                        || (lhs == rhs && (stat.count > bc || (stat.count == bc && src < bsrc)))
                }
            };
            if better {
                best = Some((stat.saved, stat.count, src));
            }
        }
        let gateway = best.map_or(hub, |(_, _, src)| src);
        if !entries.contains(&gateway) {
            entries.push(gateway);
        }
    }
    entries
}

impl LayoutIndex {
    /// Adapts this index in place from a mined trace aggregate: installs
    /// the catapult overlay (replacing any previous overlay — adaptation
    /// is a pure function of the *base* graph and the supplied traces)
    /// and refreshes the entry points toward the observed hubs.
    ///
    /// `ds` is the caller's dataset in original id space — the same one
    /// handed to every `search` call. The trace aggregate must be in
    /// index id space, which is what [`crate::index::AnnIndex::search_traced`]
    /// records for this index.
    pub fn adapt(
        &mut self,
        ds: &Dataset,
        agg: &TraceAggregate,
        params: &AdaptParams,
    ) -> Result<AdaptReport, AdaptError> {
        let base = self.base_graph();
        let (overlay, candidates) = mine_catapults(&base, ds, self.perm.as_ref(), agg, params)?;
        let combined = merge_overlay(&base, &overlay);
        let vertices_extended = (0..overlay.len() as u32)
            .filter(|&v| overlay.degree(v) > 0)
            .count();
        let edges_added = overlay.num_edges();
        self.install_combined(combined, overlay, ds);
        // Entry refresh: hubs are index-space ids; seeds live in original
        // id space.
        let to_old = |v: u32| self.perm.as_ref().map_or(v, |p| p.to_old(v));
        let hubs: Vec<u32> = hub_entries(agg, ds, self.perm.as_ref(), params.refresh_entries)
            .into_iter()
            .map(to_old)
            .collect();
        if !hubs.is_empty() {
            let mut entries = match (&self.seeds, params.keep_base_entries) {
                (SeedStrategy::Fixed(v), true) => v.clone(),
                _ => Vec::new(),
            };
            for h in hubs {
                if !entries.contains(&h) {
                    entries.push(h);
                }
            }
            self.seeds = SeedStrategy::Fixed(entries);
        }
        let entries = match &self.seeds {
            SeedStrategy::Fixed(v) => v.clone(),
            _ => Vec::new(),
        };
        Ok(AdaptReport {
            routes: agg.routes(),
            candidates,
            edges_added,
            vertices_extended,
            entries,
        })
    }
}
