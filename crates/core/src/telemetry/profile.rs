//! Build-phase spans: per-component wall time and distance computations
//! for index construction.
//!
//! The paper attributes construction cost per pipeline component (C1
//! init, C2 candidates, C3 selection, C4/C5 connectivity — Table 15 /
//! Figure 10); the builders here report the same attribution online.
//! Builders call [`span`] around each phase unconditionally; when no
//! profile collection is active on the calling thread the call is one
//! thread-local read and a branch, so the 17 builder APIs stay unchanged
//! and unprofiled builds pay nothing measurable.
//!
//! Scope is thread-local on the *orchestrating* thread: the parallel
//! helpers in [`crate::parallel`] block until their workers finish, so a
//! span around a `par_fill` records the phase's true wall time. Distance
//! computations performed inside worker closures are attributed by the
//! builder summing them into an atomic and calling [`add_span_ndc`]
//! within the span.

use std::cell::RefCell;
use std::time::Instant;

/// One profiled construction phase.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildSpan {
    /// Component label, e.g. `"C1 init"` or `"C3 selection"`.
    pub component: &'static str,
    /// Wall-clock seconds spent in the phase.
    pub secs: f64,
    /// Distance computations attributed to the phase (0 when the phase
    /// does not flow its counters out of worker closures).
    pub ndc: u64,
}

/// A build's per-component cost attribution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildProfile {
    /// Algorithm or pipeline name the profile describes.
    pub name: String,
    /// Total wall-clock seconds of the profiled build.
    pub total_secs: f64,
    /// Phases in execution order. Nested spans appear after their parent.
    pub spans: Vec<BuildSpan>,
}

impl BuildProfile {
    /// Seconds of the first span with this component label.
    pub fn span_secs(&self, component: &str) -> Option<f64> {
        self.spans
            .iter()
            .find(|s| s.component == component)
            .map(|s| s.secs)
    }

    /// JSON rendering (hand-rolled; the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut spans = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                spans.push_str(", ");
            }
            spans.push_str(&format!(
                "{{\"component\": \"{}\", \"secs\": {:.6}, \"ndc\": {}}}",
                s.component, s.secs, s.ndc
            ));
        }
        format!(
            "{{\"name\": \"{}\", \"total_secs\": {:.6}, \"spans\": [{spans}]}}",
            self.name, self.total_secs
        )
    }
}

struct ActiveProfile {
    spans: Vec<BuildSpan>,
    /// Indices into `spans` of the currently open (nested) spans.
    open: Vec<usize>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveProfile>> = const { RefCell::new(None) };
}

/// Runs `f` with span collection active on this thread, returning its
/// result and the collected [`BuildProfile`]. Nested activations are not
/// supported: the inner activation wins and the outer profile records no
/// spans from the inner region (builders never nest in practice).
pub fn profile_build<R>(name: &str, f: impl FnOnce() -> R) -> (R, BuildProfile) {
    let prev = ACTIVE.with(|a| {
        a.borrow_mut().replace(ActiveProfile {
            spans: Vec::new(),
            open: Vec::new(),
        })
    });
    let t0 = Instant::now();
    let out = f();
    let total_secs = t0.elapsed().as_secs_f64();
    let state = ACTIVE.with(|a| std::mem::replace(&mut *a.borrow_mut(), prev));
    let spans = state.map(|s| s.spans).unwrap_or_default();
    (
        out,
        BuildProfile {
            name: name.to_string(),
            total_secs,
            spans,
        },
    )
}

/// Wraps one construction phase. When no [`profile_build`] is active on
/// this thread, this is a thread-local read plus a branch around `f`.
pub fn span<R>(component: &'static str, f: impl FnOnce() -> R) -> R {
    let idx = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        a.as_mut().map(|state| {
            state.spans.push(BuildSpan {
                component,
                secs: 0.0,
                ndc: 0,
            });
            let idx = state.spans.len() - 1;
            state.open.push(idx);
            idx
        })
    });
    let Some(idx) = idx else {
        return f();
    };
    let t0 = Instant::now();
    let out = f();
    let secs = t0.elapsed().as_secs_f64();
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        if let Some(state) = a.as_mut() {
            if let Some(s) = state.spans.get_mut(idx) {
                s.secs = secs;
            }
            state.open.pop();
        }
    });
    out
}

/// Attributes `ndc` distance computations to the innermost open span (a
/// no-op outside any span or without active profiling). Builders use this
/// to flow worker-side counters into the phase that spent them.
pub fn add_span_ndc(ndc: u64) {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        if let Some(state) = a.as_mut() {
            if let Some(&idx) = state.open.last() {
                state.spans[idx].ndc += ndc;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_outside_profiling_are_transparent() {
        let v = span("unprofiled", || 41 + 1);
        assert_eq!(v, 42);
        add_span_ndc(10); // no-op, must not panic
    }

    #[test]
    fn profile_collects_spans_in_order_with_ndc() {
        let (out, profile) = profile_build("test", || {
            let a = span("C1 init", || {
                add_span_ndc(100);
                1
            });
            let b = span("C2 candidates", || {
                add_span_ndc(7);
                add_span_ndc(3);
                2
            });
            a + b
        });
        assert_eq!(out, 3);
        assert_eq!(profile.name, "test");
        assert_eq!(profile.spans.len(), 2);
        assert_eq!(profile.spans[0].component, "C1 init");
        assert_eq!(profile.spans[0].ndc, 100);
        assert_eq!(profile.spans[1].ndc, 10);
        assert!(profile.total_secs >= profile.spans.iter().map(|s| s.secs).sum::<f64>() * 0.5);
        assert!(profile.span_secs("C1 init").is_some());
        assert!(profile.span_secs("missing").is_none());
        let json = profile.to_json();
        assert!(json.contains("\"component\": \"C2 candidates\""));
    }

    #[test]
    fn nested_spans_attribute_ndc_to_the_innermost() {
        let (_, profile) = profile_build("nest", || {
            span("outer", || {
                add_span_ndc(1);
                span("inner", || add_span_ndc(5));
                add_span_ndc(2);
            })
        });
        let outer = profile
            .spans
            .iter()
            .find(|s| s.component == "outer")
            .unwrap();
        let inner = profile
            .spans
            .iter()
            .find(|s| s.component == "inner")
            .unwrap();
        assert_eq!(outer.ndc, 3);
        assert_eq!(inner.ndc, 5);
    }

    #[test]
    fn worker_threads_do_not_leak_into_the_profile() {
        let (_, profile) = profile_build("threads", || {
            span("phase", || {
                std::thread::scope(|s| {
                    s.spawn(|| {
                        // Worker thread: no active profile here.
                        add_span_ndc(999);
                        span("worker-span", || ());
                    });
                });
            })
        });
        assert_eq!(profile.spans.len(), 1);
        assert_eq!(profile.spans[0].ndc, 0);
    }
}
