//! Metric exposition: Prometheus text format and a JSON mirror.
//!
//! Dependency-free renderers for the serving layer's `/metrics`-style
//! surface. The Prometheus output follows the text exposition format
//! (`# HELP` / `# TYPE` headers, cumulative `_bucket{le="…"}` series plus
//! `_sum` and `_count` for histograms); the JSON mirror carries the same
//! numbers for programmatic consumers.

use super::histogram::{bucket_upper_bound, Histogram, BUCKETS};

/// Renders one counter in Prometheus text format.
pub fn prometheus_counter(name: &str, help: &str, value: u64) -> String {
    format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n")
}

/// Renders one gauge in Prometheus text format.
pub fn prometheus_gauge(name: &str, help: &str, value: f64) -> String {
    format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n")
}

/// Renders one counter with a label set: `# HELP`/`# TYPE` headers, then
/// one sample line per `(label-value, value)` pair — the shape the
/// sharded tier uses for per-shard series under one metric family.
pub fn prometheus_labeled_counter(
    name: &str,
    help: &str,
    label: &str,
    series: &[(String, u64)],
) -> String {
    let mut out = format!("# HELP {name} {help}\n# TYPE {name} counter\n");
    for (lv, value) in series {
        out.push_str(&format!("{name}{{{label}=\"{lv}\"}} {value}\n"));
    }
    out
}

/// Renders a [`Histogram`] in Prometheus text format: one cumulative
/// `_bucket` line per non-empty octave (plus the mandatory `+Inf`
/// bucket), then `_sum` and `_count`.
pub fn prometheus_histogram(name: &str, help: &str, h: &Histogram) -> String {
    let mut out = format!("# HELP {name} {help}\n# TYPE {name} histogram\n");
    let counts = h.bucket_counts();
    let mut cum = 0u64;
    for (b, &c) in counts.iter().enumerate().take(BUCKETS - 1) {
        cum += c;
        if c > 0 {
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cum}\n",
                bucket_upper_bound(b)
            ));
        }
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
    out
}

/// Renders a [`Histogram`] as a JSON object with count/sum/min/max/mean,
/// headline percentiles, and the non-empty buckets.
pub fn json_histogram(h: &Histogram) -> String {
    let mut buckets = String::new();
    for (b, &c) in h.bucket_counts().iter().enumerate() {
        if c > 0 {
            if !buckets.is_empty() {
                buckets.push_str(", ");
            }
            buckets.push_str(&format!(
                "{{\"le\": {}, \"count\": {c}}}",
                bucket_upper_bound(b)
            ));
        }
    }
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \
         \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{buckets}]}}",
        h.count(),
        h.sum(),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0),
        h.mean(),
        h.percentile(0.50),
        h.percentile(0.95),
        h.percentile(0.99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal line-format check: every non-comment line is
    /// `name{labels} value` or `name value`, HELP/TYPE precede samples,
    /// and bucket counts are cumulative and end with `+Inf == count`.
    fn assert_prometheus_parses(text: &str) {
        let mut saw_type = false;
        for line in text.lines() {
            if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
                saw_type |= line.starts_with("# TYPE ");
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment: {line}");
            let (name_part, value) = line.rsplit_once(' ').expect("sample needs a value");
            assert!(!name_part.is_empty());
            if let Some(open) = name_part.find('{') {
                assert!(name_part.ends_with('}'), "unclosed labels: {line}");
                let labels = &name_part[open + 1..name_part.len() - 1];
                for kv in labels.split(',') {
                    let (k, v) = kv.split_once('=').expect("label needs =");
                    assert!(!k.is_empty());
                    assert!(v.starts_with('"') && v.ends_with('"'), "unquoted: {line}");
                }
            }
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value: {line}"
            );
        }
        assert!(saw_type, "no TYPE line");
    }

    #[test]
    fn counter_and_gauge_parse() {
        assert_prometheus_parses(&prometheus_counter("weavess_queries_total", "Queries.", 42));
        assert_prometheus_parses(&prometheus_gauge("weavess_up", "Up.", 1.0));
    }

    #[test]
    fn labeled_counter_parses_with_one_series_per_label_value() {
        let text = prometheus_labeled_counter(
            "weavess_shard_queries_total",
            "Queries per shard.",
            "shard",
            &[("0".to_string(), 3), ("1".to_string(), 4)],
        );
        assert_prometheus_parses(&text);
        assert!(text.contains("weavess_shard_queries_total{shard=\"0\"} 3\n"));
        assert!(text.contains("weavess_shard_queries_total{shard=\"1\"} 4\n"));
    }

    #[test]
    fn histogram_parses_and_is_cumulative() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 2, 100, 5000] {
            h.record(v);
        }
        let text = prometheus_histogram("weavess_ndc", "NDC per query.", &h);
        assert_prometheus_parses(&text);
        // Cumulative buckets: last finite bucket <= +Inf == count.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("weavess_ndc_bucket{le=\"") {
                let (le, v) = rest.split_once("\"} ").unwrap();
                let v: u64 = v.parse().unwrap();
                if le == "+Inf" {
                    assert_eq!(v, h.count());
                } else {
                    assert!(v >= last, "not cumulative: {line}");
                    last = v;
                }
            }
        }
        assert!(text.contains("weavess_ndc_sum 5105\n"));
        assert!(text.contains("weavess_ndc_count 5\n"));
    }

    #[test]
    fn json_histogram_carries_percentiles() {
        let mut h = Histogram::new();
        h.record(10);
        let j = json_histogram(&h);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"p50\": 10"));
        assert!(j.contains("\"le\": 15"));
    }
}
