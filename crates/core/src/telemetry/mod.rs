//! The in-tree, dependency-free observability layer.
//!
//! The survey's methodology is measurement — NDC, path length,
//! candidate-set size, per-component construction cost (§5, §6) — and
//! this module makes the same introspection available *online*:
//!
//! - [`Histogram`]: log2-bucketed latency/NDC/hop distributions with
//!   deterministic (order-independent) merge across workers;
//! - [`ShardedCounter`]: cache-padded atomic counters for cumulative
//!   serving metrics;
//! - [`RouteTracer`] / [`NoopTracer`] / [`RecordingTracer`]: per-hop
//!   route capture threaded through every routing strategy as a
//!   monomorphized generic, free when off;
//! - [`TraceAggregate`]: the compact, order-invariant fold of a trace
//!   set (visit/terminal counts + hop-pair stats) that feeds the
//!   [`crate::adapt`] mining pass without retaining event streams;
//! - [`BuildProfile`] + [`span`]/[`profile_build`]: per-component
//!   construction spans for all builders;
//! - [`expose`]: Prometheus text + JSON exposition renderers behind
//!   [`crate::serve::QueryEngine`]'s metrics surface;
//! - [`flight`]: the per-query flight recorder — stage-attributed
//!   lifecycle spans (queue wait → scatter → shard search → merge) with
//!   deterministic seeded sampling, a bounded ring, Chrome trace-event
//!   export, and a byte-stable dump; compile-away via the same
//!   monomorphization contract as the tracer.

pub mod aggregate;
pub mod counter;
pub mod expose;
pub mod flight;
pub mod histogram;
pub mod profile;
pub mod tracer;

pub use aggregate::{PairStat, TraceAggregate};
pub use counter::ShardedCounter;
pub use flight::{
    query_fingerprint, Flight, FlightObserver, FlightOptions, FlightRecorder, NoFlight, SpanRec,
    Stage,
};
pub use histogram::Histogram;
pub use profile::{add_span_ndc, profile_build, span, BuildProfile, BuildSpan};
pub use tracer::{NoopTracer, RecordingTracer, RouteEvent, RouteTracer};
