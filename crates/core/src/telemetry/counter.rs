//! Cache-padded sharded atomic counters.
//!
//! A single `AtomicU64` bounces its cache line between every worker that
//! increments it; a sharded counter gives each thread its own 64-byte
//! line and sums the shards on read. Reads are O(shards) and eventually
//! consistent (exact once writers quiesce) — the right trade for
//! monotonically increasing serving metrics.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One counter shard, alone on its cache line.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Round-robin assignment of threads to shards. A global counter (not
/// per-`ShardedCounter`) so a thread uses the same shard index across
/// every counter, keeping its writes on the same set of lines.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// A monotonically increasing counter sharded across cache-padded slots.
pub struct ShardedCounter {
    shards: Box<[Shard]>,
}

impl ShardedCounter {
    /// A counter with the default shard count (16 — enough that the
    /// harness's worker pools rarely collide, small enough to read fast).
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    /// A counter with an explicit shard count (rounded up to 1).
    pub fn with_shards(shards: usize) -> Self {
        ShardedCounter {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
        }
    }

    /// Adds `v` on the calling thread's shard.
    #[inline]
    pub fn add(&self, v: u64) {
        let slot = SLOT.with(|s| *s) % self.shards.len();
        self.shards[slot].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sums all shards. Exact when no writer is mid-flight.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_cache_line_sized() {
        assert_eq!(std::mem::size_of::<Shard>(), 64);
        assert_eq!(std::mem::align_of::<Shard>(), 64);
    }

    #[test]
    fn counts_across_threads() {
        let c = ShardedCounter::with_shards(4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8 * 1000);
        c.add(42);
        assert_eq!(c.get(), 8 * 1000 + 42);
    }
}
