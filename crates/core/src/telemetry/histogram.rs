//! Log2-bucketed histograms for latency / NDC / hop distributions.
//!
//! The paper's measurement methodology (§5) reports distributions —
//! per-query NDC, path length, latency percentiles — that `serve`
//! previously recovered by sorting a `Vec<u64>` of raw samples. A
//! histogram with power-of-two buckets answers the same percentile
//! queries in O(1) memory, and — the property the serving layer actually
//! needs — merges across workers with plain element-wise addition, which
//! is commutative and associative, so the merged distribution is
//! independent of how queries were partitioned.
//!
//! Resolution contract: a percentile is exact *within its bucket* — the
//! reported value interpolates linearly between the bucket's bounds by
//! the rank's position among the bucket's samples, clamped to the
//! observed `[min, max]`. A single-sample histogram therefore reports
//! that sample exactly, and relative error is bounded by 2× (one
//! octave). Before interpolation the report was the bucket's upper
//! bound, which snapped every tail quantile to a power of two.

/// Number of buckets: bucket 0 holds the value 0, bucket `b ≥ 1` holds
/// values in `[2^(b-1), 2^b - 1]`, and bucket 64 holds `[2^63, u64::MAX]`.
pub const BUCKETS: usize = 65;

/// A fixed-size log2-bucketed histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    /// `u128` so the sum cannot overflow even at `u64::MAX` per sample.
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
#[inline]
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Inclusive lower bound of a bucket (0 for bucket 0, else `2^(b-1)`).
#[inline]
pub fn bucket_lower_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self` by element-wise addition. Commutative
    /// and associative, so any merge order over any partition of the
    /// samples yields the same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (index = [`bucket_of`]).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Bucket-wise subtraction of an `earlier` snapshot of the same
    /// cumulative histogram — the rolling-window primitive: cumulative
    /// counts are monotone, so the difference is exactly the samples
    /// recorded between the two snapshots. `min`/`max` keep the
    /// cumulative envelope (the window's true extremes are not
    /// recoverable from buckets), which keeps percentile clamps valid
    /// as a superset.
    pub fn subtract_counts(&mut self, earlier: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(earlier.counts.iter()) {
            *a = a.saturating_sub(*b);
        }
        self.count = self.count.saturating_sub(earlier.count);
        self.sum = self.sum.saturating_sub(earlier.sum);
    }

    /// Nearest-rank percentile with within-bucket linear interpolation:
    /// the `ceil(p·count)`-th smallest sample is located in its log2
    /// bucket, then positioned linearly between the bucket's bounds by
    /// its rank among that bucket's samples, and clamped to the observed
    /// `[min, max]` (so a single sample — and the extremes — stay exact).
    /// `p` is in `[0, 1]`; returns 0 on an empty histogram.
    ///
    /// Without interpolation the report was the bucket's inclusive upper
    /// bound, which snapped every tail quantile (p99 in particular) to
    /// `2^b - 1`; interpolation keeps the worst-case octave error bound
    /// but removes the power-of-two staircase.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            let before = cum;
            cum += c;
            if cum >= rank {
                let lower = bucket_lower_bound(b);
                let upper = bucket_upper_bound(b);
                // Fraction of the bucket below the rank: rank - before of
                // the bucket's c samples, mapped onto the value range so
                // rank == before + c lands on the upper bound.
                let within = (rank - before) as f64 / c as f64;
                let est = lower as f64 + within * (upper - lower) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_sample_is_exact_at_every_percentile() {
        for v in [0u64, 1, 7, 1000, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.percentile(p), v, "v={v} p={p}");
            }
            assert_eq!(h.min(), Some(v));
            assert_eq!(h.max(), Some(v));
        }
    }

    #[test]
    fn sum_survives_u64_max_samples() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), 2 * u64::MAX as u128);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        // 1..=100: rank 50 lands in bucket 6 (32..=63, 32 samples, 31
        // below), so p50 = 32 + (19/32)·31 ≈ 50 — not the bucket's upper
        // bound 63 the pre-interpolation report snapped to. p95 (rank 95)
        // interpolates inside bucket 7 (64..=127) and clamps to max 100.
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.50), 50);
        assert_eq!(h.percentile(0.95), 100);
        assert_eq!(h.mean(), 50.5);
    }

    #[test]
    fn percentiles_are_monotone_and_clamped() {
        let mut h = Histogram::new();
        for v in [3u64, 40, 41, 900, 901, 902, 65_000] {
            h.record(v);
        }
        let mut last = 0u64;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            assert!(p >= last, "p{i} = {p} < previous {last}");
            assert!((3..=65_000).contains(&p), "p{i} = {p} outside [min, max]");
            last = p;
        }
        assert_eq!(h.percentile(1.0), 65_000);
    }

    #[test]
    fn tail_quantiles_do_not_snap_to_powers_of_two() {
        // 1000 samples of 1500 ns: every percentile is in bucket 11
        // (1024..=2047); interpolation + the max clamp report the exact
        // value instead of 2047.
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(1500);
        }
        assert_eq!(h.percentile(0.99), 1500);
        assert_eq!(h.percentile(0.50), 1500);
    }

    #[test]
    fn merge_equals_recording_all_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 3, 17, 1 << 40] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 5, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
