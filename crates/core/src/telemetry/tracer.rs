//! Route tracing: per-hop observation of a search, at zero cost when off.
//!
//! Every routing strategy takes a [`RouteTracer`] as a monomorphized
//! generic. The default [`NoopTracer`] has empty inlined hooks, so the
//! untraced search compiles to exactly the pre-tracing code; a
//! [`RecordingTracer`] captures the route — seed scores and one event per
//! expansion with `(hop index, vertex, distance, NDC so far, pool size)` —
//! reproducing the paper's path-length and candidate-set analyses online
//! for any single query.

use weavess_data::vectors::VectorView;

/// Observer of one query's route. All hooks default to nothing, so
/// implementors override only what they need and the no-op case inlines
/// away entirely.
pub trait RouteTracer {
    /// A seed entered the pool with its computed distance.
    #[inline(always)]
    fn on_seed(&mut self, _vertex: u32, _dist: f32) {}

    /// A vertex is being expanded. `ndc_so_far` counts this query's
    /// distance computations up to (and including) scoring this vertex;
    /// `pool_len` is the candidate-pool occupancy at expansion time.
    #[inline(always)]
    fn on_hop(&mut self, _vertex: u32, _dist: f32, _ndc_so_far: u64, _pool_len: usize) {}
}

/// The default tracer: does nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl RouteTracer for NoopTracer {}

/// Forwarding impl so `&mut T` (including `&mut dyn RouteTracer`) is
/// itself a tracer — what lets the object-safe
/// [`crate::index::AnnIndex::search_traced`] feed the monomorphized
/// search routines.
impl<T: RouteTracer + ?Sized> RouteTracer for &mut T {
    #[inline(always)]
    fn on_seed(&mut self, vertex: u32, dist: f32) {
        (**self).on_seed(vertex, dist);
    }

    #[inline(always)]
    fn on_hop(&mut self, vertex: u32, dist: f32, ndc_so_far: u64, pool_len: usize) {
        (**self).on_hop(vertex, dist, ndc_so_far, pool_len);
    }
}

/// One recorded route event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteEvent {
    /// A scored seed.
    Seed {
        /// Seed vertex id.
        vertex: u32,
        /// Distance to the query.
        dist: f32,
    },
    /// One expansion.
    Hop {
        /// 0-based hop index within this query.
        hop: u32,
        /// Expanded vertex id.
        vertex: u32,
        /// Distance of the expanded vertex to the query.
        dist: f32,
        /// Distance computations so far in this query.
        ndc_so_far: u64,
        /// Candidate-pool occupancy at expansion time.
        pool_len: u32,
    },
}

/// A tracer that records the whole route for dumping or replay.
#[derive(Debug, Clone, Default)]
pub struct RecordingTracer {
    /// The captured events, in traversal order.
    pub events: Vec<RouteEvent>,
    hops: u32,
}

impl RecordingTracer {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the recording for reuse on another query.
    pub fn clear(&mut self) {
        self.events.clear();
        self.hops = 0;
    }

    /// Number of hops recorded.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// 0-based index of the first hop that improved on the best seed
    /// distance, or `None` when no expansion beat the seeds (or nothing
    /// was recorded). This is the "entry-to-first-improvement" length:
    /// how many expansions the router spends escaping the entry region
    /// before it starts making progress — the quantity hub-aware entry
    /// refresh tries to shrink.
    pub fn first_improvement_hop(&self) -> Option<u32> {
        let mut best_seed = f32::INFINITY;
        for e in &self.events {
            match *e {
                RouteEvent::Seed { dist, .. } => best_seed = best_seed.min(dist),
                RouteEvent::Hop { hop, dist, .. } => {
                    if dist < best_seed {
                        return Some(hop);
                    }
                }
            }
        }
        None
    }

    /// Byte-stable text dump of the route: one line per event, distances
    /// printed as raw f32 bits (hex) alongside the decimal rendering so
    /// the dump is identical across runs, thread counts, and platforms
    /// whenever the traversal is.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match *e {
                RouteEvent::Seed { vertex, dist } => {
                    out.push_str(&format!(
                        "seed v={vertex} dist={dist} bits={:08x}\n",
                        dist.to_bits()
                    ));
                }
                RouteEvent::Hop {
                    hop,
                    vertex,
                    dist,
                    ndc_so_far,
                    pool_len,
                } => {
                    out.push_str(&format!(
                        "hop {hop} v={vertex} dist={dist} bits={:08x} ndc={ndc_so_far} pool={pool_len}\n",
                        dist.to_bits()
                    ));
                }
            }
        }
        out
    }

    /// Replays the route against the dataset: recomputes every recorded
    /// distance and checks it matches to the bit. `true` means the dump
    /// is a faithful record of a search over `ds` for `query`.
    pub fn replay_check(&self, ds: &(impl VectorView + ?Sized), query: &[f32]) -> bool {
        self.events.iter().all(|e| {
            let (v, d) = match *e {
                RouteEvent::Seed { vertex, dist } => (vertex, dist),
                RouteEvent::Hop { vertex, dist, .. } => (vertex, dist),
            };
            ds.dist_to(query, v).to_bits() == d.to_bits()
        })
    }
}

impl RouteTracer for RecordingTracer {
    #[inline]
    fn on_seed(&mut self, vertex: u32, dist: f32) {
        self.events.push(RouteEvent::Seed { vertex, dist });
    }

    #[inline]
    fn on_hop(&mut self, vertex: u32, dist: f32, ndc_so_far: u64, pool_len: usize) {
        self.events.push(RouteEvent::Hop {
            hop: self.hops,
            vertex,
            dist,
            ndc_so_far,
            pool_len: pool_len as u32,
        });
        self.hops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_tracer_counts_hops_and_dumps_stably() {
        let mut t = RecordingTracer::new();
        t.on_seed(3, 1.5);
        t.on_hop(3, 1.5, 4, 2);
        t.on_hop(7, 0.25, 9, 3);
        assert_eq!(t.hops(), 2);
        let d1 = t.dump();
        let d2 = t.dump();
        assert_eq!(d1, d2);
        assert!(d1.starts_with("seed v=3 dist=1.5 bits=3fc00000\n"));
        assert!(d1.contains("hop 1 v=7 dist=0.25 bits=3e800000 ndc=9 pool=3\n"));
        t.clear();
        assert!(t.events.is_empty());
        assert_eq!(t.hops(), 0);
    }

    #[test]
    fn first_improvement_ignores_non_improving_hops() {
        let mut t = RecordingTracer::new();
        assert_eq!(t.first_improvement_hop(), None);
        t.on_seed(0, 2.0);
        t.on_seed(1, 1.0);
        t.on_hop(2, 1.5, 1, 1); // better than one seed, worse than best
        t.on_hop(3, 0.5, 2, 1);
        assert_eq!(t.first_improvement_hop(), Some(1));
        t.clear();
        t.on_seed(0, 1.0);
        t.on_hop(0, 1.0, 1, 1); // equal is not an improvement
        assert_eq!(t.first_improvement_hop(), None);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut t = RecordingTracer::new();
        {
            let mut r: &mut dyn RouteTracer = &mut t;
            // Explicitly route through the blanket `&mut T` impl
            // (Self = `&mut dyn RouteTracer`), the path `search_traced` uses.
            <&mut dyn RouteTracer as RouteTracer>::on_seed(&mut r, 1, 2.0);
        }
        assert_eq!(t.events.len(), 1);
    }
}
