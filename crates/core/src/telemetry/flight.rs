//! Per-query flight recorder: stage-attributed lifecycle spans for the
//! serving tier.
//!
//! A *flight* is one served query's lifecycle — queue admission →
//! scatter → per-shard search → top-k merge — recorded as a small list
//! of [`SpanRec`]s plus the query's deterministic identity (fingerprint,
//! k/beam, result ids). The recorder follows the same monomorphization
//! contract as [`RouteTracer`](crate::telemetry::RouteTracer): the
//! serving hot paths are generic over [`FlightObserver`], and with
//! [`NoFlight`] every recording branch is guarded by a
//! `const ENABLED: bool = false` the compiler folds away, so the
//! recorder costs nothing when off.
//!
//! # Sampling
//!
//! Two keep rules, both allocation-free on the unsampled path:
//!
//! - **seeded 1-in-N**: a query is sampled iff
//!   `splitmix64(seed ^ fingerprint) % sample_every == 0`. The decision
//!   is a pure function of `(seed, query bytes)` — independent of worker
//!   count, shard count, batch position, and wall clock — so the sampled
//!   set is replayable and byte-stable across runs;
//! - **always-keep-slowest**: each batch's slowest query is offered to
//!   the recorder, which keeps it iff it is slower than every flight
//!   kept so far (a lock-free `fetch_max` high-water mark). Tail
//!   outliers are therefore never lost to sampling, at the cost of the
//!   kept-slowest set being timing-dependent — which is why
//!   [`FlightRecorder::dump_stable`] excludes it.
//!
//! # Storage and export
//!
//! Completed flights land in a bounded ring: `capacity` slots, a
//! lock-free atomic cursor claiming slots round-robin, one tiny mutex
//! per slot for the write itself (never contended with the claim). The
//! ring exports two ways: [`FlightRecorder::chrome_trace_json`] emits
//! Chrome trace-event JSON loadable in `chrome://tracing` / Perfetto,
//! and [`FlightRecorder::dump_stable`] emits a byte-stable text dump of
//! the seed-sampled flights (deterministic fields only) for golden
//! tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// FNV-1a over a query's raw f32 bits: the stable, position-independent
/// per-query identity used for RNG reseeding, flight sampling, and audit
/// sampling. Equal vectors always fingerprint equally.
pub fn query_fingerprint(query: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in query {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// SplitMix64 finalizer: decorrelates the sampling decision from raw
/// fingerprint bits so `% sample_every` is unbiased even for structured
/// query sets.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Lifecycle stage a [`SpanRec`] is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Admission-queue wait (enqueue → batch close), from
    /// [`BatchQueue`](crate::shard::BatchQueue).
    QueueWait,
    /// Whole-batch scatter across shards (batch-scoped: every flight in
    /// the batch carries the same scatter duration).
    Scatter,
    /// One shard's search of this query (per-query, per-shard).
    ShardSearch,
    /// Global top-k merge of the per-shard pools (per-query).
    Merge,
    /// Unsharded single-engine search (per-query).
    Search,
}

impl Stage {
    /// Stable lowercase name used in dumps and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Scatter => "scatter",
            Stage::ShardSearch => "shard_search",
            Stage::Merge => "merge",
            Stage::Search => "search",
        }
    }
}

/// One recorded span within a flight. `start_ns`/`dur_ns` are wall-clock
/// (flight-relative offsets) and therefore excluded from the stable
/// dump; `stage`, `shard`, `ndc`, and `hops` are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Which lifecycle stage this span covers.
    pub stage: Stage,
    /// Shard that executed the span (`None` for unsharded / global
    /// stages).
    pub shard: Option<u32>,
    /// Offset from the flight's start, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Distance computations attributed to the span (search stages).
    pub ndc: u64,
    /// Expanded vertices attributed to the span (search stages).
    pub hops: u64,
}

/// A completed query flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Flight {
    /// Recorder-global batch sequence number.
    pub batch: u64,
    /// Query index within its batch.
    pub qi: u32,
    /// [`query_fingerprint`] of the query vector.
    pub fingerprint: u64,
    /// Neighbors requested.
    pub k: usize,
    /// Candidate-set size used.
    pub beam: usize,
    /// Result ids, nearest-first (deterministic).
    pub results: Vec<u32>,
    /// `true` when seed-sampled (deterministic set); `false` when kept
    /// only by the slowest-query rule (timing-dependent set).
    pub sampled: bool,
    /// End-to-end duration, nanoseconds.
    pub total_ns: u64,
    /// Stage spans, in lifecycle order.
    pub spans: Vec<SpanRec>,
}

/// Tuning knobs for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightOptions {
    /// Keep 1 in this many queries by the seeded rule (0 disables seeded
    /// sampling; the slowest-query rule still applies).
    pub sample_every: u64,
    /// Ring capacity: completed flights kept before overwrite.
    pub capacity: usize,
    /// Sampling seed; the sampled set is a pure function of
    /// `(seed, query bytes)`.
    pub seed: u64,
}

impl Default for FlightOptions {
    fn default() -> Self {
        FlightOptions {
            sample_every: 64,
            capacity: 256,
            seed: 0xF11C47,
        }
    }
}

/// The bounded ring of completed flights plus the sampling state.
///
/// Shared by reference between the serving engines and the admission
/// queue; every operation on the hot path is lock-free (atomic cursor,
/// atomic high-water mark) except the per-slot store, which takes an
/// uncontended slot mutex after the claim.
pub struct FlightRecorder {
    opts: FlightOptions,
    slots: Vec<Mutex<Option<Flight>>>,
    cursor: AtomicU64,
    batch_seq: AtomicU64,
    slowest_ns: AtomicU64,
    sampled_total: AtomicU64,
    recorded_total: AtomicU64,
    queue_waits: Mutex<HashMap<u64, u64>>,
}

impl FlightRecorder {
    /// A recorder with the given knobs.
    pub fn new(opts: FlightOptions) -> Self {
        assert!(opts.capacity > 0, "flight ring needs at least one slot");
        let mut slots = Vec::with_capacity(opts.capacity);
        slots.resize_with(opts.capacity, || Mutex::new(None));
        FlightRecorder {
            opts,
            slots,
            cursor: AtomicU64::new(0),
            batch_seq: AtomicU64::new(0),
            slowest_ns: AtomicU64::new(0),
            sampled_total: AtomicU64::new(0),
            recorded_total: AtomicU64::new(0),
            queue_waits: Mutex::new(HashMap::new()),
        }
    }

    /// The recorder's knobs.
    pub fn options(&self) -> &FlightOptions {
        &self.opts
    }

    /// The seeded sampling decision: pure function of
    /// `(self.opts.seed, fingerprint)`, independent of workers, shards,
    /// batch position, and time.
    #[inline]
    pub fn is_sampled(&self, fingerprint: u64) -> bool {
        self.opts.sample_every > 0
            && splitmix64(self.opts.seed ^ fingerprint).is_multiple_of(self.opts.sample_every)
    }

    /// Claims the next batch sequence number.
    pub fn next_batch(&self) -> u64 {
        self.batch_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The always-keep-slowest rule: returns `true` (and raises the
    /// high-water mark) iff `total_ns` beats every flight kept so far.
    pub fn keep_slowest(&self, total_ns: u64) -> bool {
        self.slowest_ns.fetch_max(total_ns, Ordering::Relaxed) < total_ns
    }

    /// Stores a completed flight into the ring (round-robin overwrite).
    pub fn push(&self, flight: Flight) {
        if flight.sampled {
            self.sampled_total.fetch_add(1, Ordering::Relaxed);
        }
        self.recorded_total.fetch_add(1, Ordering::Relaxed);
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        *self.slots[slot].lock() = Some(flight);
    }

    /// Flights recorded since creation (including those since evicted).
    pub fn recorded_total(&self) -> u64 {
        self.recorded_total.load(Ordering::Relaxed)
    }

    /// Seed-sampled flights recorded since creation.
    pub fn sampled_total(&self) -> u64 {
        self.sampled_total.load(Ordering::Relaxed)
    }

    /// The admission queue noting how long a sampled query waited; the
    /// engine attaches it as a [`Stage::QueueWait`] span when the
    /// query's flight is assembled.
    pub fn note_queue_wait(&self, fingerprint: u64, waited_ns: u64) {
        self.queue_waits.lock().insert(fingerprint, waited_ns);
    }

    /// Claims (and clears) a noted queue wait for `fingerprint`.
    pub fn take_queue_wait(&self, fingerprint: u64) -> Option<u64> {
        self.queue_waits.lock().remove(&fingerprint)
    }

    /// A snapshot of the ring's current flights, ordered by
    /// `(batch, qi)` so the view is independent of slot assignment.
    pub fn flights(&self) -> Vec<Flight> {
        let mut out: Vec<Flight> = self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        out.sort_by_key(|f| (f.batch, f.qi));
        out
    }

    /// Byte-stable text dump of the *seed-sampled* flights: one line per
    /// flight (deterministic fields only — fingerprint, k/beam, span
    /// stages with shard/NDC/hop attribution, result ids), ordered by
    /// `(batch, qi)`. Slowest-kept flights and all wall-clock fields are
    /// excluded, so for a fixed workload + seed the dump is identical at
    /// any worker count and across repeated runs.
    pub fn dump_stable(&self) -> String {
        let mut out = String::new();
        for f in self.flights().iter().filter(|f| f.sampled) {
            out.push_str(&format!(
                "flight batch={} qi={} fp={:016x} k={} beam={}\n",
                f.batch, f.qi, f.fingerprint, f.k, f.beam
            ));
            for s in &f.spans {
                out.push_str(&format!("  span stage={}", s.stage.name()));
                if let Some(shard) = s.shard {
                    out.push_str(&format!(" shard={shard}"));
                }
                if matches!(s.stage, Stage::Search | Stage::ShardSearch) {
                    out.push_str(&format!(" ndc={} hops={}", s.ndc, s.hops));
                }
                out.push('\n');
            }
            let ids: Vec<String> = f.results.iter().map(|id| id.to_string()).collect();
            out.push_str(&format!("  results [{}]\n", ids.join(",")));
        }
        out
    }

    /// The ring as Chrome trace-event JSON (the `chrome://tracing` /
    /// Perfetto format): one complete (`"X"`) event per span, `ts`/`dur`
    /// in microseconds, one `tid` lane per flight, deterministic
    /// attribution in `args`.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = String::new();
        for (lane, f) in self.flights().iter().enumerate() {
            for s in &f.spans {
                if !events.is_empty() {
                    events.push_str(",\n");
                }
                let shard = s.shard.map_or("null".to_string(), |x| x.to_string());
                events.push_str(&format!(
                    "{{\"name\": \"{}\", \"cat\": \"flight\", \"ph\": \"X\", \
                     \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": {}, \
                     \"args\": {{\"batch\": {}, \"qi\": {}, \"fingerprint\": \"{:016x}\", \
                     \"shard\": {}, \"ndc\": {}, \"hops\": {}, \"sampled\": {}}}}}",
                    s.stage.name(),
                    s.start_ns as f64 / 1e3,
                    s.dur_ns as f64 / 1e3,
                    lane,
                    f.batch,
                    f.qi,
                    f.fingerprint,
                    shard,
                    s.ndc,
                    s.hops,
                    f.sampled,
                ));
            }
        }
        format!("{{\"traceEvents\": [\n{events}\n]}}")
    }
}

/// The compile-away observer the serving hot paths are generic over.
/// With [`NoFlight`] every `if F::ENABLED` guard is a constant the
/// compiler deletes; with a [`FlightRecorder`] the per-query cost is one
/// sampling hash and a handful of copies.
pub trait FlightObserver: Sync {
    /// Whether this observer records anything (a const so disabled
    /// branches fold away under monomorphization).
    const ENABLED: bool;

    /// The recorder behind this observer, when enabled.
    fn recorder(&self) -> Option<&FlightRecorder> {
        None
    }
}

/// The disabled observer: recording code compiles away entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFlight;

impl FlightObserver for NoFlight {
    const ENABLED: bool = false;
}

impl FlightObserver for FlightRecorder {
    const ENABLED: bool = true;

    fn recorder(&self) -> Option<&FlightRecorder> {
        Some(self)
    }
}

/// A minimal JSON value for validating trace exports without a JSON
/// dependency: just enough of the grammar (objects, arrays, strings,
/// numbers, booleans, null) for round-trip tests.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, parsed as `f64`.
    Num(f64),
    /// A string (escape sequences are decoded for `\"` and `\\` only —
    /// all the exporter emits).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed). Returns a
/// descriptive error string on malformed input — used by the Chrome
/// trace round-trip test and any consumer wanting to validate exports
/// in-tree.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut kvs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(kvs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                kvs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(kvs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number '{s}' at {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(&c) => return Err(format!("unsupported escape '\\{}'", c as char)),
                    None => return Err("unterminated escape".into()),
                }
                *pos += 1;
            }
            c => {
                out.push(c as char);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_content_addressed() {
        let q = [1.0f32, -2.5, 3.25];
        assert_eq!(query_fingerprint(&q), query_fingerprint(&q));
        assert_ne!(query_fingerprint(&q), query_fingerprint(&[1.0, -2.5, 3.5]));
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_fingerprint() {
        let rec = FlightRecorder::new(FlightOptions {
            sample_every: 8,
            capacity: 4,
            seed: 42,
        });
        let rec2 = FlightRecorder::new(FlightOptions {
            sample_every: 8,
            capacity: 999,
            seed: 42,
        });
        let mut kept = 0;
        for fp in 0..10_000u64 {
            assert_eq!(rec.is_sampled(fp), rec2.is_sampled(fp));
            if rec.is_sampled(fp) {
                kept += 1;
            }
        }
        // ~1/8 of 10k with slack for hash variance.
        assert!((900..=1600).contains(&kept), "kept={kept}");
        // Different seed, different set.
        let rec3 = FlightRecorder::new(FlightOptions {
            sample_every: 8,
            capacity: 4,
            seed: 43,
        });
        assert!((0..10_000u64).any(|fp| rec.is_sampled(fp) != rec3.is_sampled(fp)));
    }

    #[test]
    fn zero_sample_every_disables_seeded_sampling() {
        let rec = FlightRecorder::new(FlightOptions {
            sample_every: 0,
            capacity: 4,
            seed: 0,
        });
        assert!((0..1000u64).all(|fp| !rec.is_sampled(fp)));
    }

    #[test]
    fn keep_slowest_is_a_high_water_mark() {
        let rec = FlightRecorder::new(FlightOptions::default());
        assert!(rec.keep_slowest(100));
        assert!(!rec.keep_slowest(100));
        assert!(!rec.keep_slowest(50));
        assert!(rec.keep_slowest(200));
    }

    fn flight(batch: u64, qi: u32, sampled: bool) -> Flight {
        Flight {
            batch,
            qi,
            fingerprint: 0xABCD + qi as u64,
            k: 5,
            beam: 32,
            results: vec![qi, qi + 1],
            sampled,
            total_ns: 1000,
            spans: vec![SpanRec {
                stage: Stage::Search,
                shard: None,
                start_ns: 0,
                dur_ns: 1000,
                ndc: 17,
                hops: 4,
            }],
        }
    }

    #[test]
    fn ring_is_bounded_and_overwrites_oldest() {
        let rec = FlightRecorder::new(FlightOptions {
            sample_every: 1,
            capacity: 3,
            seed: 0,
        });
        for qi in 0..5u32 {
            rec.push(flight(0, qi, true));
        }
        let kept = rec.flights();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept.iter().map(|f| f.qi).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(rec.recorded_total(), 5);
    }

    #[test]
    fn stable_dump_excludes_slowest_kept_and_timing() {
        let rec = FlightRecorder::new(FlightOptions::default());
        rec.push(flight(0, 0, true));
        rec.push(flight(0, 1, false));
        let dump = rec.dump_stable();
        assert!(dump.contains("qi=0"));
        assert!(!dump.contains("qi=1"));
        assert!(!dump.contains("ns"));
        assert!(dump.contains("ndc=17 hops=4"));
        assert!(dump.contains("results [0,1]"));
    }

    #[test]
    fn queue_wait_notes_round_trip() {
        let rec = FlightRecorder::new(FlightOptions::default());
        rec.note_queue_wait(7, 1234);
        assert_eq!(rec.take_queue_wait(7), Some(1234));
        assert_eq!(rec.take_queue_wait(7), None);
    }

    #[test]
    fn chrome_trace_round_trips_through_the_parser() {
        let rec = FlightRecorder::new(FlightOptions::default());
        rec.push(flight(0, 0, true));
        rec.push(flight(0, 3, false));
        let doc = parse_json(&rec.chrome_trace_json()).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert_eq!(e.get("name").unwrap().as_str(), Some("search"));
            assert!(e.get("ts").unwrap().as_num().is_some());
            assert!(e.get("dur").unwrap().as_num().is_some());
            let args = e.get("args").unwrap();
            assert_eq!(args.get("ndc").unwrap().as_num(), Some(17.0));
        }
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "{\"a\":1} x",
            "\"unterminated",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad}");
        }
        // And accepts the shapes the exporters emit.
        assert!(parse_json("{\"a\": [1, -2.5e3, null, true, \"s\"]}").is_ok());
    }
}
