//! Compact, mergeable aggregation of recorded routes — the input of the
//! trace-mining pass in [`crate::adapt`].
//!
//! A [`crate::telemetry::RecordingTracer`] keeps every event of one
//! route; retaining full event streams for a production trace set would
//! be unbounded. A [`TraceAggregate`] folds each route down to what
//! mining needs and then forgets it:
//!
//! - **per-vertex visit counts** — how often each vertex was expanded
//!   (the observed hop histogram; hub-aware entry refresh reads it);
//! - **per-vertex terminal counts** — how often each vertex was the
//!   route's *convergence point* (the expanded vertex nearest the
//!   query), which is where entries want to move on skewed traffic;
//! - **hop-pair counts** — for each detour `(v_i … v_t)` observed on a
//!   route (early hop `v_i`, convergence hop `v_t`, at least
//!   [`TraceAggregate::MIN_RECORD_GAP`] hops apart), the traffic count
//!   and the total hops a direct `v_i -> v_t` shortcut would have saved.
//!
//! Every field merges with commutative, associative addition, so the
//! aggregate is invariant to route order, trace-file order, and how the
//! trace set was partitioned across recorders — the property the
//! adaptation determinism contract builds on.

use super::tracer::{RecordingTracer, RouteEvent};
use std::collections::BTreeMap;

/// Traffic statistics of one candidate shortcut `(src, dst)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairStat {
    /// Routes that traversed `src` and later converged at `dst`.
    pub count: u64,
    /// Total hops a direct shortcut would have saved, summed over those
    /// routes (`saved / count` is the mean detour length).
    pub saved: u64,
}

/// Order-invariant aggregation of a trace set over a graph of `n`
/// vertices. All vertex ids are in the id space the traces were recorded
/// in (for a [`crate::locality::LayoutIndex`]: index id space).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAggregate {
    n: usize,
    routes: u64,
    visits: Vec<u64>,
    terminals: Vec<u64>,
    pairs: BTreeMap<(u32, u32), PairStat>,
}

impl TraceAggregate {
    /// Minimum hop gap between a detour's endpoints for its pair to be
    /// recorded at all ([`crate::adapt::AdaptParams::min_gap`] filters
    /// further, on the *mean* gap).
    pub const MIN_RECORD_GAP: u32 = 2;

    /// Per-route cap on recorded pairs (the earliest hops — the ones with
    /// the largest savings — win), bounding aggregate growth on deep
    /// routes.
    pub const MAX_PAIRS_PER_ROUTE: usize = 64;

    /// An empty aggregate over `n` vertices.
    pub fn new(n: usize) -> Self {
        TraceAggregate {
            n,
            routes: 0,
            visits: vec![0; n],
            terminals: vec![0; n],
            pairs: BTreeMap::new(),
        }
    }

    /// Number of vertices this aggregate covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the aggregate covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Routes absorbed so far.
    pub fn routes(&self) -> u64 {
        self.routes
    }

    /// Expansions observed per vertex (the hop histogram's support).
    pub fn visits(&self) -> &[u64] {
        &self.visits
    }

    /// Convergence events observed per vertex.
    pub fn terminals(&self) -> &[u64] {
        &self.terminals
    }

    /// The candidate-shortcut pairs with their traffic stats, in
    /// ascending `(src, dst)` order (deterministic iteration).
    pub fn pairs(&self) -> impl Iterator<Item = (&(u32, u32), &PairStat)> {
        self.pairs.iter()
    }

    /// Number of distinct candidate pairs retained.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Folds one recorded route in (and drops nothing else — the tracer
    /// stays reusable).
    ///
    /// # Panics
    /// Panics if the route touches a vertex `>= n` — traces from a
    /// different index must not be mixed in silently.
    pub fn absorb(&mut self, tracer: &RecordingTracer) {
        self.absorb_route(&tracer.events);
    }

    /// [`TraceAggregate::absorb`] on a raw event slice.
    pub fn absorb_route(&mut self, events: &[RouteEvent]) {
        self.routes += 1;
        // Hops in traversal order; every expansion is a visit.
        let mut route: Vec<(u32, f32)> = Vec::new();
        for e in events {
            if let RouteEvent::Hop { vertex, dist, .. } = *e {
                assert!(
                    (vertex as usize) < self.n,
                    "trace vertex {vertex} out of range (n={})",
                    self.n
                );
                self.visits[vertex as usize] += 1;
                route.push((vertex, dist));
            }
        }
        if route.is_empty() {
            return;
        }
        // The convergence hop: earliest expansion at the route's minimum
        // distance. Distances are non-negative, so bit comparison is
        // total and exact.
        let mut t = 0usize;
        for (i, &(_, d)) in route.iter().enumerate() {
            if d.to_bits() < route[t].1.to_bits() {
                t = i;
            }
        }
        let (dst, _) = route[t];
        self.terminals[dst as usize] += 1;
        let mut recorded = 0usize;
        for (i, &(src, _)) in route.iter().enumerate().take(t) {
            let gap = (t - i) as u32;
            if gap < Self::MIN_RECORD_GAP {
                break; // remaining gaps only shrink
            }
            if recorded >= Self::MAX_PAIRS_PER_ROUTE {
                break;
            }
            if src == dst {
                continue;
            }
            let stat = self.pairs.entry((src, dst)).or_default();
            stat.count += 1;
            // A shortcut src -> dst replaces the gap-hop chain with one
            // hop.
            stat.saved += (gap - 1) as u64;
            recorded += 1;
        }
    }

    /// Merges another aggregate in. Addition throughout, so merge order
    /// (and any partitioning of the trace set across recorders) never
    /// changes the result.
    ///
    /// # Panics
    /// Panics on a vertex-count mismatch.
    pub fn merge(&mut self, other: &TraceAggregate) {
        assert_eq!(self.n, other.n, "aggregates cover different graphs");
        self.routes += other.routes;
        for (a, b) in self.visits.iter_mut().zip(&other.visits) {
            *a += b;
        }
        for (a, b) in self.terminals.iter_mut().zip(&other.terminals) {
            *a += b;
        }
        for (k, v) in &other.pairs {
            let stat = self.pairs.entry(*k).or_default();
            stat.count += v.count;
            stat.saved += v.saved;
        }
    }

    /// Byte-stable text export: header, one line per vertex with nonzero
    /// counts (ascending id), one line per pair (ascending `(src, dst)`).
    /// Equal aggregates dump equal bytes regardless of absorb order.
    pub fn dump(&self) -> String {
        let mut out = format!("trace-agg v1 n={} routes={}\n", self.n, self.routes);
        for v in 0..self.n {
            let (vis, term) = (self.visits[v], self.terminals[v]);
            if vis != 0 || term != 0 {
                out.push_str(&format!("v {v} {vis} {term}\n"));
            }
        }
        for (&(src, dst), stat) in &self.pairs {
            out.push_str(&format!("p {src} {dst} {} {}\n", stat.count, stat.saved));
        }
        out
    }

    /// Parses a [`TraceAggregate::dump`] export back.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty aggregate dump")?;
        let rest = header
            .strip_prefix("trace-agg v1 n=")
            .ok_or_else(|| format!("bad header: {header}"))?;
        let (n_str, routes_str) = rest
            .split_once(" routes=")
            .ok_or_else(|| format!("bad header: {header}"))?;
        let n: usize = n_str.parse().map_err(|e| format!("bad n: {e}"))?;
        let mut agg = TraceAggregate::new(n);
        agg.routes = routes_str.parse().map_err(|e| format!("bad routes: {e}"))?;
        for line in lines {
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["v", id, vis, term] => {
                    let id: usize = id.parse().map_err(|e| format!("bad vertex: {e}"))?;
                    if id >= n {
                        return Err(format!("vertex {id} out of range (n={n})"));
                    }
                    agg.visits[id] = vis.parse().map_err(|e| format!("bad visits: {e}"))?;
                    agg.terminals[id] = term.parse().map_err(|e| format!("bad terminals: {e}"))?;
                }
                ["p", src, dst, count, saved] => {
                    let src: u32 = src.parse().map_err(|e| format!("bad src: {e}"))?;
                    let dst: u32 = dst.parse().map_err(|e| format!("bad dst: {e}"))?;
                    if src as usize >= n || dst as usize >= n {
                        return Err(format!("pair ({src}, {dst}) out of range (n={n})"));
                    }
                    agg.pairs.insert(
                        (src, dst),
                        PairStat {
                            count: count.parse().map_err(|e| format!("bad count: {e}"))?,
                            saved: saved.parse().map_err(|e| format!("bad saved: {e}"))?,
                        },
                    );
                }
                _ => return Err(format!("bad aggregate line: {line}")),
            }
        }
        Ok(agg)
    }

    /// Heap bytes of the aggregate (the "compact" claim, measurable).
    pub fn memory_bytes(&self) -> usize {
        self.visits.len() * 8
            + self.terminals.len() * 8
            + self.pairs.len()
                * (std::mem::size_of::<(u32, u32)>() + std::mem::size_of::<PairStat>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::RouteTracer;

    fn route(tracer: &mut RecordingTracer, hops: &[(u32, f32)]) {
        tracer.clear();
        tracer.on_seed(hops[0].0, hops[0].1);
        for &(v, d) in hops {
            tracer.on_hop(v, d, 1, 1);
        }
    }

    #[test]
    fn absorb_counts_visits_terminals_and_pairs() {
        let mut t = RecordingTracer::new();
        let mut agg = TraceAggregate::new(8);
        // Convergence at hop 3 (vertex 6); detour pairs (1,6) gap 3 and
        // (2,6) gap 2; (5,6) gap 1 is below MIN_RECORD_GAP.
        route(&mut t, &[(1, 9.0), (2, 7.0), (5, 8.0), (6, 1.0), (7, 2.0)]);
        agg.absorb(&t);
        assert_eq!(agg.routes(), 1);
        assert_eq!(agg.visits()[1], 1);
        assert_eq!(agg.visits()[6], 1);
        assert_eq!(agg.terminals()[6], 1);
        assert_eq!(agg.terminals()[7], 0);
        let pairs: Vec<_> = agg.pairs().map(|(k, s)| (*k, *s)).collect();
        assert_eq!(
            pairs,
            vec![
                ((1, 6), PairStat { count: 1, saved: 2 }),
                ((2, 6), PairStat { count: 1, saved: 1 }),
            ]
        );
    }

    #[test]
    fn merge_and_absorb_order_are_invisible() {
        let mut t = RecordingTracer::new();
        let routes: Vec<Vec<(u32, f32)>> = vec![
            vec![(0, 5.0), (1, 4.0), (2, 3.0), (3, 0.5)],
            vec![(4, 6.0), (1, 4.5), (2, 3.5), (3, 0.25)],
            vec![(0, 5.0), (2, 2.0), (3, 1.0), (1, 0.125)],
        ];
        let mut fwd = TraceAggregate::new(5);
        for r in &routes {
            route(&mut t, r);
            fwd.absorb(&t);
        }
        let mut rev = TraceAggregate::new(5);
        for r in routes.iter().rev() {
            route(&mut t, r);
            rev.absorb(&t);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.dump(), rev.dump());
        // Partitioned recorders merged in either order give the same
        // aggregate.
        let mut a = TraceAggregate::new(5);
        let mut b = TraceAggregate::new(5);
        route(&mut t, &routes[0]);
        a.absorb(&t);
        for r in &routes[1..] {
            route(&mut t, r);
            b.absorb(&t);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, fwd);
    }

    #[test]
    fn dump_parse_roundtrip() {
        let mut t = RecordingTracer::new();
        let mut agg = TraceAggregate::new(6);
        route(&mut t, &[(0, 5.0), (4, 4.0), (2, 3.0), (5, 0.5)]);
        agg.absorb(&t);
        route(&mut t, &[(1, 5.0), (4, 4.0), (2, 3.0), (5, 0.75)]);
        agg.absorb(&t);
        let text = agg.dump();
        let back = TraceAggregate::parse(&text).unwrap();
        assert_eq!(back, agg);
        assert_eq!(back.dump(), text);
        assert!(TraceAggregate::parse("garbage").is_err());
        assert!(TraceAggregate::parse("trace-agg v1 n=2 routes=0\nv 7 1 0\n").is_err());
        assert!(agg.memory_bytes() > 0);
    }

    #[test]
    fn empty_routes_count_but_add_nothing() {
        let t = RecordingTracer::new();
        let mut agg = TraceAggregate::new(3);
        agg.absorb(&t);
        assert_eq!(agg.routes(), 1);
        assert!(agg.visits().iter().all(|&v| v == 0));
        assert_eq!(agg.num_pairs(), 0);
    }
}
