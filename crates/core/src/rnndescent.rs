//! Relative NN-Descent (RNN-Descent, Ono & Matsui, arXiv 2310.20419): an
//! alternative C1 initializer that interleaves RNG-style pruning into the
//! descent loop itself.
//!
//! Plain NN-Descent ([`crate::nndescent`]) scores every sampled
//! new×(new+old) pair of every vertex's pool each iteration — the local
//! join dominates refinement-strategy construction end to end (~87% of an
//! NSG build in `BENCH_obs.json`). RNN-Descent replaces the join with a
//! *prune-and-propagate* step built on the relative-neighborhood rule:
//!
//! 1. **Update (prune + add).** Scan each vertex `u`'s pool nearest-first.
//!    A neighbor `v` is kept only if no already-kept neighbor `w` occludes
//!    it (`d(w, v) < d(u, v)` — the MRNG edge rule of C3, applied during
//!    C1). A pruned `v` is not discarded: it is *offered* to the occluder
//!    `w`'s pool, carrying the just-computed `d(w, v)`. That offer is the
//!    descent step — a pair NN-Descent would reach through a sampled join
//!    here rides along a pruning distance that was needed anyway. Pairs
//!    whose flags are both *old* were compared in an earlier pass and skip
//!    their distance computation entirely, so converged neighborhoods cost
//!    nothing.
//! 2. **Reverse-edge augmentation.** After each round of update passes the
//!    graph is symmetrized — every edge `u→v` is offered back to `v` as
//!    `v→u`, flagged new — handing the next round fresh material and
//!    keeping in-degrees from starving.
//!
//! Working pools stay near the pruned (RNG-sparse) degree instead of the
//! KNN degree, so each pass touches far fewer pairs than a local join —
//! the paper reports substantially faster construction at equal recall,
//! and `BENCH_build.json` reproduces that on this harness.
//!
//! **The emitted graph.** A pruned pool's nearest-`k` is deliberately
//! *not* the KNN — mutually-close neighbors occlude each other — but C1
//! consumers (NSG/NSSG/DPG/OA/EFANNA/KGraph) expect an approximate KNN
//! graph. So every pair the pruning loop scores is also mirrored, in both
//! directions, into a bounded per-vertex **harvest pool** of capacity `k`:
//! distances are paid for once and harvested twice. The emitted rows are
//! the harvest pools — a genuine approximate KNN graph, directly
//! comparable to [`crate::nndescent::nn_descent`] output — while the
//! pruned pools exist only to decide *which* pairs are worth scoring.
//! All candidate scoring goes through [`Dataset::dist_to_many`], so the
//! PR-2 kernel tier carries construction exactly the way it carries
//! search.
//!
//! # Determinism
//!
//! Same contract as every builder in this workspace: the output is a pure
//! function of `(dataset, params)` — never of the thread count. Each
//! update pass is split into two phases. Phase A walks vertices in fixed
//! chunks ([`crate::parallel`]), reads and rewrites **only** the vertex's
//! own pruned pool, and stages descent offers on the side — every pruning
//! decision sees pool state frozen at the start of the pass, regardless
//! of worker interleaving. Phase B applies the staged offers through
//! bounded sorted insertion keyed by the total `(distance bits, id)`
//! order with exact-duplicate rejection: a pool's final content is the
//! top-`cap` of all distinct offers, independent of arrival order (the
//! [`crate::nndescent`] argument — harvest-pool mirroring relies on the
//! same property, which is why phase A may write it concurrently).
//! Convergence is decided on pool content (items still flagged new, the
//! shared [`crate::nndescent::descent_converged`] contract), and the RNG
//! only runs in the sequential initialization — so who computes never
//! changes what is computed.

use crate::nndescent::{descent_converged, NnDescentParams};
use crate::parallel;
use crate::telemetry;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use weavess_data::{Dataset, Neighbor};

/// RNN-Descent parameters.
///
/// The `outer`/`inner` pair mirrors the paper's `T1`/`T2`: `inner` update
/// passes refine pools between reverse-edge augmentations, and the whole
/// cycle runs `outer` times. Both descent engines share the
/// [`crate::nndescent::descent_converged`] early-termination contract
/// (see the *Termination contract* section of [`crate::nndescent`]), so
/// `inner` is a budget, not a fixed cost.
#[derive(Debug, Clone)]
pub struct RnnDescentParams {
    /// Neighbors emitted per vertex (the C1 output degree, like
    /// NN-Descent's `K`): the capacity of the harvest pools.
    pub k: usize,
    /// Initial random out-degree (the paper's `R`), and the degree the
    /// convergence threshold is normalized by.
    pub r: usize,
    /// Pruned-pool capacity during descent (`≥ max(r, k)` enforced):
    /// bounds the pruned core plus the reverse edges riding on top of it.
    pub l: usize,
    /// Rounds of (update passes + reverse-edge augmentation) — `T1`.
    pub outer: usize,
    /// Update-pass budget per round — `T2`, early-terminated per the
    /// shared convergence contract.
    pub inner: usize,
    /// RNG seed for the random initialization.
    pub seed: u64,
    /// Construction threads (0 = one per available core). The produced
    /// graph is identical for every value.
    pub threads: usize,
}

impl Default for RnnDescentParams {
    fn default() -> Self {
        RnnDescentParams {
            k: 20,
            r: 16,
            l: 32,
            outer: 3,
            inner: 8,
            seed: 0xBEEF,
            threads: 0,
        }
    }
}

impl RnnDescentParams {
    /// Derives an RNN-Descent configuration that stands in for a given
    /// NN-Descent configuration as C1: same output degree, seed and
    /// threads, with descent knobs sized so the pruned pools regrow a
    /// comparable candidate stream. These are the settings
    /// `BENCH_build.json`'s RNN-vs-NND comparison runs.
    pub fn matching(nd: &NnDescentParams) -> Self {
        // Two outer rounds with a generous inner budget beat three lean
        // rounds at equal wall-clock: the inner loop self-terminates via
        // `descent_converged`, so the extra passes only run while they
        // still flag work, while each outer round pays a fixed
        // reverse-augmentation sweep.
        RnnDescentParams {
            k: nd.k,
            r: (nd.k * 3 / 5).max(16),
            l: (nd.k * 6 / 5).max(24),
            outer: 2,
            inner: 12,
            seed: nd.seed,
            threads: nd.threads,
        }
    }
}

#[derive(Clone, Copy)]
struct Item {
    n: Neighbor,
    new: bool,
}

/// One bounded pool, sorted nearest-first (used both for the pruned
/// descent pools and the harvest pools).
struct Pool {
    items: Vec<Item>,
}

impl Pool {
    /// Bounded sorted insertion; the inserted item is flagged new. Exact
    /// duplicates (same id, same distance bits — distances are a pure
    /// function of the pair) are rejected, so pool content is independent
    /// of insertion order.
    fn insert_new(&mut self, cap: usize, n: Neighbor) -> bool {
        let pos = self.items.partition_point(|x| x.n < n);
        if pos < self.items.len() && self.items[pos].n == n {
            return false;
        }
        if pos >= cap {
            return false;
        }
        self.items.insert(pos, Item { n, new: true });
        self.items.truncate(cap);
        true
    }
}

/// The harvest side: one bounded KNN pool per vertex plus a lock-free
/// admission bound — the distance bits of the pool's current worst entry
/// once it is full (`u32::MAX` before that). The bound only shrinks, so
/// an offer strictly worse than it can never enter the final top-`k` and
/// is dropped without touching the lock; every scored pair pays the
/// atomic load, only the shrinking fraction that might matter pays the
/// sorted insert. Content stays exactly the top-`k` of all distinct
/// offers — the filter drops certain rejections only — so the
/// determinism argument is unchanged.
struct Harvest {
    pools: Vec<Mutex<Pool>>,
    bounds: Vec<AtomicU32>,
    k: usize,
}

impl Harvest {
    fn offer(&self, v: u32, n: Neighbor) {
        let slot = v as usize;
        if n.dist.to_bits() > self.bounds[slot].load(Ordering::Relaxed) {
            return;
        }
        let mut p = self.pools[slot].lock();
        p.insert_new(self.k, n);
        if p.items.len() == self.k {
            let worst = p.items.last().expect("non-empty full pool").n.dist;
            self.bounds[slot].store(worst.to_bits(), Ordering::Relaxed);
        }
    }

    /// Mirrors a scored pair into both endpoints' pools — the distance
    /// was already paid for by the pruning loop.
    fn pair(&self, a: u32, b: u32, d: f32) {
        self.offer(a, Neighbor::new(b, d));
        self.offer(b, Neighbor::new(a, d));
    }
}

/// Runs RNN-Descent and returns each vertex's `k` nearest discovered
/// neighbors (sorted nearest-first) — a drop-in replacement for
/// [`crate::nndescent::nn_descent`] as the C1 component. When `initial`
/// is given it seeds the pools (EFANNA's KD-tree initialization);
/// otherwise pools start random.
pub fn rnn_descent(
    ds: &Dataset,
    params: &RnnDescentParams,
    initial: Option<&[Vec<Neighbor>]>,
) -> Vec<Vec<Neighbor>> {
    let n = ds.len();
    assert!(n >= 2, "need at least two points");
    let k = params.k.max(1);
    let r = params.r.max(2).min(n - 1);
    let l = params.l.max(r).max(k);
    let threads = parallel::resolve_threads(params.threads);

    // --- Initialization: sequential id draws (one RNG stream, thread
    // count irrelevant), distances batch-scored in parallel. ---
    let pools: Vec<Mutex<Pool>> = telemetry::span("C1 rnn init", || {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut seeds: Vec<Vec<Neighbor>> = Vec::with_capacity(n);
        let mut pad: Vec<Vec<u32>> = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let mut given: Vec<Neighbor> = Vec::new();
            if let Some(init) = initial {
                for nb in &init[v as usize] {
                    if nb.id != v && !given.iter().any(|x| x.id == nb.id) {
                        given.push(*nb);
                    }
                }
            }
            let target = r.min(n - 1);
            let mut ids: Vec<u32> = Vec::new();
            while given.len() + ids.len() < target {
                let c = rng.gen_range(0..n as u32);
                if c != v && !ids.contains(&c) && !given.iter().any(|x| x.id == c) {
                    ids.push(c);
                }
            }
            seeds.push(given);
            pad.push(ids);
        }
        let ndc = AtomicU64::new(0);
        let chunks = parallel::par_chunks_map(
            n,
            parallel::CHUNK,
            threads,
            Vec::<f32>::new,
            |dists, range| {
                let mut out: Vec<Pool> = Vec::with_capacity(range.len());
                let mut scored = 0u64;
                for v in range {
                    let mut pool = Pool { items: Vec::new() };
                    for nb in &seeds[v] {
                        pool.insert_new(l, *nb);
                    }
                    if !pad[v].is_empty() {
                        ds.dist_to_many(ds.point(v as u32), &pad[v], dists);
                        scored += pad[v].len() as u64;
                        for (&c, &d) in pad[v].iter().zip(dists.iter()) {
                            pool.insert_new(l, Neighbor::new(c, d));
                        }
                    }
                    out.push(pool);
                }
                ndc.fetch_add(scored, Ordering::Relaxed);
                out
            },
        );
        telemetry::add_span_ndc(ndc.load(Ordering::Relaxed));
        chunks.into_iter().flatten().map(Mutex::new).collect()
    });

    // Harvest pools start as the top-k of the initial material; every
    // scored pair lands here from then on.
    let knn = Harvest {
        pools: pools
            .iter()
            .map(|p| {
                let items: Vec<Item> = p.lock().items.iter().take(k).copied().collect();
                Mutex::new(Pool { items })
            })
            .collect(),
        bounds: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
        k,
    };
    // The initial edges' reverse directions are knowledge too (an edge
    // u→c scores c as well as u); mirror them before descent starts.
    {
        let offers = snapshot_reverse(&pools, threads);
        parallel::par_chunks_map(
            offers.len(),
            4096,
            threads,
            || (),
            |_, range| {
                for &(v, nb) in &offers[range] {
                    knn.offer(v, nb);
                }
            },
        );
    }

    let outer = params.outer.max(1);
    for round in 0..outer {
        telemetry::span("C1 rnn prune+add", || {
            for _pass in 0..params.inner.max(1) {
                let fresh = update_pass(ds, &pools, &knn, l, threads);
                if descent_converged(fresh, n, r) {
                    break;
                }
            }
        });
        // The final round's reverse edges still enrich the emitted KNN
        // (harvest mirror), but no pass reads the pruned pools again —
        // skip their maintenance.
        let mirror_only = round + 1 == outer;
        telemetry::span("C1 rnn reverse", || {
            add_reverse_pass(&pools, &knn, l, threads, mirror_only)
        });
    }

    knn.pools
        .into_iter()
        .map(|p| p.into_inner().items.into_iter().map(|i| i.n).collect())
        .collect()
}

/// One prune-and-propagate pass. Returns the number of pruned-pool items
/// flagged new after the pass — the thread-count-independent convergence
/// metric of the shared contract.
fn update_pass(
    ds: &Dataset,
    pools: &[Mutex<Pool>],
    knn: &Harvest,
    l: usize,
    threads: usize,
) -> usize {
    let n = pools.len();
    let ndc = AtomicU64::new(0);

    // Phase A: prune every pool against the state frozen at pass start.
    // A worker reads and rewrites only the pruned pools of its own chunk;
    // edges for *other* pruned pools are staged as offers, never applied
    // in-pass. (Harvest pools take concurrent writes — their content is
    // order-independent and nothing in this pass reads them.)
    let staged: Vec<Vec<(u32, Neighbor)>> = parallel::par_chunks_map(
        n,
        parallel::CHUNK,
        threads,
        || {
            (
                Vec::<usize>::new(), // accepted indices
                Vec::<u32>::new(),   // ids to score
                Vec::<f32>::new(),   // their distances
            )
        },
        |(accepted, ids, dists), range| {
            let mut offers: Vec<(u32, Neighbor)> = Vec::new();
            let mut scored = 0u64;
            for u in range {
                let items = {
                    let mut guard = pools[u].lock();
                    // All-old pools are a fixed point: no pair scores
                    // (old/old pairs skip), so no occluder can arise and
                    // every item would be re-accepted unchanged. Skipping
                    // them is bit-identical and makes converged vertices
                    // free.
                    if guard.items.iter().all(|i| !i.new) {
                        continue;
                    }
                    std::mem::take(&mut guard.items)
                };
                accepted.clear();
                for (i, it) in items.iter().enumerate() {
                    // Score `it` against the kept neighbors closer to
                    // `u`, skipping old/old pairs (compared in the pass
                    // that made them old). One dist_to_many covers every
                    // check.
                    ids.clear();
                    for &j in accepted.iter() {
                        let w = &items[j];
                        if it.new || w.new {
                            ids.push(w.n.id);
                        }
                    }
                    let mut occluder: Option<(u32, f32)> = None;
                    if !ids.is_empty() {
                        ds.dist_to_many(ds.point(it.n.id), ids, dists);
                        scored += ids.len() as u64;
                        for (t, &wid) in ids.iter().enumerate() {
                            // Every scored pair is harvested — paid for
                            // once, used twice.
                            knn.pair(it.n.id, wid, dists[t]);
                            if occluder.is_none() && dists[t] < it.n.dist {
                                occluder = Some((wid, dists[t]));
                            }
                        }
                    }
                    match occluder {
                        // Kept: compared against every kept predecessor —
                        // old from here on.
                        None => accepted.push(i),
                        // Pruned: recycle the edge toward the occluder,
                        // reusing the distance the prune already paid.
                        Some((wid, d)) => offers.push((wid, Neighbor::new(it.n.id, d))),
                    }
                }
                pools[u].lock().items = accepted
                    .iter()
                    .map(|&i| Item {
                        n: items[i].n,
                        new: false,
                    })
                    .collect();
            }
            ndc.fetch_add(scored, Ordering::Relaxed);
            offers
        },
    );
    telemetry::add_span_ndc(ndc.load(Ordering::Relaxed));

    // Phase B: apply offers to the pruned pools. Insertion order cannot
    // change final pool content, so workers may interleave freely. (The
    // pairs were already harvested in phase A.)
    let offers: Vec<(u32, Neighbor)> = staged.concat();
    parallel::par_chunks_map(
        offers.len(),
        4096,
        threads,
        || (),
        |_, range| {
            for &(w, nb) in &offers[range] {
                pools[w as usize].lock().insert_new(l, nb);
            }
        },
    );

    // Convergence metric: surviving new-flagged items (pool content — a
    // pure function of the offer *set*, not of insertion order).
    parallel::par_chunks_map(
        n,
        parallel::CHUNK,
        threads,
        || (),
        |_, range| {
            range
                .map(|u| pools[u].lock().items.iter().filter(|i| i.new).count())
                .sum::<usize>()
        },
    )
    .into_iter()
    .sum()
}

/// Snapshots every pruned-pool edge `u→v` as an offer `(v, v→u)` — the
/// raw material of both reverse augmentation and harvest mirroring.
fn snapshot_reverse(pools: &[Mutex<Pool>], threads: usize) -> Vec<(u32, Neighbor)> {
    let staged: Vec<Vec<(u32, Neighbor)>> = parallel::par_chunks_map(
        pools.len(),
        parallel::CHUNK,
        threads,
        || (),
        |_, range| {
            let mut out = Vec::new();
            for u in range {
                for it in pools[u].lock().items.iter() {
                    out.push((it.n.id, Neighbor::new(u as u32, it.n.dist)));
                }
            }
            out
        },
    );
    staged.concat()
}

/// Symmetrization: offer every edge `u→v` back to `v` as `v→u` (same
/// distance — no scoring), flagged new so the next round's pruning
/// revisits it; mirrored into the harvest pools as well. With
/// `mirror_only` the pruned pools are left untouched — used on the final
/// round, whose pools are dead after the mirror.
fn add_reverse_pass(
    pools: &[Mutex<Pool>],
    knn: &Harvest,
    l: usize,
    threads: usize,
    mirror_only: bool,
) {
    let offers = snapshot_reverse(pools, threads);
    parallel::par_chunks_map(
        offers.len(),
        4096,
        threads,
        || (),
        |_, range| {
            for &(v, nb) in &offers[range] {
                if !mirror_only {
                    pools[v as usize].lock().insert_new(l, nb);
                }
                knn.offer(v, nb);
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nndescent::{knn_recall, nn_descent};
    use weavess_data::ground_truth::exact_knn_graph;
    use weavess_data::synthetic::MixtureSpec;

    fn dataset() -> Dataset {
        MixtureSpec::table10(16, 1_000, 5, 3.0, 10).generate().0
    }

    #[test]
    fn converges_to_high_graph_quality() {
        let ds = dataset();
        let params = RnnDescentParams {
            k: 10,
            r: 12,
            l: 24,
            outer: 3,
            inner: 8,
            seed: 7,
            threads: 4,
        };
        let g = rnn_descent(&ds, &params, None);
        let exact = exact_knn_graph(&ds, 10, 4);
        let q = knn_recall(&g, &exact);
        assert!(q > 0.85, "graph quality {q}");
    }

    #[test]
    fn respects_k_excludes_self_and_sorts() {
        let ds = dataset();
        let params = RnnDescentParams {
            k: 6,
            r: 8,
            l: 16,
            outer: 2,
            inner: 4,
            ..Default::default()
        };
        let g = rnn_descent(&ds, &params, None);
        assert_eq!(g.len(), ds.len());
        for (v, row) in g.iter().enumerate() {
            assert!(row.len() <= 6);
            assert!(row.iter().all(|n| n.id != v as u32));
            assert!(row.windows(2).all(|w| w[0].dist <= w[1].dist));
            // Distances are the true kernel distances.
            for n in row {
                assert_eq!(n.dist.to_bits(), ds.dist(v as u32, n.id).to_bits());
            }
        }
    }

    #[test]
    fn matches_nn_descent_quality() {
        // The headline claim at unit scale: RNN-Descent reaches
        // NN-Descent-level graph quality. (That it does so *faster* is
        // asserted by the BENCH_build.json harness at bench scale.)
        let ds = dataset();
        let exact = exact_knn_graph(&ds, 10, 4);
        let nd = NnDescentParams {
            k: 10,
            l: 20,
            iters: 8,
            sample: 8,
            reverse: 10,
            seed: 7,
            threads: 4,
        };
        let q_nnd = knn_recall(&nn_descent(&ds, &nd, None), &exact);
        let rnn = RnnDescentParams::matching(&nd);
        let q_rnn = knn_recall(&rnn_descent(&ds, &rnn, None), &exact);
        assert!(
            q_rnn > q_nnd - 0.05,
            "RNN quality {q_rnn} too far below NND {q_nnd}"
        );
    }

    #[test]
    fn good_initialization_improves_quality_at_equal_budget() {
        let ds = dataset();
        let exact = exact_knn_graph(&ds, 10, 4);
        let params = RnnDescentParams {
            k: 10,
            r: 12,
            l: 24,
            outer: 1,
            inner: 1,
            seed: 7,
            threads: 2,
        };
        let from_random = knn_recall(&rnn_descent(&ds, &params, None), &exact);
        let init: Vec<Vec<Neighbor>> = exact
            .iter()
            .enumerate()
            .map(|(v, row)| {
                row.iter()
                    .map(|&u| Neighbor::new(u, ds.dist(v as u32, u)))
                    .collect()
            })
            .collect();
        let from_exact = knn_recall(&rnn_descent(&ds, &params, Some(&init)), &exact);
        assert!(from_exact > from_random, "{from_exact} <= {from_random}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let params = RnnDescentParams {
            k: 8,
            r: 10,
            l: 20,
            outer: 2,
            inner: 3,
            threads: 1,
            ..Default::default()
        };
        let digest = |g: &[Vec<Neighbor>]| {
            g.iter()
                .map(|r| {
                    r.iter()
                        .map(|n| (n.id, n.dist.to_bits()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        let a = rnn_descent(&ds, &params, None);
        let b = rnn_descent(&ds, &params, None);
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn thread_count_does_not_change_output() {
        // The integration suite digests this at build scale
        // (`tests/build_determinism.rs`); this is the fast unit-level
        // check of the same contract.
        let ds = dataset();
        let digest = |threads: usize| {
            let params = RnnDescentParams {
                k: 10,
                r: 12,
                l: 24,
                outer: 2,
                inner: 4,
                seed: 11,
                threads,
            };
            rnn_descent(&ds, &params, None)
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|n| (n.id, n.dist.to_bits()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        let base = digest(1);
        assert_eq!(digest(2), base);
        assert_eq!(digest(8), base);
    }
}
