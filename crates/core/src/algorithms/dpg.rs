//! A9 — DPG (Diversified Proximity Graph): diversify a KGraph by keeping
//! the κ = K/2 neighbors that maximize pairwise angles (an RNG
//! approximation, Appendix C), then undirect every edge. The reverse
//! edges give DPG its single connected component (Table 4) and its large
//! index (Figure 6).

use crate::components::connectivity::add_reverse_edges;
use crate::components::init::C1Choice;
use crate::components::seeds::SeedStrategy;
use crate::components::selection::select_dpg;
use crate::index::FlatIndex;
use crate::nndescent::NnDescentParams;
use crate::parallel;
use crate::rnndescent::RnnDescentParams;
use crate::search::Router;
use crate::telemetry;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// DPG parameters.
#[derive(Debug, Clone)]
pub struct DpgParams {
    /// NN-Descent configuration for the initial KGraph.
    pub nd: NnDescentParams,
    /// Which descent engine actually runs as C1 (defaults to NN-Descent;
    /// see [`DpgParams::with_rnn_c1`]).
    pub init: C1Choice,
    /// Per-vertex degree cap after undirection (reverse edges can push
    /// hub degrees far beyond κ; the paper notes they "surge back").
    pub reverse_cap: usize,
    /// Random seeds per query.
    pub search_seeds: usize,
}

impl DpgParams {
    /// Defaults tuned for the harness's dataset scales. κ is `nd.k / 2` by
    /// the DPG construction.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        DpgParams {
            nd: NnDescentParams {
                k: 40,
                l: 60,
                iters: 8,
                sample: 15,
                reverse: 30,
                seed,
                threads,
            },
            init: C1Choice::NnDescent,
            reverse_cap: 80,
            search_seeds: 10,
        }
    }

    /// Swaps C1 to RNN-Descent, sized to stand in for the configured
    /// NN-Descent ([`RnnDescentParams::matching`]); C2–C7 are untouched.
    pub fn with_rnn_c1(mut self) -> Self {
        self.init = C1Choice::RnnDescent(RnnDescentParams::matching(&self.nd));
        self
    }
}

/// Builds a DPG index.
pub fn build(ds: &Dataset, params: &DpgParams) -> FlatIndex {
    let init = telemetry::span("C1 init", || params.init.build(ds, &params.nd, None));
    let kappa = (params.nd.k / 2).max(2);
    let threads = parallel::resolve_threads(params.nd.threads);
    let n = ds.len();
    // Angular diversification (C3_DPG), parallel over vertices.
    let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    telemetry::span("C3 selection", || {
        parallel::par_fill(
            &mut lists,
            parallel::CHUNK,
            threads,
            || (),
            |_, start, slot| {
                for (j, out) in slot.iter_mut().enumerate() {
                    let p = (start + j) as u32;
                    *out = select_dpg(ds, p, &init[p as usize], kappa);
                }
            },
        );
    });
    // Undirect (C5_DPG).
    telemetry::span("C5 connectivity", || {
        add_reverse_edges(&mut lists, params.reverse_cap);
    });
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|n| n.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    FlatIndex {
        name: "DPG",
        graph,
        seeds: SeedStrategy::Random {
            count: params.search_seeds,
        },
        router: Router::BestFirst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::connectivity::weak_components;

    #[test]
    fn dpg_reaches_high_recall() {
        let (ds, qs) = MixtureSpec::table10(16, 2_000, 5, 3.0, 30).generate();
        let idx = build(&ds, &DpgParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.85, "recall={r}");
    }

    #[test]
    fn dpg_is_one_weak_component_within_a_cluster() {
        // Undirection repairs connectivity *within* reachable regions; on
        // single-cluster data the Table 4 signature (CC = 1) must hold.
        let (ds, _) = MixtureSpec::table10(8, 800, 1, 5.0, 5).generate();
        let idx = build(&ds, &DpgParams::tuned(2, 1));
        assert_eq!(weak_components(idx.graph()), 1);
    }

    #[test]
    fn dpg_edges_are_mostly_bidirectional() {
        let (ds, _) = MixtureSpec::table10(8, 400, 2, 3.0, 5).generate();
        let idx = build(&ds, &DpgParams::tuned(2, 1));
        let g = idx.graph();
        let mut mutual = 0usize;
        let mut total = 0usize;
        for v in 0..g.len() as u32 {
            for &u in g.neighbors(v) {
                total += 1;
                if g.neighbors(u).contains(&v) {
                    mutual += 1;
                }
            }
        }
        // Reverse-edge capping loses some; the bulk must be mutual.
        assert!(mutual as f64 / total as f64 > 0.8, "{mutual}/{total}");
    }
}
