//! A5 — SPTAG (Space Partition Tree And Graph), both evaluated variants:
//! divide-and-conquer KNNG construction — repeatedly partition the dataset
//! with TP-style trees, build an exact KNNG inside each small leaf, merge —
//! followed by neighborhood propagation.
//!
//! - **SPTAG-KDT**: plain KNNG, KD-tree seeds.
//! - **SPTAG-BKT**: adds RNG-rule pruning, balanced-k-means-tree seeds.
//!
//! Routing follows §4.2's description of SPTAG's local-optimum escape:
//! best-first search restarts from a *fresh tree-derived seed set* when a
//! round stops improving ([`SptagIndex`]), sharing the visited set across
//! rounds so each restart explores new territory.

use crate::components::candidates::candidates_subspace;
use crate::components::seeds::SeedStrategy;
use crate::components::selection::select_rng_alpha;
use crate::index::FlatIndex;
use crate::parallel;
use crate::search::Router;
use crate::telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;
use weavess_trees::tptree::tp_partition;
use weavess_trees::{BkTree, KdForest};

/// Which SPTAG variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SptagVariant {
    /// Original: KNNG + KD-tree seeds.
    Kdt,
    /// Optimized: RNG-pruned graph + k-means-tree seeds.
    Bkt,
}

/// SPTAG parameters.
#[derive(Debug, Clone)]
pub struct SptagParams {
    /// Variant.
    pub variant: SptagVariant,
    /// Per-vertex neighbor bound (the project's fixed 32, Table 4).
    pub k: usize,
    /// TP-partition leaf size.
    pub leaf_size: usize,
    /// Number of independent partition rounds.
    pub divisions: usize,
    /// Neighborhood-propagation passes after merging.
    pub propagation_passes: usize,
    /// Seeds per query.
    pub search_seeds: usize,
    /// Seed-structure distance budget per query.
    pub seed_checks: usize,
    /// Maximum best-first restart rounds (fresh seeds per round).
    pub restarts: usize,
    /// Construction threads (0 = one per available core). The built graph
    /// is identical for every value.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SptagParams {
    /// SPTAG-KDT defaults.
    pub fn kdt(threads: usize, seed: u64) -> Self {
        SptagParams {
            variant: SptagVariant::Kdt,
            k: 32,
            leaf_size: 64,
            divisions: 6,
            propagation_passes: 1,
            search_seeds: 8,
            seed_checks: 128,
            restarts: 3,
            threads,
            seed,
        }
    }

    /// SPTAG-BKT defaults.
    pub fn bkt(threads: usize, seed: u64) -> Self {
        SptagParams {
            variant: SptagVariant::Bkt,
            ..SptagParams::kdt(threads, seed)
        }
    }
}

/// Builds an SPTAG index (variant per `params.variant`).
pub fn build(ds: &Dataset, params: &SptagParams) -> SptagIndex {
    let n = ds.len();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];

    // --- Divide and conquer: leaves → exact sub-KNNGs → merge. ---
    let threads = parallel::resolve_threads(params.threads);
    // Each leaf is an O(leaf_size²) work unit; small chunks load-balance.
    const LEAF_CHUNK: usize = 4;
    telemetry::span("C1 init", || {
        for _ in 0..params.divisions.max(1) {
            let leaves = tp_partition(ds, None, params.leaf_size, &mut rng);
            // Leaves are disjoint, so parallelize over leaves; candidate
            // batches combine in leaf order, keeping the merge order-stable.
            let partial = parallel::par_chunks_map(
                leaves.len(),
                LEAF_CHUNK,
                threads,
                || (),
                |_, range| {
                    let mut out = Vec::new();
                    for leaf in &leaves[range] {
                        for &p in leaf {
                            let cands = candidates_subspace(ds, leaf, p);
                            out.push((p, cands));
                        }
                    }
                    out
                },
            );
            for batch in partial {
                for (p, cands) in batch {
                    for c in cands.iter().take(params.k) {
                        insert_into_pool(&mut lists[p as usize], params.k, *c);
                    }
                }
            }
        }
    });

    // --- Neighborhood propagation: neighbors of neighbors, one pass. ---
    telemetry::span("C2 candidates", || {
        for _ in 0..params.propagation_passes {
            let snapshot = lists.clone();
            for p in 0..n as u32 {
                let hop1: Vec<u32> = snapshot[p as usize].iter().map(|x| x.id).collect();
                for &h in &hop1 {
                    for x in &snapshot[h as usize] {
                        if x.id != p {
                            insert_into_pool(
                                &mut lists[p as usize],
                                params.k,
                                Neighbor::new(x.id, ds.dist(p, x.id)),
                            );
                        }
                    }
                }
            }
        }
    });

    // --- BKT variant: RNG pruning. ---
    if params.variant == SptagVariant::Bkt {
        telemetry::span("C3 selection", || {
            for p in 0..n as u32 {
                let cands = lists[p as usize].clone();
                lists[p as usize] = select_rng_alpha(ds, p, &cands, params.k, 1.0);
            }
        });
    }

    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|x| x.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    let (name, seeds, restart_forest) = telemetry::span("C4 seeds", || {
        let (name, seeds) = match params.variant {
            SptagVariant::Kdt => (
                "SPTAG-KDT",
                SeedStrategy::KdSearch {
                    forest: KdForest::build(ds, 4, 32, &mut rng),
                    count: params.search_seeds,
                    checks_per_tree: params.seed_checks / 4,
                },
            ),
            SptagVariant::Bkt => (
                "SPTAG-BKT",
                SeedStrategy::Bk {
                    tree: BkTree::build(ds, 8, 32),
                    count: params.search_seeds,
                    checks: params.seed_checks,
                },
            ),
        };
        (name, seeds, KdForest::build(ds, 4, 32, &mut rng))
    });
    SptagIndex {
        inner: FlatIndex {
            name,
            graph,
            seeds,
            router: Router::BestFirst,
        },
        restart_forest,
        restarts: params.restarts.max(1),
        seeds_per_round: params.search_seeds,
        checks_per_round: params.seed_checks / 2,
    }
}

/// SPTAG's index: a flat KNNG(+RNG) graph plus the restart router of §4.2
/// — when a best-first round converges without improving the result set,
/// search restarts from seeds drawn off a different KD-tree, reusing the
/// visited set so restarts explore fresh territory.
pub struct SptagIndex {
    inner: FlatIndex,
    restart_forest: KdForest,
    restarts: usize,
    seeds_per_round: usize,
    checks_per_round: usize,
}

impl crate::index::AnnIndex for SptagIndex {
    fn name(&self) -> &'static str {
        self.inner.name
    }

    fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut crate::index::SearchContext,
    ) -> Vec<Neighbor> {
        use crate::search::beam_search;
        use weavess_data::neighbor::insert_into_pool;
        let beam = beam.max(k);
        ctx.scratch.next_epoch();
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        for round in 0..self.restarts {
            // Fresh seeds: round 0 uses the configured seed strategy, later
            // rounds draw from successive trees of the restart forest.
            let seeds: Vec<u32> = if round == 0 {
                self.inner
                    .seeds
                    .seeds(ds, query, &mut ctx.rng, &mut ctx.stats)
            } else {
                let (pool, ndc) = self.restart_forest.search_tree(
                    round - 1,
                    ds,
                    query,
                    self.seeds_per_round,
                    self.checks_per_round,
                );
                ctx.stats.ndc += ndc;
                pool.iter().map(|n| n.id).collect()
            };
            // Skip seeds already explored this query.
            let fresh: Vec<u32> = seeds
                .into_iter()
                .filter(|&s| !ctx.scratch.visited.is_visited(s))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            let pool = beam_search(
                ds,
                &self.inner.graph,
                query,
                &fresh,
                beam,
                &mut ctx.scratch,
                &mut ctx.stats,
            );
            let before = best.clone();
            for n in pool {
                insert_into_pool(&mut best, k, n);
            }
            if round > 0 && best == before {
                break; // restart found nothing better: local optimum is real
            }
        }
        best
    }

    fn graph(&self) -> &weavess_graph::CsrGraph {
        &self.inner.graph
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes() + self.restart_forest.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::{exact_knn_graph, ground_truth};
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::metrics::{degree_stats, graph_quality};

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 1_500, 5, 3.0, 25).generate()
    }

    fn run(params: &SptagParams) -> f64 {
        let (ds, qs) = dataset();
        let idx = build(&ds, params);
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 80, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        total / qs.len() as f64
    }

    #[test]
    fn sptag_kdt_reaches_decent_recall() {
        let r = run(&SptagParams::kdt(4, 1));
        assert!(r > 0.8, "recall={r}");
    }

    #[test]
    fn sptag_bkt_reaches_decent_recall() {
        let r = run(&SptagParams::bkt(4, 1));
        assert!(r > 0.75, "recall={r}");
    }

    #[test]
    fn more_divisions_raise_graph_quality() {
        let (ds, _) = MixtureSpec::table10(8, 800, 3, 3.0, 5).generate();
        let exact = exact_knn_graph(&ds, 10, 4);
        let mut p1 = SptagParams::kdt(2, 1);
        p1.divisions = 1;
        p1.propagation_passes = 0;
        let mut p6 = SptagParams::kdt(2, 1);
        p6.divisions = 6;
        p6.propagation_passes = 0;
        let q1 = graph_quality(build(&ds, &p1).graph(), &exact);
        let q6 = graph_quality(build(&ds, &p6).graph(), &exact);
        assert!(q6 > q1, "q6={q6} q1={q1}");
    }

    #[test]
    fn restart_rounds_never_reduce_recall() {
        // More restart rounds can only add result candidates.
        let (ds, qs) = dataset();
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut p1 = SptagParams::kdt(2, 1);
        p1.restarts = 1;
        let mut p3 = SptagParams::kdt(2, 1);
        p3.restarts = 4;
        let i1 = build(&ds, &p1);
        let i3 = build(&ds, &p3);
        let mut c1 = SearchContext::new(ds.len());
        let mut c3 = SearchContext::new(ds.len());
        let (mut r1, mut r3) = (0.0, 0.0);
        for qi in 0..qs.len() as u32 {
            let a: Vec<u32> = i1
                .search(&ds, qs.point(qi), 10, 40, &mut c1)
                .iter()
                .map(|n| n.id)
                .collect();
            let b: Vec<u32> = i3
                .search(&ds, qs.point(qi), 10, 40, &mut c3)
                .iter()
                .map(|n| n.id)
                .collect();
            r1 += recall(&a, &gt[qi as usize]);
            r3 += recall(&b, &gt[qi as usize]);
        }
        assert!(r3 >= r1 - 0.5, "restarts hurt recall: {r3} << {r1}");
        // Restarts charge extra seed NDC.
        assert!(c3.stats.ndc >= c1.stats.ndc);
    }

    #[test]
    fn degree_bounded_at_k() {
        let (ds, _) = MixtureSpec::table10(8, 500, 3, 3.0, 5).generate();
        let p = SptagParams::kdt(2, 1);
        let idx = build(&ds, &p);
        assert!(degree_stats(idx.graph()).max <= p.k);
    }
}
