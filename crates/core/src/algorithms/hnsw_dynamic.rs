//! Dynamically updated HNSW — the survey's outstanding challenge (§6):
//! "how to ... realize the real-time update of the graph index".
//!
//! [`DynamicHnsw`] owns its growing dataset and supports interleaved
//! `insert` / `delete` / `search`:
//!
//! - **Insert** is HNSW's native increment (the *Increment* construction
//!   strategy needs no rebuild).
//! - **Delete** is a tombstone: the vertex keeps routing (removing it
//!   would fragment the graph) but never appears in results — the
//!   standard production compromise (e.g. hnswlib's `markDelete`), with
//!   [`DynamicHnsw::tombstone_fraction`] exposed so callers can schedule
//!   rebuilds.
//! - **Search** uses the filtered traversal from
//!   [`crate::search::filtered`] to skip tombstones.

use crate::algorithms::hnsw::{self, HnswParams};
use crate::components::selection::select_rng_alpha;
use crate::search::{beam_search, filtered_beam_search, SearchScratch, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::{Dataset, Neighbor};

/// An HNSW index supporting online insert, delete, and search.
///
/// ```
/// use weavess_core::algorithms::hnsw::HnswParams;
/// use weavess_core::algorithms::hnsw_dynamic::DynamicHnsw;
///
/// let mut idx = DynamicHnsw::new(4, HnswParams::tuned(1, 1));
/// let a = idx.insert(&[0.0, 0.0, 0.0, 0.0]);
/// let b = idx.insert(&[1.0, 0.0, 0.0, 0.0]);
/// let _ = idx.insert(&[5.0, 5.0, 5.0, 5.0]);
/// assert_eq!(idx.search(&[0.1, 0.0, 0.0, 0.0], 1, 8)[0].id, a);
/// idx.delete(a);
/// assert_eq!(idx.search(&[0.1, 0.0, 0.0, 0.0], 1, 8)[0].id, b);
/// ```
pub struct DynamicHnsw {
    data: Dataset,
    /// Per-layer adjacency; `layers[l][v]` empty when `v` is absent at `l`.
    layers: Vec<Vec<Vec<u32>>>,
    levels: Vec<usize>,
    deleted: Vec<bool>,
    live: usize,
    enter: u32,
    enter_level: usize,
    params: HnswParams,
    rng: StdRng,
    scratch: SearchScratch,
    stats: SearchStats,
}

impl DynamicHnsw {
    /// An empty index over `dim`-dimensional vectors.
    pub fn new(dim: usize, params: HnswParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        DynamicHnsw {
            data: Dataset::empty(dim),
            layers: vec![Vec::new()],
            levels: Vec::new(),
            deleted: Vec::new(),
            live: 0,
            enter: 0,
            enter_level: 0,
            params,
            rng,
            scratch: SearchScratch::new(0),
            stats: SearchStats::default(),
        }
    }

    /// Bulk-loads `base` with the deterministic parallel batch
    /// construction shared with the static HNSW builder — prefix-doubling
    /// batches search the frozen prior graph in parallel
    /// (`params.threads` workers, 0 = one per core), commits apply in
    /// point-id order.
    ///
    /// The result is bit-identical for every thread count, and all
    /// `base.len()` geometric levels are drawn from the same RNG stream
    /// one-at-a-time [`Self::insert`] would use — so incremental inserts
    /// after a bulk load continue identically no matter how many threads
    /// built the base.
    pub fn bulk_load(base: &Dataset, params: HnswParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let n = base.len();
        let levels = crate::telemetry::span("C1 init", || hnsw::draw_levels(n, &params, &mut rng));
        let mut data = Dataset::empty(base.dim());
        for i in 0..n as u32 {
            data.push(base.point(i));
        }
        let (layers, enter, enter_level) = if n == 0 {
            (vec![Vec::new()], 0, 0)
        } else {
            crate::telemetry::span("C2+C3 insertion", || {
                hnsw::build_layers(base, &levels, &params)
            })
        };
        DynamicHnsw {
            data,
            layers,
            levels,
            deleted: vec![false; n],
            live: n,
            enter,
            enter_level,
            params,
            rng,
            scratch: SearchScratch::new(n),
            stats: SearchStats::default(),
        }
    }

    /// Total points ever inserted (tombstones included).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no points were ever inserted.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Points currently visible to search.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Fraction of tombstoned points — rebuild when this grows large.
    pub fn tombstone_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.live as f64 / self.data.len() as f64
    }

    /// The owned vectors (ids are stable across deletes).
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Inserts a vector, returning its id.
    pub fn insert(&mut self, vector: &[f32]) -> u32 {
        let p = self.data.push(vector);
        self.live += 1;
        self.deleted.push(false);
        self.scratch.ensure_len(self.data.len());
        // Geometric level.
        let ml = 1.0 / (self.params.m.max(2) as f64).ln();
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let lp = (-u.ln() * ml).floor() as usize;
        self.levels.push(lp);
        while self.layers.len() <= lp {
            let mut layer = Vec::new();
            layer.resize(self.data.len(), Vec::new());
            self.layers.push(layer);
        }
        for layer in &mut self.layers {
            layer.resize(self.data.len(), Vec::new());
        }
        if p == 0 {
            self.enter = 0;
            self.enter_level = lp;
            return p;
        }

        let mut ep = self.enter;
        // Greedy descent above lp.
        for l in ((lp + 1)..=self.enter_level).rev() {
            ep = self.greedy_closest(l, vector, ep);
        }
        // Beam insert on lp..=0.
        for l in (0..=lp.min(self.enter_level)).rev() {
            self.scratch.next_epoch();
            let pool = beam_search(
                &self.data,
                self.layers[l].as_slice(),
                vector,
                &[ep],
                self.params.ef_construction,
                &mut self.scratch,
                &mut self.stats,
            );
            let max_deg = if l == 0 {
                self.params.m0
            } else {
                self.params.m
            };
            let selected = select_rng_alpha(&self.data, p, &pool, self.params.m, 1.0);
            for s in &selected {
                self.layers[l][p as usize].push(s.id);
                self.layers[l][s.id as usize].push(p);
                if self.layers[l][s.id as usize].len() > max_deg {
                    let mut cands: Vec<Neighbor> = self.layers[l][s.id as usize]
                        .iter()
                        .map(|&u| Neighbor::new(u, self.data.dist(s.id, u)))
                        .collect();
                    cands.sort_unstable();
                    self.layers[l][s.id as usize] =
                        select_rng_alpha(&self.data, s.id, &cands, max_deg, 1.0)
                            .iter()
                            .map(|x| x.id)
                            .collect();
                }
            }
            ep = selected.first().map(|s| s.id).unwrap_or(ep);
        }
        if lp > self.enter_level {
            self.enter = p;
            self.enter_level = lp;
        }
        p
    }

    /// Tombstones `id`; returns false when already deleted or out of range.
    pub fn delete(&mut self, id: u32) -> bool {
        match self.deleted.get_mut(id as usize) {
            Some(d) if !*d => {
                *d = true;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Searches the live points for `k` nearest neighbors.
    ///
    /// When tombstones smother the query's neighborhood (e.g. a whole
    /// deleted cluster), a fixed-width traversal can converge without ever
    /// touching a live vertex; the beam is doubled until `k` live results
    /// are found or the pool covers the whole dataset, so a connected
    /// graph always yields every reachable live point.
    pub fn search(&mut self, query: &[f32], k: usize, beam: usize) -> Vec<Neighbor> {
        if self.data.is_empty() || self.live == 0 {
            return Vec::new();
        }
        let mut ep = self.enter;
        for l in (1..=self.enter_level).rev() {
            ep = self.greedy_closest(l, query, ep);
        }
        let deleted = &self.deleted;
        // Borrow dance: split disjoint fields for the filtered search.
        let mut stats = self.stats;
        let mut beam = beam.max(k);
        let res = loop {
            self.scratch.next_epoch();
            let res = filtered_beam_search(
                &self.data,
                self.layers[0].as_slice(),
                query,
                &[ep],
                k,
                beam,
                &|id| !deleted[id as usize],
                &mut self.scratch,
                &mut stats,
            );
            if res.len() >= k.min(self.live) || beam >= self.data.len() {
                break res;
            }
            beam = (beam * 2).min(self.data.len());
        };
        self.stats = stats;
        res
    }

    /// Accumulated work counters (reset with [`std::mem::take`] semantics).
    pub fn take_stats(&mut self) -> SearchStats {
        std::mem::take(&mut self.stats)
    }

    /// Repairs the graph around tombstones: every live vertex that points
    /// at a deleted one replaces its neighborhood by RNG-selecting from
    /// its live 2-hop neighborhood (routing *through* tombstones so their
    /// connectivity is inherited), and tombstoned vertices lose their
    /// out-edges. Call when [`Self::tombstone_fraction`] grows large;
    /// vector storage is not reclaimed (ids stay stable).
    ///
    /// Returns the number of vertices whose neighborhoods were rebuilt.
    pub fn consolidate(&mut self) -> usize {
        let n = self.data.len();
        let mut rebuilt = 0usize;
        for l in 0..self.layers.len() {
            let max_deg = if l == 0 {
                self.params.m0
            } else {
                self.params.m
            };
            let snapshot: Vec<Vec<u32>> = self.layers[l].clone();
            for v in 0..n as u32 {
                if self.deleted[v as usize] {
                    continue;
                }
                if !snapshot[v as usize]
                    .iter()
                    .any(|&u| self.deleted[u as usize])
                {
                    continue;
                }
                // Live 2-hop neighborhood through tombstones.
                let mut cands: Vec<Neighbor> = Vec::new();
                for &u in &snapshot[v as usize] {
                    if !self.deleted[u as usize] {
                        push_unique(&mut cands, Neighbor::new(u, self.data.dist(v, u)));
                    }
                    for &w in &snapshot[u as usize] {
                        if w != v && !self.deleted[w as usize] {
                            push_unique(&mut cands, Neighbor::new(w, self.data.dist(v, w)));
                        }
                    }
                }
                cands.sort_unstable();
                self.layers[l][v as usize] = select_rng_alpha(&self.data, v, &cands, max_deg, 1.0)
                    .iter()
                    .map(|x| x.id)
                    .collect();
                rebuilt += 1;
            }
            // Tombstones stop routing entirely on this layer.
            for v in 0..n {
                if self.deleted[v] {
                    self.layers[l][v].clear();
                }
            }
        }
        // The entry must be live; fall back to any live vertex.
        if self.deleted[self.enter as usize] {
            if let Some(live) = (0..n as u32).find(|&v| !self.deleted[v as usize]) {
                self.enter = live;
                self.enter_level = self.levels[live as usize];
            }
        }
        rebuilt
    }

    fn greedy_closest(&mut self, layer: usize, query: &[f32], start: u32) -> u32 {
        let mut cur = start;
        let mut cur_d = self.data.dist_to(query, cur);
        self.stats.ndc += 1;
        loop {
            let mut improved = false;
            for &u in &self.layers[layer][cur as usize] {
                self.stats.ndc += 1;
                let d = self.data.dist_to(query, u);
                if d < cur_d {
                    cur = u;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
            self.stats.hops += 1;
        }
    }
}

fn push_unique(cands: &mut Vec<Neighbor>, n: Neighbor) {
    if !cands.iter().any(|c| c.id == n.id) {
        cands.push(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;

    fn vectors(n: usize) -> (Dataset, Dataset) {
        MixtureSpec {
            intrinsic_dim: Some(6),
            noise: 0.05,
            shared_subspace: true,
            ..MixtureSpec::table10(16, n, 3, 5.0, 30)
        }
        .generate()
    }

    fn build_dynamic(base: &Dataset) -> DynamicHnsw {
        let mut idx = DynamicHnsw::new(base.dim(), HnswParams::tuned(2, 3));
        for i in 0..base.len() as u32 {
            idx.insert(base.point(i));
        }
        idx
    }

    #[test]
    fn insert_then_search_matches_ground_truth() {
        let (base, queries) = vectors(1_200);
        let mut idx = build_dynamic(&base);
        let mut hits = 0usize;
        for qi in 0..queries.len() as u32 {
            let q = queries.point(qi);
            let res = idx.search(q, 10, 60);
            let truth: Vec<u32> = knn_scan(&base, q, 10, None).iter().map(|n| n.id).collect();
            hits += res.iter().filter(|n| truth.contains(&n.id)).count();
        }
        let recall = hits as f64 / (10 * queries.len()) as f64;
        assert!(recall > 0.9, "recall={recall}");
    }

    #[test]
    fn deleted_points_never_appear_in_results() {
        let (base, queries) = vectors(800);
        let mut idx = build_dynamic(&base);
        // Delete every third point.
        for id in (0..base.len() as u32).step_by(3) {
            assert!(idx.delete(id));
        }
        assert!(!idx.delete(0), "double delete must fail");
        assert!((idx.tombstone_fraction() - 1.0 / 3.0).abs() < 0.01);
        for qi in 0..queries.len() as u32 {
            let res = idx.search(queries.point(qi), 10, 60);
            assert!(res.iter().all(|n| n.id % 3 != 0));
            assert!(!res.is_empty());
        }
    }

    #[test]
    fn recall_against_live_ground_truth_after_deletes() {
        let (base, queries) = vectors(1_000);
        let mut idx = build_dynamic(&base);
        for id in (0..base.len() as u32).step_by(2) {
            idx.delete(id);
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for qi in 0..queries.len() as u32 {
            let q = queries.point(qi);
            let truth: Vec<u32> = knn_scan(&base, q, base.len(), None)
                .into_iter()
                .filter(|n| n.id % 2 == 1)
                .take(10)
                .map(|n| n.id)
                .collect();
            let res = idx.search(q, 10, 80);
            hits += res.iter().filter(|n| truth.contains(&n.id)).count();
            total += truth.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.85, "post-delete recall {recall}");
    }

    #[test]
    fn interleaved_inserts_remain_searchable() {
        let (base, queries) = vectors(1_000);
        let mut idx = DynamicHnsw::new(base.dim(), HnswParams::tuned(2, 3));
        // First half.
        for i in 0..500u32 {
            idx.insert(base.point(i));
        }
        let early = idx.search(queries.point(0), 5, 40);
        assert_eq!(early.len(), 5);
        // Second half, interleaved with deletes of the first.
        for i in 500..1_000u32 {
            idx.insert(base.point(i));
            if i % 10 == 0 {
                idx.delete(i - 500);
            }
        }
        assert_eq!(idx.len(), 1_000);
        assert_eq!(idx.live_len(), 1_000 - 50);
        let res = idx.search(queries.point(1), 10, 60);
        assert_eq!(res.len(), 10);
    }

    #[test]
    fn consolidate_removes_tombstone_edges_and_keeps_recall() {
        let (base, queries) = vectors(1_000);
        let mut idx = build_dynamic(&base);
        for id in (0..base.len() as u32).step_by(2) {
            idx.delete(id);
        }
        let rebuilt = idx.consolidate();
        assert!(rebuilt > 0);
        // No live vertex points at a tombstone anymore; tombstones have no
        // out-edges.
        for v in 0..base.len() {
            for l in 0..idx.layers.len() {
                if idx.deleted[v] {
                    assert!(idx.layers[l][v].is_empty());
                } else {
                    assert!(idx.layers[l][v].iter().all(|&u| !idx.deleted[u as usize]));
                }
            }
        }
        // Recall against live ground truth stays high after repair.
        let mut hits = 0usize;
        let mut total = 0usize;
        for qi in 0..queries.len() as u32 {
            let q = queries.point(qi);
            let truth: Vec<u32> = knn_scan(&base, q, base.len(), None)
                .into_iter()
                .filter(|n| n.id % 2 == 1)
                .take(10)
                .map(|n| n.id)
                .collect();
            let res = idx.search(q, 10, 80);
            hits += res.iter().filter(|n| truth.contains(&n.id)).count();
            total += truth.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.85, "post-consolidate recall {recall}");
    }

    #[test]
    fn consolidate_moves_a_deleted_entry_point() {
        let (base, _) = vectors(400);
        let mut idx = build_dynamic(&base);
        let entry_before = idx.enter;
        idx.delete(entry_before);
        idx.consolidate();
        assert_ne!(idx.enter, entry_before);
        assert!(!idx.deleted[idx.enter as usize]);
        let res = idx.search(base.point(3), 5, 40);
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn empty_and_exhausted_indexes_return_empty() {
        let mut idx = DynamicHnsw::new(8, HnswParams::tuned(1, 1));
        assert!(idx.search(&[0.0; 8], 5, 20).is_empty());
        let id = idx.insert(&[1.0; 8]);
        idx.delete(id);
        assert!(idx.search(&[0.0; 8], 5, 20).is_empty());
    }
}
