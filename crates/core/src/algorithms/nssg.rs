//! A11 — NSSG (Navigating Satellite System Graph): like NSG but candidates
//! come from the 2-hop neighborhood of the initial graph (no per-point
//! graph search — the big construction-time win) and selection uses the
//! relaxed SSG angle rule (default 60°), yielding a larger out-degree than
//! MRNG. Entries are fixed at build time, spread by farthest-point
//! sampling so clustered datasets keep an entry near every cluster.

use crate::components::candidates::candidates_by_expansion;
use crate::components::connectivity::dfs_repair;
use crate::components::init::C1Choice;
use crate::components::seeds::{spread_entries, SeedStrategy};
use crate::components::selection::select_angle;
use crate::index::FlatIndex;
use crate::nndescent::NnDescentParams;
use crate::parallel;
use crate::rnndescent::RnnDescentParams;
use crate::search::Router;
use crate::telemetry;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// NSSG parameters (Appendix H: `L`, `R`, `Angle` over a KGraph base).
#[derive(Debug, Clone)]
pub struct NssgParams {
    /// NN-Descent configuration for the initial graph.
    pub nd: NnDescentParams,
    /// Which descent engine actually runs as C1 (defaults to NN-Descent;
    /// see [`NssgParams::with_rnn_c1`]).
    pub init: C1Choice,
    /// Candidate cap (`L`).
    pub l: usize,
    /// Maximum out-degree (`R`).
    pub r: usize,
    /// Minimum pairwise angle between kept neighbors, degrees (`Angle`;
    /// the paper's optimum is 60°).
    pub angle: f32,
    /// Number of fixed random entries.
    pub entries: usize,
}

impl NssgParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        NssgParams {
            nd: NnDescentParams {
                k: 40,
                l: 50,
                iters: 8,
                sample: 12,
                reverse: 25,
                seed,
                threads,
            },
            init: C1Choice::NnDescent,
            l: 100,
            r: 40,
            angle: 60.0,
            entries: 8,
        }
    }

    /// Swaps C1 to RNN-Descent, sized to stand in for the configured
    /// NN-Descent ([`RnnDescentParams::matching`]); C2–C7 are untouched.
    pub fn with_rnn_c1(mut self) -> Self {
        self.init = C1Choice::RnnDescent(RnnDescentParams::matching(&self.nd));
        self
    }
}

/// Builds an NSSG index.
pub fn build(ds: &Dataset, params: &NssgParams) -> FlatIndex {
    let init = telemetry::span("C1 init", || params.init.build(ds, &params.nd, None));
    let n = ds.len();
    let threads = parallel::resolve_threads(params.nd.threads);
    let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    telemetry::span("C2+C3 candidates+selection", || {
        parallel::par_fill(
            &mut lists,
            parallel::CHUNK,
            threads,
            || (),
            |_, start, slot| {
                for (j, out) in slot.iter_mut().enumerate() {
                    let p = (start + j) as u32;
                    let cands = candidates_by_expansion(ds, &init, p, params.l);
                    *out = select_angle(ds, p, &cands, params.r, params.angle);
                }
            },
        );
    });
    // DFS connectivity from a fixed entry (NSSG attaches DFS like NSG).
    // Entries are fixed at build time; farthest-point sampling spreads them
    // across the dataset so each cluster has a nearby entry.
    let entries = telemetry::span("C4 seeds", || {
        spread_entries(ds, params.entries.max(1), params.nd.seed ^ 0x7556)
    });
    telemetry::span("C5 connectivity", || {
        dfs_repair(ds, &mut lists, entries[0], params.l.min(64));
    });
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|n| n.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    FlatIndex {
        name: "NSSG",
        graph,
        seeds: SeedStrategy::Fixed(entries),
        router: Router::BestFirst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 2_000, 5, 3.0, 30).generate()
    }

    #[test]
    fn nssg_reaches_high_recall() {
        let (ds, qs) = dataset();
        let idx = build(&ds, &NssgParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.9, "recall={r}");
    }

    #[test]
    fn nssg_builds_faster_than_nsg_style_search_acquisition() {
        // The A11 claim: expansion-based C2 beats search-based C2 on build
        // time. Compare on the same initial graph settings.
        let (ds, _) = dataset();
        let t0 = std::time::Instant::now();
        build(&ds, &NssgParams::tuned(4, 1));
        let nssg_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        crate::algorithms::nsg::build(&ds, &crate::algorithms::nsg::NsgParams::tuned(4, 1));
        let nsg_time = t1.elapsed();
        // Generous slack: just require NSSG is not slower by more than 2x.
        assert!(
            nssg_time < nsg_time * 2,
            "nssg={nssg_time:?} nsg={nsg_time:?}"
        );
    }
}
