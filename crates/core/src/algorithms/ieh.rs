//! A8 — IEH (Iterative Expanding Hashing): an exact brute-force KNNG
//! searched with best-first expansion from hash-bucket seeds. The
//! expensive O(|S|²·log|S|) construction (Table 2) and the LSH table's
//! memory are its signatures; its seed quality is the best of the C4
//! study (Figure 10d).
//!
//! The original uses a MATLAB-built hash; we substitute from-scratch
//! sign-random-projection LSH (DESIGN.md §5).

use crate::components::init::init_brute_force;
use crate::components::seeds::SeedStrategy;
use crate::index::FlatIndex;
use crate::search::Router;
use crate::telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use weavess_data::Dataset;
use weavess_graph::CsrGraph;
use weavess_trees::LshTable;

/// IEH parameters (`p` seeds, `k` graph degree; the paper's `s` expansion
/// iterations are subsumed by the best-first beam).
#[derive(Debug, Clone)]
pub struct IehParams {
    /// Exact-KNNG degree (`k`).
    pub k: usize,
    /// Seeds per query (`p`).
    pub p: usize,
    /// LSH tables.
    pub tables: usize,
    /// Bits per table.
    pub bits: usize,
    /// Construction threads (for the brute-force KNNG).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl IehParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        IehParams {
            k: 50,
            p: 10,
            tables: 4,
            bits: 12,
            threads,
            seed,
        }
    }
}

/// Builds an IEH index.
pub fn build(ds: &Dataset, params: &IehParams) -> FlatIndex {
    let lists = telemetry::span("C1 init", || {
        init_brute_force(ds, params.k, params.threads.max(1))
    });
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|n| n.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    let mut rng = StdRng::seed_from_u64(params.seed);
    let table = telemetry::span("C4 seeds", || {
        LshTable::build(ds, params.tables, params.bits, &mut rng)
    });
    FlatIndex {
        name: "IEH",
        graph,
        seeds: SeedStrategy::Lsh {
            table,
            count: params.p,
            fallback: vec![ds.medoid()],
        },
        router: Router::BestFirst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::metrics::{degree_stats, graph_quality};

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 1_500, 5, 3.0, 25).generate()
    }

    #[test]
    fn ieh_reaches_high_recall() {
        let (ds, qs) = dataset();
        let idx = build(&ds, &IehParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 80, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.9, "recall={r}");
    }

    #[test]
    fn ieh_graph_quality_is_one() {
        // Table 4's IEH signature: GQ = 1.000 (exact KNNG).
        let (ds, _) = MixtureSpec::table10(8, 400, 3, 3.0, 5).generate();
        let idx = build(&ds, &IehParams::tuned(2, 1));
        let exact = weavess_data::ground_truth::exact_knn_graph(&ds, 10, 2);
        assert!((graph_quality(idx.graph(), &exact) - 1.0).abs() < 1e-12);
        assert_eq!(degree_stats(idx.graph()).max, 50.min(ds.len() - 1));
    }

    #[test]
    fn ieh_memory_includes_hash_tables() {
        let (ds, _) = MixtureSpec::table10(8, 400, 3, 3.0, 5).generate();
        let idx = build(&ds, &IehParams::tuned(2, 1));
        assert!(idx.memory_bytes() > idx.graph.memory_bytes());
    }
}
