//! A1 — NSW (Navigable Small World): incremental insertion into an
//! undirected graph. Early inserts create long "navigation" edges; late
//! inserts create short-range edges. No pruning, so dense-area hubs grow
//! large out-degrees (the Table 11 signature) and the index is big
//! (Figure 6) — the costs §3.2 calls out.
//!
//! The *Increment* strategy is parallelized with deterministic batch
//! insertion: points join in prefix-doubling batches, each searching the
//! frozen prefix graph in parallel, with edges committed in point-id
//! order. Each point's search seeds come from its own RNG stream (the
//! build seed mixed with the point id), so the search phase is a pure
//! function of `(frozen graph, point)` and the result is bit-identical at
//! any thread count.

use crate::components::seeds::SeedStrategy;
use crate::index::FlatIndex;
use crate::parallel;
use crate::search::{beam_search, Router, SearchScratch, SearchStats};
use crate::telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::Dataset;
use weavess_graph::CsrGraph;

/// NSW parameters (`max_m0` is the per-insert connection count `f`;
/// `ef_construction` the insertion search beam).
#[derive(Debug, Clone)]
pub struct NswParams {
    /// Bidirectional edges added per inserted point.
    pub m: usize,
    /// Insertion-time search beam.
    pub ef_construction: usize,
    /// Random seeds per insertion search and per query.
    pub search_seeds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Construction threads (0 = one per available core). The built graph
    /// is identical for every value.
    pub threads: usize,
}

impl NswParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        NswParams {
            m: 16,
            ef_construction: 40,
            search_seeds: 8,
            seed,
            threads,
        }
    }
}

/// SplitMix64 — decorrelates the per-point seed streams.
fn mix(seed: u64, p: u32) -> u64 {
    let mut z = seed ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Work-unit size for the parallel insertion-search phase.
const SEARCH_CHUNK: usize = 32;

/// Builds an NSW index.
pub fn build(ds: &Dataset, params: &NswParams) -> FlatIndex {
    let n = ds.len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let threads = parallel::resolve_threads(params.threads);
    let max_batch = (n / 8).max(64);
    telemetry::span("C2+C3 incremental insertion", || {
        let insert_ndc = std::sync::atomic::AtomicU64::new(0);
        for batch in parallel::prefix_doubling(n, max_batch) {
            let frozen = batch.start; // the graph prefix this batch searches
            let targets: Vec<Vec<u32>> = parallel::par_chunks_map(
                batch.len(),
                SEARCH_CHUNK,
                threads,
                || (SearchScratch::new(n), SearchStats::default()),
                |(scratch, stats), range| {
                    let before = stats.ndc;
                    let out = range
                        .map(|i| {
                            let p = (frozen + i) as u32;
                            // Random seeds among the frozen prefix [0, frozen),
                            // drawn from the point's own stream.
                            let mut rng = StdRng::seed_from_u64(mix(params.seed, p));
                            let seeds: Vec<u32> = (0..params.search_seeds.min(frozen))
                                .map(|_| rng.gen_range(0..frozen as u32))
                                .collect();
                            scratch.next_epoch();
                            let pool = beam_search(
                                ds,
                                &adj[..frozen],
                                ds.point(p),
                                &seeds,
                                params.ef_construction,
                                scratch,
                                stats,
                            );
                            pool.iter()
                                .take(params.m)
                                .map(|c| c.id)
                                .collect::<Vec<u32>>()
                        })
                        .collect::<Vec<_>>();
                    insert_ndc.fetch_add(stats.ndc - before, std::sync::atomic::Ordering::Relaxed);
                    out
                },
            )
            .into_iter()
            .flatten()
            .collect();
            // Commit bidirectional edges in point-id order.
            for (i, cands) in targets.into_iter().enumerate() {
                let p = (frozen + i) as u32;
                for c in cands {
                    adj[p as usize].push(c);
                    adj[c as usize].push(p);
                }
            }
        }
        telemetry::add_span_ndc(insert_ndc.load(std::sync::atomic::Ordering::Relaxed));
    });
    FlatIndex {
        name: "NSW",
        graph: telemetry::span("freeze", || CsrGraph::from_lists(&adj)),
        seeds: SeedStrategy::Random {
            count: params.search_seeds,
        },
        router: Router::BestFirst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::connectivity::weak_components;
    use weavess_graph::metrics::degree_stats;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 2_000, 5, 3.0, 30).generate()
    }

    #[test]
    fn nsw_reaches_high_recall() {
        let (ds, qs) = dataset();
        let idx = build(&ds, &NswParams::tuned(2, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.85, "recall={r}");
    }

    #[test]
    fn nsw_is_globally_connected() {
        let (ds, _) = MixtureSpec::table10(8, 800, 4, 3.0, 5).generate();
        let idx = build(&ds, &NswParams::tuned(2, 1));
        assert_eq!(weak_components(idx.graph()), 1);
    }

    #[test]
    fn nsw_is_undirected_with_unbounded_hubs() {
        let (ds, _) = MixtureSpec::table10(8, 800, 4, 3.0, 5).generate();
        let p = NswParams::tuned(2, 1);
        let idx = build(&ds, &p);
        let g = idx.graph();
        for v in 0..g.len() as u32 {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u).contains(&v), "edge {v}->{u} not mutual");
            }
        }
        // Hubs exceed m (the undirected no-pruning signature).
        assert!(degree_stats(g).max > p.m, "max degree too tame");
    }
}
