//! A12 — Vamana (DiskANN's graph): random initialization, then two
//! refinement passes that re-acquire candidates by greedy search from the
//! medoid and select with the α-relaxed RNG rule — α = 1 on the first
//! pass, α > 1 (default 2) on the second, which keeps longer edges and
//! shortens search paths (the property DiskANN exploits on SSDs).
//!
//! Refinement is *in place* (batched): each batch searches the current
//! graph, applies its new lists, and inserts reverse edges immediately.
//! This matters: the random initialization is globally connected, and
//! in-place reverse-edge insertion is what carries that connectivity
//! through the pruning passes. A whole-graph snapshot pass would strip
//! every long edge at once and strand whole regions.

use crate::components::candidates::candidates_by_search;
use crate::components::init::init_random;
use crate::components::seeds::SeedStrategy;
use crate::components::selection::select_rng_alpha;
use crate::index::FlatIndex;
use crate::parallel;
use crate::search::{Router, SearchScratch, SearchStats};
use crate::telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// Vamana parameters (`R`, `L`, α schedule).
#[derive(Debug, Clone)]
pub struct VamanaParams {
    /// Maximum out-degree (`R`).
    pub r: usize,
    /// Candidate-acquisition beam (`L`).
    pub l: usize,
    /// α of the second pass (first pass is 1.0, per the paper).
    pub alpha: f32,
    /// Points refined between graph snapshots.
    pub batch_size: usize,
    /// RNG seed for the random initialization.
    pub seed: u64,
    /// Construction threads (0 = one per available core). The built graph
    /// is identical for every value.
    pub threads: usize,
}

impl VamanaParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        VamanaParams {
            r: 40,
            l: 60,
            alpha: 2.0,
            batch_size: 2048,
            seed,
            threads,
        }
    }
}

/// Builds a Vamana index.
pub fn build(ds: &Dataset, params: &VamanaParams) -> FlatIndex {
    let n = ds.len();
    let medoid = ds.medoid();
    let mut lists = telemetry::span("C1 init", || init_random(ds, params.r, params.seed));
    for (pass, pass_alpha) in [1.0f32, params.alpha.max(1.0)].into_iter().enumerate() {
        let component = if pass == 0 {
            "C2+C3 pass 1 (alpha=1)"
        } else {
            "C2+C3 pass 2 (alpha)"
        };
        telemetry::span(component, || {
            refine_pass_inplace(ds, &mut lists, medoid, params, pass_alpha);
        });
    }
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|n| n.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    debug_assert_eq!(graph.len(), n);
    FlatIndex {
        name: "Vamana",
        graph,
        seeds: SeedStrategy::Fixed(vec![medoid]),
        router: Router::BestFirst,
    }
}

/// One in-place refinement pass over all points in batches.
fn refine_pass_inplace(
    ds: &Dataset,
    lists: &mut [Vec<Neighbor>],
    medoid: u32,
    params: &VamanaParams,
    alpha: f32,
) {
    let n = ds.len();
    let threads = parallel::resolve_threads(params.threads);
    let batch = params.batch_size.max(64);
    let ids: Vec<u32> = (0..n as u32).collect();
    let pass_ndc = AtomicU64::new(0);
    for batch_ids in ids.chunks(batch) {
        // Snapshot of the *current* graph for this batch's searches.
        let csr = CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|x| x.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        );
        // Parallel candidate acquisition + pruning for the batch; results
        // combine in chunk order, so the sequential apply below sees the
        // same sequence at any thread count.
        let new_lists: Vec<(u32, Vec<Neighbor>)> = {
            let lists = &*lists;
            parallel::par_chunks_map(
                batch_ids.len(),
                parallel::CHUNK,
                threads,
                || (SearchScratch::new(n), SearchStats::default()),
                |(scratch, stats), range| {
                    let before = stats.ndc;
                    let mut out = Vec::with_capacity(range.len());
                    for &p in &batch_ids[range] {
                        let mut cands = candidates_by_search(
                            ds,
                            &csr,
                            p,
                            &[medoid],
                            params.l,
                            params.l * 2,
                            scratch,
                            stats,
                        );
                        for x in &lists[p as usize] {
                            insert_into_pool(&mut cands, params.l * 2, *x);
                        }
                        out.push((p, select_rng_alpha(ds, p, &cands, params.r, alpha)));
                    }
                    pass_ndc.fetch_add(stats.ndc - before, Ordering::Relaxed);
                    out
                },
            )
            .into_iter()
            .flatten()
            .collect()
        };
        // Apply the batch and insert reverse edges immediately (robust
        // prune on overflow keeps long edges alive via the α rule).
        for (p, new) in new_lists {
            lists[p as usize] = new.clone();
            for x in &new {
                let l = &mut lists[x.id as usize];
                if l.iter().any(|e| e.id == p) {
                    continue;
                }
                l.push(Neighbor::new(p, x.dist));
                if l.len() > params.r {
                    l.sort_unstable();
                    let cands = l.clone();
                    *l = select_rng_alpha(ds, x.id, &cands, params.r, alpha);
                }
            }
        }
    }
    telemetry::add_span_ndc(pass_ndc.load(Ordering::Relaxed));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::connectivity::reachable_from;
    use weavess_graph::metrics::degree_stats;

    fn dataset() -> (Dataset, Dataset) {
        // Single-cluster data: the paper itself observes Vamana fragmenting
        // on clustered datasets (Table 4 reports thousands of connected
        // components and GQ ~ 0.02, and Appendix D could not reproduce the
        // original paper's results), so the recall floor is asserted where
        // the algorithm is well-posed.
        MixtureSpec::table10(16, 2_000, 1, 5.0, 30).generate()
    }

    #[test]
    fn vamana_reaches_high_recall() {
        let (ds, qs) = dataset();
        let idx = build(&ds, &VamanaParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.85, "recall={r}");
    }

    #[test]
    fn vamana_stays_navigable_from_medoid() {
        // The in-place reverse-edge property: the graph stays reachable
        // from the medoid (within a cluster; the paper's Table 4 documents
        // Vamana fragmenting across clusters).
        let (ds, _) = dataset();
        let idx = build(&ds, &VamanaParams::tuned(4, 1));
        let reach = reachable_from(idx.graph(), ds.medoid());
        let frac = reach.iter().filter(|&&r| r).count() as f64 / ds.len() as f64;
        assert!(frac > 0.95, "reachable fraction {frac}");
    }

    #[test]
    fn degree_bounded_by_r() {
        let (ds, _) = dataset();
        let p = VamanaParams::tuned(4, 1);
        let idx = build(&ds, &p);
        assert!(degree_stats(idx.graph()).max <= p.r);
    }

    #[test]
    fn alpha_two_keeps_no_fewer_edges_than_alpha_one() {
        // The α relaxation's defining effect (Figure 10c / §3.2 A12).
        let (ds, _) = MixtureSpec::table10(8, 800, 3, 3.0, 5).generate();
        let mut p1 = VamanaParams::tuned(2, 1);
        p1.alpha = 1.0;
        let mut p2 = VamanaParams::tuned(2, 1);
        p2.alpha = 2.0;
        let g1 = build(&ds, &p1);
        let g2 = build(&ds, &p2);
        assert!(
            degree_stats(g2.graph()).avg >= degree_stats(g1.graph()).avg,
            "alpha=2 avg {} < alpha=1 avg {}",
            degree_stats(g2.graph()).avg,
            degree_stats(g1.graph()).avg
        );
    }
}
