//! A6 — KGraph: NN-Descent's approximate KNNG searched with best-first
//! routing from random seeds.
//!
//! Pipeline mapping (Table 9): refinement construction, random C1,
//! expansion C2 (inside NN-Descent's local join), distance-only C3, no C5,
//! random C6, best-first C7.

use crate::components::init::C1Choice;
use crate::components::seeds::SeedStrategy;
use crate::index::FlatIndex;
use crate::nndescent::NnDescentParams;
use crate::rnndescent::RnnDescentParams;
use crate::search::Router;
use crate::telemetry;
use weavess_data::Dataset;
use weavess_graph::CsrGraph;

/// KGraph parameters — the five sensitive knobs of Appendix H plus seeds.
#[derive(Debug, Clone)]
pub struct KGraphParams {
    /// NN-Descent configuration (K, L, iter, S, R).
    pub nd: NnDescentParams,
    /// Which descent engine actually runs as C1 (defaults to NN-Descent;
    /// see [`KGraphParams::with_rnn_c1`]).
    pub init: C1Choice,
    /// Random seeds per query.
    pub search_seeds: usize,
}

impl KGraphParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        KGraphParams {
            nd: NnDescentParams {
                k: 40,
                l: 60,
                iters: 8,
                sample: 15,
                reverse: 30,
                seed,
                threads,
            },
            init: C1Choice::NnDescent,
            search_seeds: 10,
        }
    }

    /// Swaps C1 to RNN-Descent, sized to stand in for the configured
    /// NN-Descent ([`RnnDescentParams::matching`]). For KGraph the C1
    /// output *is* the index graph, so this changes the served graph —
    /// the `matching` sizing keeps its quality at NN-Descent level.
    pub fn with_rnn_c1(mut self) -> Self {
        self.init = C1Choice::RnnDescent(RnnDescentParams::matching(&self.nd));
        self
    }
}

/// Builds a KGraph index.
pub fn build(ds: &Dataset, params: &KGraphParams) -> FlatIndex {
    let lists = telemetry::span("C1 init", || params.init.build(ds, &params.nd, None));
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|n| n.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    FlatIndex {
        name: "KGraph",
        graph,
        seeds: SeedStrategy::Random {
            count: params.search_seeds,
        },
        router: Router::BestFirst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::metrics::degree_stats;

    #[test]
    fn kgraph_reaches_high_recall() {
        let (ds, qs) = MixtureSpec::table10(16, 2_000, 5, 3.0, 30).generate();
        let idx = build(&ds, &KGraphParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.85, "recall={r}");
    }

    #[test]
    fn kgraph_degree_is_bounded_by_k() {
        let (ds, _) = MixtureSpec::table10(8, 500, 3, 3.0, 5).generate();
        let mut p = KGraphParams::tuned(2, 1);
        p.nd.k = 12;
        p.nd.l = 24;
        let idx = build(&ds, &p);
        assert!(degree_stats(idx.graph()).max <= 12);
    }
}
