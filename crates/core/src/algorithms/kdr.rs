//! Appendix N — k-DR (degree-reduced neighborhood graph): start from an
//! exact KNNG; visiting each vertex's neighbors nearest first, keep the
//! undirected edge `(p, n)` only when a bounded BFS over the already-kept
//! edges cannot reach `n` from `p`. Stricter than NGT's path adjustment
//! (any alternative path kills the edge, not just a shorter two-leg one),
//! hence the smaller degree/index the appendix reports.

use crate::components::init::init_brute_force;
use crate::components::seeds::SeedStrategy;
use crate::index::FlatIndex;
use crate::search::Router;
use crate::telemetry;
use weavess_data::Dataset;
use weavess_graph::CsrGraph;

/// k-DR parameters (`k` initial degree, `r` kept-degree target).
#[derive(Debug, Clone)]
pub struct KdrParams {
    /// Exact-KNNG degree (`k`).
    pub k: usize,
    /// Edge-keeping bound per vertex (`R ≤ k`); reverse edges may exceed it.
    pub r: usize,
    /// BFS visit budget for the reachability test.
    pub bfs_budget: usize,
    /// Random seeds per query.
    pub search_seeds: usize,
    /// Range-search ε at query time.
    pub epsilon: f32,
    /// Construction threads (brute-force KNNG only; pruning is sequential
    /// because each decision depends on previously kept edges).
    pub threads: usize,
}

impl KdrParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, _seed: u64) -> Self {
        KdrParams {
            k: 40,
            r: 20,
            bfs_budget: 64,
            search_seeds: 8,
            epsilon: 0.1,
            threads,
        }
    }
}

/// Builds a k-DR index.
pub fn build(ds: &Dataset, params: &KdrParams) -> FlatIndex {
    let n = ds.len();
    let knn = telemetry::span("C1 init", || {
        init_brute_force(ds, params.k, params.threads.max(1))
    });
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Global nearest-first edge order would be ideal; per-vertex
    // nearest-first matches the k-DR paper.
    telemetry::span("C3 selection", || {
        for p in 0..n as u32 {
            let mut kept = 0usize;
            for m in &knn[p as usize] {
                if kept >= params.r {
                    break;
                }
                if adj[p as usize].contains(&m.id) {
                    kept += 1; // reverse edge already present counts
                    continue;
                }
                if !bfs_reaches(&adj, p, m.id, params.bfs_budget) {
                    adj[p as usize].push(m.id);
                    adj[m.id as usize].push(p);
                    kept += 1;
                }
            }
        }
    });
    FlatIndex {
        name: "k-DR",
        graph: telemetry::span("freeze", || CsrGraph::from_lists(&adj)),
        seeds: SeedStrategy::Random {
            count: params.search_seeds,
        },
        router: Router::Range {
            epsilon: params.epsilon,
        },
    }
}

/// Bounded breadth-first reachability over the undirected kept edges.
fn bfs_reaches(adj: &[Vec<u32>], from: u32, to: u32, budget: usize) -> bool {
    if from == to {
        return true;
    }
    let mut frontier = vec![from];
    let mut seen = vec![from];
    let mut visits = 0usize;
    while let Some(v) = frontier.pop() {
        for &u in &adj[v as usize] {
            if u == to {
                return true;
            }
            visits += 1;
            if visits > budget {
                return false;
            }
            if !seen.contains(&u) {
                seen.push(u);
                frontier.push(u);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::metrics::degree_stats;

    #[test]
    fn kdr_reaches_decent_recall() {
        let (ds, qs) = MixtureSpec::table10(16, 1_200, 4, 3.0, 25).generate();
        let idx = build(&ds, &KdrParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 80, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.8, "recall={r}");
    }

    #[test]
    fn kdr_prunes_below_the_knng_degree() {
        // The Appendix N signature: k-DR's average degree sits well below
        // the initial KNNG's.
        let (ds, _) = MixtureSpec::table10(8, 600, 3, 3.0, 5).generate();
        let p = KdrParams::tuned(2, 1);
        let idx = build(&ds, &p);
        let s = degree_stats(idx.graph());
        assert!(s.avg < p.k as f64, "avg={}", s.avg);
    }

    #[test]
    fn kdr_edges_are_undirected() {
        let (ds, _) = MixtureSpec::table10(8, 300, 3, 3.0, 5).generate();
        let idx = build(&ds, &KdrParams::tuned(2, 1));
        let g = idx.graph();
        for v in 0..g.len() as u32 {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn bfs_reachability_is_sound() {
        let adj = vec![vec![1u32], vec![0, 2], vec![1], vec![]];
        assert!(bfs_reaches(&adj, 0, 2, 100));
        assert!(!bfs_reaches(&adj, 0, 3, 100));
        assert!(bfs_reaches(&adj, 1, 1, 100));
    }
}
