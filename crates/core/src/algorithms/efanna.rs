//! A7 — EFANNA: KGraph with KD-tree assistance at both ends — the forest
//! initializes NN-Descent's pools (better starting quality, fewer
//! iterations) and supplies query-adjacent seeds at search time.

use crate::components::init::{kd_seed_pools, C1Choice};
use crate::components::seeds::SeedStrategy;
use crate::index::FlatIndex;
use crate::nndescent::NnDescentParams;
use crate::rnndescent::RnnDescentParams;
use crate::search::Router;
use crate::telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use weavess_data::Dataset;
use weavess_graph::CsrGraph;
use weavess_trees::KdForest;

/// EFANNA parameters: KGraph's knobs plus the forest (`nTrees`) and budgets.
#[derive(Debug, Clone)]
pub struct EfannaParams {
    /// NN-Descent configuration.
    pub nd: NnDescentParams,
    /// Which descent engine refines the tree-seeded pools (defaults to
    /// NN-Descent; see [`EfannaParams::with_rnn_c1`]).
    pub init: C1Choice,
    /// Number of KD-trees (`nTrees`).
    pub n_trees: usize,
    /// Distance budget per tree during initialization.
    pub init_checks: usize,
    /// Distance budget per tree during seed acquisition.
    pub seed_checks: usize,
    /// Seeds per query.
    pub search_seeds: usize,
}

impl EfannaParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        EfannaParams {
            nd: NnDescentParams {
                k: 40,
                l: 60,
                iters: 4, // fewer than KGraph: the tree init starts warmer
                sample: 15,
                reverse: 30,
                seed,
                threads,
            },
            init: C1Choice::NnDescent,
            n_trees: 4,
            init_checks: 200,
            seed_checks: 64,
            search_seeds: 10,
        }
    }

    /// Swaps the refinement engine to RNN-Descent, sized to stand in for
    /// the configured NN-Descent ([`RnnDescentParams::matching`]); the
    /// KD-forest seeding and search-time seed acquisition are untouched.
    pub fn with_rnn_c1(mut self) -> Self {
        self.init = C1Choice::RnnDescent(RnnDescentParams::matching(&self.nd));
        self
    }
}

/// Builds an EFANNA index.
pub fn build(ds: &Dataset, params: &EfannaParams) -> FlatIndex {
    let mut rng = StdRng::seed_from_u64(params.nd.seed ^ 0xEFA77A);
    let forest = telemetry::span("C4 seeds", || {
        KdForest::build(ds, params.n_trees, 32, &mut rng)
    });
    let lists = telemetry::span("C1 init", || {
        let initial = kd_seed_pools(
            ds,
            &forest,
            params.init_checks,
            params.nd.l,
            params.nd.threads,
        );
        params.init.build(ds, &params.nd, Some(&initial))
    });
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|n| n.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    FlatIndex {
        name: "EFANNA",
        graph,
        seeds: SeedStrategy::KdSearch {
            forest,
            count: params.search_seeds,
            checks_per_tree: params.seed_checks,
        },
        router: Router::BestFirst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;

    #[test]
    fn efanna_reaches_high_recall_with_tree_seeds() {
        let (ds, qs) = MixtureSpec::table10(16, 2_000, 5, 3.0, 30).generate();
        let idx = build(&ds, &EfannaParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.85, "recall={r}");
    }

    #[test]
    fn efanna_charges_seed_ndc() {
        let (ds, qs) = MixtureSpec::table10(8, 600, 3, 3.0, 5).generate();
        let idx = build(&ds, &EfannaParams::tuned(2, 1));
        let mut ctx = SearchContext::new(ds.len());
        idx.search(&ds, qs.point(0), 10, 20, &mut ctx);
        // Tree seeds spend NDC before routing even starts.
        assert!(ctx.stats.ndc as usize > 20);
    }

    #[test]
    fn efanna_memory_includes_forest() {
        let (ds, _) = MixtureSpec::table10(8, 600, 3, 3.0, 5).generate();
        let idx = build(&ds, &EfannaParams::tuned(2, 1));
        assert!(idx.memory_bytes() > idx.graph.memory_bytes());
    }
}
