//! A13 — HCNNG (Hierarchical Clustering-based NNG): the survey's only
//! MST-based algorithm. Several rounds of random two-point hierarchical
//! clustering partition the dataset; each small cluster is wired with its
//! exact MST; the union of all rounds' MST edges is the graph. KD-trees
//! provide distance-free seeds (value comparisons only) and guided search
//! (C7) cuts redundant neighbor visits.

use crate::components::seeds::SeedStrategy;
use crate::index::FlatIndex;
use crate::parallel;
use crate::search::Router;
use crate::telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::{Dataset, Neighbor};
use weavess_graph::base::mst_prim;
use weavess_graph::CsrGraph;
use weavess_trees::KdForest;

/// HCNNG parameters (`m` clustering rounds, `n_min` cluster size).
#[derive(Debug, Clone)]
pub struct HcnngParams {
    /// Hierarchical-clustering rounds (`m`).
    pub rounds: usize,
    /// Minimum (target) cluster size (`n`).
    pub min_cluster: usize,
    /// Per-vertex edge bound per MST round (the original keeps 3).
    pub mst_degree_per_round: usize,
    /// Seed KD-trees (`nTrees`).
    pub n_trees: usize,
    /// Seeds per query.
    pub search_seeds: usize,
    /// Construction threads (0 = one per available core). The built graph
    /// is identical for every value.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HcnngParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        HcnngParams {
            rounds: 12,
            min_cluster: 48,
            mst_degree_per_round: 3,
            n_trees: 4,
            search_seeds: 12,
            threads,
            seed,
        }
    }
}

/// Builds an HCNNG index.
pub fn build(ds: &Dataset, params: &HcnngParams) -> FlatIndex {
    let n = ds.len();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    let threads = parallel::resolve_threads(params.threads);
    // Each cluster MST is a sizable work unit; small chunks load-balance.
    const CLUSTER_CHUNK: usize = 4;
    telemetry::span("C2+C3 cluster MSTs", || {
        for round in 0..params.rounds.max(1) {
            // Random two-point hierarchical clustering (§4.1's HCNNG division).
            let all: Vec<u32> = (0..n as u32).collect();
            let mut clusters: Vec<Vec<u32>> = Vec::new();
            two_point_divide(ds, all, params.min_cluster, &mut rng, &mut clusters);
            // MST per cluster, parallel over clusters; edge batches combine in
            // cluster order so the budgeted union below is order-stable.
            let results = parallel::par_chunks_map(
                clusters.len(),
                CLUSTER_CHUNK,
                threads,
                || (),
                |_, range| {
                    let mut out = Vec::new();
                    for cluster in &clusters[range] {
                        for e in mst_prim(ds, cluster) {
                            out.push((e.a, Neighbor::new(e.b, e.w)));
                            out.push((e.b, Neighbor::new(e.a, e.w)));
                        }
                    }
                    out
                },
            );
            // Union with per-round degree budget: at most
            // `mst_degree_per_round` new edges per vertex per round.
            let budget = params.mst_degree_per_round.max(1) * (round + 1);
            for batch in results {
                for (v, nb) in batch {
                    let l = &mut lists[v as usize];
                    if l.iter().any(|x| x.id == nb.id) {
                        continue;
                    }
                    if l.len() < budget {
                        l.push(nb);
                    }
                }
            }
        }
    });
    for l in &mut lists {
        l.sort_unstable();
    }
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|x| x.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    let forest = telemetry::span("C4 seeds", || {
        KdForest::build(ds, params.n_trees, 32, &mut rng)
    });
    FlatIndex {
        name: "HCNNG",
        graph,
        seeds: SeedStrategy::KdLeaf {
            forest,
            count: params.search_seeds,
        },
        router: Router::Guided,
    }
}

/// Recursive random two-point division: sample two pivots, split the set
/// by which pivot is closer, recurse until `min_cluster`.
fn two_point_divide(
    ds: &Dataset,
    ids: Vec<u32>,
    min_cluster: usize,
    rng: &mut StdRng,
    out: &mut Vec<Vec<u32>>,
) {
    if ids.len() <= min_cluster.max(2) {
        out.push(ids);
        return;
    }
    let a = ids[rng.gen_range(0..ids.len())];
    let mut b = a;
    while b == a {
        b = ids[rng.gen_range(0..ids.len())];
    }
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &p in &ids {
        if ds.dist(p, a) <= ds.dist(p, b) {
            left.push(p);
        } else {
            right.push(p);
        }
    }
    // Degenerate split (duplicated points): fall back to an even cut so
    // recursion always terminates.
    if left.is_empty() || right.is_empty() {
        let mid = ids.len() / 2;
        left = ids[..mid].to_vec();
        right = ids[mid..].to_vec();
    }
    two_point_divide(ds, left, min_cluster, rng, out);
    two_point_divide(ds, right, min_cluster, rng, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::connectivity::weak_components;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 1_500, 5, 3.0, 25).generate()
    }

    #[test]
    fn hcnng_reaches_decent_recall_with_guided_search() {
        let (ds, qs) = dataset();
        let idx = build(&ds, &HcnngParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.8, "recall={r}");
    }

    #[test]
    fn hcnng_is_close_to_one_component() {
        // MSTs connect each cluster; overlapping rounds stitch clusters
        // together (Table 4 reports CC = 1 for HCNNG).
        let (ds, _) = MixtureSpec::table10(8, 800, 4, 3.0, 5).generate();
        let idx = build(&ds, &HcnngParams::tuned(2, 1));
        assert!(weak_components(idx.graph()) <= 3);
    }

    #[test]
    fn two_point_divide_partitions_exactly() {
        let (ds, _) = MixtureSpec::table10(8, 500, 4, 3.0, 5).generate();
        let mut rng = StdRng::seed_from_u64(9);
        let mut clusters = Vec::new();
        two_point_divide(&ds, (0..500).collect(), 32, &mut rng, &mut clusters);
        let mut seen = vec![false; 500];
        for c in &clusters {
            for &id in c {
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn degenerate_duplicate_points_terminate() {
        let ds = Dataset::from_rows(&vec![vec![1.0, 1.0]; 64]);
        let mut rng = StdRng::seed_from_u64(9);
        let mut clusters = Vec::new();
        two_point_divide(&ds, (0..64).collect(), 8, &mut rng, &mut clusters);
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 64);
    }
}
