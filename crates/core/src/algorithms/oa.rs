//! §6 "Improvement" — the survey's optimized algorithm (OA), assembled
//! from the best-performing component implementations:
//!
//! - C1: NN-Descent at moderate quality (H1 — don't over-pay for GQ);
//! - C2: NSSG's 2-hop expansion (fast, no per-point graph search);
//! - C3: NSG's MRNG rule (H2 — diversified, low out-degree);
//! - C4/C6: a fixed entry set spread by farthest-point sampling (no
//!   auxiliary index, L4);
//! - C5: DFS repair (H3 — every vertex reachable);
//! - C7: two-stage routing — guided search to approach cheaply, best-first
//!   to finish precisely (H2 + H3).
//!
//! Figure 11 / Appendix P: OA beats the state of the art on the
//! speedup-recall trade-off while building fast and staying small.

use crate::components::candidates::candidates_by_expansion;
use crate::components::connectivity::dfs_repair;
use crate::components::init::C1Choice;
use crate::components::seeds::{spread_entries, SeedStrategy};
use crate::components::selection::select_rng_alpha;
use crate::index::FlatIndex;
use crate::nndescent::NnDescentParams;
use crate::parallel;
use crate::rnndescent::RnnDescentParams;
use crate::search::Router;
use crate::telemetry;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// OA parameters.
#[derive(Debug, Clone)]
pub struct OaParams {
    /// NN-Descent configuration (the paper settles on 8 iterations,
    /// Appendix L).
    pub nd: NnDescentParams,
    /// Which descent engine actually runs as C1 (defaults to NN-Descent;
    /// see [`OaParams::with_rnn_c1`]).
    pub init: C1Choice,
    /// Candidate cap for the 2-hop expansion.
    pub l: usize,
    /// Maximum out-degree.
    pub r: usize,
    /// Number of fixed random entries.
    pub entries: usize,
    /// Guided first-stage beam fraction of the full beam.
    pub stage1_frac: f32,
}

impl OaParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        OaParams {
            nd: NnDescentParams {
                k: 40,
                l: 60,
                iters: 8,
                sample: 15,
                reverse: 30,
                seed,
                threads,
            },
            init: C1Choice::NnDescent,
            l: 100,
            r: 30,
            entries: 8,
            stage1_frac: 0.4,
        }
    }

    /// Swaps C1 to RNN-Descent, sized to stand in for the configured
    /// NN-Descent ([`RnnDescentParams::matching`]); C2–C7 are untouched.
    pub fn with_rnn_c1(mut self) -> Self {
        self.init = C1Choice::RnnDescent(RnnDescentParams::matching(&self.nd));
        self
    }
}

/// Builds the optimized algorithm's index.
pub fn build(ds: &Dataset, params: &OaParams) -> FlatIndex {
    let init = telemetry::span("C1 init", || params.init.build(ds, &params.nd, None));
    let n = ds.len();
    let threads = parallel::resolve_threads(params.nd.threads);
    let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    telemetry::span("C2+C3 candidates+selection", || {
        parallel::par_fill(
            &mut lists,
            parallel::CHUNK,
            threads,
            || (),
            |_, start, slot| {
                for (j, out) in slot.iter_mut().enumerate() {
                    let p = (start + j) as u32;
                    let cands = candidates_by_expansion(ds, &init, p, params.l);
                    *out = select_rng_alpha(ds, p, &cands, params.r, 1.0);
                }
            },
        );
    });
    let entries = telemetry::span("C4 seeds", || {
        spread_entries(ds, params.entries.max(1), params.nd.seed ^ 0x0A0A)
    });
    telemetry::span("C5 connectivity", || {
        dfs_repair(ds, &mut lists, entries[0], 64);
    });
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|x| x.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    FlatIndex {
        name: "OA",
        graph,
        seeds: SeedStrategy::Fixed(entries),
        router: Router::TwoStage {
            stage1_beam_frac: params.stage1_frac,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::connectivity::reachable_from;
    use weavess_graph::metrics::degree_stats;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 2_000, 5, 3.0, 30).generate()
    }

    #[test]
    fn oa_reaches_high_recall() {
        let (ds, qs) = dataset();
        let idx = build(&ds, &OaParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.9, "recall={r}");
    }

    #[test]
    fn oa_is_reachable_from_its_entries() {
        let (ds, _) = dataset();
        let idx = build(&ds, &OaParams::tuned(4, 1));
        let entry = match &idx.seeds {
            SeedStrategy::Fixed(v) => v[0],
            _ => unreachable!(),
        };
        assert!(reachable_from(idx.graph(), entry).iter().all(|&r| r));
    }

    #[test]
    fn oa_keeps_low_degree_and_small_index() {
        let (ds, _) = dataset();
        let p = OaParams::tuned(4, 1);
        let idx = build(&ds, &p);
        let s = degree_stats(idx.graph());
        // L4: OA's degree stays near NSG's, far below DPG/NSW (Table 21).
        assert!(s.avg <= p.r as f64 + 1.0, "avg={}", s.avg);
        assert_eq!(idx.seeds.memory_bytes(), p.entries * 4);
    }
}
