//! The surveyed algorithms (§3.2's A1–A13, Appendix N's k-DR, and §6's
//! optimized algorithm), each built from the shared components.
//!
//! | module | algorithms | base graph | construction strategy |
//! |--------|-----------|------------|----------------------|
//! | [`kgraph`] | KGraph | KNNG | refinement (NN-Descent) |
//! | [`efanna`] | EFANNA | KNNG | refinement (KD-trees + NN-Descent) |
//! | [`ieh`]    | IEH    | KNNG | brute force + hashing |
//! | [`nsw`]    | NSW    | DG   | increment |
//! | [`hnsw`]   | HNSW   | DG+RNG | increment, hierarchical |
//! | [`ngt`]    | NGT-panng, NGT-onng | KNNG+DG+RNG | increment + degree adjustment |
//! | [`sptag`]  | SPTAG-KDT, SPTAG-BKT | KNNG(+RNG) | divide and conquer |
//! | [`fanng`]  | FANNG  | RNG  | refinement (occlusion rule) |
//! | [`dpg`]    | DPG    | KNNG+RNG | refinement (angular diversification) |
//! | [`nsg`]    | NSG    | KNNG+RNG | refinement (MRNG rule) |
//! | [`nssg`]   | NSSG   | KNNG+RNG | refinement (angle rule) |
//! | [`vamana`] | Vamana | RNG  | refinement (α rule, two passes) |
//! | [`hcnng`]  | HCNNG  | MST  | divide and conquer |
//! | [`kdr`]    | k-DR   | KNNG+RNG | refinement (reachability pruning) |
//! | [`oa`]     | OA     | KNNG+RNG | refinement (§6's best-component mix) |

pub mod dpg;
pub mod efanna;
pub mod fanng;
pub mod hcnng;
pub mod hnsw;
pub mod hnsw_dynamic;
pub mod ieh;
pub mod kdr;
pub mod kgraph;
pub mod ngt;
pub mod nsg;
pub mod nssg;
pub mod nsw;
pub mod oa;
pub mod sptag;
pub mod vamana;

use crate::index::AnnIndex;
use weavess_data::Dataset;

/// Registry of every evaluated algorithm — the bench harness's handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// KGraph (A6).
    KGraph,
    /// NGT-panng (A4).
    NgtPanng,
    /// NGT-onng (A4, optimized version).
    NgtOnng,
    /// SPTAG-KDT (A5, original version).
    SptagKdt,
    /// SPTAG-BKT (A5, optimized version).
    SptagBkt,
    /// NSW (A1).
    Nsw,
    /// IEH (A8).
    Ieh,
    /// FANNG (A3).
    Fanng,
    /// HNSW (A2).
    Hnsw,
    /// EFANNA (A7).
    Efanna,
    /// DPG (A9).
    Dpg,
    /// NSG (A10).
    Nsg,
    /// HCNNG (A13).
    Hcnng,
    /// Vamana (A12).
    Vamana,
    /// NSSG (A11).
    Nssg,
    /// k-DR (Appendix N).
    Kdr,
    /// The optimized algorithm (§6 "Improvement").
    Oa,
}

impl Algo {
    /// Every algorithm, in the paper's Table 4 row order (k-DR and OA
    /// appended).
    pub fn all() -> &'static [Algo] {
        &[
            Algo::KGraph,
            Algo::NgtPanng,
            Algo::NgtOnng,
            Algo::SptagKdt,
            Algo::SptagBkt,
            Algo::Nsw,
            Algo::Ieh,
            Algo::Fanng,
            Algo::Hnsw,
            Algo::Efanna,
            Algo::Dpg,
            Algo::Nsg,
            Algo::Hcnng,
            Algo::Vamana,
            Algo::Nssg,
            Algo::Kdr,
            Algo::Oa,
        ]
    }

    /// The paper's 13 core algorithms (one representative NGT and SPTAG
    /// variant each would make 13; both variants are kept for Table 4
    /// fidelity).
    pub fn core_thirteen() -> &'static [Algo] {
        &[
            Algo::KGraph,
            Algo::NgtPanng,
            Algo::SptagKdt,
            Algo::Nsw,
            Algo::Ieh,
            Algo::Fanng,
            Algo::Hnsw,
            Algo::Efanna,
            Algo::Dpg,
            Algo::Nsg,
            Algo::Hcnng,
            Algo::Vamana,
            Algo::Nssg,
        ]
    }

    /// Name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::KGraph => "KGraph",
            Algo::NgtPanng => "NGT-panng",
            Algo::NgtOnng => "NGT-onng",
            Algo::SptagKdt => "SPTAG-KDT",
            Algo::SptagBkt => "SPTAG-BKT",
            Algo::Nsw => "NSW",
            Algo::Ieh => "IEH",
            Algo::Fanng => "FANNG",
            Algo::Hnsw => "HNSW",
            Algo::Efanna => "EFANNA",
            Algo::Dpg => "DPG",
            Algo::Nsg => "NSG",
            Algo::Hcnng => "HCNNG",
            Algo::Vamana => "Vamana",
            Algo::Nssg => "NSSG",
            Algo::Kdr => "k-DR",
            Algo::Oa => "OA",
        }
    }

    /// Base graph(s) the algorithm approximates (Table 2's second column).
    pub fn base_graph(&self) -> &'static str {
        match self {
            Algo::KGraph | Algo::Ieh | Algo::Efanna => "KNNG",
            Algo::NgtPanng | Algo::NgtOnng => "KNNG+DG+RNG",
            Algo::SptagKdt => "KNNG",
            Algo::SptagBkt => "KNNG+RNG",
            Algo::Nsw => "DG",
            Algo::Fanng | Algo::Vamana => "RNG",
            Algo::Hnsw => "DG+RNG",
            Algo::Dpg | Algo::Nsg | Algo::Nssg | Algo::Kdr | Algo::Oa => "KNNG+RNG",
            Algo::Hcnng => "MST",
        }
    }

    /// Construction strategy (Table 9 / Appendix E).
    pub fn construction_strategy(&self) -> &'static str {
        match self {
            Algo::Nsw | Algo::Hnsw | Algo::NgtPanng | Algo::NgtOnng => "increment",
            Algo::SptagKdt | Algo::SptagBkt | Algo::Hcnng => "divide-and-conquer",
            _ => "refinement",
        }
    }

    /// Edge type of the final graph (Table 2's third column).
    pub fn edge_type(&self) -> &'static str {
        match self {
            Algo::Nsw | Algo::Dpg | Algo::Kdr => "undirected",
            _ => "directed",
        }
    }

    /// Routing strategy family used at search time (Table 9's last column).
    pub fn routing(&self) -> &'static str {
        match self {
            Algo::NgtPanng | Algo::NgtOnng | Algo::Kdr => "range search",
            Algo::Fanng => "backtracking",
            Algo::Hcnng => "guided search",
            Algo::Oa => "two-stage (guided + best-first)",
            _ => "best-first search",
        }
    }

    /// Builds this algorithm's index with reasonable default parameters
    /// (tuned at the scale of the harness's datasets), `threads`
    /// construction threads, and `seed` for every randomized part.
    pub fn build(&self, ds: &Dataset, threads: usize, seed: u64) -> Box<dyn AnnIndex> {
        match self {
            Algo::KGraph => Box::new(kgraph::build(
                ds,
                &kgraph::KGraphParams::tuned(threads, seed),
            )),
            Algo::NgtPanng => Box::new(ngt::build(ds, &ngt::NgtParams::panng(threads, seed))),
            Algo::NgtOnng => Box::new(ngt::build(ds, &ngt::NgtParams::onng(threads, seed))),
            Algo::SptagKdt => Box::new(sptag::build(ds, &sptag::SptagParams::kdt(threads, seed))),
            Algo::SptagBkt => Box::new(sptag::build(ds, &sptag::SptagParams::bkt(threads, seed))),
            Algo::Nsw => Box::new(nsw::build(ds, &nsw::NswParams::tuned(threads, seed))),
            Algo::Ieh => Box::new(ieh::build(ds, &ieh::IehParams::tuned(threads, seed))),
            Algo::Fanng => Box::new(fanng::build(ds, &fanng::FanngParams::tuned(threads, seed))),
            Algo::Hnsw => Box::new(hnsw::build(ds, &hnsw::HnswParams::tuned(threads, seed))),
            Algo::Efanna => Box::new(efanna::build(
                ds,
                &efanna::EfannaParams::tuned(threads, seed),
            )),
            Algo::Dpg => Box::new(dpg::build(ds, &dpg::DpgParams::tuned(threads, seed))),
            Algo::Nsg => Box::new(nsg::build(ds, &nsg::NsgParams::tuned(threads, seed))),
            Algo::Hcnng => Box::new(hcnng::build(ds, &hcnng::HcnngParams::tuned(threads, seed))),
            Algo::Vamana => Box::new(vamana::build(
                ds,
                &vamana::VamanaParams::tuned(threads, seed),
            )),
            Algo::Nssg => Box::new(nssg::build(ds, &nssg::NssgParams::tuned(threads, seed))),
            Algo::Kdr => Box::new(kdr::build(ds, &kdr::KdrParams::tuned(threads, seed))),
            Algo::Oa => Box::new(oa::build(ds, &oa::OaParams::tuned(threads, seed))),
        }
    }
}
