//! A2 — HNSW (Hierarchical Navigable Small World): the survey's only
//! multi-layer index, hence its own [`AnnIndex`] implementation.
//!
//! Points draw a geometric level; upper layers are sparse navigation maps,
//! layer 0 holds everyone. Inserts greedily descend to the target level,
//! then run a beam search per layer and keep `M` neighbors by the RNG
//! heuristic (≡ NSG's MRNG, Appendix A). Search enters at the fixed top
//! vertex (its C4 is "top layer"), descends greedily, and beams on
//! layer 0. The hierarchy costs memory (Figure 6's HNSW bar) — the
//! flat-vs-hierarchy trade §3.2 discusses.
//!
//! Construction is the *Increment* strategy parallelized with
//! deterministic batch insertion (ParlayANN's scheme): points join in
//! prefix-doubling batches; within a batch every point searches the
//! *frozen* graph of all prior batches in parallel, then edges are
//! committed sequentially in point-id order. The built graph is therefore
//! bit-identical for any [`HnswParams::threads`].

use crate::components::selection::select_rng_alpha;
use crate::index::{AnnIndex, SearchContext};
use crate::parallel;
use crate::search::{beam_search, beam_search_traced, SearchScratch, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// HNSW parameters (`M`, `M0`, `ef_construction`).
#[derive(Debug, Clone)]
pub struct HnswParams {
    /// Max neighbors per vertex on upper layers (`M`).
    pub m: usize,
    /// Max neighbors on layer 0 (`M0`, conventionally `2M`).
    pub m0: usize,
    /// Insertion-time beam width.
    pub ef_construction: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
    /// Construction threads (0 = one per available core). The built graph
    /// is identical for every value.
    pub threads: usize,
}

impl HnswParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        HnswParams {
            m: 16,
            m0: 32,
            ef_construction: 60,
            seed,
            threads,
        }
    }
}

/// A built HNSW index: one frozen graph per layer.
pub struct HnswIndex {
    /// `layers[0]` is the full bottom layer; upper layers cover subsets
    /// (absent vertices have empty neighbor lists).
    layers: Vec<CsrGraph>,
    /// Fixed entry vertex (a top-layer member).
    enter: u32,
}

impl HnswIndex {
    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The fixed entry point.
    pub fn enter_point(&self) -> u32 {
        self.enter
    }

    /// The frozen graph of one layer (0 = bottom).
    pub fn layer(&self, l: usize) -> &CsrGraph {
        &self.layers[l]
    }

    /// Reassembles an index from frozen layers (persistence).
    ///
    /// # Panics
    /// Panics when `layers` is empty or layer vertex counts disagree.
    pub fn from_parts(layers: Vec<CsrGraph>, enter: u32) -> Self {
        assert!(!layers.is_empty(), "need at least the bottom layer");
        let n = layers[0].len();
        assert!(layers.iter().all(|l| l.len() == n), "layer size mismatch");
        assert!((enter as usize) < n, "enter point out of range");
        HnswIndex { layers, enter }
    }
}

/// Builds an HNSW index.
pub fn build(ds: &Dataset, params: &HnswParams) -> HnswIndex {
    let levels = crate::telemetry::span("C1 init", || {
        draw_levels(ds.len(), params, &mut StdRng::seed_from_u64(params.seed))
    });
    let (layers, enter, _) =
        crate::telemetry::span("C2+C3 insertion", || build_layers(ds, &levels, params));
    crate::telemetry::span("freeze", || HnswIndex {
        layers: layers
            .into_iter()
            .map(|l| CsrGraph::from_lists(&l))
            .collect(),
        enter,
    })
}

/// Draws `n` geometric levels from `rng` — one `gen_range` per point, so
/// the stream position after the draw equals `n` single inserts' worth
/// (what lets [`super::hnsw_dynamic::DynamicHnsw::bulk_load`] continue the
/// same stream for later incremental inserts).
pub(crate) fn draw_levels(n: usize, params: &HnswParams, rng: &mut StdRng) -> Vec<usize> {
    let ml = 1.0 / (params.m.max(2) as f64).ln();
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            (-u.ln() * ml).floor() as usize
        })
        .collect()
}

/// Work-unit size for the parallel search phase: small, because one unit
/// is `SEARCH_CHUNK` beam searches.
const SEARCH_CHUNK: usize = 32;

/// The deterministic batch-insert core, shared with the dynamic index:
/// returns `(layers, enter, enter_level)` as mutable adjacency.
///
/// Each prefix-doubling batch runs two phases. The **search phase** is
/// parallel and pure: every batch point descends and beam-searches the
/// frozen graph of all prior batches, producing its per-layer selected
/// neighbors. The **commit phase** is sequential in point-id order: edges
/// (and reverse-list shrinks) are applied, then the entry point advances
/// to the first point of the batch that raised the top level. No step
/// depends on the thread count, so the graph is bit-identical at 1/2/N
/// threads.
pub(crate) fn build_layers(
    ds: &Dataset,
    levels: &[usize],
    params: &HnswParams,
) -> (Vec<Vec<Vec<u32>>>, u32, usize) {
    let n = ds.len();
    let top = levels.iter().copied().max().unwrap_or(0);
    let mut layers: Vec<Vec<Vec<u32>>> = (0..=top).map(|_| vec![Vec::new(); n]).collect();
    let mut enter: u32 = 0;
    let mut enter_level: usize = levels.first().copied().unwrap_or(0);
    let threads = parallel::resolve_threads(params.threads);
    let max_batch = (n / 8).max(64);
    let build_ndc = std::sync::atomic::AtomicU64::new(0);

    for batch in parallel::prefix_doubling(n, max_batch) {
        // Search phase: per-point selected neighbors per layer, computed
        // against the frozen `layers` — parallel, in fixed chunks.
        let selected: Vec<Vec<(usize, Vec<Neighbor>)>> = parallel::par_chunks_map(
            batch.len(),
            SEARCH_CHUNK,
            threads,
            || (SearchScratch::new(n), SearchStats::default()),
            |(scratch, stats), range| {
                let before = stats.ndc;
                let out = range
                    .map(|i| {
                        let p = (batch.start + i) as u32;
                        search_one(
                            ds,
                            &layers,
                            levels,
                            enter,
                            enter_level,
                            params,
                            p,
                            scratch,
                            stats,
                        )
                    })
                    .collect::<Vec<_>>();
                build_ndc.fetch_add(stats.ndc - before, std::sync::atomic::Ordering::Relaxed);
                out
            },
        )
        .into_iter()
        .flatten()
        .collect();

        // Commit phase: sequential, in point-id order.
        for (i, per_layer) in selected.into_iter().enumerate() {
            let p = (batch.start + i) as u32;
            commit_one(ds, &mut layers, params, p, &per_layer);
            let lp = levels[p as usize];
            if lp > enter_level {
                enter = p;
                enter_level = lp;
            }
        }
    }
    crate::telemetry::add_span_ndc(build_ndc.load(std::sync::atomic::Ordering::Relaxed));
    (layers, enter, enter_level)
}

/// The pure (read-only) half of one insertion: greedy descent above the
/// point's level, then per-layer beam search + RNG selection against the
/// frozen graph. Returns `(layer, selected)` pairs, top layer first.
#[allow(clippy::too_many_arguments)]
fn search_one(
    ds: &Dataset,
    layers: &[Vec<Vec<u32>>],
    levels: &[usize],
    enter: u32,
    enter_level: usize,
    params: &HnswParams,
    p: u32,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) -> Vec<(usize, Vec<Neighbor>)> {
    let lp = levels[p as usize];
    let mut ep = enter;
    for l in ((lp + 1)..=enter_level).rev() {
        ep = greedy_closest(ds, &layers[l], ds.point(p), ep, stats);
    }
    let mut out = Vec::with_capacity(lp.min(enter_level) + 1);
    for l in (0..=lp.min(enter_level)).rev() {
        scratch.next_epoch();
        let pool = beam_search(
            ds,
            layers[l].as_slice(),
            ds.point(p),
            &[ep],
            params.ef_construction,
            scratch,
            stats,
        );
        let sel = select_rng_alpha(ds, p, &pool, params.m, 1.0);
        ep = sel.first().map(|s| s.id).unwrap_or(ep);
        out.push((l, sel));
    }
    out
}

/// The mutating half of one insertion: push bidirectional edges and
/// shrink over-full reverse lists with the same RNG heuristic.
fn commit_one(
    ds: &Dataset,
    layers: &mut [Vec<Vec<u32>>],
    params: &HnswParams,
    p: u32,
    per_layer: &[(usize, Vec<Neighbor>)],
) {
    for (l, selected) in per_layer {
        let l = *l;
        let max_deg = if l == 0 { params.m0 } else { params.m };
        for s in selected {
            layers[l][p as usize].push(s.id);
            layers[l][s.id as usize].push(p);
            if layers[l][s.id as usize].len() > max_deg {
                let cands: Vec<Neighbor> = {
                    let mut c: Vec<Neighbor> = layers[l][s.id as usize]
                        .iter()
                        .map(|&u| Neighbor::new(u, ds.dist(s.id, u)))
                        .collect();
                    c.sort_unstable();
                    c
                };
                layers[l][s.id as usize] = select_rng_alpha(ds, s.id, &cands, max_deg, 1.0)
                    .iter()
                    .map(|x| x.id)
                    .collect();
            }
        }
    }
}

/// One-at-a-time greedy descent on a single layer (HNSW's upper-layer
/// `ef = 1` search).
fn greedy_closest(
    ds: &Dataset,
    layer: &[Vec<u32>],
    query: &[f32],
    start: u32,
    stats: &mut SearchStats,
) -> u32 {
    let mut cur = start;
    let mut cur_d = ds.dist_to(query, cur);
    stats.ndc += 1;
    loop {
        let mut improved = false;
        for &u in &layer[cur as usize] {
            stats.ndc += 1;
            let d = ds.dist_to(query, u);
            if d < cur_d {
                cur = u;
                cur_d = d;
                improved = true;
            }
        }
        if !improved {
            return cur;
        }
        stats.hops += 1;
    }
}

impl AnnIndex for HnswIndex {
    fn name(&self) -> &'static str {
        "HNSW"
    }

    fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
    ) -> Vec<Neighbor> {
        let mut ep = self.enter;
        for l in (1..self.layers.len()).rev() {
            ep = greedy_closest_csr(ds, &self.layers[l], query, ep, &mut ctx.stats);
        }
        ctx.scratch.next_epoch();
        let mut pool = beam_search(
            ds,
            &self.layers[0],
            query,
            &[ep],
            beam.max(k),
            &mut ctx.scratch,
            &mut ctx.stats,
        );
        pool.truncate(k);
        pool
    }

    /// Traced variant: the upper-layer greedy descent is untraced (its
    /// `ef = 1` walk has no candidate pool); the tracer observes the
    /// layer-0 beam search, whose entry point is reported as the seed.
    fn search_traced(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
        mut tracer: &mut dyn crate::telemetry::RouteTracer,
    ) -> Vec<Neighbor> {
        let mut ep = self.enter;
        for l in (1..self.layers.len()).rev() {
            ep = greedy_closest_csr(ds, &self.layers[l], query, ep, &mut ctx.stats);
        }
        ctx.scratch.next_epoch();
        let mut pool = beam_search_traced(
            ds,
            &self.layers[0],
            query,
            &[ep],
            beam.max(k),
            &mut ctx.scratch,
            &mut ctx.stats,
            &mut tracer,
        );
        pool.truncate(k);
        pool
    }

    fn graph(&self) -> &CsrGraph {
        &self.layers[0]
    }

    fn memory_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.memory_bytes()).sum()
    }
}

fn greedy_closest_csr(
    ds: &Dataset,
    layer: &CsrGraph,
    query: &[f32],
    start: u32,
    stats: &mut SearchStats,
) -> u32 {
    let mut cur = start;
    let mut cur_d = ds.dist_to(query, cur);
    stats.ndc += 1;
    loop {
        let mut improved = false;
        for &u in layer.neighbors(cur) {
            stats.ndc += 1;
            let d = ds.dist_to(query, u);
            if d < cur_d {
                cur = u;
                cur_d = d;
                improved = true;
            }
        }
        if !improved {
            return cur;
        }
        stats.hops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::metrics::degree_stats;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 2_000, 5, 3.0, 30).generate()
    }

    #[test]
    fn hnsw_reaches_high_recall_from_fixed_entry() {
        let (ds, qs) = dataset();
        let idx = build(&ds, &HnswParams::tuned(2, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.9, "recall={r}");
    }

    #[test]
    fn hierarchy_exists_and_layer0_degree_is_bounded() {
        let (ds, _) = dataset();
        let p = HnswParams::tuned(2, 1);
        let idx = build(&ds, &p);
        assert!(idx.num_layers() >= 2, "no hierarchy formed");
        assert!(degree_stats(idx.graph()).max <= p.m0);
    }

    #[test]
    fn upper_layers_are_sparser() {
        let (ds, _) = dataset();
        let idx = build(&ds, &HnswParams::tuned(2, 1));
        for l in 1..idx.num_layers() {
            assert!(
                idx.layers[l].num_edges() < idx.layers[l - 1].num_edges(),
                "layer {l} not sparser"
            );
        }
    }

    #[test]
    fn level_assignment_is_roughly_geometric() {
        // With ml = 1/ln(M), P(level >= 1) = 1/M; on 2 000 points with
        // M = 16 expect ~125 upper-layer members, well within [40, 320].
        let (ds, _) = dataset();
        let idx = build(&ds, &HnswParams::tuned(2, 7));
        let upper: usize = (0..ds.len() as u32)
            .filter(|&v| !idx.layers[1].neighbors(v).is_empty())
            .count();
        assert!(
            (40..=320).contains(&upper),
            "upper-layer members {upper} outside geometric expectation"
        );
    }

    #[test]
    fn memory_exceeds_bottom_layer_alone() {
        let (ds, _) = dataset();
        let idx = build(&ds, &HnswParams::tuned(2, 1));
        assert!(idx.memory_bytes() > idx.graph().memory_bytes());
    }
}
