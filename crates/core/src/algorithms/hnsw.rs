//! A2 — HNSW (Hierarchical Navigable Small World): the survey's only
//! multi-layer index, hence its own [`AnnIndex`] implementation.
//!
//! Points draw a geometric level; upper layers are sparse navigation maps,
//! layer 0 holds everyone. Inserts greedily descend to the target level,
//! then run a beam search per layer and keep `M` neighbors by the RNG
//! heuristic (≡ NSG's MRNG, Appendix A). Search enters at the fixed top
//! vertex (its C4 is "top layer"), descends greedily, and beams on
//! layer 0. The hierarchy costs memory (Figure 6's HNSW bar) — the
//! flat-vs-hierarchy trade §3.2 discusses.

use crate::components::selection::select_rng_alpha;
use crate::index::{AnnIndex, SearchContext};
use crate::search::{beam_search, SearchScratch, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// HNSW parameters (`M`, `M0`, `ef_construction`).
#[derive(Debug, Clone)]
pub struct HnswParams {
    /// Max neighbors per vertex on upper layers (`M`).
    pub m: usize,
    /// Max neighbors on layer 0 (`M0`, conventionally `2M`).
    pub m0: usize,
    /// Insertion-time beam width.
    pub ef_construction: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
}

impl HnswParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(seed: u64) -> Self {
        HnswParams {
            m: 16,
            m0: 32,
            ef_construction: 60,
            seed,
        }
    }
}

/// A built HNSW index: one frozen graph per layer.
pub struct HnswIndex {
    /// `layers[0]` is the full bottom layer; upper layers cover subsets
    /// (absent vertices have empty neighbor lists).
    layers: Vec<CsrGraph>,
    /// Fixed entry vertex (a top-layer member).
    enter: u32,
}

impl HnswIndex {
    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The fixed entry point.
    pub fn enter_point(&self) -> u32 {
        self.enter
    }

    /// The frozen graph of one layer (0 = bottom).
    pub fn layer(&self, l: usize) -> &CsrGraph {
        &self.layers[l]
    }

    /// Reassembles an index from frozen layers (persistence).
    ///
    /// # Panics
    /// Panics when `layers` is empty or layer vertex counts disagree.
    pub fn from_parts(layers: Vec<CsrGraph>, enter: u32) -> Self {
        assert!(!layers.is_empty(), "need at least the bottom layer");
        let n = layers[0].len();
        assert!(layers.iter().all(|l| l.len() == n), "layer size mismatch");
        assert!((enter as usize) < n, "enter point out of range");
        HnswIndex { layers, enter }
    }
}

/// Builds an HNSW index.
pub fn build(ds: &Dataset, params: &HnswParams) -> HnswIndex {
    let n = ds.len();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let ml = 1.0 / (params.m.max(2) as f64).ln();
    // Level per point.
    let levels: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            (-u.ln() * ml).floor() as usize
        })
        .collect();
    let top = levels.iter().copied().max().unwrap_or(0);
    // Mutable adjacency per layer.
    let mut layers: Vec<Vec<Vec<u32>>> = (0..=top).map(|_| vec![Vec::new(); n]).collect();
    let mut enter: u32 = 0;
    let mut enter_level: usize = levels[0];
    let mut scratch = SearchScratch::new(n);
    let mut stats = SearchStats::default();

    for p in 1..n as u32 {
        let lp = levels[p as usize];
        let mut ep = enter;
        // Greedy descent through layers above lp.
        for l in ((lp + 1)..=enter_level).rev() {
            ep = greedy_closest(ds, &layers[l], ds.point(p), ep, &mut stats);
        }
        // Beam insert on layers lp..=0.
        for l in (0..=lp.min(enter_level)).rev() {
            scratch.next_epoch();
            let pool = beam_search(
                ds,
                &layers[l],
                ds.point(p),
                &[ep],
                params.ef_construction,
                &mut scratch,
                &mut stats,
            );
            let max_deg = if l == 0 { params.m0 } else { params.m };
            let selected = select_rng_alpha(ds, p, &pool, params.m, 1.0);
            for s in &selected {
                layers[l][p as usize].push(s.id);
                layers[l][s.id as usize].push(p);
                // Shrink over-full reverse lists with the same heuristic.
                if layers[l][s.id as usize].len() > max_deg {
                    let cands: Vec<Neighbor> = {
                        let mut c: Vec<Neighbor> = layers[l][s.id as usize]
                            .iter()
                            .map(|&u| Neighbor::new(u, ds.dist(s.id, u)))
                            .collect();
                        c.sort_unstable();
                        c
                    };
                    layers[l][s.id as usize] = select_rng_alpha(ds, s.id, &cands, max_deg, 1.0)
                        .iter()
                        .map(|x| x.id)
                        .collect();
                }
            }
            ep = selected.first().map(|s| s.id).unwrap_or(ep);
        }
        if lp > enter_level {
            enter = p;
            enter_level = lp;
        }
    }

    HnswIndex {
        layers: layers
            .into_iter()
            .map(|l| CsrGraph::from_lists(&l))
            .collect(),
        enter,
    }
}

/// One-at-a-time greedy descent on a single layer (HNSW's upper-layer
/// `ef = 1` search).
fn greedy_closest(
    ds: &Dataset,
    layer: &[Vec<u32>],
    query: &[f32],
    start: u32,
    stats: &mut SearchStats,
) -> u32 {
    let mut cur = start;
    let mut cur_d = ds.dist_to(query, cur);
    stats.ndc += 1;
    loop {
        let mut improved = false;
        for &u in &layer[cur as usize] {
            stats.ndc += 1;
            let d = ds.dist_to(query, u);
            if d < cur_d {
                cur = u;
                cur_d = d;
                improved = true;
            }
        }
        if !improved {
            return cur;
        }
        stats.hops += 1;
    }
}

impl AnnIndex for HnswIndex {
    fn name(&self) -> &'static str {
        "HNSW"
    }

    fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
    ) -> Vec<Neighbor> {
        let mut ep = self.enter;
        for l in (1..self.layers.len()).rev() {
            ep = greedy_closest_csr(ds, &self.layers[l], query, ep, &mut ctx.stats);
        }
        ctx.scratch.next_epoch();
        let mut pool = beam_search(
            ds,
            &self.layers[0],
            query,
            &[ep],
            beam.max(k),
            &mut ctx.scratch,
            &mut ctx.stats,
        );
        pool.truncate(k);
        pool
    }

    fn graph(&self) -> &CsrGraph {
        &self.layers[0]
    }

    fn memory_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.memory_bytes()).sum()
    }
}

fn greedy_closest_csr(
    ds: &Dataset,
    layer: &CsrGraph,
    query: &[f32],
    start: u32,
    stats: &mut SearchStats,
) -> u32 {
    let mut cur = start;
    let mut cur_d = ds.dist_to(query, cur);
    stats.ndc += 1;
    loop {
        let mut improved = false;
        for &u in layer.neighbors(cur) {
            stats.ndc += 1;
            let d = ds.dist_to(query, u);
            if d < cur_d {
                cur = u;
                cur_d = d;
                improved = true;
            }
        }
        if !improved {
            return cur;
        }
        stats.hops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::metrics::degree_stats;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 2_000, 5, 3.0, 30).generate()
    }

    #[test]
    fn hnsw_reaches_high_recall_from_fixed_entry() {
        let (ds, qs) = dataset();
        let idx = build(&ds, &HnswParams::tuned(1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.9, "recall={r}");
    }

    #[test]
    fn hierarchy_exists_and_layer0_degree_is_bounded() {
        let (ds, _) = dataset();
        let p = HnswParams::tuned(1);
        let idx = build(&ds, &p);
        assert!(idx.num_layers() >= 2, "no hierarchy formed");
        assert!(degree_stats(idx.graph()).max <= p.m0);
    }

    #[test]
    fn upper_layers_are_sparser() {
        let (ds, _) = dataset();
        let idx = build(&ds, &HnswParams::tuned(1));
        for l in 1..idx.num_layers() {
            assert!(
                idx.layers[l].num_edges() < idx.layers[l - 1].num_edges(),
                "layer {l} not sparser"
            );
        }
    }

    #[test]
    fn level_assignment_is_roughly_geometric() {
        // With ml = 1/ln(M), P(level >= 1) = 1/M; on 2 000 points with
        // M = 16 expect ~125 upper-layer members, well within [40, 320].
        let (ds, _) = dataset();
        let idx = build(&ds, &HnswParams::tuned(7));
        let upper: usize = (0..ds.len() as u32)
            .filter(|&v| !idx.layers[1].neighbors(v).is_empty())
            .count();
        assert!(
            (40..=320).contains(&upper),
            "upper-layer members {upper} outside geometric expectation"
        );
    }

    #[test]
    fn memory_exceeds_bottom_layer_alone() {
        let (ds, _) = dataset();
        let idx = build(&ds, &HnswParams::tuned(1));
        assert!(idx.memory_bytes() > idx.graph().memory_bytes());
    }
}
