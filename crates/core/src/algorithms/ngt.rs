//! A4 — NGT (Neighborhood Graph and Tree), both evaluated variants:
//!
//! - **NGT-panng**: incremental ANNG construction (NSW-like, but range
//!   search acquires candidates), then *path adjustment* — remove an edge
//!   `p→n` when a two-edge detour `p→x→n` exists whose longest leg is
//!   shorter (an RNG approximation, Appendix B).
//! - **NGT-onng**: ANNG, then out-degree/in-degree adjustment, then path
//!   adjustment.
//!
//! Seeds come from a VP-tree (C4/C6), routing is range search with ε (C7).

use crate::components::seeds::SeedStrategy;
use crate::index::FlatIndex;
use crate::search::{range_search, Router, SearchScratch, SearchStats};
use crate::telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;
use weavess_trees::VpTree;

/// Which NGT variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NgtVariant {
    /// ANNG + path adjustment.
    Panng,
    /// ANNG + degree adjustment + path adjustment.
    Onng,
}

/// NGT parameters.
#[derive(Debug, Clone)]
pub struct NgtParams {
    /// Variant.
    pub variant: NgtVariant,
    /// Bidirectional edge bound per insert on the ANNG (`K`).
    pub k: usize,
    /// Post-adjustment out-degree bound (`R`).
    pub r: usize,
    /// ANNG insertion search beam.
    pub ef_construction: usize,
    /// Construction/search ε for range search.
    pub epsilon: f32,
    /// Out-edges extracted by onng's out-degree adjustment.
    pub out_edges: usize,
    /// Incoming edges guaranteed by onng's in-degree adjustment.
    pub in_edges: usize,
    /// Seeds per query from the VP-tree.
    pub search_seeds: usize,
    /// VP-tree distance budget per query.
    pub seed_checks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl NgtParams {
    /// NGT-panng defaults.
    pub fn panng(_threads: usize, seed: u64) -> Self {
        NgtParams {
            variant: NgtVariant::Panng,
            k: 20,
            r: 40,
            ef_construction: 40,
            epsilon: 0.1,
            out_edges: 10,
            in_edges: 60,
            search_seeds: 4,
            seed_checks: 96,
            seed,
        }
    }

    /// NGT-onng defaults.
    pub fn onng(_threads: usize, seed: u64) -> Self {
        NgtParams {
            variant: NgtVariant::Onng,
            ..NgtParams::panng(0, seed)
        }
    }
}

/// Builds an NGT index (variant per `params.variant`).
pub fn build(ds: &Dataset, params: &NgtParams) -> FlatIndex {
    let n = ds.len();
    let mut rng = StdRng::seed_from_u64(params.seed);
    // --- ANNG: incremental undirected construction via range search. ---
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    telemetry::span("C1 init", || {
        let mut scratch = SearchScratch::new(n);
        let mut stats = SearchStats::default();
        for p in 1..n as u32 {
            let seeds: Vec<u32> = (0..4usize.min(p as usize))
                .map(|_| rng.gen_range(0..p))
                .collect();
            scratch.next_epoch();
            let inserted = &adj[..p as usize];
            let pool = range_search(
                ds,
                inserted,
                ds.point(p),
                &seeds,
                params.ef_construction,
                params.epsilon,
                &mut scratch,
                &mut stats,
            );
            let picks: Vec<u32> = pool.iter().take(params.k).map(|c| c.id).collect();
            for id in picks {
                adj[p as usize].push(id);
                adj[id as usize].push(p);
            }
        }
        telemetry::add_span_ndc(stats.ndc);
    });

    // --- onng only: out/in-degree adjustment. ---
    let mut adj = if params.variant == NgtVariant::Onng {
        telemetry::span("C3 degree adjust", || {
            degree_adjust(ds, &adj, params.out_edges, params.in_edges)
        })
    } else {
        adj
    };

    // --- Path adjustment down to degree R. ---
    telemetry::span("C3 path adjust", || path_adjust(ds, &mut adj, params.r));

    let graph = telemetry::span("freeze", || CsrGraph::from_lists(&adj));
    let tree = telemetry::span("C4 seeds", || VpTree::build(ds, 16));
    FlatIndex {
        name: match params.variant {
            NgtVariant::Panng => "NGT-panng",
            NgtVariant::Onng => "NGT-onng",
        },
        graph,
        seeds: SeedStrategy::Vp {
            tree,
            count: params.search_seeds,
            checks: params.seed_checks,
        },
        router: Router::Range {
            epsilon: params.epsilon,
        },
    }
}

/// onng's degree adjustment: keep each vertex's `out_edges` shortest
/// out-edges, then append reverse edges until each vertex has at least
/// `in_edges` incoming edges (shortest donors first).
fn degree_adjust(
    ds: &Dataset,
    adj: &[Vec<u32>],
    out_edges: usize,
    in_edges: usize,
) -> Vec<Vec<u32>> {
    let n = adj.len();
    // Sort each vertex's neighbors by distance, keep the best out_edges.
    let mut out: Vec<Vec<Neighbor>> = adj
        .iter()
        .enumerate()
        .map(|(v, l)| {
            let mut ns: Vec<Neighbor> = l
                .iter()
                .map(|&u| Neighbor::new(u, ds.dist(v as u32, u)))
                .collect();
            ns.sort_unstable();
            ns.dedup();
            ns.truncate(out_edges);
            ns
        })
        .collect();
    // In-degree repair: for each vertex short on incoming edges, add edges
    // from its nearest known contacts (its former neighbors).
    let mut indeg = vec![0usize; n];
    for l in &out {
        for x in l {
            indeg[x.id as usize] += 1;
        }
    }
    for v in 0..n as u32 {
        if indeg[v as usize] >= in_edges {
            continue;
        }
        let mut donors: Vec<Neighbor> = adj[v as usize]
            .iter()
            .map(|&u| Neighbor::new(u, ds.dist(v, u)))
            .collect();
        donors.sort_unstable();
        donors.dedup();
        for d in donors {
            if indeg[v as usize] >= in_edges {
                break;
            }
            let l = &mut out[d.id as usize];
            if !l.iter().any(|x| x.id == v) {
                l.push(Neighbor::new(v, d.dist));
                indeg[v as usize] += 1;
            }
        }
    }
    out.into_iter()
        .map(|l| l.iter().map(|x| x.id).collect())
        .collect()
}

/// Path adjustment (Appendix B): visit each vertex's neighbors nearest
/// first; drop `n` when some already-kept `x` has an edge to `n` and
/// `max(δ(p,x), δ(x,n)) < δ(p,n)`. Finally truncate to `r`.
fn path_adjust(ds: &Dataset, adj: &mut [Vec<u32>], r: usize) {
    let n = adj.len();
    // Snapshot for alternative-path lookups (adjustment order shouldn't
    // cascade within one pass).
    let snapshot: Vec<Vec<u32>> = adj.to_vec();
    for p in 0..n as u32 {
        let mut ns: Vec<Neighbor> = snapshot[p as usize]
            .iter()
            .map(|&u| Neighbor::new(u, ds.dist(p, u)))
            .collect();
        ns.sort_unstable();
        ns.dedup();
        let mut kept: Vec<Neighbor> = Vec::new();
        for m in ns {
            let redundant = kept.iter().any(|x| {
                x.dist < m.dist
                    && snapshot[x.id as usize].contains(&m.id)
                    && ds.dist(x.id, m.id) < m.dist
            });
            if !redundant {
                kept.push(m);
                if kept.len() >= r {
                    break;
                }
            }
        }
        adj[p as usize] = kept.iter().map(|x| x.id).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::metrics::degree_stats;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 1_500, 5, 3.0, 25).generate()
    }

    fn run(variant: NgtVariant) -> f64 {
        let (ds, qs) = dataset();
        let params = match variant {
            NgtVariant::Panng => NgtParams::panng(4, 1),
            NgtVariant::Onng => NgtParams::onng(4, 1),
        };
        let idx = build(&ds, &params);
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 60, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        total / qs.len() as f64
    }

    #[test]
    fn panng_reaches_decent_recall() {
        let r = run(NgtVariant::Panng);
        assert!(r > 0.8, "recall={r}");
    }

    #[test]
    fn onng_reaches_decent_recall() {
        let r = run(NgtVariant::Onng);
        assert!(r > 0.75, "recall={r}");
    }

    #[test]
    fn path_adjustment_lowers_degree() {
        let (ds, _) = MixtureSpec::table10(8, 800, 3, 3.0, 5).generate();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); ds.len()];
        // Dense ring + chords.
        let n = ds.len() as u32;
        for v in 0..n {
            for step in 1..=12u32 {
                adj[v as usize].push((v + step) % n);
            }
        }
        let before = degree_stats(&CsrGraph::from_lists(&adj)).avg;
        path_adjust(&ds, &mut adj, 8);
        let after = degree_stats(&CsrGraph::from_lists(&adj)).avg;
        assert!(after < before, "{after} !< {before}");
        assert!(adj.iter().all(|l| l.len() <= 8));
    }

    /// Appendix B: path adjustment approximates the RNG rule — on a dense
    /// KNNG neighborhood the kept sets of the two overlap heavily.
    #[test]
    fn path_adjustment_approximates_rng_selection() {
        use crate::components::selection::select_rng_alpha;
        use weavess_data::ground_truth::exact_knn_graph;
        let (ds, _) = MixtureSpec::table10(8, 500, 3, 5.0, 5).generate();
        let knn = exact_knn_graph(&ds, 20, 2);
        let mut adj: Vec<Vec<u32>> = knn.clone();
        path_adjust(&ds, &mut adj, 20);
        let mut overlap = 0usize;
        let mut total = 0usize;
        for p in (0..ds.len() as u32).step_by(13) {
            let cands: Vec<weavess_data::Neighbor> = knn[p as usize]
                .iter()
                .map(|&u| weavess_data::Neighbor::new(u, ds.dist(p, u)))
                .collect();
            let rng_kept: Vec<u32> = select_rng_alpha(&ds, p, &cands, 20, 1.0)
                .iter()
                .map(|x| x.id)
                .collect();
            for u in &adj[p as usize] {
                total += 1;
                if rng_kept.contains(u) {
                    overlap += 1;
                }
            }
        }
        assert!(
            overlap as f64 / total as f64 > 0.6,
            "path-adjusted/RNG overlap {overlap}/{total}"
        );
    }

    #[test]
    fn degree_adjust_bounds_out_and_feeds_in() {
        let (ds, _) = MixtureSpec::table10(8, 300, 3, 3.0, 5).generate();
        let n = ds.len() as u32;
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|v| (1..=20u32).map(|s| (v + s) % n).collect())
            .collect();
        let out = degree_adjust(&ds, &adj, 5, 3);
        let mut indeg = vec![0usize; ds.len()];
        for l in &out {
            for &x in l {
                indeg[x as usize] += 1;
            }
        }
        assert!(indeg.iter().all(|&d| d >= 3), "in-degree repair failed");
    }
}
