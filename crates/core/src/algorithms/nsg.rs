//! A10 — NSG (Navigating Spreading-out Graph): prune a NN-Descent KNNG
//! with the MRNG edge-selection rule, candidates acquired by greedy search
//! from the medoid; a DFS pass guarantees every vertex is reachable from
//! the medoid, which is also the fixed search entry.

use crate::components::candidates::candidates_by_search;
use crate::components::connectivity::dfs_repair;
use crate::components::init::C1Choice;
use crate::components::seeds::SeedStrategy;
use crate::components::selection::select_rng_alpha;
use crate::index::FlatIndex;
use crate::nndescent::NnDescentParams;
use crate::parallel;
use crate::rnndescent::RnnDescentParams;
use crate::search::{Router, SearchScratch, SearchStats};
use crate::telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// NSG parameters (Appendix H: `L`, `R`, `C` over a KGraph base).
#[derive(Debug, Clone)]
pub struct NsgParams {
    /// NN-Descent configuration for the initial graph.
    pub nd: NnDescentParams,
    /// Which descent engine actually runs as C1 (defaults to NN-Descent;
    /// see [`NsgParams::with_rnn_c1`]).
    pub init: C1Choice,
    /// Candidate-acquisition beam (`L`).
    pub l: usize,
    /// Maximum out-degree (`R`).
    pub r: usize,
    /// Candidate cap before selection (`C`).
    pub c: usize,
}

impl NsgParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, seed: u64) -> Self {
        NsgParams {
            nd: NnDescentParams {
                k: 40,
                l: 50,
                iters: 8,
                sample: 12,
                reverse: 25,
                seed,
                threads,
            },
            init: C1Choice::NnDescent,
            l: 60,
            r: 30,
            c: 100,
        }
    }

    /// Swaps C1 to RNN-Descent, sized to stand in for the configured
    /// NN-Descent ([`RnnDescentParams::matching`]); C2–C7 are untouched.
    pub fn with_rnn_c1(mut self) -> Self {
        self.init = C1Choice::RnnDescent(RnnDescentParams::matching(&self.nd));
        self
    }
}

/// Builds an NSG index.
pub fn build(ds: &Dataset, params: &NsgParams) -> FlatIndex {
    let (init, init_csr, medoid) = telemetry::span("C1 init", || {
        let init = params.init.build(ds, &params.nd, None);
        let init_csr = CsrGraph::from_lists(
            &init
                .iter()
                .map(|l| l.iter().map(|n| n.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        );
        let medoid = ds.medoid();
        (init, init_csr, medoid)
    });
    let n = ds.len();
    let threads = parallel::resolve_threads(params.nd.threads);
    let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    telemetry::span("C2+C3 candidates+selection", || {
        let ndc = AtomicU64::new(0);
        parallel::par_fill(
            &mut lists,
            parallel::CHUNK,
            threads,
            || (SearchScratch::new(n), SearchStats::default()),
            |(scratch, stats), start, slot| {
                let before = stats.ndc;
                for (j, out) in slot.iter_mut().enumerate() {
                    let p = (start + j) as u32;
                    let mut cands = candidates_by_search(
                        ds,
                        &init_csr,
                        p,
                        &[medoid],
                        params.l,
                        params.c,
                        scratch,
                        stats,
                    );
                    // NSG's sync_prune merges the point's initial-graph
                    // neighbors into the pool before selection.
                    for x in &init[p as usize] {
                        weavess_data::neighbor::insert_into_pool(&mut cands, params.c, *x);
                    }
                    *out = select_rng_alpha(ds, p, &cands, params.r, 1.0);
                }
                ndc.fetch_add(stats.ndc - before, Ordering::Relaxed);
            },
        );
        telemetry::add_span_ndc(ndc.load(Ordering::Relaxed));
    });
    drop(init_csr);
    telemetry::span("C5 connectivity", || {
        dfs_repair(ds, &mut lists, medoid, params.l);
    });
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|n| n.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    FlatIndex {
        name: "NSG",
        graph,
        seeds: SeedStrategy::Fixed(vec![medoid]),
        router: Router::BestFirst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::connectivity::reachable_from;
    use weavess_graph::metrics::degree_stats;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 2_000, 5, 10.0, 30).generate()
    }

    /// Overlap-free clusters are the pathological case for single-entry
    /// algorithms; the strict recall floor uses a tractable distribution.
    fn easy_dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 2_000, 1, 5.0, 30).generate()
    }

    #[test]
    fn nsg_reaches_high_recall_from_single_medoid_seed() {
        let (ds, qs) = easy_dataset();
        let idx = build(&ds, &NsgParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 100, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.9, "recall={r}");
    }

    #[test]
    fn nsg_keeps_usable_recall_on_hard_clustered_data() {
        // Separated clusters stress the single-medoid entry: DFS repair
        // keeps every point reachable, and recall stays usable though
        // below the easy-data level (the paper's hard-dataset behaviour).
        let (ds, qs) = dataset();
        let idx = build(&ds, &NsgParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 200, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.6, "recall={r}");
    }

    #[test]
    fn nsg_is_fully_reachable_from_medoid() {
        let (ds, _) = dataset();
        let idx = build(&ds, &NsgParams::tuned(4, 1));
        let medoid = ds.medoid();
        let reach = reachable_from(idx.graph(), medoid);
        assert!(reach.iter().all(|&r| r), "DFS repair left orphans");
    }

    #[test]
    fn nsg_has_low_average_degree() {
        // The Table 4 signature: NSG's AD is far below its KGraph base.
        let (ds, _) = dataset();
        let p = NsgParams::tuned(4, 1);
        let idx = build(&ds, &p);
        let s = degree_stats(idx.graph());
        assert!(s.avg < p.nd.k as f64, "avg={}", s.avg);
        assert!(s.avg < p.r as f64);
    }
}
