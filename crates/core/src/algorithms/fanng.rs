//! A3 — FANNG: the occlusion rule (≡ the RNG rule) applied to a large
//! brute-force candidate set per point, searched with backtracking
//! best-first routing from random seeds.
//!
//! The paper's exact construction considers *all* other points per vertex
//! (O(|S|²·log|S|), Table 2); its own authors propose candidate-
//! acquisition shortcuts to make that tractable. We honor both: the exact
//! path for small datasets, and the shortcut — an oversized exact-KNN
//! candidate list — above `exact_cutoff` points.

use crate::components::init::init_brute_force;
use crate::components::seeds::SeedStrategy;
use crate::components::selection::select_rng_alpha;
use crate::index::FlatIndex;
use crate::parallel;
use crate::search::Router;
use crate::telemetry;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// FANNG parameters (`R` degree bound, `L` candidate count).
#[derive(Debug, Clone)]
pub struct FanngParams {
    /// Maximum out-degree (`R`).
    pub r: usize,
    /// Candidates per point when using the shortcut acquisition (`L`).
    pub l: usize,
    /// Below this dataset size, use the exact all-pairs occlusion rule.
    pub exact_cutoff: usize,
    /// Backtrack budget at search time.
    pub backtracks: usize,
    /// Random seeds per query.
    pub search_seeds: usize,
    /// Construction threads (0 = one per available core). The built graph
    /// is identical for every value.
    pub threads: usize,
}

impl FanngParams {
    /// Defaults tuned for the harness's dataset scales.
    pub fn tuned(threads: usize, _seed: u64) -> Self {
        FanngParams {
            r: 40,
            l: 100,
            exact_cutoff: 2_000,
            backtracks: 8,
            search_seeds: 8,
            threads,
        }
    }
}

/// Builds a FANNG index.
pub fn build(ds: &Dataset, params: &FanngParams) -> FlatIndex {
    let n = ds.len();
    let threads = parallel::resolve_threads(params.threads);
    let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    if n <= params.exact_cutoff {
        // Exact: every other point, sorted, through the occlusion rule.
        telemetry::span("C2+C3 candidates+selection", || {
            parallel::par_fill(
                &mut lists,
                parallel::CHUNK,
                threads,
                || (),
                |_, start, slot| {
                    for (j, out) in slot.iter_mut().enumerate() {
                        let p = (start + j) as u32;
                        let mut cands: Vec<Neighbor> = (0..n as u32)
                            .filter(|&x| x != p)
                            .map(|x| Neighbor::new(x, ds.dist(p, x)))
                            .collect();
                        cands.sort_unstable();
                        *out = select_rng_alpha(ds, p, &cands, params.r, 1.0);
                    }
                },
            );
        });
    } else {
        // Shortcut: oversized exact-KNN candidates.
        let knn = telemetry::span("C1 init", || init_brute_force(ds, params.l, threads));
        telemetry::span("C3 selection", || {
            parallel::par_fill(
                &mut lists,
                parallel::CHUNK,
                threads,
                || (),
                |_, start, slot| {
                    for (j, out) in slot.iter_mut().enumerate() {
                        let p = (start + j) as u32;
                        *out = select_rng_alpha(ds, p, &knn[p as usize], params.r, 1.0);
                    }
                },
            );
        });
    }
    let graph = telemetry::span("freeze", || {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|x| x.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    });
    FlatIndex {
        name: "FANNG",
        graph,
        seeds: SeedStrategy::Random {
            count: params.search_seeds,
        },
        router: Router::Backtrack {
            extra: params.backtracks,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::base::exact_rng;

    #[test]
    fn fanng_reaches_high_recall() {
        let (ds, qs) = MixtureSpec::table10(16, 1_500, 5, 3.0, 25).generate();
        let idx = build(&ds, &FanngParams::tuned(4, 1));
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let r: Vec<u32> = idx
                .search(&ds, qs.point(qi), 10, 80, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&r, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.85, "recall={r}");
    }

    #[test]
    fn exact_fanng_contains_the_exact_rng() {
        // On a tiny dataset the occlusion rule over all points must keep
        // every true RNG edge (it may keep a superset because the rule is
        // applied greedily nearest-first, but never fewer).
        let (ds, _) = MixtureSpec::table10(2, 40, 1, 5.0, 2).generate();
        let mut p = FanngParams::tuned(1, 0);
        p.r = 40;
        let idx = build(&ds, &p);
        let rng_graph = exact_rng(&ds);
        let mut missing = 0usize;
        let mut total = 0usize;
        for v in 0..ds.len() as u32 {
            for &u in rng_graph.neighbors(v) {
                total += 1;
                if !idx.graph().neighbors(v).contains(&u) {
                    missing += 1;
                }
            }
        }
        // The greedy rule recovers the vast majority of RNG edges.
        assert!(
            (missing as f64) / (total as f64) < 0.1,
            "missing {missing}/{total} RNG edges"
        );
    }

    #[test]
    fn shortcut_path_is_used_above_cutoff() {
        let (ds, _) = MixtureSpec::table10(8, 300, 3, 3.0, 5).generate();
        let mut p = FanngParams::tuned(2, 0);
        p.exact_cutoff = 100; // force the shortcut
        let idx = build(&ds, &p);
        assert!(idx.graph().num_edges() > 0);
    }
}
