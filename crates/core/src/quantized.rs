//! Quantized graph search: route over SQ8 codes, rerank with raw vectors —
//! one concrete answer to the survey's §6 challenge of combining data
//! encoding with graph-based ANNS (the memory side of the trade-off the
//! paper's Table 5 "MO" column measures).

use crate::index::IndexError;
use crate::search::{beam_search, SearchScratch, SearchStats};
use weavess_data::neighbor::insert_into_pool;
use weavess_data::quant::Sq8Dataset;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::{CsrGraph, FusedArena};

/// A graph index whose routing distances come from SQ8 codes.
///
/// The graph is built however the caller likes (full precision); only
/// *search* touches the quantized vectors, so a deployment can drop the
/// raw vectors from RAM and keep them on slower storage for reranking.
/// [`QuantizedIndex::with_fused_layout`] additionally packs each vertex's
/// codes next to its adjacency in a [`FusedArena`] — bit-identical
/// results, one pointer chase per expansion.
pub struct QuantizedIndex {
    graph: CsrGraph,
    codes: Sq8Dataset,
    entries: Vec<u32>,
    arena: Option<FusedArena>,
}

impl QuantizedIndex {
    /// Wraps a built graph with quantized routing.
    ///
    /// # Panics
    /// Panics on an empty dataset or a graph/dataset size mismatch; use
    /// [`QuantizedIndex::try_new`] where those are runtime conditions.
    pub fn new(graph: CsrGraph, ds: &Dataset, entries: Vec<u32>) -> Self {
        Self::try_new(graph, ds, entries).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`QuantizedIndex::new`]: returns a typed error instead of
    /// panicking when the dataset is empty (SQ8 training has no ranges to
    /// fit) or when the graph does not cover the dataset — conditions a
    /// seeded shard partition can legitimately produce.
    pub fn try_new(graph: CsrGraph, ds: &Dataset, entries: Vec<u32>) -> Result<Self, IndexError> {
        if ds.is_empty() {
            return Err(IndexError::EmptyDataset {
                context: "QuantizedIndex",
            });
        }
        if graph.len() != ds.len() {
            return Err(IndexError::SizeMismatch {
                graph: graph.len(),
                dataset: ds.len(),
            });
        }
        Ok(QuantizedIndex {
            codes: Sq8Dataset::quantize(ds),
            graph,
            entries,
            arena: None,
        })
    }

    /// Switches routing to a fused adjacency+codes arena. The split
    /// `graph`/`codes` stay resident (the rerank path and accessors still
    /// use them); routing reads only the arena.
    pub fn with_fused_layout(mut self) -> Self {
        self.arena = Some(FusedArena::with_sq8(&self.graph, &self.codes));
        self
    }

    /// Best-first search over quantized distances; returns up to `beam`
    /// candidates ordered by *quantized* distance. `stats.ndc` counts
    /// quantized evaluations.
    ///
    /// Runs the shared [`beam_search`] over the SQ8 [`weavess_data::VectorView`]
    /// with the caller's [`SearchScratch`] — no per-query allocation.
    pub fn search_quantized(
        &self,
        query: &[f32],
        beam: usize,
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        scratch.next_epoch();
        match &self.arena {
            Some(arena) => beam_search(arena, arena, query, &self.entries, beam, scratch, stats),
            None => beam_search(
                &self.codes,
                &self.graph,
                query,
                &self.entries,
                beam,
                scratch,
                stats,
            ),
        }
    }

    /// Full search: quantized routing, then rerank the pool with raw
    /// vectors from `full`. `full_evals` counts the rerank distances.
    #[allow(clippy::too_many_arguments)]
    pub fn search(
        &self,
        full: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
        full_evals: &mut u64,
    ) -> Vec<Neighbor> {
        let pool = self.search_quantized(query, beam.max(k), scratch, stats);
        let mut rer: Vec<Neighbor> = Vec::with_capacity(pool.len());
        for c in &pool {
            *full_evals += 1;
            insert_into_pool(
                &mut rer,
                pool.len(),
                Neighbor::new(c.id, full.dist_to(query, c.id)),
            );
        }
        rer.truncate(k);
        rer
    }

    /// Routing memory: the graph plus codes (raw vectors excluded — that
    /// is the point), plus the fused arena when enabled.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + self.codes.memory_bytes()
            + self.arena.as_ref().map_or(0, |a| a.memory_bytes())
    }

    /// Bytes of the SQ8 codes alone — the resident-vector footprint the
    /// quantization buys, independent of which layout routes over them.
    pub fn codes_memory_bytes(&self) -> usize {
        self.codes.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::nsg::{self, NsgParams};
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;

    fn setup() -> (Dataset, Dataset, crate::index::FlatIndex) {
        let spec = MixtureSpec {
            intrinsic_dim: Some(8),
            noise: 0.05,
            shared_subspace: true,
            ..MixtureSpec::table10(32, 2_000, 4, 5.0, 40)
        };
        let (base, queries) = spec.generate();
        let idx = nsg::build(&base, &NsgParams::tuned(2, 1));
        (base, queries, idx)
    }

    #[test]
    fn quantized_routing_keeps_recall() {
        let (ds, qs, base_idx) = setup();
        let gt = ground_truth(&ds, &qs, 10, 2);
        let q_idx = QuantizedIndex::new(base_idx.graph.clone(), &ds, vec![ds.medoid()]);
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let mut full_evals = 0u64;
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let res = q_idx.search(
                &ds,
                qs.point(qi),
                10,
                60,
                &mut scratch,
                &mut stats,
                &mut full_evals,
            );
            let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
            total += recall(&ids, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.9, "quantized recall {r}");
        assert!(full_evals > 0);
    }

    #[test]
    fn quantized_routing_memory_is_much_smaller() {
        let (ds, _, base_idx) = setup();
        let q_idx = QuantizedIndex::new(base_idx.graph.clone(), &ds, vec![0]);
        let full_route_bytes = base_idx.graph.memory_bytes() + ds.memory_bytes();
        assert!(
            q_idx.memory_bytes() * 2 < full_route_bytes,
            "{} !<< {}",
            q_idx.memory_bytes(),
            full_route_bytes
        );
    }

    #[test]
    fn quantized_matches_full_precision_results_mostly() {
        let (ds, qs, base_idx) = setup();
        let q_idx = QuantizedIndex::new(base_idx.graph.clone(), &ds, vec![ds.medoid()]);
        let mut ctx = SearchContext::new(ds.len());
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let mut full_evals = 0u64;
        let mut overlap = 0usize;
        for qi in 0..qs.len() as u32 {
            let a: Vec<u32> = base_idx
                .search(&ds, qs.point(qi), 10, 60, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            let b: Vec<u32> = q_idx
                .search(
                    &ds,
                    qs.point(qi),
                    10,
                    60,
                    &mut scratch,
                    &mut stats,
                    &mut full_evals,
                )
                .iter()
                .map(|n| n.id)
                .collect();
            overlap += b.iter().filter(|id| a.contains(id)).count();
        }
        let frac = overlap as f64 / (10 * qs.len()) as f64;
        assert!(frac > 0.8, "overlap {frac}");
    }

    /// The fused SQ8 arena must be a pure layout change: same ids, same
    /// distance bits, same NDC/hops as the split codes+graph routing.
    #[test]
    fn fused_layout_is_bit_identical_to_split() {
        let (ds, qs, base_idx) = setup();
        let split = QuantizedIndex::new(base_idx.graph.clone(), &ds, vec![ds.medoid()]);
        let fused =
            QuantizedIndex::new(base_idx.graph.clone(), &ds, vec![ds.medoid()]).with_fused_layout();
        let mut scratch = SearchScratch::new(ds.len());
        for qi in 0..qs.len() as u32 {
            let mut s1 = SearchStats::default();
            let mut s2 = SearchStats::default();
            let a = split.search_quantized(qs.point(qi), 60, &mut scratch, &mut s1);
            let b = fused.search_quantized(qs.point(qi), 60, &mut scratch, &mut s2);
            assert_eq!(a.len(), b.len(), "query {qi}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
            assert_eq!(s1, s2, "query {qi}");
        }
    }
}
