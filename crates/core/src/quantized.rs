//! Quantized graph search: route over SQ8 codes, rerank with raw vectors —
//! one concrete answer to the survey's §6 challenge of combining data
//! encoding with graph-based ANNS (the memory side of the trade-off the
//! paper's Table 5 "MO" column measures).

use crate::search::{SearchStats, VisitedPool};
use weavess_data::neighbor::insert_into_pool;
use weavess_data::quant::Sq8Dataset;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// A graph index whose routing distances come from SQ8 codes.
///
/// The graph is built however the caller likes (full precision); only
/// *search* touches the quantized vectors, so a deployment can drop the
/// raw vectors from RAM and keep them on slower storage for reranking.
pub struct QuantizedIndex {
    graph: CsrGraph,
    codes: Sq8Dataset,
    entries: Vec<u32>,
}

impl QuantizedIndex {
    /// Wraps a built graph with quantized routing.
    pub fn new(graph: CsrGraph, ds: &Dataset, entries: Vec<u32>) -> Self {
        assert_eq!(graph.len(), ds.len());
        QuantizedIndex {
            graph,
            codes: Sq8Dataset::quantize(ds),
            entries,
        }
    }

    /// Best-first search over quantized distances; returns up to `beam`
    /// candidates ordered by *quantized* distance. `stats.ndc` counts
    /// quantized evaluations.
    pub fn search_quantized(
        &self,
        query: &[f32],
        beam: usize,
        visited: &mut VisitedPool,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let beam = beam.max(1);
        let mut pool: Vec<Neighbor> = Vec::with_capacity(beam + 1);
        let mut expanded: Vec<bool> = Vec::with_capacity(beam + 1);
        visited.next_epoch();
        for &s in &self.entries {
            if visited.visit(s) {
                stats.ndc += 1;
                if let Some(pos) = insert_into_pool(
                    &mut pool,
                    beam,
                    Neighbor::new(s, self.codes.dist_to(query, s)),
                ) {
                    expanded.insert(pos, false);
                    expanded.truncate(pool.len());
                }
            }
        }
        let mut i = 0usize;
        while i < pool.len() {
            if expanded[i] {
                i += 1;
                continue;
            }
            expanded[i] = true;
            stats.hops += 1;
            let v = pool[i].id;
            let mut lowest = usize::MAX;
            for &u in self.graph.neighbors(v) {
                if !visited.visit(u) {
                    continue;
                }
                stats.ndc += 1;
                let d = self.codes.dist_to(query, u);
                if let Some(pos) = insert_into_pool(&mut pool, beam, Neighbor::new(u, d)) {
                    expanded.insert(pos, false);
                    expanded.truncate(pool.len());
                    lowest = lowest.min(pos);
                }
            }
            if lowest < i {
                i = lowest;
            } else {
                i += 1;
            }
        }
        pool
    }

    /// Full search: quantized routing, then rerank the pool with raw
    /// vectors from `full`. `full_evals` counts the rerank distances.
    #[allow(clippy::too_many_arguments)]
    pub fn search(
        &self,
        full: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        visited: &mut VisitedPool,
        stats: &mut SearchStats,
        full_evals: &mut u64,
    ) -> Vec<Neighbor> {
        let pool = self.search_quantized(query, beam.max(k), visited, stats);
        let mut rer: Vec<Neighbor> = Vec::with_capacity(pool.len());
        for c in &pool {
            *full_evals += 1;
            insert_into_pool(
                &mut rer,
                pool.len(),
                Neighbor::new(c.id, full.dist_to(query, c.id)),
            );
        }
        rer.truncate(k);
        rer
    }

    /// Routing memory: the graph plus codes (raw vectors excluded — that
    /// is the point).
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes() + self.codes.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::nsg::{self, NsgParams};
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;

    fn setup() -> (Dataset, Dataset, crate::index::FlatIndex) {
        let spec = MixtureSpec {
            intrinsic_dim: Some(8),
            noise: 0.05,
            shared_subspace: true,
            ..MixtureSpec::table10(32, 2_000, 4, 5.0, 40)
        };
        let (base, queries) = spec.generate();
        let idx = nsg::build(&base, &NsgParams::tuned(2, 1));
        (base, queries, idx)
    }

    #[test]
    fn quantized_routing_keeps_recall() {
        let (ds, qs, base_idx) = setup();
        let gt = ground_truth(&ds, &qs, 10, 2);
        let q_idx = QuantizedIndex::new(base_idx.graph.clone(), &ds, vec![ds.medoid()]);
        let mut visited = VisitedPool::new(ds.len());
        let mut stats = SearchStats::default();
        let mut full_evals = 0u64;
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let res = q_idx.search(
                &ds,
                qs.point(qi),
                10,
                60,
                &mut visited,
                &mut stats,
                &mut full_evals,
            );
            let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
            total += recall(&ids, &gt[qi as usize]);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.9, "quantized recall {r}");
        assert!(full_evals > 0);
    }

    #[test]
    fn quantized_routing_memory_is_much_smaller() {
        let (ds, _, base_idx) = setup();
        let q_idx = QuantizedIndex::new(base_idx.graph.clone(), &ds, vec![0]);
        let full_route_bytes = base_idx.graph.memory_bytes() + ds.memory_bytes();
        assert!(
            q_idx.memory_bytes() * 2 < full_route_bytes,
            "{} !<< {}",
            q_idx.memory_bytes(),
            full_route_bytes
        );
    }

    #[test]
    fn quantized_matches_full_precision_results_mostly() {
        let (ds, qs, base_idx) = setup();
        let q_idx = QuantizedIndex::new(base_idx.graph.clone(), &ds, vec![ds.medoid()]);
        let mut ctx = SearchContext::new(ds.len());
        let mut visited = VisitedPool::new(ds.len());
        let mut stats = SearchStats::default();
        let mut full_evals = 0u64;
        let mut overlap = 0usize;
        for qi in 0..qs.len() as u32 {
            let a: Vec<u32> = base_idx
                .search(&ds, qs.point(qi), 10, 60, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            let b: Vec<u32> = q_idx
                .search(
                    &ds,
                    qs.point(qi),
                    10,
                    60,
                    &mut visited,
                    &mut stats,
                    &mut full_evals,
                )
                .iter()
                .map(|n| n.id)
                .collect();
            overlap += b.iter().filter(|id| a.contains(id)).count();
        }
        let frac = overlap as f64 / (10 * qs.len()) as f64;
        assert!(frac > 0.8, "overlap {frac}");
    }
}
