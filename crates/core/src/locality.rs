//! The cache-locality layer: runtime-selectable node layout and vertex
//! ordering beneath every router.
//!
//! A [`LayoutIndex`] wraps a built [`FlatIndex`] in one of four physical
//! arrangements — {original, BFS-reordered} × {split CSR+matrix, fused
//! arena} — without changing a single search result: ids in and out stay
//! in the caller's original space (the permutation is applied on entry
//! and inverted on exit), and distances, NDC, and hops are identical
//! because the traversal visits the same vertices through the same
//! kernels. Only the memory-access pattern moves, which is the entire
//! point: after PR 2 the routing hot path is memory-bound, so layout is
//! where the remaining QPS lives. `layout_bench` sweeps the matrix.

use crate::components::SeedStrategy;
use crate::index::{AnnIndex, FlatIndex, IndexError, SearchContext};
use crate::search::Router;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::reorder::{bfs_order, Permutation};
use weavess_graph::{merge_overlay, strip_overlay, CsrGraph, FusedArena};

/// Physical node layout for the routing structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLayout {
    /// Classic split storage: CSR adjacency in one allocation, the vector
    /// matrix in another — two pointer chases per expansion.
    Split,
    /// Fused arena: each vertex's degree, neighbors, and vector in one
    /// 64-byte-aligned block — one pointer chase per expansion.
    Fused,
}

/// The owned routing storage behind a [`LayoutIndex`].
pub(crate) enum LayoutStore {
    /// CSR + a dataset in index id space (a reordered copy, or a clone of
    /// the original when no permutation is applied).
    Split { graph: CsrGraph, vectors: Dataset },
    /// Fused arena; the CSR is kept alongside so [`AnnIndex::graph`] and
    /// persistence still see a plain graph (its bytes are counted in the
    /// stats — fusing buys speed, not memory).
    Fused { graph: CsrGraph, arena: FusedArena },
}

/// Memory accounting for a [`LayoutIndex`], field by field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutStats {
    /// CSR adjacency bytes.
    pub graph_bytes: usize,
    /// Vector storage bytes (split layout's dataset copy).
    pub vector_bytes: usize,
    /// Fused arena bytes (0 for split).
    pub arena_bytes: usize,
    /// Bytes of the arena that are padding (unused neighbor slots and
    /// cache-line rounding) — the overhead fusing pays for alignment.
    pub arena_padding_bytes: usize,
    /// Permutation bytes (both direction arrays; 0 when not reordered).
    pub permutation_bytes: usize,
    /// Catapult overlay segment bytes (0 when the index is unadapted).
    pub overlay_bytes: usize,
}

/// A [`FlatIndex`] re-hosted on a selectable physical layout.
///
/// Seeds are evaluated against the *caller's* dataset in original id
/// space (so tree-backed strategies keep working), then mapped through
/// the permutation; results are mapped back and re-sorted into canonical
/// (distance, original id) order before truncation. Assuming no exact
/// distance ties, results are identical to the wrapped [`FlatIndex`].
pub struct LayoutIndex {
    pub(crate) name: &'static str,
    pub(crate) router: Router,
    /// Seed strategy, operating in the original id space.
    pub(crate) seeds: SeedStrategy,
    /// `Some` when the graph/vectors were BFS-reordered.
    pub(crate) perm: Option<Permutation>,
    /// Catapult overlay segment in index id space: `Some` once the index
    /// has been adapted ([`LayoutIndex::adapt`]). The stored routing
    /// graph is then the base+overlay merge; the base is recoverable
    /// exactly via [`LayoutIndex::base_graph`].
    pub(crate) overlay: Option<CsrGraph>,
    pub(crate) store: LayoutStore,
}

impl LayoutIndex {
    /// Re-hosts `flat` (consumed — [`SeedStrategy`] owns its trees) on the
    /// chosen layout. `reorder` renumbers vertices by a BFS from the
    /// dataset medoid before laying them out.
    ///
    /// # Panics
    /// Panics on an empty dataset or a graph/dataset size mismatch; use
    /// [`LayoutIndex::try_from_flat`] where those are runtime conditions
    /// (e.g. building over a partitioned shard).
    pub fn from_flat(flat: FlatIndex, ds: &Dataset, layout: NodeLayout, reorder: bool) -> Self {
        Self::try_from_flat(flat, ds, layout, reorder).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`LayoutIndex::from_flat`]: returns a typed error instead
    /// of panicking when the dataset is empty (reordering needs a medoid
    /// and an empty index cannot answer anything) or when the graph does
    /// not match the dataset — both real hazards once a seeded partition
    /// can produce arbitrarily small shards.
    pub fn try_from_flat(
        flat: FlatIndex,
        ds: &Dataset,
        layout: NodeLayout,
        reorder: bool,
    ) -> Result<Self, IndexError> {
        if ds.is_empty() {
            return Err(IndexError::EmptyDataset {
                context: "LayoutIndex",
            });
        }
        if flat.graph.len() != ds.len() {
            return Err(IndexError::SizeMismatch {
                graph: flat.graph.len(),
                dataset: ds.len(),
            });
        }
        let perm = reorder.then(|| bfs_order(&flat.graph, ds.medoid()));
        Ok(Self::assemble(
            flat.name,
            flat.router,
            flat.seeds,
            perm,
            &flat.graph,
            ds,
            layout,
        ))
    }

    /// Assembles the store from a graph in *original* id space plus the
    /// caller's dataset (also used by the persist loader, which is why the
    /// permutation is applied here rather than in `from_flat`).
    pub(crate) fn assemble(
        name: &'static str,
        router: Router,
        seeds: SeedStrategy,
        perm: Option<Permutation>,
        graph: &CsrGraph,
        ds: &Dataset,
        layout: NodeLayout,
    ) -> Self {
        Self::assemble_with_overlay(name, router, seeds, perm, graph, None, ds, layout)
    }

    /// [`LayoutIndex::assemble`] plus an optional catapult overlay segment
    /// (also in *original* id space — the persist format stores both
    /// segments un-permuted). The stored routing graph becomes the
    /// base+overlay merge.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble_with_overlay(
        name: &'static str,
        router: Router,
        seeds: SeedStrategy,
        perm: Option<Permutation>,
        base: &CsrGraph,
        overlay: Option<&CsrGraph>,
        ds: &Dataset,
        layout: NodeLayout,
    ) -> Self {
        let (base, vectors) = match &perm {
            Some(p) => (p.apply_to_graph(base), p.apply_to_dataset(ds)),
            None => (base.clone(), ds.clone()),
        };
        let (graph, overlay) = match overlay {
            Some(o) => {
                let o = match &perm {
                    Some(p) => p.apply_to_graph(o),
                    None => o.clone(),
                };
                (merge_overlay(&base, &o), Some(o))
            }
            None => (base, None),
        };
        let store = Self::store_from(graph, vectors, layout);
        LayoutIndex {
            name,
            router,
            seeds,
            perm,
            overlay,
            store,
        }
    }

    /// Builds the physical store for a routing graph + index-space vectors.
    fn store_from(graph: CsrGraph, vectors: Dataset, layout: NodeLayout) -> LayoutStore {
        match layout {
            NodeLayout::Split => LayoutStore::Split { graph, vectors },
            NodeLayout::Fused => {
                let arena = FusedArena::with_vectors(&graph, &vectors);
                LayoutStore::Fused { graph, arena }
            }
        }
    }

    /// Swaps in an adapted routing graph (base+overlay merge, index id
    /// space) and its overlay segment, rebuilding the physical store in
    /// the current layout. `ds` is the caller's dataset in original id
    /// space. Used by [`LayoutIndex::adapt`].
    pub(crate) fn install_combined(&mut self, combined: CsrGraph, overlay: CsrGraph, ds: &Dataset) {
        let vectors = match &self.perm {
            Some(p) => p.apply_to_dataset(ds),
            None => ds.clone(),
        };
        let layout = self.layout();
        self.store = Self::store_from(combined, vectors, layout);
        self.overlay = Some(overlay);
    }

    /// The layout this index stores its nodes in.
    pub fn layout(&self) -> NodeLayout {
        match self.store {
            LayoutStore::Split { .. } => NodeLayout::Split,
            LayoutStore::Fused { .. } => NodeLayout::Fused,
        }
    }

    /// True when vertices were BFS-reordered.
    pub fn is_reordered(&self) -> bool {
        self.perm.is_some()
    }

    /// The applied permutation, if any.
    pub fn permutation(&self) -> Option<&Permutation> {
        self.perm.as_ref()
    }

    /// The catapult overlay segment (index id space), if the index has
    /// been adapted.
    pub fn overlay(&self) -> Option<&CsrGraph> {
        self.overlay.as_ref()
    }

    /// The base graph in index id space — the routing graph with any
    /// catapult overlay stripped back out (exact inverse of the merge:
    /// overlay edges are the per-vertex suffix). Identical to
    /// [`AnnIndex::graph`] when unadapted.
    pub fn base_graph(&self) -> CsrGraph {
        let graph = match &self.store {
            LayoutStore::Split { graph, .. } | LayoutStore::Fused { graph, .. } => graph,
        };
        match &self.overlay {
            Some(o) => strip_overlay(graph, o),
            None => graph.clone(),
        }
    }

    /// Per-structure memory accounting.
    pub fn layout_stats(&self) -> LayoutStats {
        let (graph_bytes, vector_bytes, arena_bytes, arena_padding_bytes) = match &self.store {
            LayoutStore::Split { graph, vectors } => {
                (graph.memory_bytes(), vectors.memory_bytes(), 0, 0)
            }
            LayoutStore::Fused { graph, arena } => (
                graph.memory_bytes(),
                0,
                arena.memory_bytes(),
                arena.padding_bytes(),
            ),
        };
        LayoutStats {
            graph_bytes,
            vector_bytes,
            arena_bytes,
            arena_padding_bytes,
            permutation_bytes: self.perm.as_ref().map_or(0, |p| p.memory_bytes()),
            overlay_bytes: self.overlay.as_ref().map_or(0, |o| o.memory_bytes()),
        }
    }
}

impl AnnIndex for LayoutIndex {
    fn name(&self) -> &'static str {
        self.name
    }

    fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
    ) -> Vec<Neighbor> {
        let beam = beam.max(k);
        // Seeds in original space, against the caller's dataset (same RNG
        // stream and NDC accounting as the wrapped FlatIndex)…
        let mut seeds = self.seeds.seeds(ds, query, &mut ctx.rng, &mut ctx.stats);
        // …then into the index's id space.
        if let Some(p) = &self.perm {
            for s in &mut seeds {
                *s = p.to_new(*s);
            }
        }
        ctx.scratch.next_epoch();
        let mut pool = match &self.store {
            LayoutStore::Split { graph, vectors } => self.router.search(
                vectors,
                graph,
                query,
                &seeds,
                beam,
                &mut ctx.scratch,
                &mut ctx.stats,
            ),
            LayoutStore::Fused { arena, .. } => self.router.search(
                arena,
                arena,
                query,
                &seeds,
                beam,
                &mut ctx.scratch,
                &mut ctx.stats,
            ),
        };
        if let Some(p) = &self.perm {
            for n in &mut pool {
                n.id = p.to_old(n.id);
            }
            // Canonical (distance, original id) order: without ties this
            // only reorders equal-distance pairs the renaming shuffled.
            pool.sort_unstable();
        }
        pool.truncate(k);
        pool
    }

    /// Traced variant of the layout search. Route events carry *index
    /// id-space* vertex ids (the ids the traversal actually touches);
    /// reordered layouts therefore trace the renamed ids, matching the
    /// graph returned by [`AnnIndex::graph`].
    fn search_traced(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
        mut tracer: &mut dyn crate::telemetry::RouteTracer,
    ) -> Vec<Neighbor> {
        let beam = beam.max(k);
        let mut seeds = self.seeds.seeds(ds, query, &mut ctx.rng, &mut ctx.stats);
        if let Some(p) = &self.perm {
            for s in &mut seeds {
                *s = p.to_new(*s);
            }
        }
        ctx.scratch.next_epoch();
        let mut pool = match &self.store {
            LayoutStore::Split { graph, vectors } => self.router.search_traced(
                vectors,
                graph,
                query,
                &seeds,
                beam,
                &mut ctx.scratch,
                &mut ctx.stats,
                &mut tracer,
            ),
            LayoutStore::Fused { arena, .. } => self.router.search_traced(
                arena,
                arena,
                query,
                &seeds,
                beam,
                &mut ctx.scratch,
                &mut ctx.stats,
                &mut tracer,
            ),
        };
        if let Some(p) = &self.perm {
            for n in &mut pool {
                n.id = p.to_old(n.id);
            }
            pool.sort_unstable();
        }
        pool.truncate(k);
        pool
    }

    /// The routing graph *in index id space* — reordered when
    /// [`LayoutIndex::is_reordered`]. Degree statistics and edge counts
    /// are permutation-invariant, so the Table 4/11 metrics read the same.
    fn graph(&self) -> &CsrGraph {
        match &self.store {
            LayoutStore::Split { graph, .. } | LayoutStore::Fused { graph, .. } => graph,
        }
    }

    fn memory_bytes(&self) -> usize {
        let s = self.layout_stats();
        s.graph_bytes
            + s.vector_bytes
            + s.arena_bytes
            + s.permutation_bytes
            + s.overlay_bytes
            + self.seeds.memory_bytes()
    }

    fn overlay_edges(&self) -> usize {
        self.overlay.as_ref().map_or(0, |o| o.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::base::exact_knng;

    fn setup() -> (Dataset, Dataset, FlatIndex) {
        let (ds, qs) = MixtureSpec::table10(16, 800, 4, 4.0, 25).generate();
        let graph = exact_knng(&ds, 10, 2);
        let idx = FlatIndex {
            name: "test",
            graph,
            seeds: SeedStrategy::Fixed(vec![0, 123, 456]),
            router: Router::BestFirst,
        };
        (ds, qs, idx)
    }

    fn clone_flat(idx: &FlatIndex) -> FlatIndex {
        let SeedStrategy::Fixed(v) = &idx.seeds else {
            unreachable!()
        };
        FlatIndex {
            name: idx.name,
            graph: idx.graph.clone(),
            seeds: SeedStrategy::Fixed(v.clone()),
            router: idx.router.clone(),
        }
    }

    #[test]
    fn every_layout_matches_the_flat_index_exactly() {
        let (ds, qs, flat) = setup();
        for layout in [NodeLayout::Split, NodeLayout::Fused] {
            for reorder in [false, true] {
                let li = LayoutIndex::from_flat(clone_flat(&flat), &ds, layout, reorder);
                let mut c1 = SearchContext::new(ds.len());
                let mut c2 = SearchContext::new(ds.len());
                for qi in 0..qs.len() as u32 {
                    let a = flat.search(&ds, qs.point(qi), 10, 50, &mut c1);
                    let b = li.search(&ds, qs.point(qi), 10, 50, &mut c2);
                    assert_eq!(a.len(), b.len(), "{layout:?} reorder={reorder} q={qi}");
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(x.id, y.id, "{layout:?} reorder={reorder} q={qi}");
                        assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                    }
                }
                assert_eq!(c1.stats, c2.stats, "{layout:?} reorder={reorder}");
            }
        }
    }

    #[test]
    fn reordered_graph_is_a_renaming_of_the_original() {
        let (ds, _, flat) = setup();
        let original = flat.graph.clone();
        let li = LayoutIndex::from_flat(clone_flat(&flat), &ds, NodeLayout::Split, true);
        let p = li.permutation().unwrap();
        let rg = li.graph();
        assert_eq!(rg.num_edges(), original.num_edges());
        for v in 0..original.len() as u32 {
            let renamed: Vec<u32> = rg
                .neighbors(p.to_new(v))
                .iter()
                .map(|&u| p.to_old(u))
                .collect();
            assert_eq!(renamed, original.neighbors(v));
        }
    }

    #[test]
    fn layout_stats_account_for_each_layout() {
        let (ds, _, flat) = setup();
        let split = LayoutIndex::from_flat(clone_flat(&flat), &ds, NodeLayout::Split, false);
        let fused = LayoutIndex::from_flat(clone_flat(&flat), &ds, NodeLayout::Fused, true);
        let s = split.layout_stats();
        assert!(s.vector_bytes > 0 && s.arena_bytes == 0 && s.permutation_bytes == 0);
        let f = fused.layout_stats();
        assert!(f.arena_bytes > 0 && f.vector_bytes == 0 && f.permutation_bytes > 0);
        assert!(f.arena_padding_bytes < f.arena_bytes);
        assert!(fused.memory_bytes() >= f.graph_bytes + f.arena_bytes);
    }
}
