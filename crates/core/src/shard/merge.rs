//! The scatter-gather merge: global top-k from per-shard top-k pools.
//!
//! The merge is a k-select over the union of the pools under the total
//! `(distance, global id)` order of [`weavess_data::Neighbor`]. Squared
//! Euclidean distances are non-negative, so `f32::total_cmp` ranks them
//! exactly like their raw bit patterns — the "distance-bits then
//! global-id" tiebreak that makes the merged result *order-stable*: for a
//! fixed set of candidates it is independent of how they were split
//! across shards, of the order shards report in, and of whether pools are
//! merged pairwise or all at once (commutative and associative, the law
//! `crates/core/tests/sharding.rs` property-tests).

use weavess_data::Neighbor;

/// Merges per-shard pools (each nearest-first, ids in the *global* id
/// space) into the global top-`k`, nearest-first.
///
/// Equal-distance candidates are ordered by global id — exactly the order
/// an unsharded search pool uses — so ties at shard boundaries resolve
/// identically for any shard count.
pub fn merge_topk(pools: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = Vec::with_capacity(pools.iter().map(Vec::len).sum());
    for pool in pools {
        all.extend_from_slice(pool);
    }
    // Neighbor's Ord is (total_cmp(dist), id): for the non-negative
    // distances this workspace produces, bit order == numeric order.
    all.sort_unstable();
    all.truncate(k);
    all
}

/// Pairwise form of [`merge_topk`] — the shape a gather tree uses when
/// combining shard responses as they arrive.
pub fn merge_two(a: &[Neighbor], b: &[Neighbor], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = Vec::with_capacity(a.len() + b.len());
    all.extend_from_slice(a);
    all.extend_from_slice(b);
    all.sort_unstable();
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u32, dist: f32) -> Neighbor {
        Neighbor::new(id, dist)
    }

    #[test]
    fn merge_selects_global_k_smallest() {
        let a = vec![n(0, 1.0), n(2, 3.0)];
        let b = vec![n(1, 2.0), n(3, 4.0)];
        assert_eq!(
            merge_topk(&[a, b], 3),
            vec![n(0, 1.0), n(1, 2.0), n(2, 3.0)]
        );
    }

    #[test]
    fn ties_resolve_by_global_id() {
        let a = vec![n(7, 1.0)];
        let b = vec![n(3, 1.0)];
        let m = merge_topk(&[a.clone(), b.clone()], 1);
        assert_eq!(m, vec![n(3, 1.0)]);
        assert_eq!(m, merge_topk(&[b, a], 1), "pool order must not matter");
    }

    #[test]
    fn pairwise_equals_flat_merge() {
        let a = vec![n(0, 0.5), n(4, 2.5)];
        let b = vec![n(1, 1.5)];
        let c = vec![n(2, 0.25), n(3, 3.5)];
        let flat = merge_topk(&[a.clone(), b.clone(), c.clone()], 3);
        let ab = merge_two(&a, &b, 3);
        assert_eq!(merge_two(&ab, &c, 3), flat);
    }

    #[test]
    fn merge_of_empty_pools_is_empty() {
        assert!(merge_topk(&[], 5).is_empty());
        assert!(merge_topk(&[Vec::new(), Vec::new()], 5).is_empty());
    }
}
