//! The admission queue: coalesces in-flight single queries into engine
//! batches under a latency budget.
//!
//! Streaming traffic arrives one query at a time, but both engines are at
//! their best answering batches (worker pools amortize scatter and
//! scratch checkout). [`BatchQueue::submit`] blocks the caller until its
//! answer is ready; internally, concurrent submitters coalesce by a
//! leader–follower protocol:
//!
//! - the first submitter into an empty queue becomes the **leader** and
//!   waits until the batch reaches [`QueueOptions::max_batch`] queries or
//!   the [`QueueOptions::max_delay`] budget (measured from the batch's
//!   oldest enqueue) lapses — whichever comes first;
//! - the leader then closes the batch, releases leadership (so a next
//!   batch can form and even execute concurrently while this one runs),
//!   executes the batch through the engine, and publishes per-ticket
//!   results;
//! - followers wake on publication and collect their own ticket.
//!
//! Queries enter the closed batch in submission order, and results are
//! keyed by ticket, so every caller gets exactly its own query's answer.
//! Coalescing never changes results: both engines answer each query
//! independently of its batch (per-query RNG reseeding), so a query
//! returns bit-identical neighbors whether it rode alone under a lapsed
//! budget or inside a full batch — the property the queue tests assert.
//!
//! Synchronization uses `std::sync::{Mutex, Condvar}` directly (the
//! vendored `parking_lot` shim carries no condvar).

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use super::engine::ShardedEngine;
use crate::serve::QueryEngine;
use crate::telemetry::flight::{query_fingerprint, FlightRecorder};
use crate::telemetry::Histogram;
use weavess_data::{Dataset, Neighbor};

/// Anything the queue can execute a coalesced batch against.
pub trait BatchExecutor: Sync {
    /// Query dimensionality the executor expects.
    fn dim(&self) -> usize;
    /// Answers `queries`, one result pool per query, in input order.
    fn execute(&self, queries: &Dataset, k: usize, beam: usize) -> Vec<Vec<Neighbor>>;
    /// [`execute`](Self::execute) while recording per-query flights into
    /// `rec`. The default ignores the recorder, so third-party executors
    /// stay correct without opting in; both engines override it with
    /// their flight-recording batch paths. Results must be identical to
    /// [`execute`](Self::execute).
    fn execute_recorded(
        &self,
        queries: &Dataset,
        k: usize,
        beam: usize,
        rec: &FlightRecorder,
    ) -> Vec<Vec<Neighbor>> {
        let _ = rec;
        self.execute(queries, k, beam)
    }
}

impl BatchExecutor for QueryEngine<'_> {
    fn dim(&self) -> usize {
        self.dataset().dim()
    }

    fn execute(&self, queries: &Dataset, k: usize, beam: usize) -> Vec<Vec<Neighbor>> {
        self.search_batch(queries, k, beam).results
    }

    fn execute_recorded(
        &self,
        queries: &Dataset,
        k: usize,
        beam: usize,
        rec: &FlightRecorder,
    ) -> Vec<Vec<Neighbor>> {
        self.search_batch_flights(queries, k, beam, rec).results
    }
}

impl BatchExecutor for ShardedEngine<'_> {
    fn dim(&self) -> usize {
        self.shard_set().dim()
    }

    fn execute(&self, queries: &Dataset, k: usize, beam: usize) -> Vec<Vec<Neighbor>> {
        self.search_batch(queries, k, beam).results
    }

    fn execute_recorded(
        &self,
        queries: &Dataset,
        k: usize,
        beam: usize,
        rec: &FlightRecorder,
    ) -> Vec<Vec<Neighbor>> {
        self.search_batch_flights(queries, k, beam, rec).results
    }
}

/// Tuning knobs for a [`BatchQueue`].
#[derive(Debug, Clone)]
pub struct QueueOptions {
    /// Close a batch as soon as it holds this many queries.
    pub max_batch: usize,
    /// Close a batch this long after its oldest query arrived, full or
    /// not — the latency budget sparse traffic pays instead of waiting
    /// for a batch that may never fill.
    pub max_delay: Duration,
    /// Neighbors per query.
    pub k: usize,
    /// Candidate-set size per query.
    pub beam: usize,
}

impl Default for QueueOptions {
    fn default() -> Self {
        QueueOptions {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            k: 10,
            beam: 64,
        }
    }
}

/// Cumulative queue accounting.
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Batches executed.
    pub batches_total: u64,
    /// Queries admitted.
    pub queries_total: u64,
    /// Distribution of closed-batch sizes.
    pub batch_size: Histogram,
    /// Per-query admission delay (enqueue → batch close), nanoseconds.
    pub queue_delay_ns: Histogram,
}

/// A point-in-time queue view: the cumulative [`QueueStats`] plus the
/// instantaneous depth gauge — the unit
/// [`FleetReport`](crate::shard::FleetReport) exposes on the
/// Prometheus/JSON surface.
#[derive(Debug, Clone, Default)]
pub struct QueueSnapshot {
    /// Cumulative accounting at snapshot time.
    pub stats: QueueStats,
    /// Queries pending admission right now.
    pub depth: usize,
}

struct PendingQuery {
    ticket: u64,
    query: Vec<f32>,
    enqueued: Instant,
}

#[derive(Default)]
struct QueueInner {
    pending: Vec<PendingQuery>,
    done: HashMap<u64, Vec<Neighbor>>,
    next_ticket: u64,
    has_leader: bool,
    stats: QueueStats,
}

/// A blocking admission/batching queue in front of a [`BatchExecutor`].
pub struct BatchQueue<'a, E: BatchExecutor + ?Sized> {
    exec: &'a E,
    opts: QueueOptions,
    inner: Mutex<QueueInner>,
    cv: Condvar,
    flights: Option<&'a FlightRecorder>,
}

impl<'a, E: BatchExecutor + ?Sized> BatchQueue<'a, E> {
    /// A queue over `exec` with the given knobs.
    pub fn new(exec: &'a E, opts: QueueOptions) -> Self {
        assert!(opts.max_batch > 0, "max_batch must be positive");
        BatchQueue {
            exec,
            opts,
            inner: Mutex::new(QueueInner::default()),
            cv: Condvar::new(),
            flights: None,
        }
    }

    /// A queue that records per-query flights: each seed-sampled query's
    /// admission wait is noted into `rec` (surfacing as a
    /// [`Stage::QueueWait`](crate::telemetry::Stage) span on its flight)
    /// and batches execute through
    /// [`BatchExecutor::execute_recorded`].
    pub fn with_flights(exec: &'a E, opts: QueueOptions, rec: &'a FlightRecorder) -> Self {
        let mut q = Self::new(exec, opts);
        q.flights = Some(rec);
        q
    }

    /// The queue's knobs.
    pub fn options(&self) -> &QueueOptions {
        &self.opts
    }

    /// A copy of the cumulative queue accounting.
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().unwrap().stats.clone()
    }

    /// Queries pending admission right now (the queue-depth gauge).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Stats plus the instantaneous depth, read under one lock.
    pub fn snapshot(&self) -> QueueSnapshot {
        let g = self.inner.lock().unwrap();
        QueueSnapshot {
            stats: g.stats.clone(),
            depth: g.pending.len(),
        }
    }

    /// Submits one query and blocks until its batch has been answered.
    /// Results are identical to the executor answering the query alone.
    ///
    /// # Panics
    /// Panics on a query dimensionality mismatch.
    pub fn submit(&self, query: &[f32]) -> Vec<Neighbor> {
        let dim = self.exec.dim();
        assert_eq!(query.len(), dim, "query dimensionality mismatch");
        let mut g = self.inner.lock().unwrap();
        let ticket = g.next_ticket;
        g.next_ticket += 1;
        g.pending.push(PendingQuery {
            ticket,
            query: query.to_vec(),
            enqueued: Instant::now(),
        });
        // A sleeping leader may now be able to close a full batch.
        self.cv.notify_all();

        loop {
            if let Some(res) = g.done.remove(&ticket) {
                return res;
            }
            let still_pending = g.pending.iter().any(|p| p.ticket == ticket);
            if still_pending && !g.has_leader {
                // Lead the batch currently forming.
                g.has_leader = true;
                let deadline = g.pending[0].enqueued + self.opts.max_delay;
                loop {
                    if g.pending.len() >= self.opts.max_batch {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    g = self.cv.wait_timeout(g, deadline - now).unwrap().0;
                }
                // Close the batch in submission order and hand leadership
                // back before executing, so the next batch forms (and may
                // run) while this one is in flight.
                let batch = std::mem::take(&mut g.pending);
                g.has_leader = false;
                self.cv.notify_all();
                drop(g);

                let closed_at = Instant::now();
                let mut flat = Vec::with_capacity(batch.len() * dim);
                for p in &batch {
                    flat.extend_from_slice(&p.query);
                }
                let queries = Dataset::from_flat(flat, batch.len(), dim);
                let results = match self.flights {
                    Some(rec) => {
                        // Note admission waits for the queries whose
                        // flights the engine will assemble, *before*
                        // executing so the spans are claimable there.
                        for p in &batch {
                            let fp = query_fingerprint(&p.query);
                            if rec.is_sampled(fp) {
                                let waited = closed_at.saturating_duration_since(p.enqueued);
                                rec.note_queue_wait(fp, waited.as_nanos() as u64);
                            }
                        }
                        self.exec
                            .execute_recorded(&queries, self.opts.k, self.opts.beam, rec)
                    }
                    None => self.exec.execute(&queries, self.opts.k, self.opts.beam),
                };
                debug_assert_eq!(results.len(), batch.len());

                g = self.inner.lock().unwrap();
                g.stats.batches_total += 1;
                g.stats.queries_total += batch.len() as u64;
                g.stats.batch_size.record(batch.len() as u64);
                for (p, res) in batch.into_iter().zip(results) {
                    let waited = closed_at.saturating_duration_since(p.enqueued);
                    g.stats.queue_delay_ns.record(waited.as_nanos() as u64);
                    g.done.insert(p.ticket, res);
                }
                self.cv.notify_all();
                // Loop back: the next pass collects this thread's own
                // ticket from `done`.
            } else {
                // Either a leader is forming our batch or our batch is in
                // flight; sleep until something changes.
                g = self.cv.wait(g).unwrap();
            }
        }
    }
}
