//! The sharded scatter-gather engine: N per-shard engines behind one
//! query surface.
//!
//! A [`ShardSet`] owns the partitioned data — per shard: the ascending
//! global-id map, the shard's [`Dataset`] slice, and a built
//! [`LayoutIndex`]. A [`ShardedEngine`] borrows the set and hosts one
//! [`QueryEngine`] per shard; a query is scattered to every shard,
//! answered locally, mapped back to global ids, and gathered through the
//! order-stable [`merge_topk`] — so whenever every shard returns its true
//! local top-k, the merged result is the true global top-k, *independent
//! of the shard count* (the determinism invariant
//! `crates/core/tests/sharding.rs` certifies at 1/2/4/8 shards).

use std::time::{Duration, Instant};

use super::merge::merge_topk;
use super::partition::partition_ids;
use super::ShardError;
use crate::index::{AnnIndex, FlatIndex};
use crate::locality::{LayoutIndex, NodeLayout};
use crate::search::SearchStats;
use crate::serve::{BatchReport, EngineOptions, EngineSnapshot, LatencySummary, QueryEngine};
use crate::telemetry::expose::{json_histogram, prometheus_counter, prometheus_histogram};
use crate::telemetry::flight::{Flight, FlightObserver, FlightRecorder, NoFlight, SpanRec, Stage};
use crate::telemetry::{Histogram, ShardedCounter};
use weavess_data::{Dataset, Neighbor};

/// One shard: its slice of the dataset, the global ids that slice came
/// from (ascending, so local id order mirrors global id order), and the
/// index built over the slice.
pub struct Shard {
    global_ids: Vec<u32>,
    data: Dataset,
    index: LayoutIndex,
}

impl Shard {
    /// Points in this shard.
    pub fn len(&self) -> usize {
        self.global_ids.len()
    }

    /// True when the shard holds no points (never constructed by
    /// [`ShardSet::build`], which rejects empty shards with a typed
    /// error).
    pub fn is_empty(&self) -> bool {
        self.global_ids.is_empty()
    }

    /// Global dataset ids of this shard's points; `global_ids()[local]`
    /// is the global id of shard-local point `local`.
    pub fn global_ids(&self) -> &[u32] {
        &self.global_ids
    }

    /// The shard's dataset slice (local id space).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The shard's index (local id space).
    pub fn index(&self) -> &LayoutIndex {
        &self.index
    }

    /// Maps a shard-local id to its global id.
    #[inline]
    pub fn to_global(&self, local: u32) -> u32 {
        self.global_ids[local as usize]
    }
}

/// A deterministic partition of one dataset into built shards.
pub struct ShardSet {
    shards: Vec<Shard>,
    partition_seed: u64,
    total_points: usize,
    dim: usize,
}

impl ShardSet {
    /// Partitions `ds` into `shards` deterministic shards (seeded
    /// pseudo-random deal, balanced to within one point) and builds one
    /// index per shard.
    ///
    /// `build_shard` receives each shard's dataset slice and shard number
    /// and returns the [`FlatIndex`] to host (graph, seeds, and router in
    /// the shard's *local* id space); it is then re-hosted on `layout`
    /// (optionally BFS-`reorder`ed) via [`LayoutIndex::try_from_flat`].
    /// `threads` feeds the parallel partition keying pass (0 = auto);
    /// shard builds run sequentially here because every in-tree builder
    /// already parallelizes internally and deterministically.
    pub fn build<F>(
        ds: &Dataset,
        shards: usize,
        partition_seed: u64,
        layout: NodeLayout,
        reorder: bool,
        threads: usize,
        build_shard: F,
    ) -> Result<ShardSet, ShardError>
    where
        F: Fn(&Dataset, usize) -> FlatIndex,
    {
        if shards == 0 {
            return Err(ShardError::NoShards);
        }
        if ds.is_empty() {
            return Err(ShardError::EmptyDataset);
        }
        let parts = partition_ids(ds.len(), shards, partition_seed, threads);
        if let Some(s) = parts.iter().position(|p| p.is_empty()) {
            return Err(ShardError::EmptyShard {
                shard: s,
                shards,
                points: ds.len(),
            });
        }
        let mut built = Vec::with_capacity(shards);
        for (s, global_ids) in parts.into_iter().enumerate() {
            let data = ds.subset(&global_ids);
            let flat = build_shard(&data, s);
            let index = LayoutIndex::try_from_flat(flat, &data, layout, reorder).map_err(|e| {
                ShardError::Index {
                    shard: s,
                    source: e,
                }
            })?;
            built.push(Shard {
                global_ids,
                data,
                index,
            });
        }
        Ok(ShardSet {
            shards: built,
            partition_seed,
            total_points: ds.len(),
            dim: ds.dim(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in shard order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total points across all shards.
    pub fn total_points(&self) -> usize {
        self.total_points
    }

    /// The seed the partition was dealt with.
    pub fn partition_seed(&self) -> u64 {
        self.partition_seed
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Index heap bytes summed over all shards.
    pub fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.index.memory_bytes() + s.global_ids.len() * 4)
            .sum()
    }

    /// Catapult overlay edges summed over all shards (0 until adapted).
    pub fn overlay_edges(&self) -> usize {
        self.shards.iter().map(|s| s.index.overlay_edges()).sum()
    }

    /// Adapts every shard in place from its own trace aggregate (one per
    /// shard, in shard order, each in that shard's index id space — the
    /// ids [`crate::serve::QueryEngine::search_one_traced`] records on the
    /// per-shard engines). Entry refresh is per shard: each shard's
    /// entries move toward *its* observed hubs. Must run before a
    /// [`ShardedEngine`] borrows the set; per-shard adaptation inherits
    /// the single-index determinism contract, so the adapted set is a
    /// pure function of `(set, aggregates, params)`.
    pub fn adapt(
        &mut self,
        aggs: &[crate::telemetry::TraceAggregate],
        params: &crate::adapt::AdaptParams,
    ) -> Result<Vec<crate::adapt::AdaptReport>, crate::adapt::AdaptError> {
        if aggs.len() != self.shards.len() {
            return Err(crate::adapt::AdaptError::ShardCount {
                shards: self.shards.len(),
                aggs: aggs.len(),
            });
        }
        self.shards
            .iter_mut()
            .zip(aggs)
            .map(|(shard, agg)| shard.index.adapt(&shard.data, agg, params))
            .collect()
    }
}

/// Everything one scattered batch returns: merged per-query results in
/// input order (global ids), fleet-aggregated counters, and the full
/// per-shard [`BatchReport`]s.
#[derive(Debug)]
pub struct ShardedBatchReport {
    /// Per-query global-id results, nearest-first, indexed like the input
    /// batch.
    pub results: Vec<Vec<Neighbor>>,
    /// Work counters summed across shards (`ndc`/`hops` add, `pool_peak`
    /// maxes) — the same associative/commutative aggregation the
    /// per-shard engines use internally, so the total is independent of
    /// scatter order.
    pub stats: SearchStats,
    /// Wall-clock of the whole scatter-gather.
    pub wall: Duration,
    /// Summary of [`ShardedBatchReport::latency_hist`].
    pub latency: LatencySummary,
    /// Per-(query, shard) component latencies, merged across shards. A
    /// query's end-to-end latency under concurrent scatter is its slowest
    /// shard, not this histogram's sum; the serving-path numbers come
    /// from the admission queue and `serve_bench`.
    pub latency_hist: Histogram,
    /// Per-(query, shard) NDC distribution, merged across shards.
    pub ndc_hist: Histogram,
    /// Per-(query, shard) hop distribution, merged across shards.
    pub hops_hist: Histogram,
    /// Per-shard reports, indexed by shard (results in *local* id space
    /// have already been consumed into the merged `results`).
    pub per_shard: Vec<BatchReport>,
}

impl ShardedBatchReport {
    /// Queries per second over the batch wall-clock.
    pub fn qps(&self) -> f64 {
        self.results.len() as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Fleet-level observability: per-shard [`EngineSnapshot`]s plus their
/// order-independent merge, renderable as Prometheus text or JSON, with
/// optional admission-queue, recall-audit, and SLO blocks attached by
/// the serving loop.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Snapshots in shard order.
    pub per_shard: Vec<EngineSnapshot>,
    /// Element-wise merge of every shard's snapshot. `queries_total`
    /// counts per-shard query *executions* (a scattered query counts once
    /// per shard); [`FleetReport::logical_queries`] counts queries once.
    pub merged: EngineSnapshot,
    /// Queries answered by the fleet (each scattered query counted once).
    pub logical_queries: u64,
    /// Batches answered by the fleet.
    pub logical_batches: u64,
    /// Admission-queue view, when a [`super::BatchQueue`] fronts the
    /// fleet (attach with [`FleetReport::with_queue`]).
    pub queue: Option<super::QueueSnapshot>,
    /// Live recall-audit view, when a
    /// [`RecallAuditor`](crate::audit::RecallAuditor) shadows the fleet
    /// (attach with [`FleetReport::with_audit`]).
    pub audit: Option<crate::audit::AuditSnapshot>,
    /// Latest SLO evaluation (attach with [`FleetReport::with_slo`]).
    pub slo: Option<crate::audit::SloReport>,
}

impl FleetReport {
    /// Queries answered by the fleet, counting a scattered query once.
    pub fn logical_queries(&self) -> u64 {
        self.logical_queries
    }

    /// Attaches the admission queue's snapshot to the exposition.
    pub fn with_queue(mut self, queue: super::QueueSnapshot) -> Self {
        self.queue = Some(queue);
        self
    }

    /// Attaches the recall auditor's snapshot to the exposition.
    pub fn with_audit(mut self, audit: crate::audit::AuditSnapshot) -> Self {
        self.audit = Some(audit);
        self
    }

    /// Attaches an SLO evaluation to the exposition.
    pub fn with_slo(mut self, slo: crate::audit::SloReport) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Fleet metrics in Prometheus text exposition format: logical
    /// counters, one labeled per-shard series per counter, and the merged
    /// NDC/hop/latency histograms.
    pub fn to_prometheus(&self) -> String {
        use crate::telemetry::expose::prometheus_labeled_counter;
        let mut out = String::new();
        out.push_str(&prometheus_counter(
            "weavess_fleet_queries_total",
            "Queries served by the fleet (scatter counted once).",
            self.logical_queries,
        ));
        out.push_str(&prometheus_counter(
            "weavess_fleet_batches_total",
            "Batches served by the fleet.",
            self.logical_batches,
        ));
        let series = |f: fn(&EngineSnapshot) -> u64| -> Vec<(String, u64)> {
            self.per_shard
                .iter()
                .enumerate()
                .map(|(s, snap)| (s.to_string(), f(snap)))
                .collect()
        };
        out.push_str(&prometheus_labeled_counter(
            "weavess_shard_queries_total",
            "Query executions per shard.",
            "shard",
            &series(|s| s.queries_total),
        ));
        out.push_str(&prometheus_labeled_counter(
            "weavess_shard_batches_total",
            "Batch executions per shard.",
            "shard",
            &series(|s| s.batches_total),
        ));
        out.push_str(&prometheus_histogram(
            "weavess_fleet_query_latency_nanoseconds",
            "Per-(query, shard) wall latency in nanoseconds, merged.",
            &self.merged.latency,
        ));
        out.push_str(&prometheus_histogram(
            "weavess_fleet_query_ndc",
            "Distance computations per (query, shard), merged.",
            &self.merged.ndc,
        ));
        out.push_str(&prometheus_histogram(
            "weavess_fleet_query_hops",
            "Expanded vertices per (query, shard), merged.",
            &self.merged.hops,
        ));
        if let Some(q) = &self.queue {
            out.push_str(&prometheus_counter(
                "weavess_queue_batches_total",
                "Coalesced batches executed by the admission queue.",
                q.stats.batches_total,
            ));
            out.push_str(&prometheus_counter(
                "weavess_queue_queries_total",
                "Queries admitted through the queue.",
                q.stats.queries_total,
            ));
            out.push_str(&crate::telemetry::expose::prometheus_gauge(
                "weavess_queue_depth",
                "Queries pending admission right now.",
                q.depth as f64,
            ));
            out.push_str(&prometheus_histogram(
                "weavess_queue_batch_size",
                "Closed-batch sizes.",
                &q.stats.batch_size,
            ));
            out.push_str(&prometheus_histogram(
                "weavess_queue_wait_nanoseconds",
                "Per-query admission delay (enqueue to batch close) in nanoseconds.",
                &q.stats.queue_delay_ns,
            ));
        }
        if let Some(a) = &self.audit {
            out.push_str(&a.to_prometheus());
        }
        if let Some(s) = &self.slo {
            out.push_str(&s.to_prometheus());
        }
        out
    }

    /// The same fleet metrics as a JSON object.
    pub fn to_json(&self) -> String {
        let per_shard: Vec<String> = self
            .per_shard
            .iter()
            .map(|s| {
                format!(
                    "{{\"queries_total\": {}, \"batches_total\": {}, \"ndc\": {}}}",
                    s.queries_total,
                    s.batches_total,
                    json_histogram(&s.ndc),
                )
            })
            .collect();
        let mut extra = String::new();
        if let Some(q) = &self.queue {
            extra.push_str(&format!(
                ", \"queue\": {{\"batches_total\": {}, \"queries_total\": {}, \
                 \"depth\": {}, \"batch_size\": {}, \"wait_ns\": {}}}",
                q.stats.batches_total,
                q.stats.queries_total,
                q.depth,
                json_histogram(&q.stats.batch_size),
                json_histogram(&q.stats.queue_delay_ns),
            ));
        }
        if let Some(a) = &self.audit {
            extra.push_str(&format!(", \"audit\": {}", a.to_json()));
        }
        if let Some(s) = &self.slo {
            extra.push_str(&format!(", \"slo\": {}", s.to_json()));
        }
        format!(
            "{{\"shards\": {}, \"logical_queries\": {}, \"logical_batches\": {}, \
             \"latency_ns\": {}, \"ndc\": {}, \"hops\": {}, \"per_shard\": [{}]{}}}",
            self.per_shard.len(),
            self.logical_queries,
            self.logical_batches,
            json_histogram(&self.merged.latency),
            json_histogram(&self.merged.ndc),
            json_histogram(&self.merged.hops),
            per_shard.join(", "),
            extra,
        )
    }
}

/// The scatter-gather serving engine over a built [`ShardSet`].
///
/// Every shard gets its own [`QueryEngine`] with the same
/// [`EngineOptions`]; per-query RNG reseeding (a function of the engine
/// seed and the query vector only) therefore behaves identically at any
/// shard count. Batches scatter concurrently — one scope thread per
/// shard, each running that shard's worker pool — and gather through
/// [`merge_topk`], whose `(distance-bits, global id)` order makes the
/// merged results independent of shard response order.
pub struct ShardedEngine<'a> {
    set: &'a ShardSet,
    engines: Vec<QueryEngine<'a>>,
    queries_total: ShardedCounter,
    batches_total: ShardedCounter,
}

impl<'a> ShardedEngine<'a> {
    /// An engine with default per-shard options.
    pub fn new(set: &'a ShardSet) -> Self {
        Self::with_options(set, EngineOptions::default())
    }

    /// An engine with explicit per-shard options (`workers` applies
    /// within each shard; size it so `shards × workers` fits the host).
    pub fn with_options(set: &'a ShardSet, opts: EngineOptions) -> Self {
        let engines = set
            .shards
            .iter()
            .map(|s| QueryEngine::with_options(&s.index, &s.data, opts.clone()))
            .collect();
        ShardedEngine {
            set,
            engines,
            queries_total: ShardedCounter::new(),
            batches_total: ShardedCounter::new(),
        }
    }

    /// The shard set this engine serves.
    pub fn shard_set(&self) -> &ShardSet {
        self.set
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// The per-shard engine (per-shard metrics, traced search, …).
    pub fn engine(&self, shard: usize) -> &QueryEngine<'a> {
        &self.engines[shard]
    }

    /// Queries answered since creation (a scattered query counts once).
    pub fn queries_served(&self) -> u64 {
        self.queries_total.get()
    }

    /// Answers one query: scatter to every shard, gather the global
    /// top-`k`. Results carry global ids and are identical to the same
    /// query inside any [`search_batch`](Self::search_batch).
    pub fn search_one(&self, query: &[f32], k: usize, beam: usize) -> Vec<Neighbor> {
        let pools: Vec<Vec<Neighbor>> = self
            .engines
            .iter()
            .zip(&self.set.shards)
            .map(|(engine, shard)| {
                let mut pool = engine.search_one(query, k, beam);
                for n in &mut pool {
                    n.id = shard.to_global(n.id);
                }
                pool
            })
            .collect();
        self.queries_total.incr();
        merge_topk(&pools, k)
    }

    /// Answers a whole batch: every shard runs the batch through its own
    /// worker pool concurrently, then per-query pools are gathered in
    /// input order.
    pub fn search_batch(&self, queries: &Dataset, k: usize, beam: usize) -> ShardedBatchReport {
        self.search_batch_obs(queries, k, beam, &NoFlight)
    }

    /// [`search_batch`](Self::search_batch) with the per-query flight
    /// recorder enabled: every seed-sampled query lands in `rec`'s ring
    /// as one flight whose spans attribute the batch-scoped scatter, one
    /// [`Stage::ShardSearch`] per shard (with that shard's latency, NDC,
    /// and hops for this query), and the per-query top-k merge — plus a
    /// queue-wait span when the admission queue noted one. Results are
    /// identical to the plain path.
    pub fn search_batch_flights(
        &self,
        queries: &Dataset,
        k: usize,
        beam: usize,
        rec: &FlightRecorder,
    ) -> ShardedBatchReport {
        self.search_batch_obs(queries, k, beam, rec)
    }

    /// The generic scatter-gather: with [`NoFlight`] every flight branch
    /// compiles away to exactly the old batch path.
    fn search_batch_obs<F: FlightObserver>(
        &self,
        queries: &Dataset,
        k: usize,
        beam: usize,
        obs: &F,
    ) -> ShardedBatchReport {
        use crate::serve::BatchFlightParts;
        let nq = queries.len();
        let t0 = Instant::now();
        // Scatter: one scope thread per shard; slot results by shard index
        // so the gather below is independent of completion order.
        let mut shard_results: Vec<(Vec<Vec<Neighbor>>, BatchReport, BatchFlightParts)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .engines
                    .iter()
                    .zip(&self.set.shards)
                    .map(|(engine, shard)| {
                        scope.spawn(move || {
                            let (mut report, parts) =
                                engine.search_batch_obs(queries, k, beam, obs);
                            let mut globalized = std::mem::take(&mut report.results);
                            for pool in &mut globalized {
                                for n in pool.iter_mut() {
                                    n.id = shard.to_global(n.id);
                                }
                            }
                            (globalized, report, parts)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard scatter panicked"))
                    .collect()
            });
        let scatter_ns = t0.elapsed().as_nanos() as u64;

        // Gather: order-stable per-query merge plus associative aggregate
        // merges, all in shard order (any order would give the same
        // answer; shard order keeps `per_shard` indexable).
        let mut per_query: Vec<Vec<Vec<Neighbor>>> = Vec::with_capacity(nq);
        per_query.resize_with(nq, || Vec::with_capacity(self.engines.len()));
        for (globalized, _, _) in &mut shard_results {
            for (qi, pool) in globalized.drain(..).enumerate() {
                per_query[qi].push(pool);
            }
        }
        let mut merge_ns: Vec<u64> = Vec::new();
        let results: Vec<Vec<Neighbor>> = if F::ENABLED {
            merge_ns.reserve(nq);
            per_query
                .iter()
                .map(|p| {
                    let tm = Instant::now();
                    let merged = merge_topk(p, k);
                    merge_ns.push(tm.elapsed().as_nanos() as u64);
                    merged
                })
                .collect()
        } else {
            per_query.iter().map(|p| merge_topk(p, k)).collect()
        };

        if F::ENABLED {
            if let Some(rec) = obs.recorder() {
                let parts: Vec<&BatchFlightParts> =
                    shard_results.iter().map(|(_, _, p)| p).collect();
                self.assemble_flights(rec, k, beam, scatter_ns, &merge_ns, &parts, &results);
            }
        }

        let mut stats = SearchStats::default();
        let mut latency_hist = Histogram::new();
        let mut ndc_hist = Histogram::new();
        let mut hops_hist = Histogram::new();
        let per_shard: Vec<BatchReport> = shard_results
            .drain(..)
            .map(|(_, report, _)| {
                stats.merge(report.stats);
                latency_hist.merge(&report.latency_hist);
                ndc_hist.merge(&report.ndc_hist);
                hops_hist.merge(&report.hops_hist);
                report
            })
            .collect();
        self.queries_total.add(nq as u64);
        self.batches_total.incr();
        ShardedBatchReport {
            results,
            stats,
            wall: t0.elapsed(),
            latency: LatencySummary::from_histogram(&latency_hist),
            latency_hist,
            ndc_hist,
            hops_hist,
            per_shard,
        }
    }

    /// Builds one flight per seed-sampled query from the per-shard parts
    /// (every shard samples the same fingerprint set, so part lists
    /// align), plus the batch's slowest shard-search when it beats the
    /// recorder's high-water mark.
    #[allow(clippy::too_many_arguments)]
    fn assemble_flights(
        &self,
        rec: &FlightRecorder,
        k: usize,
        beam: usize,
        scatter_ns: u64,
        merge_ns: &[u64],
        parts: &[&crate::serve::BatchFlightParts],
        results: &[Vec<Neighbor>],
    ) {
        let batch = rec.next_batch();
        let n_sampled = parts.first().map_or(0, |p| p.sampled.len());
        debug_assert!(
            parts.iter().all(|p| p.sampled.len() == n_sampled),
            "sampling must be shard-independent"
        );
        for j in 0..n_sampled {
            let lead = parts[0].sampled[j];
            let qi = lead.qi;
            let mut spans = Vec::with_capacity(parts.len() + 3);
            let mut t = 0u64;
            if let Some(waited) = rec.take_queue_wait(lead.fingerprint) {
                spans.push(SpanRec {
                    stage: Stage::QueueWait,
                    shard: None,
                    start_ns: 0,
                    dur_ns: waited,
                    ndc: 0,
                    hops: 0,
                });
                t = waited;
            }
            spans.push(SpanRec {
                stage: Stage::Scatter,
                shard: None,
                start_ns: t,
                dur_ns: scatter_ns,
                ndc: 0,
                hops: 0,
            });
            for (s, shard_parts) in parts.iter().enumerate() {
                let p = shard_parts.sampled[j];
                debug_assert_eq!(p.qi, qi, "per-shard sampled sets must align");
                spans.push(SpanRec {
                    stage: Stage::ShardSearch,
                    shard: Some(s as u32),
                    start_ns: t,
                    dur_ns: p.lat_ns,
                    ndc: p.ndc,
                    hops: p.hops,
                });
            }
            let m = merge_ns.get(qi as usize).copied().unwrap_or(0);
            spans.push(SpanRec {
                stage: Stage::Merge,
                shard: None,
                start_ns: t + scatter_ns,
                dur_ns: m,
                ndc: 0,
                hops: 0,
            });
            rec.push(Flight {
                batch,
                qi,
                fingerprint: lead.fingerprint,
                k,
                beam,
                results: results[qi as usize].iter().map(|n| n.id).collect(),
                sampled: true,
                total_ns: t + scatter_ns + m,
                spans,
            });
        }
        // The slowest shard-search across the batch: timing-dependent by
        // nature, kept only above the high-water mark and excluded from
        // the stable dump.
        let slowest = parts
            .iter()
            .enumerate()
            .filter_map(|(s, p)| p.slowest.map(|x| (s, x)))
            .max_by_key(|(_, x)| x.lat_ns);
        if let Some((s, p)) = slowest {
            if !rec.is_sampled(p.fingerprint) && rec.keep_slowest(p.lat_ns) {
                let m = merge_ns.get(p.qi as usize).copied().unwrap_or(0);
                rec.push(Flight {
                    batch,
                    qi: p.qi,
                    fingerprint: p.fingerprint,
                    k,
                    beam,
                    results: results[p.qi as usize].iter().map(|n| n.id).collect(),
                    sampled: false,
                    total_ns: scatter_ns + m,
                    spans: vec![
                        SpanRec {
                            stage: Stage::Scatter,
                            shard: None,
                            start_ns: 0,
                            dur_ns: scatter_ns,
                            ndc: 0,
                            hops: 0,
                        },
                        SpanRec {
                            stage: Stage::ShardSearch,
                            shard: Some(s as u32),
                            start_ns: 0,
                            dur_ns: p.lat_ns,
                            ndc: p.ndc,
                            hops: p.hops,
                        },
                        SpanRec {
                            stage: Stage::Merge,
                            shard: None,
                            start_ns: scatter_ns,
                            dur_ns: m,
                            ndc: 0,
                            hops: 0,
                        },
                    ],
                });
            }
        }
    }

    /// Fleet-level cumulative metrics: per-shard snapshots and their
    /// merge.
    pub fn fleet_report(&self) -> FleetReport {
        let per_shard: Vec<EngineSnapshot> = self.engines.iter().map(|e| e.snapshot()).collect();
        let mut merged = EngineSnapshot::default();
        for s in &per_shard {
            merged.queries_total += s.queries_total;
            merged.batches_total += s.batches_total;
            merged.latency.merge(&s.latency);
            merged.ndc.merge(&s.ndc);
            merged.hops.merge(&s.hops);
        }
        FleetReport {
            per_shard,
            merged,
            logical_queries: self.queries_total.get(),
            logical_batches: self.batches_total.get(),
            queue: None,
            audit: None,
            slo: None,
        }
    }

    /// [`FleetReport::to_prometheus`] on the current snapshots.
    pub fn metrics_prometheus(&self) -> String {
        self.fleet_report().to_prometheus()
    }

    /// [`FleetReport::to_json`] on the current snapshots.
    pub fn metrics_json(&self) -> String {
        self.fleet_report().to_json()
    }
}
