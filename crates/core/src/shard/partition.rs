//! Seeded, deterministic dataset partitioning.
//!
//! The partition is a pure function of `(n, shards, seed)` — never of
//! thread count, insertion order, or wall clock. Every point gets a
//! 64-bit mixing key (computed in parallel over the fixed chunks of
//! [`crate::parallel`]); ids are then ranked by `(key, id)` — a seeded
//! pseudo-random permutation — and dealt round-robin across shards, so
//! shard sizes differ by at most one and no shard is empty whenever
//! `n >= shards`.

use crate::parallel::{self, CHUNK};

/// SplitMix64 finalizer over `seed ^ id`: the per-point partition key.
/// Stateless, so any subrange of keys can be computed independently and
/// in parallel.
#[inline]
pub fn partition_key(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Assigns `0..n` to `shards` shards: ascending global ids per shard,
/// balanced to within one point, deterministic for a fixed `seed`.
///
/// The keying pass runs through [`parallel::par_chunks_map`] with fixed
/// chunks combined in chunk order; the rank-and-deal tail is a sequential
/// sort of `(key, id)` pairs, so the whole partition is identical at any
/// `threads` (0 = auto).
pub fn partition_ids(n: usize, shards: usize, seed: u64, threads: usize) -> Vec<Vec<u32>> {
    assert!(shards > 0, "need at least one shard");
    let threads = parallel::resolve_threads(threads);
    let keyed_chunks = parallel::par_chunks_map(
        n,
        CHUNK,
        threads,
        || (),
        |_, range| {
            range
                .map(|i| (partition_key(seed, i as u64), i as u32))
                .collect::<Vec<_>>()
        },
    );
    let mut keyed: Vec<(u64, u32)> = keyed_chunks.into_iter().flatten().collect();
    // (key, id) pairs are distinct (ids are), so the order is total and
    // the resulting permutation is unique.
    keyed.sort_unstable();
    let mut out: Vec<Vec<u32>> = (0..shards)
        .map(|s| Vec::with_capacity(n / shards + usize::from(s < n % shards)))
        .collect();
    for (rank, &(_, id)) in keyed.iter().enumerate() {
        out[rank % shards].push(id);
    }
    // Ascending ids per shard: local id order mirrors global id order,
    // which keeps per-shard graph builds and the local→global map simple.
    for ids in &mut out {
        ids.sort_unstable();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_id_exactly_once() {
        let parts = partition_ids(1_003, 8, 42, 0);
        assert_eq!(parts.len(), 8);
        let mut all: Vec<u32> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1_003).collect::<Vec<u32>>());
    }

    #[test]
    fn partition_is_balanced_to_within_one() {
        for (n, shards) in [(1_000usize, 8usize), (17, 4), (8, 8), (9, 8)] {
            let parts = partition_ids(n, shards, 7, 0);
            let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "n={n} shards={shards} sizes={sizes:?}");
            assert!(*lo >= 1, "no shard may be empty when n >= shards");
        }
    }

    #[test]
    fn partition_is_thread_count_independent_and_seed_sensitive() {
        let a = partition_ids(2_000, 4, 99, 1);
        for threads in [2usize, 8] {
            assert_eq!(partition_ids(2_000, 4, 99, threads), a, "threads={threads}");
        }
        assert_ne!(partition_ids(2_000, 4, 100, 1), a, "seed must matter");
    }

    #[test]
    fn shard_ids_are_ascending() {
        for ids in partition_ids(500, 3, 5, 0) {
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn more_shards_than_points_leaves_trailing_shards_empty() {
        let parts = partition_ids(3, 5, 1, 0);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 3);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 3);
    }
}
