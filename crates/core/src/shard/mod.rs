//! The sharded scatter-gather serving tier — the "millions of users"
//! milestone.
//!
//! One machine-sized [`crate::serve::QueryEngine`] answers batches over
//! one index; production traffic is a stream against a dataset that may
//! not fit one index. This module partitions the dataset into N
//! deterministic shards and serves them behind a single query surface:
//!
//! - [`partition`]: seeded pseudo-random deal of point ids to shards —
//!   a pure function of `(n, shards, seed)`, balanced to within one
//!   point, keyed in parallel through [`crate::parallel`];
//! - [`ShardSet`]: the built artifact — per shard a dataset slice, an
//!   ascending global-id map, and a [`crate::locality::LayoutIndex`];
//! - [`ShardedEngine`]: scatter a query (or batch) to every shard's
//!   [`crate::serve::QueryEngine`], gather through the order-stable
//!   [`merge_topk`];
//! - [`BatchQueue`]: the admission queue coalescing streaming single
//!   queries into engine batches under a latency budget;
//! - [`FleetReport`]: per-shard + merged observability on the existing
//!   Prometheus/JSON exposition.
//!
//! # The determinism invariant
//!
//! For a fixed partition seed, results are **independent of the shard
//! count** whenever each shard answers exactly (returns its true local
//! top-k): the merge is a k-select under the total `(distance-bits,
//! global id)` order, and a k-select over any partition of the candidates
//! equals the global k-select. `crates/core/tests/sharding.rs` certifies
//! this bit-for-bit at 1/2/4/8 shards against the unsharded engine for
//! all five search routines, and property-tests the merge law in
//! isolation. With approximate per-shard search the invariant degrades
//! gracefully into "merged recall ≥ per-shard recall", and `serve_bench`
//! reports both.

pub mod engine;
pub mod merge;
pub mod partition;
pub mod queue;

pub use engine::{FleetReport, Shard, ShardSet, ShardedBatchReport, ShardedEngine};
pub use merge::{merge_topk, merge_two};
pub use partition::{partition_ids, partition_key};
pub use queue::{BatchExecutor, BatchQueue, QueueOptions, QueueSnapshot, QueueStats};

use crate::index::IndexError;

/// A typed sharding failure: partition or per-shard build rejected the
/// input. Matching on this (rather than catching a panic) is what lets a
/// serving control plane degrade — retry with fewer shards, or refuse the
/// configuration — instead of dying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// A shard count of zero was requested.
    NoShards,
    /// The dataset holds no points.
    EmptyDataset,
    /// The partition produced an empty shard (`points < shards`).
    EmptyShard {
        /// Which shard came up empty.
        shard: usize,
        /// Requested shard count.
        shards: usize,
        /// Points available.
        points: usize,
    },
    /// A per-shard index build failed.
    Index {
        /// Which shard's build failed.
        shard: usize,
        /// The underlying index error.
        source: IndexError,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "shard count must be positive"),
            ShardError::EmptyDataset => write!(f, "cannot shard an empty dataset"),
            ShardError::EmptyShard {
                shard,
                shards,
                points,
            } => write!(
                f,
                "shard {shard} of {shards} is empty ({points} points cannot fill {shards} shards)"
            ),
            ShardError::Index { shard, source } => {
                write!(f, "building shard {shard} failed: {source}")
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Index { source, .. } => Some(source),
            _ => None,
        }
    }
}
