//! C4 (seed preprocessing) + C6 (seed acquisition), Definition 4.3.
//!
//! The two components are interlocked (§5.4): choosing the preprocessing
//! fixes the acquisition, so one strategy object covers both. Static
//! strategies (fixed entry, random) carry no extra index; dynamic ones own
//! the auxiliary structure and *charge its distance computations to the
//! query's NDC* — the accounting that makes tree-based seeds expensive on
//! hard datasets in Figure 10(d).

use crate::search::SearchStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::Dataset;
use weavess_trees::{BkTree, KdForest, LshTable, VpTree};

/// A seed (entry point) strategy.
pub enum SeedStrategy {
    /// `count` uniformly random vertices per query (KGraph, NSW, FANNG, DPG).
    Random {
        /// Seeds per query.
        count: usize,
    },
    /// A fixed seed set chosen at build time: NSG/Vamana's medoid, NSSG/OA's
    /// random-but-fixed entries, HNSW's top-layer enter point.
    Fixed(Vec<u32>),
    /// Distance-free KD-forest leaf lookup (HCNNG): descend each tree by
    /// value comparisons and seed from the reached leaves. Zero NDC.
    KdLeaf {
        /// The forest.
        forest: KdForest,
        /// Seeds per query.
        count: usize,
    },
    /// Budgeted KD-forest search (EFANNA, SPTAG-KDT): better seeds, paid
    /// for with distance computations.
    KdSearch {
        /// The forest.
        forest: KdForest,
        /// Seeds per query.
        count: usize,
        /// Distance budget per tree.
        checks_per_tree: usize,
    },
    /// VP-tree search (NGT).
    Vp {
        /// The tree.
        tree: VpTree,
        /// Seeds per query.
        count: usize,
        /// Distance budget.
        checks: usize,
    },
    /// Balanced k-means tree search (SPTAG-BKT).
    Bk {
        /// The tree.
        tree: BkTree,
        /// Seeds per query.
        count: usize,
        /// Distance budget.
        checks: usize,
    },
    /// LSH bucket probe (IEH).
    Lsh {
        /// The hash tables.
        table: LshTable,
        /// Seeds per query.
        count: usize,
        /// Fallback seeds when buckets come up empty.
        fallback: Vec<u32>,
    },
    /// PQ-compressed linear scan (the §4.1 reference to Douze et al.:
    /// "compresses the original vector by OPQ to obtain the seeds by
    /// quickly calculating the compressed vector"). A full scan over
    /// `m`-byte codes costs `n·m/dim` full-distance equivalents.
    Pq {
        /// The trained quantizer + codes.
        pq: weavess_data::pq::PqDataset,
        /// Seeds per query.
        count: usize,
    },
}

/// Picks `count` well-spread fixed entries by greedy farthest-point
/// (k-center) sampling: start from a seeded random vertex, then repeatedly
/// add the vertex maximizing the distance to the chosen set. Deterministic
/// given `seed`, costs `count·n` distance computations once at build time,
/// and — unlike uniform random draws — covers every cluster of a clustered
/// dataset, so beam search never depends on sparse repair bridges to cross
/// between clusters. NSSG and OA use this for their fixed entry sets.
pub fn spread_entries(ds: &Dataset, count: usize, seed: u64) -> Vec<u32> {
    let n = ds.len();
    let count = count.clamp(1, n.max(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let first = rng.gen_range(0..n as u32);
    let mut chosen = Vec::with_capacity(count);
    chosen.push(first);
    let mut min_d: Vec<f32> = (0..n as u32).map(|i| ds.dist(first, i)).collect();
    while chosen.len() < count {
        let far = min_d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as u32)
            .expect("non-empty dataset");
        chosen.push(far);
        for (i, slot) in min_d.iter_mut().enumerate() {
            let d = ds.dist(far, i as u32);
            if d < *slot {
                *slot = d;
            }
        }
    }
    chosen
}

impl SeedStrategy {
    /// Produces this query's seeds, charging any distance computations the
    /// auxiliary structure spent to `stats`.
    pub fn seeds(
        &self,
        ds: &Dataset,
        query: &[f32],
        rng: &mut StdRng,
        stats: &mut SearchStats,
    ) -> Vec<u32> {
        match self {
            SeedStrategy::Random { count } => {
                let n = ds.len() as u32;
                let count = (*count).min(ds.len()).max(1);
                let mut out = Vec::with_capacity(count);
                while out.len() < count {
                    let c = rng.gen_range(0..n);
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
            SeedStrategy::Fixed(v) => v.clone(),
            SeedStrategy::KdLeaf { forest, count } => {
                let s = forest.leaf_seeds(query, *count);
                if s.is_empty() {
                    vec![0]
                } else {
                    s
                }
            }
            SeedStrategy::KdSearch {
                forest,
                count,
                checks_per_tree,
            } => {
                let (pool, ndc) = forest.search(ds, query, *count, *checks_per_tree);
                stats.ndc += ndc;
                pool.iter().map(|n| n.id).collect()
            }
            SeedStrategy::Vp {
                tree,
                count,
                checks,
            } => {
                let (pool, ndc) = tree.search(ds, query, *count, *checks);
                stats.ndc += ndc;
                pool.iter().map(|n| n.id).collect()
            }
            SeedStrategy::Bk {
                tree,
                count,
                checks,
            } => {
                let (pool, ndc) = tree.search(ds, query, *count, *checks);
                stats.ndc += ndc;
                pool.iter().map(|n| n.id).collect()
            }
            SeedStrategy::Lsh {
                table,
                count,
                fallback,
            } => {
                let (mut s, cost) = table.seeds(query, *count);
                stats.ndc += cost;
                if s.is_empty() {
                    s.extend_from_slice(fallback);
                }
                s
            }
            SeedStrategy::Pq { pq, count } => {
                let t = pq.tables(query);
                let mut pool: Vec<weavess_data::Neighbor> = Vec::with_capacity(count + 1);
                for id in 0..pq.len() as u32 {
                    weavess_data::neighbor::insert_into_pool(
                        &mut pool,
                        *count,
                        weavess_data::Neighbor::new(id, pq.dist_with(&t, id)),
                    );
                }
                // Charge the scan at its true cost in full-distance
                // equivalents (m lookups per point vs dim mults).
                stats.ndc += ((pq.len() * pq.m()) as f64 / ds.dim() as f64).ceil() as u64;
                pool.iter().map(|n| n.id).collect()
            }
        }
    }

    /// Bytes of auxiliary index this strategy adds (Figure 6 / Table 5 MO).
    pub fn memory_bytes(&self) -> usize {
        match self {
            SeedStrategy::Random { .. } => 0,
            SeedStrategy::Fixed(v) => v.len() * 4,
            SeedStrategy::KdLeaf { forest, .. } => forest.memory_bytes(),
            SeedStrategy::KdSearch { forest, .. } => forest.memory_bytes(),
            SeedStrategy::Vp { tree, .. } => tree.memory_bytes(),
            SeedStrategy::Bk { tree, .. } => tree.memory_bytes(),
            SeedStrategy::Lsh {
                table, fallback, ..
            } => table.memory_bytes() + fallback.len() * 4,
            SeedStrategy::Pq { pq, .. } => pq.memory_bytes(),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SeedStrategy::Random { .. } => "random",
            SeedStrategy::Fixed(_) => "fixed",
            SeedStrategy::KdLeaf { .. } => "kd-leaf",
            SeedStrategy::KdSearch { .. } => "kd-search",
            SeedStrategy::Vp { .. } => "vp-tree",
            SeedStrategy::Bk { .. } => "bk-tree",
            SeedStrategy::Lsh { .. } => "lsh",
            SeedStrategy::Pq { .. } => "pq-scan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use weavess_data::synthetic::MixtureSpec;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(8, 400, 4, 3.0, 10).generate()
    }

    #[test]
    fn random_seeds_are_distinct_and_in_range() {
        let (ds, qs) = dataset();
        let s = SeedStrategy::Random { count: 6 };
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SearchStats::default();
        let seeds = s.seeds(&ds, qs.point(0), &mut rng, &mut stats);
        assert_eq!(seeds.len(), 6);
        assert!(seeds.iter().all(|&x| (x as usize) < ds.len()));
        let mut d = seeds.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 6);
        assert_eq!(stats.ndc, 0); // no preprocessing cost
    }

    #[test]
    fn fixed_seeds_do_not_consume_rng() {
        let (ds, qs) = dataset();
        let s = SeedStrategy::Fixed(vec![3, 1, 4]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SearchStats::default();
        assert_eq!(
            s.seeds(&ds, qs.point(0), &mut rng, &mut stats),
            vec![3, 1, 4]
        );
    }

    #[test]
    fn tree_strategies_charge_ndc() {
        let (ds, qs) = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let forest = KdForest::build(&ds, 2, 16, &mut rng);
        let leaf = SeedStrategy::KdLeaf { forest, count: 8 };
        let mut stats = SearchStats::default();
        let seeds = leaf.seeds(&ds, qs.point(0), &mut rng, &mut stats);
        assert!(!seeds.is_empty());
        assert_eq!(stats.ndc, 0, "leaf lookup is distance-free");

        let forest2 = KdForest::build(&ds, 2, 16, &mut rng);
        let search = SeedStrategy::KdSearch {
            forest: forest2,
            count: 8,
            checks_per_tree: 64,
        };
        let mut stats2 = SearchStats::default();
        let seeds2 = search.seeds(&ds, qs.point(0), &mut rng, &mut stats2);
        assert!(!seeds2.is_empty());
        assert!(stats2.ndc > 0, "budgeted search must charge NDC");
    }

    #[test]
    fn vp_and_bk_strategies_return_close_seeds() {
        let (ds, qs) = dataset();
        let q = qs.point(0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = SearchStats::default();
        let vp = SeedStrategy::Vp {
            tree: VpTree::build(&ds, 8),
            count: 4,
            checks: 200,
        };
        let bk = SeedStrategy::Bk {
            tree: BkTree::build(&ds, 4, 16),
            count: 4,
            checks: 200,
        };
        for s in [vp, bk] {
            let seeds = s.seeds(&ds, q, &mut rng, &mut stats);
            assert!(!seeds.is_empty(), "{}", s.label());
        }
        assert!(stats.ndc > 0);
    }

    #[test]
    fn pq_seeds_are_close_and_charge_scan_cost() {
        let (ds, qs) = dataset();
        let pq = weavess_data::pq::PqDataset::train(&ds, 4, 300);
        let s = SeedStrategy::Pq { pq, count: 8 };
        let mut rng = StdRng::seed_from_u64(5);
        let mut stats = SearchStats::default();
        let q = qs.point(0);
        let seeds = s.seeds(&ds, q, &mut rng, &mut stats);
        assert_eq!(seeds.len(), 8);
        assert!(stats.ndc > 0, "PQ scan must charge NDC");
        // PQ seeds should beat random strided picks on average distance.
        let seed_avg: f32 =
            seeds.iter().map(|&x| ds.dist_to(q, x)).sum::<f32>() / seeds.len() as f32;
        let rand_avg: f32 = (0..8)
            .map(|i| ds.dist_to(q, (i * ds.len() / 8) as u32))
            .sum::<f32>()
            / 8.0;
        assert!(seed_avg < rand_avg, "{seed_avg} !< {rand_avg}");
        assert!(s.memory_bytes() > 0);
    }

    #[test]
    fn memory_accounting_is_nonzero_for_dynamic_strategies() {
        let (ds, _) = dataset();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(SeedStrategy::Random { count: 4 }.memory_bytes(), 0);
        let s = SeedStrategy::Lsh {
            table: LshTable::build(&ds, 2, 8, &mut rng),
            count: 8,
            fallback: vec![0],
        };
        assert!(s.memory_bytes() > 0);
    }
}
