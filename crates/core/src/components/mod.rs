//! The fine-grained pipeline components of §4 as composable pieces.
//!
//! | component | module | implementations |
//! |-----------|--------|-----------------|
//! | C1 initialization | [`init`] | random, NN-Descent, KD-forest, brute force |
//! | C2 candidate acquisition | [`candidates`] | graph search, 2-hop expansion, direct neighbors |
//! | C3 neighbor selection | [`selection`] | distance-only, RNG rule (α-generalized), NSSG angle, DPG angular, MST |
//! | C4 seed preprocessing + C6 seed acquisition | [`seeds`] | random, fixed, KD-forest, VP-tree, BK-tree, LSH |
//! | C5 connectivity | [`connectivity`] | DFS repair, reverse edges |
//! | C7 routing | [`crate::search`] | best-first, range, backtrack, guided, two-stage |

pub mod candidates;
pub mod connectivity;
pub mod init;
pub mod seeds;
pub mod selection;

pub use seeds::SeedStrategy;
