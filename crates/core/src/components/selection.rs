//! C3 — neighbor selection (Definition 4.5): pick a point's final
//! neighbors from its candidates, balancing the *distance* factor against
//! the *space-distribution* factor (§4.1).
//!
//! Appendix A proves HNSW's heuristic and NSG's MRNG rule are equivalent;
//! here both are [`select_rng_alpha`] with `alpha = 1` (Vamana's `α`
//! generalization relaxes the occlusion test). A property test in this
//! module exercises the Appendix A equivalence directly.

use weavess_data::distance::cosine_angle_at;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::base::mst_prim;

/// Distance-only selection (KGraph, EFANNA, IEH, NSW, SPTAG-KDT): the
/// `max_degree` closest candidates.
pub fn select_closest(candidates: &[Neighbor], max_degree: usize) -> Vec<Neighbor> {
    candidates.iter().take(max_degree).copied().collect()
}

/// The RNG-rule selection of HNSW / NSG / FANNG, generalized with Vamana's
/// `alpha ≥ 1`.
///
/// Candidates must be sorted nearest-first. A candidate `m` is kept iff for
/// every already-kept neighbor `n`: `alpha · δ(m, n) > δ(m, p)` — i.e. no
/// kept neighbor occludes it. `alpha = 1` is exactly HNSW's heuristic and
/// NSG's MRNG rule (Appendix A); larger `alpha` keeps more, longer edges.
pub fn select_rng_alpha(
    ds: &Dataset,
    p: u32,
    candidates: &[Neighbor],
    max_degree: usize,
    alpha: f32,
) -> Vec<Neighbor> {
    debug_assert!(alpha >= 1.0);
    // Distances are squared, so the α scale applies squared too.
    let a2 = alpha * alpha;
    let mut kept: Vec<Neighbor> = Vec::with_capacity(max_degree);
    for &m in candidates {
        if m.id == p {
            continue;
        }
        if kept.len() >= max_degree {
            break;
        }
        let occluded = kept.iter().any(|n| a2 * ds.dist(m.id, n.id) <= m.dist);
        if !occluded {
            kept.push(m);
        }
    }
    kept
}

/// NSSG's angle-threshold selection: keep a candidate iff the angle at `p`
/// between it and every kept neighbor is at least `min_angle_deg`
/// (the paper recommends 60°).
pub fn select_angle(
    ds: &Dataset,
    p: u32,
    candidates: &[Neighbor],
    max_degree: usize,
    min_angle_deg: f32,
) -> Vec<Neighbor> {
    let cos_max = min_angle_deg.to_radians().cos();
    let mut kept: Vec<Neighbor> = Vec::with_capacity(max_degree);
    let pp = ds.point(p);
    for &m in candidates {
        if m.id == p {
            continue;
        }
        if kept.len() >= max_degree {
            break;
        }
        let too_close = kept.iter().any(|n| {
            // angle < threshold  <=>  cos(angle) > cos(threshold)
            cosine_angle_at(pp, ds.point(m.id), ds.point(n.id)) > cos_max
        });
        if !too_close {
            kept.push(m);
        }
    }
    kept
}

/// DPG's angular diversification: greedily pick `kappa` candidates
/// maximizing the accumulated sum of pairwise angles at `p` (Appendix C
/// shows this approximates the RNG rule).
pub fn select_dpg(ds: &Dataset, p: u32, candidates: &[Neighbor], kappa: usize) -> Vec<Neighbor> {
    let cands: Vec<Neighbor> = candidates.iter().filter(|n| n.id != p).copied().collect();
    if cands.len() <= kappa {
        return cands;
    }
    let pp = ds.point(p);
    let mut kept: Vec<Neighbor> = Vec::with_capacity(kappa);
    let mut remaining = cands;
    // Seed with the closest candidate (the DPG paper's first iteration).
    kept.push(remaining.remove(0));
    // angle_sum[i] accumulates Σ angle(remaining[i], kept_j) incrementally,
    // giving the O(c²·κ) cost derived in Appendix D.
    let mut angle_sum: Vec<f32> = vec![0.0; remaining.len()];
    while kept.len() < kappa && !remaining.is_empty() {
        let last = *kept.last().unwrap();
        let mut best = 0usize;
        let mut best_sum = f32::NEG_INFINITY;
        for (i, cand) in remaining.iter().enumerate() {
            let cos = cosine_angle_at(pp, ds.point(cand.id), ds.point(last.id));
            angle_sum[i] += cos.acos();
            if angle_sum[i] > best_sum {
                best_sum = angle_sum[i];
                best = i;
            }
        }
        kept.push(remaining.remove(best));
        angle_sum.remove(best);
    }
    kept.sort_unstable();
    kept
}

/// HCNNG-style MST selection: build an MST over `{p} ∪ candidates` and keep
/// the vertices adjacent to `p` in the tree.
pub fn select_mst(ds: &Dataset, p: u32, candidates: &[Neighbor]) -> Vec<Neighbor> {
    let mut ids: Vec<u32> = vec![p];
    ids.extend(candidates.iter().filter(|n| n.id != p).map(|n| n.id));
    let edges = mst_prim(ds, &ids);
    let mut kept: Vec<Neighbor> = edges
        .iter()
        .filter_map(|e| {
            if e.a == p {
                Some(Neighbor::new(e.b, e.w))
            } else if e.b == p {
                Some(Neighbor::new(e.a, e.w))
            } else {
                None
            }
        })
        .collect();
    kept.sort_unstable();
    kept
}

/// The HNSW-heuristic formulation of the RNG rule, written exactly as the
/// paper's *Condition 1* (Appendix A): keep `m` iff
/// `∀ n ∈ N(p): δ(m, n) > δ(m, p)`. Used by the property test proving the
/// Appendix A equivalence with the lune-based MRNG formulation.
pub fn select_hnsw_heuristic(
    ds: &Dataset,
    p: u32,
    candidates: &[Neighbor],
    max_degree: usize,
) -> Vec<Neighbor> {
    select_rng_alpha(ds, p, candidates, max_degree, 1.0)
}

/// NSG's lune-based MRNG formulation, written exactly as the paper's
/// *Condition 2* (Appendix A): keep `m` iff no *kept* neighbor lies in
/// `lune(p, m) ∩ C`.
pub fn select_nsg_mrng(
    ds: &Dataset,
    p: u32,
    candidates: &[Neighbor],
    max_degree: usize,
) -> Vec<Neighbor> {
    let mut kept: Vec<Neighbor> = Vec::with_capacity(max_degree);
    for &m in candidates {
        if m.id == p {
            continue;
        }
        if kept.len() >= max_degree {
            break;
        }
        // lune_pm = B(p, δ(p,m)) ∩ B(m, δ(m,p)); kept n occludes m iff
        // n ∈ lune_pm.
        let occluded = kept
            .iter()
            .any(|n| ds.dist(p, n.id) < m.dist && ds.dist(m.id, n.id) < m.dist);
        if !occluded {
            kept.push(m);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_data::Dataset;

    fn dataset() -> Dataset {
        MixtureSpec::table10(4, 200, 2, 5.0, 5).generate().0
    }

    fn candidates_for(ds: &Dataset, p: u32, count: usize) -> Vec<Neighbor> {
        knn_scan(ds, ds.point(p), count, Some(p))
    }

    #[test]
    fn closest_takes_prefix() {
        let ds = dataset();
        let c = candidates_for(&ds, 0, 10);
        assert_eq!(select_closest(&c, 4), c[..4].to_vec());
    }

    #[test]
    fn rng_rule_spreads_neighbors() {
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0], // p
            vec![1.0, 0.0],
            vec![1.2, 0.1], // occluded by point 1
            vec![0.0, 1.0],
        ]);
        let c = candidates_for(&ds, 0, 3);
        let kept = select_rng_alpha(&ds, 0, &c, 8, 1.0);
        let ids: Vec<u32> = kept.iter().map(|n| n.id).collect();
        assert!(ids.contains(&1) && ids.contains(&3));
        assert!(!ids.contains(&2), "occluded candidate survived: {ids:?}");
    }

    #[test]
    fn alpha_relaxes_the_occlusion_test() {
        // Greedy occlusion selection is not monotone element-wise: an
        // extra neighbor kept at α=2 can itself occlude a candidate that
        // α=1 keeps. The sound cross-α claims are: both keep the closest
        // candidate, each kept set satisfies its own occlusion invariant,
        // and the two selections agree until the looser test first keeps
        // a candidate the strict test occluded — never the other way.
        let ds = dataset();
        for p in [0u32, 17, 55] {
            let c = candidates_for(&ds, p, 30);
            let tight = select_rng_alpha(&ds, p, &c, 30, 1.0);
            let loose = select_rng_alpha(&ds, p, &c, 30, 2.0);
            assert_eq!(tight[0], c[0]);
            assert_eq!(loose[0], c[0]);
            for (kept, alpha) in [(&tight, 1.0f32), (&loose, 2.0)] {
                let a2 = alpha * alpha;
                for (i, m) in kept.iter().enumerate() {
                    assert!(kept[..i].iter().all(|n| a2 * ds.dist(m.id, n.id) > m.dist));
                }
            }
            let shared = tight
                .iter()
                .zip(loose.iter())
                .take_while(|(a, b)| a == b)
                .count();
            if shared < tight.len() {
                assert!(shared < loose.len());
                assert!(loose[shared].dist <= tight[shared].dist);
            }
        }
    }

    #[test]
    fn angle_selection_enforces_minimum_angle() {
        let ds = dataset();
        let c = candidates_for(&ds, 3, 30);
        let kept = select_angle(&ds, 3, &c, 30, 60.0);
        let pp = ds.point(3);
        for i in 0..kept.len() {
            for j in (i + 1)..kept.len() {
                let cos = cosine_angle_at(pp, ds.point(kept[i].id), ds.point(kept[j].id));
                // Later-kept node was accepted against earlier ones, so all
                // pairwise angles are >= 60° (cos <= 0.5) up to fp slack.
                assert!(cos <= 0.5 + 1e-4, "pair ({i},{j}) cos={cos}");
            }
        }
    }

    #[test]
    fn dpg_keeps_kappa_diverse_neighbors() {
        let ds = dataset();
        let c = candidates_for(&ds, 9, 20);
        let kept = select_dpg(&ds, 9, &c, 6);
        assert_eq!(kept.len(), 6);
        // Closest candidate always survives (seeded first).
        assert!(kept.contains(&c[0]));
    }

    #[test]
    fn mst_selection_returns_tree_adjacent() {
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0], // p
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
        ]);
        let c = candidates_for(&ds, 0, 3);
        let kept = select_mst(&ds, 0, &c);
        // On a line the MST is the path; p touches only point 1.
        assert_eq!(kept.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1]);
    }

    /// Appendix C: DPG's angular diversification approximates the RNG
    /// rule. The proof gives a directional property (>= 60° pairwise
    /// separation), not set equality, so the expected overlap is
    /// substantial rather than total.
    #[test]
    fn dpg_selection_approximates_rng_selection() {
        let ds = MixtureSpec::table10(6, 400, 2, 8.0, 1).generate().0;
        let mut overlap = 0usize;
        let mut total = 0usize;
        for p in (0..ds.len() as u32).step_by(11) {
            let c = knn_scan(&ds, ds.point(p), 30, Some(p));
            let rng_kept = select_rng_alpha(&ds, p, &c, 30, 1.0);
            let kappa = rng_kept.len().max(2);
            let dpg_kept = select_dpg(&ds, p, &c, kappa);
            total += dpg_kept.len();
            overlap += dpg_kept.iter().filter(|n| rng_kept.contains(n)).count();
        }
        assert!(
            overlap as f64 / total as f64 > 0.4,
            "DPG/RNG overlap {overlap}/{total}"
        );
    }

    proptest! {
        /// Appendix A: the HNSW heuristic (Condition 1) and NSG's MRNG rule
        /// (Condition 2) select identical neighbor sets.
        #[test]
        fn hnsw_heuristic_equals_nsg_mrng(seed in 0u64..500) {
            let ds = MixtureSpec::table10(6, 80, 2, 8.0, 1).with_seed(seed).generate().0;
            for p in [0u32, 13, 41] {
                let c = knn_scan(&ds, ds.point(p), 25, Some(p));
                let h = select_hnsw_heuristic(&ds, p, &c, 25);
                let m = select_nsg_mrng(&ds, p, &c, 25);
                prop_assert_eq!(h, m);
            }
        }

        /// Selected neighborhoods always satisfy the defining occlusion
        /// invariant: for kept m (in kept order), no earlier-kept n has
        /// δ(m, n) ≤ δ(m, p).
        #[test]
        fn rng_selection_invariant_holds(seed in 0u64..500) {
            let ds = MixtureSpec::table10(6, 60, 2, 8.0, 1).with_seed(seed).generate().0;
            let p = 7u32;
            let c = knn_scan(&ds, ds.point(p), 20, Some(p));
            let kept = select_rng_alpha(&ds, p, &c, 20, 1.0);
            for (i, m) in kept.iter().enumerate() {
                for n in &kept[..i] {
                    prop_assert!(ds.dist(m.id, n.id) > m.dist,
                        "kept {} occluded by kept {}", m.id, n.id);
                }
            }
        }

        /// Lemma 7.1: RNG-rule-selected neighbors are pairwise >= 60° apart
        /// as seen from p.
        #[test]
        fn rng_selection_respects_sixty_degrees(seed in 0u64..300) {
            let ds = MixtureSpec::table10(4, 60, 2, 8.0, 1).with_seed(seed).generate().0;
            let p = 3u32;
            let c = knn_scan(&ds, ds.point(p), 20, Some(p));
            let kept = select_rng_alpha(&ds, p, &c, 20, 1.0);
            let pp = ds.point(p);
            for i in 0..kept.len() {
                for j in (i + 1)..kept.len() {
                    let cos = cosine_angle_at(pp, ds.point(kept[i].id), ds.point(kept[j].id));
                    prop_assert!(cos <= 0.5 + 1e-4, "cos={cos}");
                }
            }
        }
    }
}
