//! C1 — initialization of the *Refinement* construction strategy
//! (Definition 4.2): produce each point's starting neighbor pool.

use crate::nndescent::{nn_descent, NnDescentParams};
use crate::parallel;
use crate::rnndescent::{rnn_descent, RnnDescentParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weavess_data::{Dataset, Neighbor};
use weavess_trees::KdForest;

/// The descent engine a *Refinement*-strategy builder runs as C1.
///
/// Every consumer of NN-Descent output (NSG, NSSG, DPG, OA, EFANNA,
/// KGraph) carries one of these next to its [`NnDescentParams`]; the
/// builder's C2–C7 stages are untouched by the choice. Both engines
/// produce the same shape (per-vertex nearest-`k`, sorted, kernel
/// distances attached) under the same determinism and termination
/// contracts — see [`crate::nndescent`] and [`crate::rnndescent`].
#[derive(Debug, Clone, Default)]
pub enum C1Choice {
    /// Plain NN-Descent local joins (the surveyed algorithms' default).
    #[default]
    NnDescent,
    /// Relative NN-Descent: RNG-style pruning interleaved into the
    /// descent (arXiv 2310.20419) — much cheaper at comparable quality.
    RnnDescent(RnnDescentParams),
}

impl C1Choice {
    /// Runs the chosen engine. `nd` is the builder's NN-Descent
    /// configuration (used directly by [`C1Choice::NnDescent`], ignored —
    /// beyond having sized the stored [`RnnDescentParams`] — by
    /// [`C1Choice::RnnDescent`]); `initial` optionally seeds the pools.
    pub fn build(
        &self,
        ds: &Dataset,
        nd: &NnDescentParams,
        initial: Option<&[Vec<Neighbor>]>,
    ) -> Vec<Vec<Neighbor>> {
        match self {
            C1Choice::NnDescent => nn_descent(ds, nd, initial),
            C1Choice::RnnDescent(p) => rnn_descent(ds, p, initial),
        }
    }
}

/// Random neighbor initialization (KGraph, Vamana): `k` distinct random
/// neighbors per point, distances computed.
pub fn init_random(ds: &Dataset, k: usize, seed: u64) -> Vec<Vec<Neighbor>> {
    let n = ds.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let k = k.min(n.saturating_sub(1));
    (0..n as u32)
        .map(|v| {
            let mut picked: Vec<u32> = Vec::with_capacity(k);
            while picked.len() < k {
                let c = rng.gen_range(0..n as u32);
                if c != v && !picked.contains(&c) {
                    picked.push(c);
                }
            }
            let mut pool: Vec<Neighbor> = picked
                .iter()
                .map(|&c| Neighbor::new(c, ds.dist(v, c)))
                .collect();
            pool.sort_unstable();
            pool
        })
        .collect()
}

/// NN-Descent initialization (NSG, DPG, NSSG, OA): a good-quality
/// approximate KNNG in a few iterations.
pub fn init_nn_descent(ds: &Dataset, params: &NnDescentParams) -> Vec<Vec<Neighbor>> {
    nn_descent(ds, params, None)
}

/// RNN-Descent initialization: the same approximate-KNNG contract as
/// [`init_nn_descent`], at a fraction of the distance computations
/// (pruning decides which pairs are worth scoring — see
/// [`crate::rnndescent`]).
pub fn init_rnn_descent(ds: &Dataset, params: &RnnDescentParams) -> Vec<Vec<Neighbor>> {
    rnn_descent(ds, params, None)
}

/// Budgeted KD-forest search pools — the seed material for EFANNA-style
/// tree-assisted descent (`pool_size` entries per vertex, self excluded).
pub fn kd_seed_pools(
    ds: &Dataset,
    forest: &KdForest,
    checks_per_tree: usize,
    pool_size: usize,
    threads: usize,
) -> Vec<Vec<Neighbor>> {
    let n = ds.len();
    let mut initial: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    parallel::par_fill(
        &mut initial,
        parallel::CHUNK,
        parallel::resolve_threads(threads),
        || (),
        |_, start, slot| {
            for (j, row) in slot.iter_mut().enumerate() {
                let v = (start + j) as u32;
                let (mut pool, _) = forest.search(ds, ds.point(v), pool_size, checks_per_tree);
                pool.retain(|x| x.id != v);
                *row = pool;
            }
        },
    );
    initial
}

/// KD-forest initialization (EFANNA): seed each point's pool by budgeted
/// forest search, then refine with NN-Descent.
pub fn init_kdtree_nn_descent(
    ds: &Dataset,
    forest: &KdForest,
    checks_per_tree: usize,
    params: &NnDescentParams,
    threads: usize,
) -> Vec<Vec<Neighbor>> {
    let initial = kd_seed_pools(ds, forest, checks_per_tree, params.l, threads);
    nn_descent(ds, params, Some(&initial))
}

/// Brute-force initialization (IEH, FANNG, k-DR): the exact KNNG with
/// distances attached.
pub fn init_brute_force(ds: &Dataset, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
    weavess_data::ground_truth::exact_knn_graph(ds, k, threads)
        .into_iter()
        .enumerate()
        .map(|(v, row)| {
            row.into_iter()
                .map(|u| Neighbor::new(u, ds.dist(v as u32, u)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nndescent::knn_recall;
    use weavess_data::ground_truth::exact_knn_graph;
    use weavess_data::synthetic::MixtureSpec;

    fn dataset() -> Dataset {
        MixtureSpec::table10(12, 600, 4, 3.0, 10).generate().0
    }

    #[test]
    fn random_init_has_right_shape_and_no_self_loops() {
        let ds = dataset();
        let g = init_random(&ds, 8, 3);
        assert_eq!(g.len(), ds.len());
        for (v, row) in g.iter().enumerate() {
            assert_eq!(row.len(), 8);
            assert!(row.iter().all(|n| n.id != v as u32));
            let mut ids: Vec<u32> = row.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 8);
        }
    }

    #[test]
    fn brute_force_init_is_exact() {
        let ds = dataset();
        let g = init_brute_force(&ds, 5, 4);
        let exact = exact_knn_graph(&ds, 5, 4);
        assert!((knn_recall(&g, &exact) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kdtree_init_beats_random_at_equal_iterations() {
        let ds = dataset();
        let exact = exact_knn_graph(&ds, 10, 4);
        let params = NnDescentParams {
            k: 10,
            l: 20,
            iters: 1,
            sample: 8,
            reverse: 10,
            seed: 5,
            threads: 2,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let forest = KdForest::build(&ds, 4, 16, &mut rng);
        let tree_init = init_kdtree_nn_descent(&ds, &forest, 200, &params, 2);
        let random = nn_descent(&ds, &params, None);
        let q_tree = knn_recall(&tree_init, &exact);
        let q_rand = knn_recall(&random, &exact);
        assert!(q_tree > q_rand, "{q_tree} <= {q_rand}");
    }
}
