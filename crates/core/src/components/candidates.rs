//! C2 — candidate neighbor acquisition (Definition 4.4): produce the
//! candidate set from which C3 selects a point's final neighbors.

use crate::search::{beam_search, SearchScratch, SearchStats};
use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// Graph-search acquisition (NSW, HNSW, NSG, Vamana): treat `p` as a query
/// and run best-first search on the current graph from `entry` seeds;
/// the visited pool beyond the beam is *also* collected (NSG keeps every
/// visited vertex as a candidate, which diversifies the pool).
#[allow(clippy::too_many_arguments)]
pub fn candidates_by_search(
    ds: &Dataset,
    g: &CsrGraph,
    p: u32,
    entry: &[u32],
    beam: usize,
    cap: usize,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    scratch.next_epoch();
    let mut pool = beam_search(ds, g, ds.point(p), entry, beam, scratch, stats);
    pool.retain(|n| n.id != p);
    pool.truncate(cap);
    pool
}

/// Expansion acquisition (KGraph, EFANNA, NSSG): `p`'s neighbors plus
/// neighbors-of-neighbors on the initial graph — no distance-guided search,
/// which is what makes NSSG's construction fast (§3.2 A11).
pub fn candidates_by_expansion(
    ds: &Dataset,
    lists: &[Vec<Neighbor>],
    p: u32,
    cap: usize,
) -> Vec<Neighbor> {
    let mut pool: Vec<Neighbor> = Vec::with_capacity(cap + 1);
    for n1 in &lists[p as usize] {
        insert_into_pool(&mut pool, cap, *n1);
        for n2 in &lists[n1.id as usize] {
            if n2.id != p {
                insert_into_pool(&mut pool, cap, Neighbor::new(n2.id, ds.dist(p, n2.id)));
            }
        }
    }
    pool
}

/// Direct-neighbor acquisition (DPG): just `p`'s current neighbors. DPG
/// compensates by building the initial graph with a larger out-degree.
pub fn candidates_direct(lists: &[Vec<Neighbor>], p: u32) -> Vec<Neighbor> {
    lists[p as usize].clone()
}

/// Subspace acquisition (SPTAG, HCNNG): within a divide-and-conquer leaf,
/// every other member is a candidate.
pub fn candidates_subspace(ds: &Dataset, leaf: &[u32], p: u32) -> Vec<Neighbor> {
    let mut pool: Vec<Neighbor> = leaf
        .iter()
        .filter(|&&x| x != p)
        .map(|&x| Neighbor::new(x, ds.dist(p, x)))
        .collect();
    pool.sort_unstable();
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::init::init_brute_force;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::base::exact_knng;

    fn dataset() -> Dataset {
        MixtureSpec::table10(8, 300, 3, 3.0, 5).generate().0
    }

    #[test]
    fn search_candidates_exclude_self_and_are_sorted() {
        let ds = dataset();
        let g = exact_knng(&ds, 8, 2);
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let c = candidates_by_search(&ds, &g, 7, &[0], 30, 20, &mut scratch, &mut stats);
        assert!(c.iter().all(|n| n.id != 7));
        assert!(c.len() <= 20);
        assert!(c.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(stats.ndc > 0);
    }

    #[test]
    fn expansion_includes_two_hop_neighborhood() {
        let ds = dataset();
        let lists = init_brute_force(&ds, 4, 2);
        let c = candidates_by_expansion(&ds, &lists, 0, 64);
        // Must contain the direct neighbors...
        for n in &lists[0] {
            assert!(c.iter().any(|x| x.id == n.id));
        }
        // ...and likely more than just them.
        assert!(c.len() > lists[0].len());
        assert!(c.iter().all(|n| n.id != 0));
    }

    #[test]
    fn subspace_candidates_cover_leaf() {
        let ds = dataset();
        let leaf = [3u32, 9, 12, 20];
        let c = candidates_subspace(&ds, &leaf, 9);
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|n| n.id != 9));
        assert!(c.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}
