//! C5 — connectivity (§4.1): make sure search can reach every vertex.
//!
//! *Increment* builders get this for free; *Refinement* builders (NSG,
//! NSSG, OA) attach a DFS-based repair pass; DPG undirects all edges.

use crate::search::{beam_search, SearchScratch, SearchStats};
use weavess_data::neighbor::insert_into_pool;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::connectivity::reachable_from;
use weavess_graph::CsrGraph;

/// NSG-style DFS repair: repeatedly find a vertex unreachable from `entry`
/// (following directed edges), locate its approximate nearest *reachable*
/// vertex by graph search, and add one bridging edge from that vertex.
///
/// Operates on plain neighbor lists; returns the number of edges added.
pub fn dfs_repair(ds: &Dataset, lists: &mut [Vec<Neighbor>], entry: u32, beam: usize) -> usize {
    let n = lists.len();
    let mut added = 0usize;
    let mut scratch = SearchScratch::new(n);
    let mut stats = SearchStats::default();
    // One frozen snapshot for bridge searches; bridge targets are checked
    // against the live `reach` array, so the snapshot staying stale is fine.
    let csr = CsrGraph::from_lists(
        &lists
            .iter()
            .map(|l| l.iter().map(|x| x.id).collect::<Vec<u32>>())
            .collect::<Vec<_>>(),
    );
    let mut reach = reachable_from(&csr, entry);
    let mut scan = 0usize;
    loop {
        let Some(orphan) = (scan..n).find(|&v| !reach[v]) else {
            return added;
        };
        scan = orphan; // earlier vertices are all reachable now
        let orphan = orphan as u32;
        // Approximate nearest reachable vertex to the orphan.
        scratch.next_epoch();
        let pool = beam_search(
            ds,
            &csr,
            ds.point(orphan),
            &[entry],
            beam,
            &mut scratch,
            &mut stats,
        );
        let bridge = pool
            .iter()
            .find(|c| reach[c.id as usize] && c.id != orphan)
            .map(|c| c.id)
            .unwrap_or(entry);
        let d = ds.dist(bridge, orphan);
        // Append without evicting: the bridge must survive, even if it
        // bumps the vertex over its degree bound (NSG does the same).
        lists[bridge as usize].push(Neighbor::new(orphan, d));
        lists[bridge as usize].sort_unstable();
        added += 1;
        // Extend reachability from the newly bridged orphan (its whole
        // downstream component becomes reachable).
        let mut stack = vec![orphan];
        reach[orphan as usize] = true;
        while let Some(v) = stack.pop() {
            for x in &lists[v as usize] {
                if !reach[x.id as usize] {
                    reach[x.id as usize] = true;
                    stack.push(x.id);
                }
            }
        }
    }
}

/// DPG-style undirection: add every edge's reverse, bounding each vertex's
/// list at `max_degree` (nearest kept). Returns edges added.
pub fn add_reverse_edges(lists: &mut [Vec<Neighbor>], max_degree: usize) -> usize {
    let mut reverse: Vec<Vec<Neighbor>> = vec![Vec::new(); lists.len()];
    for (v, l) in lists.iter().enumerate() {
        for n in l {
            reverse[n.id as usize].push(Neighbor::new(v as u32, n.dist));
        }
    }
    let mut added = 0usize;
    for (l, r) in lists.iter_mut().zip(reverse) {
        for n in r {
            if insert_into_pool(l, max_degree, n).is_some() {
                added += 1;
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::connectivity::weak_components;

    fn lists_to_csr(lists: &[Vec<Neighbor>]) -> CsrGraph {
        CsrGraph::from_lists(
            &lists
                .iter()
                .map(|l| l.iter().map(|x| x.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn dfs_repair_makes_everything_reachable() {
        let ds = MixtureSpec::table10(4, 60, 3, 1.0, 5).generate().0;
        // Start with a graph of 3 chains, one per 20 ids, disconnected.
        let mut lists: Vec<Vec<Neighbor>> = (0..60u32)
            .map(|v| {
                if v % 20 == 19 {
                    Vec::new()
                } else {
                    vec![Neighbor::new(v + 1, ds.dist(v, v + 1))]
                }
            })
            .collect();
        let added = dfs_repair(&ds, &mut lists, 0, 10);
        assert!(added >= 2, "added={added}");
        let csr = lists_to_csr(&lists);
        let reach = reachable_from(&csr, 0);
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn dfs_repair_is_noop_on_connected_graph() {
        let ds = MixtureSpec::table10(4, 10, 1, 1.0, 2).generate().0;
        let mut lists: Vec<Vec<Neighbor>> = (0..10u32)
            .map(|v| {
                let u = (v + 1) % 10;
                vec![Neighbor::new(u, ds.dist(v, u))]
            })
            .collect();
        assert_eq!(dfs_repair(&ds, &mut lists, 0, 5), 0);
    }

    #[test]
    fn reverse_edges_undirect_the_graph() {
        let ds = MixtureSpec::table10(4, 20, 1, 2.0, 2).generate().0;
        let mut lists: Vec<Vec<Neighbor>> = (0..20u32)
            .map(|v| {
                let u = (v + 7) % 20;
                vec![Neighbor::new(u, ds.dist(v, u))]
            })
            .collect();
        add_reverse_edges(&mut lists, 8);
        for (v, l) in lists.iter().enumerate() {
            for n in l {
                assert!(
                    lists[n.id as usize].iter().any(|m| m.id == v as u32),
                    "edge {v}->{} lost its reverse",
                    n.id
                );
            }
        }
        assert_eq!(weak_components(&lists_to_csr(&lists)), 1);
    }

    #[test]
    fn reverse_edges_respect_degree_bound() {
        // A star: everyone points at vertex 0; reversing must cap 0's list.
        let ds = MixtureSpec::table10(4, 30, 1, 2.0, 2).generate().0;
        let mut lists: Vec<Vec<Neighbor>> = (0..30u32)
            .map(|v| {
                if v == 0 {
                    Vec::new()
                } else {
                    vec![Neighbor::new(0, ds.dist(v, 0))]
                }
            })
            .collect();
        add_reverse_edges(&mut lists, 5);
        assert!(lists[0].len() <= 5);
    }
}
