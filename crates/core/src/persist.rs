//! Index persistence: save a built graph index to disk and reload it
//! without rebuilding — what makes the survey's expensive constructions
//! (Figure 5) a one-time cost in practice.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic "WVSS" | u32 version | name | router | seeds | graph
//! ```
//!
//! Only self-contained seed strategies (`Random`, `Fixed`) serialize;
//! tree-backed strategies are cheap to rebuild relative to the graph and
//! are rejected with [`PersistError::UnsupportedSeeds`] — callers keep the
//! tree's build recipe alongside the file.

use crate::algorithms::hnsw::HnswIndex;
use crate::components::seeds::SeedStrategy;
use crate::index::FlatIndex;
use crate::locality::{LayoutIndex, NodeLayout};
use crate::search::Router;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use weavess_data::Dataset;
use weavess_graph::reorder::Permutation;
use weavess_graph::CsrGraph;

const MAGIC: &[u8; 4] = b"WVSS";
const VERSION: u32 = 1;
const HNSW_MAGIC: &[u8; 4] = b"WVSH";
const HNSW_VERSION: u32 = 1;
const LAYOUT_MAGIC: &[u8; 4] = b"WVSL";
/// v2 appended the optional catapult overlay segment; v1 files (no
/// overlay section) still load.
const LAYOUT_VERSION: u32 = 2;

/// Errors from saving or loading an index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a weavess index or has a wrong version.
    BadFormat(String),
    /// The index uses a seed strategy that is not self-contained.
    UnsupportedSeeds(&'static str),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadFormat(m) => write!(f, "bad index file: {m}"),
            PersistError::UnsupportedSeeds(s) => {
                write!(
                    f,
                    "seed strategy '{s}' is not serializable; rebuild it at load time"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Saves a [`FlatIndex`] (graph + router + self-contained seeds).
pub fn save_index(path: &Path, index: &FlatIndex) -> Result<(), PersistError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_index(&mut w, index)?;
    w.flush()?;
    Ok(())
}

/// Serializes a [`FlatIndex`] to any writer — the exact bytes
/// [`save_index`] puts on disk, also usable for in-memory digesting (the
/// build-determinism tests hash this stream).
pub fn write_index(w: &mut impl Write, index: &FlatIndex) -> Result<(), PersistError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_str(w, index.name)?;
    write_router(w, &index.router)?;
    write_seeds(w, &index.seeds)?;
    write_graph_lists(w, &index.graph.to_lists())?;
    Ok(())
}

fn write_router(w: &mut impl Write, router: &Router) -> Result<(), PersistError> {
    match router {
        Router::BestFirst => {
            w.write_all(&[0u8])?;
        }
        Router::Range { epsilon } => {
            w.write_all(&[1u8])?;
            w.write_all(&epsilon.to_le_bytes())?;
        }
        Router::Backtrack { extra } => {
            w.write_all(&[2u8])?;
            w.write_all(&(*extra as u64).to_le_bytes())?;
        }
        Router::Guided => {
            w.write_all(&[3u8])?;
        }
        Router::TwoStage { stage1_beam_frac } => {
            w.write_all(&[4u8])?;
            w.write_all(&stage1_beam_frac.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_router(r: &mut impl Read) -> Result<Router, PersistError> {
    Ok(match read_u8(r)? {
        0 => Router::BestFirst,
        1 => Router::Range {
            epsilon: read_f32(r)?,
        },
        2 => Router::Backtrack {
            extra: read_u64(r)? as usize,
        },
        3 => Router::Guided,
        4 => Router::TwoStage {
            stage1_beam_frac: read_f32(r)?,
        },
        t => return Err(PersistError::BadFormat(format!("unknown router tag {t}"))),
    })
}

fn write_seeds(w: &mut impl Write, seeds: &SeedStrategy) -> Result<(), PersistError> {
    match seeds {
        SeedStrategy::Random { count } => {
            w.write_all(&[0u8])?;
            w.write_all(&(*count as u64).to_le_bytes())?;
        }
        SeedStrategy::Fixed(v) => {
            w.write_all(&[1u8])?;
            w.write_all(&(v.len() as u64).to_le_bytes())?;
            for &x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        other => return Err(PersistError::UnsupportedSeeds(other.label())),
    }
    Ok(())
}

fn read_seeds(r: &mut impl Read) -> Result<SeedStrategy, PersistError> {
    Ok(match read_u8(r)? {
        0 => SeedStrategy::Random {
            count: read_u64(r)? as usize,
        },
        1 => {
            let len = read_u64(r)? as usize;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(read_u32(r)?);
            }
            SeedStrategy::Fixed(v)
        }
        t => return Err(PersistError::BadFormat(format!("unknown seed tag {t}"))),
    })
}

fn write_graph_lists(w: &mut impl Write, lists: &[Vec<u32>]) -> Result<(), PersistError> {
    w.write_all(&(lists.len() as u64).to_le_bytes())?;
    for l in lists {
        w.write_all(&(l.len() as u32).to_le_bytes())?;
        for &x in l {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_graph_lists(r: &mut impl Read) -> Result<Vec<Vec<u32>>, PersistError> {
    let n = read_u64(r)? as usize;
    let mut lists: Vec<Vec<u32>> = Vec::with_capacity(n);
    for _ in 0..n {
        let deg = read_u32(r)? as usize;
        let mut l = Vec::with_capacity(deg);
        for _ in 0..deg {
            let id = read_u32(r)?;
            if id as usize >= n {
                return Err(PersistError::BadFormat(format!(
                    "edge target {id} out of range (n={n})"
                )));
            }
            l.push(id);
        }
        lists.push(l);
    }
    Ok(lists)
}

/// Loads a [`FlatIndex`] saved by [`save_index`].
pub fn load_index(path: &Path) -> Result<FlatIndex, PersistError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadFormat("wrong magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(PersistError::BadFormat(format!(
            "version {version}, expected {VERSION}"
        )));
    }
    let name = read_str(&mut r)?;
    let router = read_router(&mut r)?;
    let seeds = read_seeds(&mut r)?;
    let lists = read_graph_lists(&mut r)?;
    Ok(FlatIndex {
        // Leak the small name string to fit FlatIndex's &'static str; index
        // names come from a fixed set in practice.
        name: Box::leak(name.into_boxed_str()),
        graph: CsrGraph::from_lists(&lists),
        seeds,
        router,
    })
}

/// Saves a [`LayoutIndex`] (graph + router + seeds + permutation +
/// layout tag + optional catapult overlay segment). Both graph segments
/// are written in *original* id space — the permutation is stored
/// separately and re-applied at load — so files saved from a reordered
/// and an unreordered index differ only in the permutation block. The
/// *base* segment is stored (overlay stripped back out), then the
/// overlay segment; the load path re-merges them, so an adapted index
/// round-trips without storing its adjacency twice.
pub fn save_layout_index(path: &Path, index: &LayoutIndex) -> Result<(), PersistError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_layout_index(&mut w, index)?;
    w.flush()?;
    Ok(())
}

/// Serializes a [`LayoutIndex`] to any writer — the exact bytes
/// [`save_layout_index`] puts on disk.
pub fn write_layout_index(w: &mut impl Write, index: &LayoutIndex) -> Result<(), PersistError> {
    w.write_all(LAYOUT_MAGIC)?;
    w.write_all(&LAYOUT_VERSION.to_le_bytes())?;
    write_str(w, index.name)?;
    write_router(w, &index.router)?;
    write_seeds(w, &index.seeds)?;
    match index.layout() {
        crate::locality::NodeLayout::Split => w.write_all(&[0u8])?,
        crate::locality::NodeLayout::Fused => w.write_all(&[1u8])?,
    }
    let base = index.base_graph();
    match index.permutation() {
        Some(p) => {
            w.write_all(&[1u8])?;
            w.write_all(&(p.len() as u64).to_le_bytes())?;
            for &old in p.inverse() {
                w.write_all(&old.to_le_bytes())?;
            }
            write_graph_lists(w, &unpermute_lists(&base, p))?;
        }
        None => {
            w.write_all(&[0u8])?;
            write_graph_lists(w, &base.to_lists())?;
        }
    }
    // v2: the catapult overlay segment, also in original id space.
    match index.overlay() {
        Some(o) => {
            w.write_all(&[1u8])?;
            let lists = match index.permutation() {
                Some(p) => unpermute_lists(o, p),
                None => o.to_lists(),
            };
            write_graph_lists(w, &lists)?;
        }
        None => w.write_all(&[0u8])?,
    }
    Ok(())
}

/// Un-applies a permutation: adjacency of `graph` rewritten in original
/// id space.
fn unpermute_lists(graph: &CsrGraph, p: &Permutation) -> Vec<Vec<u32>> {
    (0..graph.len() as u32)
        .map(|v| {
            graph
                .neighbors(p.to_new(v))
                .iter()
                .map(|&u| p.to_old(u))
                .collect()
        })
        .collect()
}

/// Loads a [`LayoutIndex`] saved by [`save_layout_index`], rebuilding the
/// vector copy / fused arena from `ds` (the same dataset the index was
/// built over — vectors are not stored in the file).
pub fn load_layout_index(path: &Path, ds: &Dataset) -> Result<LayoutIndex, PersistError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != LAYOUT_MAGIC {
        return Err(PersistError::BadFormat("wrong layout magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version == 0 || version > LAYOUT_VERSION {
        return Err(PersistError::BadFormat(format!(
            "layout version {version}, expected 1..={LAYOUT_VERSION}"
        )));
    }
    let name = read_str(&mut r)?;
    let router = read_router(&mut r)?;
    let seeds = read_seeds(&mut r)?;
    let layout = match read_u8(&mut r)? {
        0 => NodeLayout::Split,
        1 => NodeLayout::Fused,
        t => return Err(PersistError::BadFormat(format!("unknown layout tag {t}"))),
    };
    let perm = match read_u8(&mut r)? {
        0 => None,
        1 => {
            let n = read_u64(&mut r)? as usize;
            let mut inverse = Vec::with_capacity(n);
            for _ in 0..n {
                inverse.push(read_u32(&mut r)?);
            }
            Some(Permutation::from_inverse(inverse).map_err(PersistError::BadFormat)?)
        }
        t => {
            return Err(PersistError::BadFormat(format!(
                "unknown permutation flag {t}"
            )))
        }
    };
    let lists = read_graph_lists(&mut r)?;
    if lists.len() != ds.len() {
        return Err(PersistError::BadFormat(format!(
            "graph has {} vertices but dataset has {}",
            lists.len(),
            ds.len()
        )));
    }
    if let Some(p) = &perm {
        if p.len() != lists.len() {
            return Err(PersistError::BadFormat(format!(
                "permutation over {} vertices but graph has {}",
                p.len(),
                lists.len()
            )));
        }
    }
    // v2: the optional catapult overlay segment, validated before the
    // merge (edge ranges are checked by `read_graph_lists`; self-loops
    // and duplicate shortcuts can never come out of the miner, so their
    // presence means corruption).
    let overlay = if version >= 2 {
        match read_u8(&mut r)? {
            0 => None,
            1 => {
                let olists = read_graph_lists(&mut r)?;
                if olists.len() != lists.len() {
                    return Err(PersistError::BadFormat(format!(
                        "overlay covers {} vertices but graph has {}",
                        olists.len(),
                        lists.len()
                    )));
                }
                for (v, l) in olists.iter().enumerate() {
                    for (i, &t) in l.iter().enumerate() {
                        if t as usize == v {
                            return Err(PersistError::BadFormat(format!(
                                "overlay self-loop at vertex {v}"
                            )));
                        }
                        if l[..i].contains(&t) {
                            return Err(PersistError::BadFormat(format!(
                                "duplicate overlay edge {v} -> {t}"
                            )));
                        }
                    }
                }
                Some(CsrGraph::from_lists(&olists))
            }
            t => return Err(PersistError::BadFormat(format!("unknown overlay flag {t}"))),
        }
    } else {
        None
    };
    Ok(LayoutIndex::assemble_with_overlay(
        Box::leak(name.into_boxed_str()),
        router,
        seeds,
        perm,
        &CsrGraph::from_lists(&lists),
        overlay.as_ref(),
        ds,
        layout,
    ))
}

/// Saves an [`HnswIndex`] (all layers + enter point).
pub fn save_hnsw(path: &Path, index: &HnswIndex) -> Result<(), PersistError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_hnsw(&mut w, index)?;
    w.flush()?;
    Ok(())
}

/// Serializes an [`HnswIndex`] to any writer — the exact bytes
/// [`save_hnsw`] puts on disk, also usable for in-memory digesting.
pub fn write_hnsw(w: &mut impl Write, index: &HnswIndex) -> Result<(), PersistError> {
    w.write_all(HNSW_MAGIC)?;
    w.write_all(&HNSW_VERSION.to_le_bytes())?;
    w.write_all(&index.enter_point().to_le_bytes())?;
    w.write_all(&(index.num_layers() as u32).to_le_bytes())?;
    for l in 0..index.num_layers() {
        let lists = index.layer(l).to_lists();
        w.write_all(&(lists.len() as u64).to_le_bytes())?;
        for list in &lists {
            w.write_all(&(list.len() as u32).to_le_bytes())?;
            for &x in list {
                w.write_all(&x.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Loads an [`HnswIndex`] saved by [`save_hnsw`].
pub fn load_hnsw(path: &Path) -> Result<HnswIndex, PersistError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != HNSW_MAGIC {
        return Err(PersistError::BadFormat("wrong HNSW magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != HNSW_VERSION {
        return Err(PersistError::BadFormat(format!(
            "HNSW version {version}, expected {HNSW_VERSION}"
        )));
    }
    let enter = read_u32(&mut r)?;
    let n_layers = read_u32(&mut r)? as usize;
    if n_layers == 0 || n_layers > 64 {
        return Err(PersistError::BadFormat(format!(
            "implausible layer count {n_layers}"
        )));
    }
    let mut layers = Vec::with_capacity(n_layers);
    let mut n0 = 0usize;
    for li in 0..n_layers {
        let n = read_u64(&mut r)? as usize;
        if li == 0 {
            n0 = n;
        } else if n != n0 {
            return Err(PersistError::BadFormat("layer size mismatch".into()));
        }
        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(n);
        for _ in 0..n {
            let deg = read_u32(&mut r)? as usize;
            let mut l = Vec::with_capacity(deg);
            for _ in 0..deg {
                let id = read_u32(&mut r)?;
                if id as usize >= n {
                    return Err(PersistError::BadFormat(format!(
                        "edge target {id} out of range (n={n})"
                    )));
                }
                l.push(id);
            }
            lists.push(l);
        }
        layers.push(CsrGraph::from_lists(&lists));
    }
    if enter as usize >= n0 {
        return Err(PersistError::BadFormat("enter point out of range".into()));
    }
    Ok(HnswIndex::from_parts(layers, enter))
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> Result<String, PersistError> {
    let len = read_u32(r)? as usize;
    if len > 1024 {
        return Err(PersistError::BadFormat("name too long".into()));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| PersistError::BadFormat("name not utf-8".into()))
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::nsg::{self, NsgParams};
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::synthetic::MixtureSpec;
    use weavess_trees::VpTree;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("weavess_persist");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn nsg_roundtrips_and_searches_identically() {
        let (ds, qs) = MixtureSpec::table10(8, 600, 2, 5.0, 10).generate();
        let idx = nsg::build(&ds, &NsgParams::tuned(2, 1));
        let path = tmp("nsg.wvss");
        save_index(&path, &idx).unwrap();
        let loaded = load_index(&path).unwrap();
        assert_eq!(loaded.name, "NSG");
        assert_eq!(loaded.graph, idx.graph);
        assert_eq!(loaded.router, idx.router);
        // Fixed seeds -> identical search results.
        let mut c1 = SearchContext::new(ds.len());
        let mut c2 = SearchContext::new(ds.len());
        for qi in 0..qs.len() as u32 {
            let a = idx.search(&ds, qs.point(qi), 10, 40, &mut c1);
            let b = loaded.search(&ds, qs.point(qi), 10, 40, &mut c2);
            assert_eq!(a, b);
        }
        assert_eq!(c1.stats, c2.stats);
    }

    #[test]
    fn hnsw_roundtrips_and_searches_identically() {
        use crate::algorithms::hnsw::{self, HnswParams};
        let (ds, qs) = MixtureSpec::table10(8, 800, 2, 5.0, 15).generate();
        let idx = hnsw::build(&ds, &HnswParams::tuned(1, 1));
        let path = tmp("hnsw.wvsh");
        save_hnsw(&path, &idx).unwrap();
        let loaded = load_hnsw(&path).unwrap();
        assert_eq!(loaded.num_layers(), idx.num_layers());
        assert_eq!(loaded.enter_point(), idx.enter_point());
        let mut c1 = SearchContext::new(ds.len());
        let mut c2 = SearchContext::new(ds.len());
        for qi in 0..qs.len() as u32 {
            let a = idx.search(&ds, qs.point(qi), 10, 40, &mut c1);
            let b = loaded.search(&ds, qs.point(qi), 10, 40, &mut c2);
            assert_eq!(a, b);
        }
        assert_eq!(c1.stats, c2.stats);
    }

    #[test]
    fn hnsw_loader_rejects_flat_index_files() {
        let (ds, _) = MixtureSpec::table10(4, 50, 1, 5.0, 5).generate();
        let idx = nsg::build(&ds, &NsgParams::tuned(1, 1));
        let path = tmp("flat_as_hnsw.wvss");
        save_index(&path, &idx).unwrap();
        assert!(matches!(load_hnsw(&path), Err(PersistError::BadFormat(_))));
    }

    #[test]
    fn all_router_variants_roundtrip() {
        let (ds, _) = MixtureSpec::table10(4, 50, 1, 5.0, 5).generate();
        for router in [
            Router::BestFirst,
            Router::Range { epsilon: 0.25 },
            Router::Backtrack { extra: 7 },
            Router::Guided,
            Router::TwoStage {
                stage1_beam_frac: 0.4,
            },
        ] {
            let idx = FlatIndex {
                name: "test",
                graph: weavess_graph::base::exact_knng(&ds, 3, 1),
                seeds: SeedStrategy::Fixed(vec![0, 7]),
                router: router.clone(),
            };
            let path = tmp("router.wvss");
            save_index(&path, &idx).unwrap();
            let loaded = load_index(&path).unwrap();
            assert_eq!(loaded.router, router);
        }
    }

    #[test]
    fn tree_seeds_are_rejected_with_clear_error() {
        let (ds, _) = MixtureSpec::table10(4, 50, 1, 5.0, 5).generate();
        let idx = FlatIndex {
            name: "test",
            graph: weavess_graph::base::exact_knng(&ds, 3, 1),
            seeds: SeedStrategy::Vp {
                tree: VpTree::build(&ds, 8),
                count: 4,
                checks: 32,
            },
            router: Router::BestFirst,
        };
        let err = save_index(&tmp("vp.wvss"), &idx).unwrap_err();
        assert!(matches!(err, PersistError::UnsupportedSeeds("vp-tree")));
    }

    #[test]
    fn layout_index_roundtrips_for_every_layout_combination() {
        use crate::locality::{LayoutIndex, NodeLayout};
        let (ds, qs) = MixtureSpec::table10(8, 600, 2, 5.0, 10).generate();
        for layout in [NodeLayout::Split, NodeLayout::Fused] {
            for reorder in [false, true] {
                let flat = nsg::build(&ds, &NsgParams::tuned(2, 1));
                let idx = LayoutIndex::from_flat(flat, &ds, layout, reorder);
                let path = tmp("layout.wvsl");
                save_layout_index(&path, &idx).unwrap();
                let loaded = load_layout_index(&path, &ds).unwrap();
                assert_eq!(loaded.layout(), layout);
                assert_eq!(loaded.is_reordered(), reorder);
                assert_eq!(loaded.permutation(), idx.permutation());
                assert_eq!(loaded.graph(), idx.graph());
                let mut c1 = SearchContext::new(ds.len());
                let mut c2 = SearchContext::new(ds.len());
                for qi in 0..qs.len() as u32 {
                    let a = idx.search(&ds, qs.point(qi), 10, 40, &mut c1);
                    let b = loaded.search(&ds, qs.point(qi), 10, 40, &mut c2);
                    assert_eq!(a, b, "{layout:?} reorder={reorder} q={qi}");
                }
                assert_eq!(c1.stats, c2.stats);
            }
        }
    }

    #[test]
    fn layout_loader_rejects_corrupt_permutations() {
        use crate::locality::{LayoutIndex, NodeLayout};
        let (ds, _) = MixtureSpec::table10(4, 60, 1, 5.0, 2).generate();
        let flat = nsg::build(&ds, &NsgParams::tuned(1, 1));
        let idx = LayoutIndex::from_flat(flat, &ds, NodeLayout::Split, true);
        let path = tmp("perm_corrupt.wvsl");
        save_layout_index(&path, &idx).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The permutation block starts right after name/router/seeds/
        // layout/flag; duplicate one entry to break the bijection. The
        // inverse array begins after the u64 length; stomp entry 1 with
        // entry 0's value.
        let flag_pos = bytes
            .windows(2)
            .position(|w| w == [1u8, 60])
            .expect("perm flag + n");
        let arr = flag_pos + 1 + 8;
        let first: [u8; 4] = bytes[arr..arr + 4].try_into().unwrap();
        bytes[arr + 4..arr + 8].copy_from_slice(&first);
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            load_layout_index(&path, &ds),
            Err(PersistError::BadFormat(_))
        ));
    }

    #[test]
    fn layout_loader_rejects_wrong_dataset_size() {
        use crate::locality::{LayoutIndex, NodeLayout};
        let (ds, _) = MixtureSpec::table10(4, 60, 1, 5.0, 2).generate();
        let flat = nsg::build(&ds, &NsgParams::tuned(1, 1));
        let idx = LayoutIndex::from_flat(flat, &ds, NodeLayout::Fused, false);
        let path = tmp("size_mismatch.wvsl");
        save_layout_index(&path, &idx).unwrap();
        let smaller = ds.subset(&(0..30u32).collect::<Vec<_>>());
        assert!(matches!(
            load_layout_index(&path, &smaller),
            Err(PersistError::BadFormat(_))
        ));
    }

    #[test]
    fn corrupted_files_are_rejected() {
        let path = tmp("corrupt.wvss");
        std::fs::write(&path, b"NOT AN INDEX FILE AT ALL").unwrap();
        assert!(matches!(load_index(&path), Err(PersistError::BadFormat(_))));
        std::fs::write(&path, b"WV").unwrap();
        assert!(matches!(load_index(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn out_of_range_edges_are_rejected() {
        // Hand-craft a file with an edge pointing past n.
        let (ds, _) = MixtureSpec::table10(4, 10, 1, 5.0, 2).generate();
        let idx = FlatIndex {
            name: "t",
            graph: weavess_graph::base::exact_knng(&ds, 2, 1),
            seeds: SeedStrategy::Fixed(vec![0]),
            router: Router::BestFirst,
        };
        let path = tmp("oob.wvss");
        save_index(&path, &idx).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Overwrite the final edge id with a huge value.
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(load_index(&path), Err(PersistError::BadFormat(_))));
    }
}
