//! The uniform index interface every algorithm builds to.

use crate::components::SeedStrategy;
use crate::search::{Router, SearchScratch, SearchStats};
use crate::telemetry::RouteTracer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;

/// A typed construction failure for index layers that wrap a dataset.
///
/// The panicking constructors predate the sharded tier; once a seeded
/// partition can hand a builder an arbitrarily small (or, for `n <
/// shards`, empty) slice of the dataset, "empty input" stops being a
/// programmer error and becomes a runtime condition callers must be able
/// to match on. The `try_*` constructors return this instead of
/// asserting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexError {
    /// The dataset (or shard) holds no points.
    EmptyDataset {
        /// Which constructor rejected the input.
        context: &'static str,
    },
    /// The graph and the dataset disagree on the number of points.
    SizeMismatch {
        /// Vertices in the graph.
        graph: usize,
        /// Points in the dataset.
        dataset: usize,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::EmptyDataset { context } => {
                write!(f, "{context}: dataset holds no points")
            }
            IndexError::SizeMismatch { graph, dataset } => {
                write!(
                    f,
                    "graph has {graph} vertices but dataset has {dataset} points"
                )
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// Per-thread reusable search state: the search scratch (visited pool,
/// candidate pool, batch-scoring buffers), the seed RNG, and the work
/// counters. One context serves any number of queries against indexes
/// over the same dataset size.
pub struct SearchContext {
    /// Reusable search working memory (sized to the dataset).
    pub scratch: SearchScratch,
    /// RNG used by random seed strategies.
    pub rng: StdRng,
    /// Accumulated work counters; callers may reset between queries or
    /// batches.
    pub stats: SearchStats,
}

impl SearchContext {
    /// A context for a dataset of `n` points.
    pub fn new(n: usize) -> Self {
        SearchContext {
            scratch: SearchScratch::new(n),
            rng: StdRng::seed_from_u64(0xC0FFEE),
            stats: SearchStats::default(),
        }
    }

    /// Resets the counters and returns the previous totals.
    pub fn take_stats(&mut self) -> SearchStats {
        std::mem::take(&mut self.stats)
    }
}

/// Common interface of every built ANNS index.
pub trait AnnIndex: Send + Sync {
    /// Algorithm name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Searches for `k` nearest neighbors of `query` with candidate-set
    /// size `beam` (the paper's CS; `beam ≥ k`). Results are nearest-first.
    fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
    ) -> Vec<Neighbor>;

    /// [`AnnIndex::search`] with a [`RouteTracer`] observing the route
    /// (seed scores and per-hop expansions). Tracing never changes
    /// results or [`SearchStats`].
    ///
    /// The default implementation ignores the tracer and delegates to
    /// [`AnnIndex::search`]; the in-tree indexes override it to thread
    /// the tracer through their routing strategy. The untraced
    /// [`AnnIndex::search`] path stays fully monomorphized on
    /// [`crate::telemetry::NoopTracer`] — it never pays these virtual
    /// calls.
    fn search_traced(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
        tracer: &mut dyn RouteTracer,
    ) -> Vec<Neighbor> {
        let _ = tracer;
        self.search(ds, query, k, beam, ctx)
    }

    /// The (bottom-layer) search graph — the object of the Table 4 / 11
    /// index metrics.
    fn graph(&self) -> &CsrGraph;

    /// Total index heap bytes: adjacency + auxiliary structures (Figure 6).
    fn memory_bytes(&self) -> usize;

    /// Shortcut edges in the trace-mined catapult overlay segment — 0 for
    /// every unadapted index. Serving surfaces this as the adapted-vs-base
    /// signal ([`crate::serve::QueryEngine`] metrics).
    fn overlay_edges(&self) -> usize {
        0
    }
}

/// The single-layer index shape shared by every algorithm except HNSW:
/// one frozen graph, a seed strategy, a router.
pub struct FlatIndex {
    /// Algorithm name.
    pub name: &'static str,
    /// The frozen search graph.
    pub graph: CsrGraph,
    /// C4/C6 strategy.
    pub seeds: SeedStrategy,
    /// C7 strategy.
    pub router: Router,
}

impl AnnIndex for FlatIndex {
    fn name(&self) -> &'static str {
        self.name
    }

    fn search(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
    ) -> Vec<Neighbor> {
        let beam = beam.max(k);
        let seeds = self.seeds.seeds(ds, query, &mut ctx.rng, &mut ctx.stats);
        ctx.scratch.next_epoch();
        let mut pool = self.router.search(
            ds,
            &self.graph,
            query,
            &seeds,
            beam,
            &mut ctx.scratch,
            &mut ctx.stats,
        );
        pool.truncate(k);
        pool
    }

    fn search_traced(
        &self,
        ds: &Dataset,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
        mut tracer: &mut dyn RouteTracer,
    ) -> Vec<Neighbor> {
        let beam = beam.max(k);
        let seeds = self.seeds.seeds(ds, query, &mut ctx.rng, &mut ctx.stats);
        ctx.scratch.next_epoch();
        let mut pool = self.router.search_traced(
            ds,
            &self.graph,
            query,
            &seeds,
            beam,
            &mut ctx.scratch,
            &mut ctx.stats,
            &mut tracer,
        );
        pool.truncate(k);
        pool
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes() + self.seeds.memory_bytes()
    }
}

/// Answers a whole query batch in parallel across `threads`, returning
/// per-query results plus the aggregated work counters.
///
/// The paper measures single-threaded search (its QPS columns); this is
/// the deployment-facing counterpart — every [`AnnIndex`] is `Sync`, so
/// queries shard freely.
pub fn search_batch(
    index: &dyn AnnIndex,
    ds: &Dataset,
    queries: &Dataset,
    k: usize,
    beam: usize,
    threads: usize,
) -> (Vec<Vec<Neighbor>>, SearchStats) {
    let nq = queries.len();
    let threads = crate::parallel::resolve_threads(threads.max(1));
    // Fixed-size chunks keep the query → worker-context assignment (and so
    // the per-chunk stats) independent of the thread count.
    const QUERY_CHUNK: usize = 32;
    let per_chunk = crate::parallel::par_chunks_map(
        nq,
        QUERY_CHUNK,
        threads,
        || SearchContext::new(ds.len()),
        |ctx, range| {
            let out: Vec<Vec<Neighbor>> = range
                .map(|i| index.search(ds, queries.point(i as u32), k, beam, ctx))
                .collect();
            (out, ctx.take_stats())
        },
    );
    let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(nq);
    let mut total = SearchStats::default();
    for (out, stats) in per_chunk {
        results.extend(out);
        total.merge(stats);
    }
    (results, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::metrics::recall;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::base::exact_knng;

    fn flat() -> (Dataset, Dataset, FlatIndex) {
        let (ds, qs) = MixtureSpec::table10(8, 500, 4, 3.0, 25).generate();
        let graph = exact_knng(&ds, 10, 4);
        let idx = FlatIndex {
            name: "test",
            graph,
            seeds: SeedStrategy::Random { count: 8 },
            router: Router::BestFirst,
        };
        (ds, qs, idx)
    }

    #[test]
    fn flat_index_reaches_good_recall() {
        let (ds, qs, idx) = flat();
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            let res: Vec<u32> = idx
                .search(&ds, q, 10, 60, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            let truth: Vec<u32> = knn_scan(&ds, q, 10, None).iter().map(|n| n.id).collect();
            total += recall(&res, &truth);
        }
        let r = total / qs.len() as f64;
        assert!(r > 0.8, "recall={r}");
        assert!(ctx.stats.ndc > 0);
    }

    #[test]
    fn search_returns_at_most_k() {
        let (ds, qs, idx) = flat();
        let mut ctx = SearchContext::new(ds.len());
        let res = idx.search(&ds, qs.point(0), 5, 40, &mut ctx);
        assert!(res.len() <= 5);
    }

    #[test]
    fn beam_is_clamped_to_k() {
        let (ds, qs, idx) = flat();
        let mut ctx = SearchContext::new(ds.len());
        // beam < k must not panic nor return fewer than beam results.
        let res = idx.search(&ds, qs.point(0), 10, 2, &mut ctx);
        assert_eq!(res.len(), 10);
    }

    #[test]
    fn take_stats_resets() {
        let (ds, qs, idx) = flat();
        let mut ctx = SearchContext::new(ds.len());
        idx.search(&ds, qs.point(0), 5, 20, &mut ctx);
        let s = ctx.take_stats();
        assert!(s.ndc > 0);
        assert_eq!(ctx.stats, SearchStats::default());
    }

    #[test]
    fn memory_counts_graph_and_seeds() {
        let (_, _, idx) = flat();
        assert_eq!(idx.memory_bytes(), idx.graph.memory_bytes());
    }

    #[test]
    fn batch_search_matches_serial_results() {
        let (ds, qs, mut idx) = flat();
        // Fixed seeds so serial and parallel runs are comparable.
        idx.seeds = SeedStrategy::Fixed(vec![0, 100, 200]);
        let mut ctx = SearchContext::new(ds.len());
        let serial: Vec<Vec<Neighbor>> = (0..qs.len() as u32)
            .map(|qi| idx.search(&ds, qs.point(qi), 10, 40, &mut ctx))
            .collect();
        for threads in [1usize, 3] {
            let (batch, stats) = search_batch(&idx, &ds, &qs, 10, 40, threads);
            assert_eq!(batch, serial, "threads={threads}");
            assert_eq!(stats, ctx.stats, "threads={threads}");
        }
    }

    #[test]
    fn batch_search_handles_more_threads_than_queries() {
        let (ds, qs, idx) = flat();
        let two = ds.subset(&[0, 1]);
        let _ = two;
        let small = qs.subset(&[0, 1]);
        let (batch, _) = search_batch(&idx, &ds, &small, 5, 20, 16);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|r| r.len() == 5));
    }
}
