//! Online recall auditing and quality SLOs for the serving tier.
//!
//! The survey's central claim is that a graph index must be judged on
//! the *joint* speed-vs-accuracy frontier (§5: Recall@k vs QPS/NDC) —
//! yet a serving fleet observes only the speed half unless something
//! re-answers live traffic exactly. This module closes that loop:
//!
//! - [`RecallAuditor`]: a shadow audit path that deterministically
//!   samples served queries (the decision is a pure function of the
//!   audit seed and the query bytes — the same replayable rule the
//!   flight recorder uses), re-answers them by exact brute-force scan
//!   ([`knn_scan`], block-batched `dist_to_many` under the hood) on a
//!   budgeted background cadence, and maintains a rolling live
//!   `Recall@k` estimate with Wilson confidence intervals, per-shard
//!   miss attribution, and an overlay-vs-base cohort split (whether the
//!   served index carried [`AnnIndex::overlay_edges`] at observe time);
//! - [`SloEngine`]: rolling-window burn rates over both latency and
//!   recall, with [`SloState`] (`ok`/`warn`/`breach`) thresholds — the
//!   latency window is the bucket-wise delta between cumulative
//!   [`Histogram`] snapshots, so no extra storage rides the hot path.
//!
//! Everything renders onto the existing Prometheus/JSON exposition via
//! [`AuditSnapshot::to_prometheus`] / [`SloReport::to_prometheus`] and
//! the optional blocks on [`FleetReport`](crate::shard::FleetReport).
//!
//! [`AnnIndex::overlay_edges`]: crate::index::AnnIndex::overlay_edges

use std::collections::VecDeque;

use parking_lot::Mutex;
use weavess_data::ground_truth::knn_scan;
use weavess_data::{Dataset, Neighbor};

use crate::telemetry::flight::splitmix64;
use crate::telemetry::histogram::{bucket_lower_bound, bucket_upper_bound, BUCKETS};
use crate::telemetry::Histogram;

/// Wilson score interval for a binomial proportion: the `z`-score
/// confidence interval on `successes / trials` that stays inside
/// `[0, 1]` and behaves sanely at small counts (unlike the normal
/// approximation). Returns `(0, 1)` for zero trials. `z = 1.96` gives
/// the conventional 95% interval.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((center - margin) / denom).max(0.0),
        ((center + margin) / denom).min(1.0),
    )
}

/// Tuning knobs for a [`RecallAuditor`].
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Audit 1 in this many served queries (0 disables sampling).
    pub sample_every: u64,
    /// Sampling seed; the audited set is a pure function of
    /// `(seed, query bytes)` — replayable and independent of workers,
    /// shards, and time.
    pub seed: u64,
    /// Neighbors audited per query (`Recall@k`'s k).
    pub k: usize,
    /// Rolling window: audited queries contributing to the live
    /// estimate (older outcomes age out).
    pub window: usize,
    /// Exact scans per [`RecallAuditor::run_pending`] call — the budget
    /// that keeps the background cadence from starving serving.
    pub budget_per_tick: usize,
    /// Sampled queries held while awaiting their exact scan; beyond
    /// this the oldest is dropped (and counted).
    pub max_pending: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            sample_every: 16,
            seed: 0xA0D17,
            k: 10,
            window: 256,
            budget_per_tick: 8,
            max_pending: 1024,
        }
    }
}

/// A sampled served query awaiting its exact re-answer.
struct PendingAudit {
    query: Vec<f32>,
    served: Vec<u32>,
    overlay: bool,
}

/// One audited query's outcome in the rolling window.
struct AuditOutcome {
    hits: u64,
    trials: u64,
}

#[derive(Default)]
struct AuditorInner {
    pending: VecDeque<PendingAudit>,
    window: VecDeque<AuditOutcome>,
    window_hits: u64,
    window_trials: u64,
    audited_total: u64,
    sampled_total: u64,
    dropped_total: u64,
    hits_total: u64,
    trials_total: u64,
    /// (hits, trials) per shard, attributed by ground-truth ownership.
    per_shard: Vec<(u64, u64)>,
    /// (hits, trials) for [base, overlay] cohorts.
    cohort: [(u64, u64); 2],
}

/// The online recall auditor: observe served queries, exact-scan a
/// deterministic sample on a budget, expose a rolling live `Recall@k`.
pub struct RecallAuditor<'a> {
    base: &'a Dataset,
    cfg: AuditConfig,
    /// Global id → shard, when serving is sharded: lets a miss be
    /// attributed to the shard that *owned* the missed true neighbor.
    shard_of: Option<Vec<u32>>,
    num_shards: usize,
    inner: Mutex<AuditorInner>,
}

impl<'a> RecallAuditor<'a> {
    /// An auditor re-answering against `base` (the dataset the serving
    /// tier indexes — global id space).
    pub fn new(base: &'a Dataset, cfg: AuditConfig) -> Self {
        assert!(cfg.k > 0, "audit k must be positive");
        assert!(cfg.window > 0, "audit window must be positive");
        RecallAuditor {
            base,
            cfg,
            shard_of: None,
            num_shards: 0,
            inner: Mutex::new(AuditorInner::default()),
        }
    }

    /// Attaches a global-id → shard map (e.g. derived from
    /// [`ShardSet::shards`](crate::shard::ShardSet::shards)' global id
    /// lists) enabling per-shard miss attribution: each ground-truth
    /// neighbor is a trial for the shard owning it.
    pub fn with_shard_map(mut self, shard_of: Vec<u32>, num_shards: usize) -> Self {
        assert_eq!(shard_of.len(), self.base.len(), "map must cover the base");
        self.shard_of = Some(shard_of);
        self.num_shards = num_shards;
        self.inner.lock().per_shard = vec![(0, 0); num_shards];
        self
    }

    /// The auditor's knobs.
    pub fn config(&self) -> &AuditConfig {
        &self.cfg
    }

    /// The deterministic sampling decision: pure function of
    /// `(self.cfg.seed, fingerprint)` — the identical mechanism (and
    /// therefore the identical replayability contract) as
    /// [`FlightRecorder::is_sampled`](crate::telemetry::FlightRecorder::is_sampled).
    #[inline]
    pub fn should_audit(&self, fingerprint: u64) -> bool {
        self.cfg.sample_every > 0
            && splitmix64(self.cfg.seed ^ fingerprint).is_multiple_of(self.cfg.sample_every)
    }

    /// Offers one served query to the auditor. When the query's
    /// fingerprint is sampled, the query and its served ids are queued
    /// for exact re-answer; `overlay` tags which cohort the outcome
    /// lands in (`true` when the served index carried overlay edges —
    /// i.e. `index.overlay_edges() > 0` at serve time). Returns whether
    /// the query was enqueued.
    pub fn observe(
        &self,
        fingerprint: u64,
        query: &[f32],
        served: &[Neighbor],
        overlay: bool,
    ) -> bool {
        if !self.should_audit(fingerprint) {
            return false;
        }
        let mut g = self.inner.lock();
        g.sampled_total += 1;
        if g.pending.len() >= self.cfg.max_pending {
            g.pending.pop_front();
            g.dropped_total += 1;
        }
        g.pending.push_back(PendingAudit {
            query: query.to_vec(),
            served: served.iter().map(|n| n.id).collect(),
            overlay,
        });
        true
    }

    /// Runs up to [`AuditConfig::budget_per_tick`] exact scans off the
    /// pending queue — the budgeted background cadence. Returns how many
    /// audits ran. Scans execute outside the lock, so serving threads
    /// calling [`observe`](Self::observe) are never blocked on a scan.
    pub fn run_pending(&self) -> usize {
        let mut ran = 0;
        while ran < self.cfg.budget_per_tick {
            let Some(job) = self.inner.lock().pending.pop_front() else {
                break;
            };
            let exact = knn_scan(self.base, &job.query, self.cfg.k, None);
            self.apply(&job, &exact);
            ran += 1;
        }
        ran
    }

    /// Folds one finished audit into the rolling window and cumulative
    /// attribution.
    fn apply(&self, job: &PendingAudit, exact: &[Neighbor]) {
        let trials = exact.len() as u64;
        let hits = job
            .served
            .iter()
            .take(exact.len())
            .filter(|id| exact.iter().any(|e| e.id == **id))
            .count() as u64;
        let mut g = self.inner.lock();
        g.audited_total += 1;
        g.hits_total += hits;
        g.trials_total += trials;
        g.window_hits += hits;
        g.window_trials += trials;
        g.window.push_back(AuditOutcome { hits, trials });
        while g.window.len() > self.cfg.window {
            let old = g.window.pop_front().unwrap();
            g.window_hits -= old.hits;
            g.window_trials -= old.trials;
        }
        let cohort = job.overlay as usize;
        g.cohort[cohort].0 += hits;
        g.cohort[cohort].1 += trials;
        if let Some(shard_of) = &self.shard_of {
            for e in exact {
                let s = shard_of[e.id as usize] as usize;
                let hit = job.served.iter().take(exact.len()).any(|id| *id == e.id);
                g.per_shard[s].0 += hit as u64;
                g.per_shard[s].1 += 1;
            }
        }
    }

    /// A point-in-time copy of the audit state.
    pub fn snapshot(&self) -> AuditSnapshot {
        let g = self.inner.lock();
        let (ci_low, ci_high) = wilson_interval(g.window_hits, g.window_trials, 1.96);
        AuditSnapshot {
            k: self.cfg.k,
            sampled_total: g.sampled_total,
            audited_total: g.audited_total,
            pending: g.pending.len(),
            dropped_total: g.dropped_total,
            window_hits: g.window_hits,
            window_trials: g.window_trials,
            recall: if g.window_trials == 0 {
                0.0
            } else {
                g.window_hits as f64 / g.window_trials as f64
            },
            ci_low,
            ci_high,
            lifetime_hits: g.hits_total,
            lifetime_trials: g.trials_total,
            per_shard: g.per_shard.clone(),
            cohort_base: g.cohort[0],
            cohort_overlay: g.cohort[1],
        }
    }
}

/// A point-in-time view of the auditor, renderable as Prometheus text
/// or JSON and attachable to a
/// [`FleetReport`](crate::shard::FleetReport).
#[derive(Debug, Clone, Default)]
pub struct AuditSnapshot {
    /// `Recall@k`'s k.
    pub k: usize,
    /// Served queries the sampler selected since creation.
    pub sampled_total: u64,
    /// Audits completed since creation.
    pub audited_total: u64,
    /// Sampled queries still awaiting their exact scan.
    pub pending: usize,
    /// Sampled queries dropped because the pending queue was full.
    pub dropped_total: u64,
    /// Result-slot hits inside the rolling window.
    pub window_hits: u64,
    /// Result-slot trials inside the rolling window (`k` per audit).
    pub window_trials: u64,
    /// Rolling live `Recall@k` point estimate (0 with no data).
    pub recall: f64,
    /// Wilson 95% lower bound on the rolling recall.
    pub ci_low: f64,
    /// Wilson 95% upper bound on the rolling recall.
    pub ci_high: f64,
    /// Hits since creation (not windowed).
    pub lifetime_hits: u64,
    /// Trials since creation (not windowed).
    pub lifetime_trials: u64,
    /// Per-shard `(hits, trials)`, attributed by ground-truth ownership
    /// (empty without a shard map).
    pub per_shard: Vec<(u64, u64)>,
    /// `(hits, trials)` for queries served by a base-only index.
    pub cohort_base: (u64, u64),
    /// `(hits, trials)` for queries served with a live overlay.
    pub cohort_overlay: (u64, u64),
}

impl AuditSnapshot {
    /// Lifetime recall point estimate (0 with no data).
    pub fn lifetime_recall(&self) -> f64 {
        if self.lifetime_trials == 0 {
            0.0
        } else {
            self.lifetime_hits as f64 / self.lifetime_trials as f64
        }
    }

    /// The audit surface in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        use crate::telemetry::expose::{prometheus_counter, prometheus_gauge};
        let mut out = String::new();
        out.push_str(&prometheus_counter(
            "weavess_audit_sampled_total",
            "Served queries selected for audit.",
            self.sampled_total,
        ));
        out.push_str(&prometheus_counter(
            "weavess_audit_completed_total",
            "Audits completed (exact re-answers).",
            self.audited_total,
        ));
        out.push_str(&prometheus_counter(
            "weavess_audit_dropped_total",
            "Sampled queries dropped by the bounded pending queue.",
            self.dropped_total,
        ));
        out.push_str(&prometheus_gauge(
            "weavess_audit_pending",
            "Sampled queries awaiting exact scan.",
            self.pending as f64,
        ));
        out.push_str(&prometheus_gauge(
            "weavess_audit_recall",
            "Rolling live Recall@k point estimate.",
            self.recall,
        ));
        out.push_str(&prometheus_gauge(
            "weavess_audit_recall_ci_low",
            "Wilson 95% lower bound on the rolling recall.",
            self.ci_low,
        ));
        out.push_str(&prometheus_gauge(
            "weavess_audit_recall_ci_high",
            "Wilson 95% upper bound on the rolling recall.",
            self.ci_high,
        ));
        if !self.per_shard.is_empty() {
            out.push_str(
                "# HELP weavess_audit_shard_recall Per-shard recall of ground-truth \
                 neighbors owned by the shard.\n\
                 # TYPE weavess_audit_shard_recall gauge\n",
            );
            for (s, (hits, trials)) in self.per_shard.iter().enumerate() {
                let r = if *trials == 0 {
                    0.0
                } else {
                    *hits as f64 / *trials as f64
                };
                out.push_str(&format!(
                    "weavess_audit_shard_recall{{shard=\"{s}\"}} {r}\n"
                ));
            }
        }
        out.push_str(
            "# HELP weavess_audit_cohort_recall Recall split by overlay-vs-base serving \
             cohort.\n# TYPE weavess_audit_cohort_recall gauge\n",
        );
        for (name, (hits, trials)) in [("base", self.cohort_base), ("overlay", self.cohort_overlay)]
        {
            let r = if trials == 0 {
                0.0
            } else {
                hits as f64 / trials as f64
            };
            out.push_str(&format!(
                "weavess_audit_cohort_recall{{cohort=\"{name}\"}} {r}\n"
            ));
        }
        out
    }

    /// The audit surface as a JSON object.
    pub fn to_json(&self) -> String {
        let per_shard: Vec<String> = self
            .per_shard
            .iter()
            .map(|(h, t)| format!("{{\"hits\": {h}, \"trials\": {t}}}"))
            .collect();
        format!(
            "{{\"k\": {}, \"sampled_total\": {}, \"audited_total\": {}, \"pending\": {}, \
             \"dropped_total\": {}, \"window_hits\": {}, \"window_trials\": {}, \
             \"recall\": {:.6}, \"ci_low\": {:.6}, \"ci_high\": {:.6}, \
             \"lifetime_recall\": {:.6}, \"per_shard\": [{}], \
             \"cohort_base\": {{\"hits\": {}, \"trials\": {}}}, \
             \"cohort_overlay\": {{\"hits\": {}, \"trials\": {}}}}}",
            self.k,
            self.sampled_total,
            self.audited_total,
            self.pending,
            self.dropped_total,
            self.window_hits,
            self.window_trials,
            self.recall,
            self.ci_low,
            self.ci_high,
            self.lifetime_recall(),
            per_shard.join(", "),
            self.cohort_base.0,
            self.cohort_base.1,
            self.cohort_overlay.0,
            self.cohort_overlay.1,
        )
    }
}

/// SLO threshold state, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum SloState {
    /// Within budget.
    #[default]
    Ok,
    /// Burning budget faster than the warn ratio allows.
    Warn,
    /// Budget exhausted (latency) or confidently below target (recall).
    Breach,
}

impl SloState {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Breach => "breach",
        }
    }

    /// Gauge encoding: 0 ok, 1 warn, 2 breach.
    pub fn as_gauge(self) -> f64 {
        match self {
            SloState::Ok => 0.0,
            SloState::Warn => 1.0,
            SloState::Breach => 2.0,
        }
    }
}

/// SLO targets and budgets.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// A query is "slow" above this latency, nanoseconds.
    pub latency_threshold_ns: u64,
    /// Allowed fraction of slow queries per window (the error budget).
    pub latency_budget: f64,
    /// Live `Recall@k` must stay at or above this.
    pub recall_target: f64,
    /// Burn-rate fraction of the latency budget that flips ok → warn.
    pub warn_ratio: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            latency_threshold_ns: 1_000_000,
            latency_budget: 0.05,
            recall_target: 0.9,
            warn_ratio: 0.5,
        }
    }
}

/// One SLO evaluation over the most recent window.
#[derive(Debug, Clone, Default)]
pub struct SloReport {
    /// Latency SLO state.
    pub latency_state: SloState,
    /// Latency burn rate: over-threshold fraction / budget (1.0 = the
    /// whole budget burned this window).
    pub latency_burn: f64,
    /// Estimated over-threshold queries in the window.
    pub window_slow: f64,
    /// Queries in the window.
    pub window_queries: u64,
    /// Recall SLO state.
    pub recall_state: SloState,
    /// Rolling recall point estimate the state was computed from.
    pub recall_estimate: f64,
    /// Wilson 95% interval on the rolling recall.
    pub recall_ci: (f64, f64),
    /// Audit trials the recall state is based on.
    pub recall_trials: u64,
}

impl SloReport {
    /// The SLO surface in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        use crate::telemetry::expose::prometheus_gauge;
        let mut out = String::new();
        out.push_str(&prometheus_gauge(
            "weavess_slo_latency_state",
            "Latency SLO state: 0 ok, 1 warn, 2 breach.",
            self.latency_state.as_gauge(),
        ));
        out.push_str(&prometheus_gauge(
            "weavess_slo_latency_burn",
            "Latency burn rate: window over-threshold fraction / budget.",
            self.latency_burn,
        ));
        out.push_str(&prometheus_gauge(
            "weavess_slo_recall_state",
            "Recall SLO state: 0 ok, 1 warn, 2 breach.",
            self.recall_state.as_gauge(),
        ));
        out.push_str(&prometheus_gauge(
            "weavess_slo_recall_estimate",
            "Rolling live Recall@k estimate the SLO state derives from.",
            self.recall_estimate,
        ));
        out
    }

    /// The SLO surface as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"latency_state\": \"{}\", \"latency_burn\": {:.6}, \"window_slow\": {:.3}, \
             \"window_queries\": {}, \"recall_state\": \"{}\", \"recall_estimate\": {:.6}, \
             \"recall_ci\": [{:.6}, {:.6}], \"recall_trials\": {}}}",
            self.latency_state.name(),
            self.latency_burn,
            self.window_slow,
            self.window_queries,
            self.recall_state.name(),
            self.recall_estimate,
            self.recall_ci.0,
            self.recall_ci.1,
            self.recall_trials,
        )
    }
}

/// Estimated samples above `threshold` in a histogram, with linear
/// interpolation inside the threshold's bucket (the same within-bucket
/// model [`Histogram::percentile`] uses).
fn over_threshold(h: &Histogram, threshold: u64) -> f64 {
    let mut over = 0.0;
    for (b, &c) in h.bucket_counts().iter().enumerate().take(BUCKETS) {
        if c == 0 {
            continue;
        }
        let lower = bucket_lower_bound(b);
        let upper = bucket_upper_bound(b);
        if lower > threshold {
            over += c as f64;
        } else if upper > threshold {
            let width = (upper - lower) as f64 + 1.0;
            over += c as f64 * ((upper - threshold) as f64 / width);
        }
    }
    over
}

/// The rolling-window SLO evaluator.
///
/// Feed it the serving tier's *cumulative* latency histogram each
/// evaluation; it differences against the previous snapshot (bucket-wise
/// — cumulative counts are monotone) so the window is exactly "what
/// happened since last evaluate", with no extra accounting on the hot
/// path.
pub struct SloEngine {
    policy: SloPolicy,
    last_latency: Option<Histogram>,
}

impl SloEngine {
    /// An evaluator with the given policy.
    pub fn new(policy: SloPolicy) -> Self {
        SloEngine {
            policy,
            last_latency: None,
        }
    }

    /// The evaluator's policy.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Evaluates both SLOs: latency from the delta of `latency_cum`
    /// against the previous call's snapshot (the first call sees the
    /// whole history as its window), recall from the auditor's rolling
    /// window.
    ///
    /// Latency: burn = (over-threshold fraction) / budget; `warn` at
    /// [`SloPolicy::warn_ratio`], `breach` at 1.0. Recall: `breach` when
    /// the Wilson 95% *upper* bound sits below target (a confident
    /// violation — noisy small windows stay out of breach), `warn` when
    /// only the point estimate does.
    pub fn evaluate(&mut self, latency_cum: &Histogram, audit: &AuditSnapshot) -> SloReport {
        let window = match &self.last_latency {
            Some(prev) => {
                let mut delta = latency_cum.clone();
                delta.subtract_counts(prev);
                delta
            }
            None => latency_cum.clone(),
        };
        self.last_latency = Some(latency_cum.clone());

        let total = window.count();
        let slow = over_threshold(&window, self.policy.latency_threshold_ns);
        let frac = if total == 0 { 0.0 } else { slow / total as f64 };
        let burn = if self.policy.latency_budget <= 0.0 {
            if frac > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            frac / self.policy.latency_budget
        };
        let latency_state = if burn >= 1.0 {
            SloState::Breach
        } else if burn >= self.policy.warn_ratio {
            SloState::Warn
        } else {
            SloState::Ok
        };

        let recall_state = if audit.window_trials == 0 {
            SloState::Ok
        } else if audit.ci_high < self.policy.recall_target {
            SloState::Breach
        } else if audit.recall < self.policy.recall_target {
            SloState::Warn
        } else {
            SloState::Ok
        };

        SloReport {
            latency_state,
            latency_burn: burn,
            window_slow: slow,
            window_queries: total,
            recall_state,
            recall_estimate: audit.recall,
            recall_ci: (audit.ci_low, audit.ci_high),
            recall_trials: audit.window_trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_brackets_the_point_estimate() {
        let (lo, hi) = wilson_interval(90, 100, 1.96);
        assert!(lo < 0.9 && 0.9 < hi, "({lo}, {hi})");
        assert!(lo > 0.8 && hi < 0.97, "({lo}, {hi})");
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        let (lo0, _) = wilson_interval(0, 50, 1.96);
        let (_, hi1) = wilson_interval(50, 50, 1.96);
        assert_eq!(lo0, 0.0);
        assert!(hi1 <= 1.0 && hi1 > 0.9);
    }

    #[test]
    fn wilson_interval_narrows_with_trials() {
        let (lo1, hi1) = wilson_interval(9, 10, 1.96);
        let (lo2, hi2) = wilson_interval(900, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn over_threshold_interpolates_within_the_bucket() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(40); // bucket 6: 32..=63
        }
        // Threshold 47: 16 of the 32-wide bucket above it → half the
        // samples estimated over.
        let over = over_threshold(&h, 47);
        assert!((over - 50.0).abs() < 1.0, "over={over}");
        assert_eq!(over_threshold(&h, 63), 0.0);
        assert_eq!(over_threshold(&h, 10), 100.0);
    }

    #[test]
    fn slo_latency_states_follow_the_burn_rate() {
        let policy = SloPolicy {
            latency_threshold_ns: 1000,
            latency_budget: 0.10,
            recall_target: 0.9,
            warn_ratio: 0.5,
        };
        let audit = AuditSnapshot::default();
        // 2% slow: burn 0.2 → ok.
        let mut engine = SloEngine::new(policy.clone());
        let mut h = Histogram::new();
        for _ in 0..98 {
            h.record(100);
        }
        for _ in 0..2 {
            h.record(1 << 20);
        }
        assert_eq!(engine.evaluate(&h, &audit).latency_state, SloState::Ok);
        // Second window adds 6 more slow of 14 → well over budget.
        for _ in 0..6 {
            h.record(1 << 20);
        }
        for _ in 0..8 {
            h.record(100);
        }
        let r = engine.evaluate(&h, &audit);
        assert_eq!(r.window_queries, 14);
        assert_eq!(r.latency_state, SloState::Breach);
        // Third window: all fast again → ok (the window resets).
        for _ in 0..50 {
            h.record(100);
        }
        assert_eq!(engine.evaluate(&h, &audit).latency_state, SloState::Ok);
    }

    #[test]
    fn slo_recall_breach_requires_a_confident_interval() {
        let mut engine = SloEngine::new(SloPolicy::default());
        let h = Histogram::new();
        // Tiny window below target: the Wilson upper bound (~0.94 for
        // 8/10) still covers 0.9 → warn, not breach.
        let noisy = AuditSnapshot {
            window_hits: 8,
            window_trials: 10,
            recall: 0.8,
            ci_low: wilson_interval(8, 10, 1.96).0,
            ci_high: wilson_interval(8, 10, 1.96).1,
            ..Default::default()
        };
        assert_eq!(engine.evaluate(&h, &noisy).recall_state, SloState::Warn);
        // Big window at the same estimate: CI upper (~0.82) < 0.9 → breach.
        let confident = AuditSnapshot {
            window_hits: 800,
            window_trials: 1000,
            recall: 0.8,
            ci_low: wilson_interval(800, 1000, 1.96).0,
            ci_high: wilson_interval(800, 1000, 1.96).1,
            ..Default::default()
        };
        assert_eq!(
            engine.evaluate(&h, &confident).recall_state,
            SloState::Breach
        );
        // No data → ok.
        assert_eq!(
            engine.evaluate(&h, &AuditSnapshot::default()).recall_state,
            SloState::Ok
        );
    }

    #[test]
    fn audit_exposition_renders() {
        let snap = AuditSnapshot {
            k: 10,
            sampled_total: 5,
            audited_total: 4,
            window_hits: 36,
            window_trials: 40,
            recall: 0.9,
            ci_low: 0.77,
            ci_high: 0.96,
            per_shard: vec![(18, 20), (18, 20)],
            cohort_base: (36, 40),
            ..Default::default()
        };
        let prom = snap.to_prometheus();
        assert!(prom.contains("weavess_audit_recall 0.9\n"));
        assert!(prom.contains("weavess_audit_shard_recall{shard=\"1\"} 0.9\n"));
        assert!(prom.contains("weavess_audit_cohort_recall{cohort=\"base\"} 0.9\n"));
        let json = snap.to_json();
        assert!(json.contains("\"recall\": 0.900000"));
        assert!(json.contains("\"per_shard\": [{\"hits\": 18, \"trials\": 20}"));
    }
}
