//! Concurrent batch query serving — the deployment-facing counterpart to
//! the paper's single-threaded evaluation loop.
//!
//! The survey measures every algorithm one query at a time on one core
//! (its QPS columns); a serving system answers query *batches* on many
//! cores. [`QueryEngine`] wraps any built [`AnnIndex`] behind a shared
//! read-only reference and fans each batch across a fixed worker pool
//! (`std::thread::scope` — no runtime dependency), giving every worker a
//! reusable [`SearchContext`] checked out of a scratch pool so the hot
//! path performs no per-query allocation of search state.
//!
//! # Determinism
//!
//! Results are **bit-identical regardless of worker count and batch
//! order**. Two mechanisms make that hold:
//!
//! - every query re-seeds its context RNG from the engine's base seed
//!   mixed with a hash of the query vector itself (not its batch
//!   position), so random seed strategies (C4 "random" acquisition) draw
//!   an identical stream wherever and whenever the query runs;
//! - per-query [`SearchStats`] are aggregated with associative,
//!   commutative operations (sums and maxes), and the per-query
//!   NDC/hop [`Histogram`]s merge by element-wise addition, so every
//!   batch aggregate is independent of the partition.
//!
//! Fixed-seed indexes (NSG, HNSW, …) additionally match the plain
//! [`AnnIndex::search`] serial loop exactly; random-seeded indexes match
//! the engine's own 1-worker path (the plain loop advances one RNG
//! across queries and is therefore order-sensitive by construction).
//!
//! # Observability
//!
//! Each [`BatchReport`] carries the batch's latency/NDC/hop histograms
//! and per-worker claim counts; the engine additionally accumulates
//! cumulative metrics across batches, exposed via
//! [`QueryEngine::metrics_prometheus`] (Prometheus text format) and
//! [`QueryEngine::metrics_json`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::index::{AnnIndex, SearchContext};
use crate::search::SearchStats;
use crate::telemetry::expose::{
    json_histogram, prometheus_counter, prometheus_gauge, prometheus_histogram,
};
use crate::telemetry::flight::{
    query_fingerprint, Flight, FlightObserver, FlightRecorder, NoFlight, SpanRec, Stage,
};
use crate::telemetry::{Histogram, ShardedCounter};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use weavess_data::{Dataset, Neighbor};

/// Tuning knobs for a [`QueryEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads per batch. `0` means one per available core.
    pub workers: usize,
    /// Base seed mixed into every query's RNG (affects random seed
    /// strategies only).
    pub seed: u64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            workers: 0,
            seed: 0xC0FFEE,
        }
    }
}

impl EngineOptions {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    }
}

/// Latency distribution of one batch, read from its log2-bucketed
/// [`Histogram`]: percentiles are exact within one bucket (the bucket's
/// upper bound, clamped to the observed range), `mean` and `max` are
/// exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median per-query latency (bucket resolution).
    pub p50: Duration,
    /// 95th-percentile per-query latency (bucket resolution).
    pub p95: Duration,
    /// 99th-percentile per-query latency (bucket resolution).
    pub p99: Duration,
    /// Mean per-query latency (exact: histogram sum / count).
    pub mean: Duration,
    /// Worst per-query latency (exact).
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes a latency histogram (samples in nanoseconds). Returns
    /// the zero summary for an empty histogram.
    pub fn from_histogram(h: &Histogram) -> LatencySummary {
        if h.count() == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            p50: Duration::from_nanos(h.percentile(0.50)),
            p95: Duration::from_nanos(h.percentile(0.95)),
            p99: Duration::from_nanos(h.percentile(0.99)),
            mean: Duration::from_nanos((h.sum() / h.count() as u128) as u64),
            max: Duration::from_nanos(h.max().unwrap_or(0)),
        }
    }
}

/// One worker's share of a batch. The *assignment* of queries to workers
/// is dynamic (work stealing off an atomic cursor) and therefore not
/// deterministic — only the merged totals are.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Queries this worker claimed.
    pub queries_claimed: u64,
    /// Work counters summed over this worker's claimed queries.
    pub stats: SearchStats,
}

/// Everything one batch returns: per-query results in input order, the
/// aggregated work counters, throughput/latency measurements, the
/// batch's work distributions, and per-worker breakdowns.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query nearest-first results, indexed like the input batch.
    pub results: Vec<Vec<Neighbor>>,
    /// Work counters over the whole batch (partition-independent: sums
    /// for `ndc`/`hops`, max for `pool_peak`).
    pub stats: SearchStats,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Per-query latency distribution (from [`BatchReport::latency_hist`]).
    pub latency: LatencySummary,
    /// Worker threads that served the batch.
    pub workers: usize,
    /// Per-worker claim counts and work counters, indexed by worker.
    pub per_worker: Vec<WorkerReport>,
    /// Per-query latency histogram, nanoseconds.
    pub latency_hist: Histogram,
    /// Per-query NDC histogram (deterministic at any worker count).
    pub ndc_hist: Histogram,
    /// Per-query hop histogram (deterministic at any worker count).
    pub hops_hist: Histogram,
}

impl BatchReport {
    /// Queries per second over the batch wall-clock.
    pub fn qps(&self) -> f64 {
        self.results.len() as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// One query's deterministic flight fields as collected inside a worker
/// loop; the parent assembles full [`Flight`]s from these after joining
/// (single-engine path) or after gathering per-shard parts (sharded
/// path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueryFlightPart {
    /// Query index within the batch.
    pub qi: u32,
    /// [`query_fingerprint`] of the query vector.
    pub fingerprint: u64,
    /// This engine's search latency for the query, nanoseconds.
    pub lat_ns: u64,
    /// Distance computations for the query on this engine.
    pub ndc: u64,
    /// Expanded vertices for the query on this engine.
    pub hops: u64,
}

/// A batch's flight material: the seed-sampled parts (in ascending `qi`
/// order — a deterministic set) plus the batch's slowest query
/// (timing-dependent, offered to the recorder's high-water mark).
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchFlightParts {
    /// Seed-sampled query parts, ascending `qi`.
    pub sampled: Vec<QueryFlightPart>,
    /// The batch's slowest query.
    pub slowest: Option<QueryFlightPart>,
}

/// Cumulative (cross-batch) distributions, updated once per batch under
/// one short lock.
#[derive(Default)]
struct CumulativeHists {
    latency: Histogram,
    ndc: Histogram,
    hops: Histogram,
}

/// A point-in-time copy of one engine's cumulative metrics — the unit a
/// fleet-level aggregator (the sharded tier's
/// [`FleetReport`](crate::shard::FleetReport)) merges across engines.
/// All fields merge with associative, commutative operations.
#[derive(Debug, Clone, Default)]
pub struct EngineSnapshot {
    /// Queries served since engine creation.
    pub queries_total: u64,
    /// Batches served since engine creation.
    pub batches_total: u64,
    /// Per-query wall latency, nanoseconds.
    pub latency: Histogram,
    /// Per-query distance computations.
    pub ndc: Histogram,
    /// Per-query expanded vertices.
    pub hops: Histogram,
}

/// A concurrent batch query engine over one built index.
///
/// The engine is `Sync`: one instance may serve overlapping
/// [`search_batch`](QueryEngine::search_batch) calls from many caller
/// threads, sharing a single scratch pool of [`SearchContext`]s that is
/// reused across batches (contexts are created on demand up to the peak
/// worker concurrency, then recycled — the steady state allocates no
/// search state at all).
///
/// ```
/// use weavess_core::components::SeedStrategy;
/// use weavess_core::index::FlatIndex;
/// use weavess_core::search::Router;
/// use weavess_core::serve::QueryEngine;
/// use weavess_data::synthetic::MixtureSpec;
/// use weavess_graph::base::exact_knng;
///
/// let (base, queries) = MixtureSpec::table10(8, 500, 4, 3.0, 25).generate();
/// let index = FlatIndex {
///     name: "example",
///     graph: exact_knng(&base, 10, 2),
///     seeds: SeedStrategy::Fixed(vec![0]),
///     router: Router::BestFirst,
/// };
/// let engine = QueryEngine::new(&index, &base);
/// let report = engine.search_batch(&queries, 10, 40);
/// assert_eq!(report.results.len(), queries.len());
/// assert!(report.qps() > 0.0);
/// let metrics = engine.metrics_prometheus();
/// assert!(metrics.contains("weavess_queries_total 25"));
/// ```
pub struct QueryEngine<'a> {
    index: &'a dyn AnnIndex,
    ds: &'a Dataset,
    opts: EngineOptions,
    scratch: Mutex<Vec<SearchContext>>,
    queries_total: ShardedCounter,
    batches_total: ShardedCounter,
    cumulative: Mutex<CumulativeHists>,
}

impl<'a> QueryEngine<'a> {
    /// An engine with default options (one worker per core).
    pub fn new(index: &'a dyn AnnIndex, ds: &'a Dataset) -> Self {
        Self::with_options(index, ds, EngineOptions::default())
    }

    /// An engine with explicit options.
    pub fn with_options(index: &'a dyn AnnIndex, ds: &'a Dataset, opts: EngineOptions) -> Self {
        QueryEngine {
            index,
            ds,
            opts,
            scratch: Mutex::new(Vec::new()),
            queries_total: ShardedCounter::new(),
            batches_total: ShardedCounter::new(),
            cumulative: Mutex::new(CumulativeHists::default()),
        }
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Number of pooled scratch contexts currently idle (observability;
    /// bounded by the peak worker concurrency reached so far).
    pub fn pooled_contexts(&self) -> usize {
        self.scratch.lock().len()
    }

    /// Queries served since the engine was created (batched and
    /// [`search_one`](Self::search_one)).
    pub fn queries_served(&self) -> u64 {
        self.queries_total.get()
    }

    /// Batches served since the engine was created.
    pub fn batches_served(&self) -> u64 {
        self.batches_total.get()
    }

    /// The dataset this engine serves.
    pub fn dataset(&self) -> &Dataset {
        self.ds
    }

    /// A copy of the cumulative metrics, for fleet-level aggregation.
    pub fn snapshot(&self) -> EngineSnapshot {
        let cum = self.cumulative.lock();
        EngineSnapshot {
            queries_total: self.queries_total.get(),
            batches_total: self.batches_total.get(),
            latency: cum.latency.clone(),
            ndc: cum.ndc.clone(),
            hops: cum.hops.clone(),
        }
    }

    /// Cumulative metrics in Prometheus text exposition format: query and
    /// batch counters, pooled-context gauge, and latency/NDC/hop
    /// histograms over every batched query served so far.
    pub fn metrics_prometheus(&self) -> String {
        let cum = self.cumulative.lock();
        let mut out = String::new();
        out.push_str(&prometheus_counter(
            "weavess_queries_total",
            "Queries served since engine creation.",
            self.queries_total.get(),
        ));
        out.push_str(&prometheus_counter(
            "weavess_batches_total",
            "Batches served since engine creation.",
            self.batches_total.get(),
        ));
        out.push_str(&prometheus_gauge(
            "weavess_pooled_contexts",
            "Idle pooled search contexts.",
            self.pooled_contexts() as f64,
        ));
        // Adapted-vs-base signal: 0 means the served index is the base
        // graph; nonzero means a trace-mined catapult overlay is live.
        out.push_str(&prometheus_gauge(
            "weavess_overlay_edges",
            "Catapult shortcut edges in the served index's overlay segment.",
            self.index.overlay_edges() as f64,
        ));
        // Info-style series: constant 1, identity in the labels. Lets a
        // dashboard join latency series against the kernel tier that
        // produced them.
        out.push_str(&format!(
            "# HELP weavess_kernel_info Active distance-kernel tier and detected host SIMD features.\n\
             # TYPE weavess_kernel_info gauge\n\
             weavess_kernel_info{{tier=\"{}\",host_features=\"{}\"}} 1\n",
            weavess_data::KernelTier::active(),
            weavess_data::host_features(),
        ));
        out.push_str(&prometheus_histogram(
            "weavess_query_latency_nanoseconds",
            "Per-query wall latency in nanoseconds.",
            &cum.latency,
        ));
        out.push_str(&prometheus_histogram(
            "weavess_query_ndc",
            "Distance computations per query.",
            &cum.ndc,
        ));
        out.push_str(&prometheus_histogram(
            "weavess_query_hops",
            "Expanded vertices per query.",
            &cum.hops,
        ));
        out
    }

    /// The same cumulative metrics as a JSON object.
    pub fn metrics_json(&self) -> String {
        let cum = self.cumulative.lock();
        format!(
            "{{\"queries_total\": {}, \"batches_total\": {}, \"pooled_contexts\": {}, \
             \"overlay_edges\": {}, \
             \"kernel_tier\": \"{}\", \"host_features\": \"{}\", \
             \"latency_ns\": {}, \"ndc\": {}, \"hops\": {}}}",
            self.queries_total.get(),
            self.batches_total.get(),
            self.pooled_contexts(),
            self.index.overlay_edges(),
            weavess_data::KernelTier::active(),
            weavess_data::host_features(),
            json_histogram(&cum.latency),
            json_histogram(&cum.ndc),
            json_histogram(&cum.hops),
        )
    }

    fn checkout(&self) -> SearchContext {
        match self.scratch.lock().pop() {
            Some(mut ctx) => {
                ctx.scratch.ensure_len(self.ds.len());
                ctx
            }
            None => SearchContext::new(self.ds.len()),
        }
    }

    fn restore(&self, ctx: SearchContext) {
        self.scratch.lock().push(ctx);
    }

    /// Answers one query with pooled scratch state. Results are identical
    /// to the same query inside any [`search_batch`](Self::search_batch)
    /// call (per-query seeding is position-independent).
    pub fn search_one(&self, query: &[f32], k: usize, beam: usize) -> Vec<Neighbor> {
        let mut ctx = self.checkout();
        let out = self.run_query(query, k, beam, &mut ctx);
        self.restore(ctx);
        self.queries_total.incr();
        out
    }

    /// [`search_one`](Self::search_one) with a
    /// [`RouteTracer`](crate::telemetry::RouteTracer) observing the
    /// route — e.g. a [`crate::telemetry::RecordingTracer`] to capture a
    /// dumpable per-hop trace of exactly how the index answered `query`.
    pub fn search_one_traced(
        &self,
        query: &[f32],
        k: usize,
        beam: usize,
        tracer: &mut dyn crate::telemetry::RouteTracer,
    ) -> Vec<Neighbor> {
        let mut ctx = self.checkout();
        ctx.rng = StdRng::seed_from_u64(self.opts.seed ^ query_fingerprint(query));
        let out = self
            .index
            .search_traced(self.ds, query, k, beam, &mut ctx, tracer);
        self.restore(ctx);
        self.queries_total.incr();
        out
    }

    /// The single-query hot path: deterministic RNG reseed, then search.
    fn run_query(
        &self,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
    ) -> Vec<Neighbor> {
        self.run_query_fp(query, query_fingerprint(query), k, beam, ctx)
    }

    /// [`run_query`](Self::run_query) with the fingerprint already
    /// computed — the batch loop hashes each query exactly once and
    /// shares the value between RNG reseeding and flight sampling.
    fn run_query_fp(
        &self,
        query: &[f32],
        fp: u64,
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
    ) -> Vec<Neighbor> {
        ctx.rng = StdRng::seed_from_u64(self.opts.seed ^ fp);
        self.index.search(self.ds, query, k, beam, ctx)
    }

    /// Answers a whole batch across the worker pool, returning per-query
    /// results in input order plus aggregated counters, latency, work
    /// histograms, and per-worker breakdowns.
    ///
    /// Queries are claimed dynamically (an atomic cursor), so stragglers
    /// don't idle the other workers; determinism is unaffected because
    /// per-query state never depends on the claiming worker.
    pub fn search_batch(&self, queries: &Dataset, k: usize, beam: usize) -> BatchReport {
        self.search_batch_obs(queries, k, beam, &NoFlight).0
    }

    /// [`search_batch`](Self::search_batch) with the per-query flight
    /// recorder enabled: every seed-sampled query (and the batch's
    /// slowest, when it beats the recorder's high-water mark) lands in
    /// `rec`'s ring as a single-[`Stage::Search`]-span flight, with a
    /// [`Stage::QueueWait`] span prepended when the admission queue
    /// noted one. Results are identical to the plain path.
    pub fn search_batch_flights(
        &self,
        queries: &Dataset,
        k: usize,
        beam: usize,
        rec: &FlightRecorder,
    ) -> BatchReport {
        let (report, parts) = self.search_batch_obs(queries, k, beam, rec);
        let batch = rec.next_batch();
        for p in &parts.sampled {
            rec.push(assemble_unsharded(rec, batch, p, k, beam, &report, true));
        }
        if let Some(p) = parts.slowest {
            if !rec.is_sampled(p.fingerprint) && rec.keep_slowest(p.lat_ns) {
                rec.push(assemble_unsharded(rec, batch, &p, k, beam, &report, false));
            }
        }
        report
    }

    /// The generic batch loop: with [`NoFlight`] every flight branch is
    /// `if false` and compiles away; with a recorder each query pays one
    /// sampling hash plus a copy of its deterministic counters. Flights
    /// are *collected*, not pushed — the caller owns assembly so the
    /// sharded tier can gather per-shard parts into one flight per
    /// query.
    pub(crate) fn search_batch_obs<F: FlightObserver>(
        &self,
        queries: &Dataset,
        k: usize,
        beam: usize,
        obs: &F,
    ) -> (BatchReport, BatchFlightParts) {
        let nq = queries.len();
        let workers = self.opts.effective_workers().min(nq).max(1);
        let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(nq);
        results.resize_with(nq, Vec::new);
        let mut stats = SearchStats::default();
        let mut per_worker = Vec::with_capacity(workers);
        let mut latency_hist = Histogram::new();
        let mut ndc_hist = Histogram::new();
        let mut hops_hist = Histogram::new();
        let mut flights = BatchFlightParts::default();
        let t0 = Instant::now();

        if nq > 0 {
            let cursor = AtomicUsize::new(0);
            // Each worker returns (claimed queries with results and
            // latencies, its per-worker report, its local histograms,
            // its flight parts); the parent scatters results back into
            // input order and merges the aggregates (order-independent
            // by construction).
            let mut parts = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut ctx = self.checkout();
                            let mut got: Vec<(usize, Vec<Neighbor>, u64)> =
                                Vec::with_capacity(nq / workers + 1);
                            let mut acc = SearchStats::default();
                            let mut lat_h = Histogram::new();
                            let mut ndc_h = Histogram::new();
                            let mut hops_h = Histogram::new();
                            let mut sampled: Vec<QueryFlightPart> = Vec::new();
                            let mut slowest: Option<QueryFlightPart> = None;
                            loop {
                                let qi = cursor.fetch_add(1, Ordering::Relaxed);
                                if qi >= nq {
                                    break;
                                }
                                let q = queries.point(qi as u32);
                                let fp = query_fingerprint(q);
                                let tq = Instant::now();
                                let res = self.run_query_fp(q, fp, k, beam, &mut ctx);
                                let nanos = tq.elapsed().as_nanos() as u64;
                                // Per-query counters: take what this query
                                // added, fold into the worker total.
                                let qstats = ctx.take_stats();
                                acc.merge(qstats);
                                lat_h.record(nanos);
                                ndc_h.record(qstats.ndc);
                                hops_h.record(qstats.hops);
                                if F::ENABLED {
                                    let part = QueryFlightPart {
                                        qi: qi as u32,
                                        fingerprint: fp,
                                        lat_ns: nanos,
                                        ndc: qstats.ndc,
                                        hops: qstats.hops,
                                    };
                                    if obs.recorder().is_some_and(|r| r.is_sampled(fp)) {
                                        sampled.push(part);
                                    }
                                    if slowest.is_none_or(|s| nanos > s.lat_ns) {
                                        slowest = Some(part);
                                    }
                                }
                                got.push((qi, res, nanos));
                            }
                            self.restore(ctx);
                            let report = WorkerReport {
                                queries_claimed: got.len() as u64,
                                stats: acc,
                            };
                            (got, report, lat_h, ndc_h, hops_h, sampled, slowest)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("query worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (got, report, lat_h, ndc_h, hops_h, sampled, slowest) in parts.drain(..) {
                stats.merge(report.stats);
                latency_hist.merge(&lat_h);
                ndc_hist.merge(&ndc_h);
                hops_hist.merge(&hops_h);
                per_worker.push(report);
                if F::ENABLED {
                    flights.sampled.extend(sampled);
                    if let Some(s) = slowest {
                        if flights.slowest.is_none_or(|g| s.lat_ns > g.lat_ns) {
                            flights.slowest = Some(s);
                        }
                    }
                }
                for (qi, res, _) in got {
                    results[qi] = res;
                }
            }
            if F::ENABLED {
                // The sampled *set* is deterministic; sort by batch
                // position so its order is too (claim order is not).
                flights.sampled.sort_by_key(|p| p.qi);
            }
        }

        let wall = t0.elapsed();
        self.queries_total.add(nq as u64);
        self.batches_total.incr();
        {
            let mut cum = self.cumulative.lock();
            cum.latency.merge(&latency_hist);
            cum.ndc.merge(&ndc_hist);
            cum.hops.merge(&hops_hist);
        }
        let report = BatchReport {
            results,
            stats,
            wall,
            latency: LatencySummary::from_histogram(&latency_hist),
            workers,
            per_worker,
            latency_hist,
            ndc_hist,
            hops_hist,
        };
        (report, flights)
    }
}

/// Assembles an unsharded flight from one worker part: an optional
/// queue-wait span (claimed from the recorder's notes) followed by the
/// single search span.
fn assemble_unsharded(
    rec: &FlightRecorder,
    batch: u64,
    p: &QueryFlightPart,
    k: usize,
    beam: usize,
    report: &BatchReport,
    sampled: bool,
) -> Flight {
    let mut spans = Vec::with_capacity(2);
    let mut t = 0u64;
    if let Some(waited) = rec.take_queue_wait(p.fingerprint) {
        spans.push(SpanRec {
            stage: Stage::QueueWait,
            shard: None,
            start_ns: 0,
            dur_ns: waited,
            ndc: 0,
            hops: 0,
        });
        t = waited;
    }
    spans.push(SpanRec {
        stage: Stage::Search,
        shard: None,
        start_ns: t,
        dur_ns: p.lat_ns,
        ndc: p.ndc,
        hops: p.hops,
    });
    Flight {
        batch,
        qi: p.qi,
        fingerprint: p.fingerprint,
        k,
        beam,
        results: report.results[p.qi as usize].iter().map(|n| n.id).collect(),
        sampled,
        total_ns: t + p.lat_ns,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::SeedStrategy;
    use crate::index::FlatIndex;
    use crate::search::Router;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::base::exact_knng;

    fn setup(seeds: SeedStrategy) -> (Dataset, Dataset, FlatIndex) {
        let (ds, qs) = MixtureSpec::table10(8, 600, 4, 3.0, 30).generate();
        let graph = exact_knng(&ds, 10, 4);
        let idx = FlatIndex {
            name: "serve-test",
            graph,
            seeds,
            router: Router::BestFirst,
        };
        (ds, qs, idx)
    }

    #[test]
    fn batch_matches_across_worker_counts_with_random_seeds() {
        let (ds, qs, idx) = setup(SeedStrategy::Random { count: 8 });
        let run = |workers: usize| {
            let engine = QueryEngine::with_options(
                &idx,
                &ds,
                EngineOptions {
                    workers,
                    seed: 0xFEED,
                },
            );
            engine.search_batch(&qs, 10, 40)
        };
        let one = run(1);
        for workers in [2usize, 4, 8] {
            let multi = run(workers);
            assert_eq!(multi.results, one.results, "workers={workers}");
            assert_eq!(multi.stats, one.stats, "workers={workers}");
        }
    }

    /// The satellite determinism check: merged per-worker totals and the
    /// per-query work histograms (and hence every derived percentile) are
    /// identical at 1, 2, and 8 workers, even though each worker's own
    /// claim set is scheduling-dependent.
    #[test]
    fn merged_worker_totals_and_histograms_are_partition_independent() {
        let (ds, qs, idx) = setup(SeedStrategy::Random { count: 8 });
        let run = |workers: usize| {
            let engine = QueryEngine::with_options(
                &idx,
                &ds,
                EngineOptions {
                    workers,
                    seed: 0xFEED,
                },
            );
            engine.search_batch(&qs, 10, 40)
        };
        let one = run(1);
        assert_eq!(one.per_worker.len(), 1);
        assert_eq!(one.per_worker[0].stats, one.stats);
        assert_eq!(one.per_worker[0].queries_claimed, qs.len() as u64);
        for workers in [2usize, 8] {
            let multi = run(workers);
            assert_eq!(multi.per_worker.len(), workers.min(qs.len()));
            let mut merged = SearchStats::default();
            let mut claimed = 0u64;
            for w in &multi.per_worker {
                merged.merge(w.stats);
                claimed += w.queries_claimed;
            }
            assert_eq!(merged, one.stats, "workers={workers}");
            assert_eq!(claimed, qs.len() as u64, "workers={workers}");
            // Per-query NDC/hop distributions merge order-independently.
            assert_eq!(multi.ndc_hist, one.ndc_hist, "workers={workers}");
            assert_eq!(multi.hops_hist, one.hops_hist, "workers={workers}");
            assert_eq!(
                multi.ndc_hist.percentile(0.95),
                one.ndc_hist.percentile(0.95)
            );
        }
    }

    #[test]
    fn batch_matches_plain_serial_loop_with_fixed_seeds() {
        let (ds, qs, idx) = setup(SeedStrategy::Fixed(vec![0, 100, 200]));
        let mut ctx = SearchContext::new(ds.len());
        let serial: Vec<Vec<Neighbor>> = (0..qs.len() as u32)
            .map(|qi| idx.search(&ds, qs.point(qi), 10, 40, &mut ctx))
            .collect();
        let engine = QueryEngine::with_options(
            &idx,
            &ds,
            EngineOptions {
                workers: 4,
                seed: 1,
            },
        );
        let report = engine.search_batch(&qs, 10, 40);
        assert_eq!(report.results, serial);
        assert_eq!(report.stats, ctx.take_stats());
    }

    #[test]
    fn batch_order_does_not_change_per_query_results() {
        let (ds, qs, idx) = setup(SeedStrategy::Random { count: 6 });
        let engine = QueryEngine::with_options(
            &idx,
            &ds,
            EngineOptions {
                workers: 3,
                seed: 9,
            },
        );
        let forward = engine.search_batch(&qs, 5, 30);
        let rev_ids: Vec<u32> = (0..qs.len() as u32).rev().collect();
        let reversed = engine.search_batch(&qs.subset(&rev_ids), 5, 30);
        for qi in 0..qs.len() {
            assert_eq!(
                forward.results[qi],
                reversed.results[qs.len() - 1 - qi],
                "query {qi} changed with batch order"
            );
        }
    }

    #[test]
    fn search_one_agrees_with_batch() {
        let (ds, qs, idx) = setup(SeedStrategy::Random { count: 8 });
        let engine = QueryEngine::new(&idx, &ds);
        let report = engine.search_batch(&qs, 10, 40);
        for qi in 0..qs.len() as u32 {
            assert_eq!(
                engine.search_one(qs.point(qi), 10, 40),
                report.results[qi as usize]
            );
        }
    }

    #[test]
    fn traced_search_matches_untraced_and_replays() {
        let (ds, qs, idx) = setup(SeedStrategy::Random { count: 8 });
        let engine = QueryEngine::new(&idx, &ds);
        let mut tracer = crate::telemetry::RecordingTracer::new();
        for qi in 0..4u32 {
            let q = qs.point(qi);
            tracer.clear();
            let traced = engine.search_one_traced(q, 10, 40, &mut tracer);
            assert_eq!(traced, engine.search_one(q, 10, 40), "query {qi}");
            assert!(tracer.hops() > 0);
            assert!(tracer.replay_check(&ds, q));
        }
    }

    #[test]
    fn empty_and_single_query_batches() {
        let (ds, qs, idx) = setup(SeedStrategy::Fixed(vec![0]));
        let engine = QueryEngine::new(&idx, &ds);
        let empty = engine.search_batch(&qs.subset(&[]), 10, 40);
        assert!(empty.results.is_empty());
        assert_eq!(empty.stats, SearchStats::default());
        assert_eq!(empty.latency, LatencySummary::default());
        assert!(empty.per_worker.iter().all(|w| w.queries_claimed == 0));
        assert_eq!(empty.latency_hist.count(), 0);
        let single = engine.search_batch(&qs.subset(&[3]), 10, 40);
        assert_eq!(single.results.len(), 1);
        assert_eq!(single.results[0].len(), 10);
        assert!(single.latency.p50 > Duration::ZERO);
        // A single sample is exact at every percentile.
        assert_eq!(single.latency.p50, single.latency.max);
        assert_eq!(single.ndc_hist.count(), 1);
    }

    #[test]
    fn scratch_pool_is_bounded_and_reused() {
        let (ds, qs, idx) = setup(SeedStrategy::Fixed(vec![0]));
        let engine = QueryEngine::with_options(
            &idx,
            &ds,
            EngineOptions {
                workers: 4,
                seed: 0,
            },
        );
        for _ in 0..5 {
            engine.search_batch(&qs, 5, 20);
        }
        let pooled = engine.pooled_contexts();
        assert!((1..=4).contains(&pooled), "pooled={pooled}");
    }

    #[test]
    fn report_measurements_are_sane() {
        let (ds, qs, idx) = setup(SeedStrategy::Fixed(vec![0, 50]));
        let engine = QueryEngine::new(&idx, &ds);
        let r = engine.search_batch(&qs, 10, 60);
        assert!(r.qps() > 0.0);
        assert!(r.stats.ndc > 0);
        assert!(r.stats.pool_peak > 0);
        assert!(r.latency.p50 <= r.latency.p95);
        assert!(r.latency.p95 <= r.latency.p99);
        assert!(r.latency.p99 <= r.latency.max);
        assert!(r.latency.mean <= r.latency.max);
        assert!(r.wall >= r.latency.max / (r.workers as u32));
        assert_eq!(r.latency_hist.count(), qs.len() as u64);
        assert_eq!(r.ndc_hist.sum(), r.stats.ndc as u128);
        assert_eq!(r.hops_hist.sum(), r.stats.hops as u128);
    }

    #[test]
    fn latency_summary_percentiles_at_bucket_resolution() {
        // Samples 1..=100ns: rank 50 lands in bucket 6 (32..=63) and
        // interpolates to ~50ns; p95/p99 land in bucket 7 (64..=127),
        // clamped to the observed max of 100. Mean and max are exact.
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s.p50, Duration::from_nanos(50));
        assert_eq!(s.p95, Duration::from_nanos(100));
        assert_eq!(s.p99, Duration::from_nanos(100));
        assert_eq!(s.max, Duration::from_nanos(100));
        assert_eq!(s.mean, Duration::from_nanos(50));
    }

    #[test]
    fn engine_metrics_accumulate_and_expose() {
        let (ds, qs, idx) = setup(SeedStrategy::Fixed(vec![0]));
        let engine = QueryEngine::new(&idx, &ds);
        engine.search_batch(&qs, 5, 20);
        engine.search_batch(&qs, 5, 20);
        engine.search_one(qs.point(0), 5, 20);
        let expect = 2 * qs.len() as u64 + 1;
        assert_eq!(engine.queries_served(), expect);
        let prom = engine.metrics_prometheus();
        assert!(prom.contains(&format!("weavess_queries_total {expect}")));
        assert!(prom.contains("weavess_batches_total 2"));
        assert!(prom.contains("weavess_query_ndc_bucket{le=\"+Inf\"}"));
        assert!(prom.contains("# TYPE weavess_query_latency_nanoseconds histogram"));
        let tier_label = format!(
            "weavess_kernel_info{{tier=\"{}\"",
            weavess_data::KernelTier::active()
        );
        assert!(prom.contains(&tier_label));
        let json = engine.metrics_json();
        assert!(json.contains(&format!("\"queries_total\": {expect}")));
        assert!(json.contains("\"ndc\": {\"count\":"));
        assert!(json.contains(&format!(
            "\"kernel_tier\": \"{}\"",
            weavess_data::KernelTier::active()
        )));
    }
}
