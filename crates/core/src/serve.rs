//! Concurrent batch query serving — the deployment-facing counterpart to
//! the paper's single-threaded evaluation loop.
//!
//! The survey measures every algorithm one query at a time on one core
//! (its QPS columns); a serving system answers query *batches* on many
//! cores. [`QueryEngine`] wraps any built [`AnnIndex`] behind a shared
//! read-only reference and fans each batch across a fixed worker pool
//! (`std::thread::scope` — no runtime dependency), giving every worker a
//! reusable [`SearchContext`] checked out of a scratch pool so the hot
//! path performs no per-query allocation of search state.
//!
//! # Determinism
//!
//! Results are **bit-identical regardless of worker count and batch
//! order**. Two mechanisms make that hold:
//!
//! - every query re-seeds its context RNG from the engine's base seed
//!   mixed with a hash of the query vector itself (not its batch
//!   position), so random seed strategies (C4 "random" acquisition) draw
//!   an identical stream wherever and whenever the query runs;
//! - per-query [`SearchStats`] are summed with associative integer
//!   addition, so the batch aggregate is independent of the partition.
//!
//! Fixed-seed indexes (NSG, HNSW, …) additionally match the plain
//! [`AnnIndex::search`] serial loop exactly; random-seeded indexes match
//! the engine's own 1-worker path (the plain loop advances one RNG
//! across queries and is therefore order-sensitive by construction).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::index::{AnnIndex, SearchContext};
use crate::search::SearchStats;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use weavess_data::{Dataset, Neighbor};

/// Tuning knobs for a [`QueryEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads per batch. `0` means one per available core.
    pub workers: usize,
    /// Base seed mixed into every query's RNG (affects random seed
    /// strategies only).
    pub seed: u64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            workers: 0,
            seed: 0xC0FFEE,
        }
    }
}

impl EngineOptions {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    }
}

/// Latency distribution of one batch, from per-query wall-clock samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median per-query latency.
    pub p50: Duration,
    /// 95th-percentile per-query latency.
    pub p95: Duration,
    /// 99th-percentile per-query latency.
    pub p99: Duration,
    /// Mean per-query latency.
    pub mean: Duration,
    /// Worst per-query latency.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes a set of per-query latency samples (nanoseconds).
    /// Returns the zero summary for an empty batch.
    pub fn from_nanos(samples: &mut [u64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let pick = |p: f64| {
            // Nearest-rank percentile: ceil(p * n) - 1, clamped.
            let rank = ((p * samples.len() as f64).ceil() as usize).max(1) - 1;
            Duration::from_nanos(samples[rank.min(samples.len() - 1)])
        };
        let sum: u64 = samples.iter().sum();
        LatencySummary {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            mean: Duration::from_nanos(sum / samples.len() as u64),
            max: Duration::from_nanos(*samples.last().unwrap()),
        }
    }
}

/// Everything one batch returns: per-query results in input order, the
/// aggregated work counters, and the throughput/latency measurements.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query nearest-first results, indexed like the input batch.
    pub results: Vec<Vec<Neighbor>>,
    /// Work counters summed over the whole batch (partition-independent).
    pub stats: SearchStats,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Per-query latency distribution.
    pub latency: LatencySummary,
    /// Worker threads that served the batch.
    pub workers: usize,
}

impl BatchReport {
    /// Queries per second over the batch wall-clock.
    pub fn qps(&self) -> f64 {
        self.results.len() as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// FNV-1a over the query's raw f32 bits: a stable, position-independent
/// per-query seed component.
fn hash_query(query: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in query {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// A concurrent batch query engine over one built index.
///
/// The engine is `Sync`: one instance may serve overlapping
/// [`search_batch`](QueryEngine::search_batch) calls from many caller
/// threads, sharing a single scratch pool of [`SearchContext`]s that is
/// reused across batches (contexts are created on demand up to the peak
/// worker concurrency, then recycled — the steady state allocates no
/// search state at all).
///
/// ```
/// use weavess_core::components::SeedStrategy;
/// use weavess_core::index::FlatIndex;
/// use weavess_core::search::Router;
/// use weavess_core::serve::QueryEngine;
/// use weavess_data::synthetic::MixtureSpec;
/// use weavess_graph::base::exact_knng;
///
/// let (base, queries) = MixtureSpec::table10(8, 500, 4, 3.0, 25).generate();
/// let index = FlatIndex {
///     name: "example",
///     graph: exact_knng(&base, 10, 2),
///     seeds: SeedStrategy::Fixed(vec![0]),
///     router: Router::BestFirst,
/// };
/// let engine = QueryEngine::new(&index, &base);
/// let report = engine.search_batch(&queries, 10, 40);
/// assert_eq!(report.results.len(), queries.len());
/// assert!(report.qps() > 0.0);
/// ```
pub struct QueryEngine<'a> {
    index: &'a dyn AnnIndex,
    ds: &'a Dataset,
    opts: EngineOptions,
    scratch: Mutex<Vec<SearchContext>>,
}

impl<'a> QueryEngine<'a> {
    /// An engine with default options (one worker per core).
    pub fn new(index: &'a dyn AnnIndex, ds: &'a Dataset) -> Self {
        Self::with_options(index, ds, EngineOptions::default())
    }

    /// An engine with explicit options.
    pub fn with_options(index: &'a dyn AnnIndex, ds: &'a Dataset, opts: EngineOptions) -> Self {
        QueryEngine {
            index,
            ds,
            opts,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Number of pooled scratch contexts currently idle (observability;
    /// bounded by the peak worker concurrency reached so far).
    pub fn pooled_contexts(&self) -> usize {
        self.scratch.lock().len()
    }

    fn checkout(&self) -> SearchContext {
        match self.scratch.lock().pop() {
            Some(mut ctx) => {
                ctx.scratch.ensure_len(self.ds.len());
                ctx
            }
            None => SearchContext::new(self.ds.len()),
        }
    }

    fn restore(&self, ctx: SearchContext) {
        self.scratch.lock().push(ctx);
    }

    /// Answers one query with pooled scratch state. Results are identical
    /// to the same query inside any [`search_batch`](Self::search_batch)
    /// call (per-query seeding is position-independent).
    pub fn search_one(&self, query: &[f32], k: usize, beam: usize) -> Vec<Neighbor> {
        let mut ctx = self.checkout();
        let out = self.run_query(query, k, beam, &mut ctx);
        self.restore(ctx);
        out
    }

    /// The single-query hot path: deterministic RNG reseed, then search.
    fn run_query(
        &self,
        query: &[f32],
        k: usize,
        beam: usize,
        ctx: &mut SearchContext,
    ) -> Vec<Neighbor> {
        ctx.rng = StdRng::seed_from_u64(self.opts.seed ^ hash_query(query));
        self.index.search(self.ds, query, k, beam, ctx)
    }

    /// Answers a whole batch across the worker pool, returning per-query
    /// results in input order plus aggregated counters and latency.
    ///
    /// Queries are claimed dynamically (an atomic cursor), so stragglers
    /// don't idle the other workers; determinism is unaffected because
    /// per-query state never depends on the claiming worker.
    pub fn search_batch(&self, queries: &Dataset, k: usize, beam: usize) -> BatchReport {
        let nq = queries.len();
        let workers = self.opts.effective_workers().min(nq).max(1);
        let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(nq);
        results.resize_with(nq, Vec::new);
        let mut lat = vec![0u64; nq];
        let mut stats = SearchStats::default();
        let t0 = Instant::now();

        if nq > 0 {
            let cursor = AtomicUsize::new(0);
            // Each worker returns (claimed indices, results, latencies,
            // stats); the parent scatters them back into input order.
            let mut parts = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut ctx = self.checkout();
                            let mut got: Vec<(usize, Vec<Neighbor>, u64)> =
                                Vec::with_capacity(nq / workers + 1);
                            loop {
                                let qi = cursor.fetch_add(1, Ordering::Relaxed);
                                if qi >= nq {
                                    break;
                                }
                                let tq = Instant::now();
                                let res =
                                    self.run_query(queries.point(qi as u32), k, beam, &mut ctx);
                                got.push((qi, res, tq.elapsed().as_nanos() as u64));
                            }
                            let stats = ctx.take_stats();
                            self.restore(ctx);
                            (got, stats)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("query worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (got, part_stats) in parts.drain(..) {
                stats.merge(part_stats);
                for (qi, res, nanos) in got {
                    results[qi] = res;
                    lat[qi] = nanos;
                }
            }
        }

        let wall = t0.elapsed();
        BatchReport {
            results,
            stats,
            wall,
            latency: LatencySummary::from_nanos(&mut lat),
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::SeedStrategy;
    use crate::index::FlatIndex;
    use crate::search::Router;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_graph::base::exact_knng;

    fn setup(seeds: SeedStrategy) -> (Dataset, Dataset, FlatIndex) {
        let (ds, qs) = MixtureSpec::table10(8, 600, 4, 3.0, 30).generate();
        let graph = exact_knng(&ds, 10, 4);
        let idx = FlatIndex {
            name: "serve-test",
            graph,
            seeds,
            router: Router::BestFirst,
        };
        (ds, qs, idx)
    }

    #[test]
    fn batch_matches_across_worker_counts_with_random_seeds() {
        let (ds, qs, idx) = setup(SeedStrategy::Random { count: 8 });
        let run = |workers: usize| {
            let engine = QueryEngine::with_options(
                &idx,
                &ds,
                EngineOptions {
                    workers,
                    seed: 0xFEED,
                },
            );
            engine.search_batch(&qs, 10, 40)
        };
        let one = run(1);
        for workers in [2usize, 4, 8] {
            let multi = run(workers);
            assert_eq!(multi.results, one.results, "workers={workers}");
            assert_eq!(multi.stats, one.stats, "workers={workers}");
        }
    }

    #[test]
    fn batch_matches_plain_serial_loop_with_fixed_seeds() {
        let (ds, qs, idx) = setup(SeedStrategy::Fixed(vec![0, 100, 200]));
        let mut ctx = SearchContext::new(ds.len());
        let serial: Vec<Vec<Neighbor>> = (0..qs.len() as u32)
            .map(|qi| idx.search(&ds, qs.point(qi), 10, 40, &mut ctx))
            .collect();
        let engine = QueryEngine::with_options(
            &idx,
            &ds,
            EngineOptions {
                workers: 4,
                seed: 1,
            },
        );
        let report = engine.search_batch(&qs, 10, 40);
        assert_eq!(report.results, serial);
        assert_eq!(report.stats, ctx.take_stats());
    }

    #[test]
    fn batch_order_does_not_change_per_query_results() {
        let (ds, qs, idx) = setup(SeedStrategy::Random { count: 6 });
        let engine = QueryEngine::with_options(
            &idx,
            &ds,
            EngineOptions {
                workers: 3,
                seed: 9,
            },
        );
        let forward = engine.search_batch(&qs, 5, 30);
        let rev_ids: Vec<u32> = (0..qs.len() as u32).rev().collect();
        let reversed = engine.search_batch(&qs.subset(&rev_ids), 5, 30);
        for qi in 0..qs.len() {
            assert_eq!(
                forward.results[qi],
                reversed.results[qs.len() - 1 - qi],
                "query {qi} changed with batch order"
            );
        }
    }

    #[test]
    fn search_one_agrees_with_batch() {
        let (ds, qs, idx) = setup(SeedStrategy::Random { count: 8 });
        let engine = QueryEngine::new(&idx, &ds);
        let report = engine.search_batch(&qs, 10, 40);
        for qi in 0..qs.len() as u32 {
            assert_eq!(
                engine.search_one(qs.point(qi), 10, 40),
                report.results[qi as usize]
            );
        }
    }

    #[test]
    fn empty_and_single_query_batches() {
        let (ds, qs, idx) = setup(SeedStrategy::Fixed(vec![0]));
        let engine = QueryEngine::new(&idx, &ds);
        let empty = engine.search_batch(&qs.subset(&[]), 10, 40);
        assert!(empty.results.is_empty());
        assert_eq!(empty.stats, SearchStats::default());
        assert_eq!(empty.latency, LatencySummary::default());
        let single = engine.search_batch(&qs.subset(&[3]), 10, 40);
        assert_eq!(single.results.len(), 1);
        assert_eq!(single.results[0].len(), 10);
        assert!(single.latency.p50 > Duration::ZERO);
    }

    #[test]
    fn scratch_pool_is_bounded_and_reused() {
        let (ds, qs, idx) = setup(SeedStrategy::Fixed(vec![0]));
        let engine = QueryEngine::with_options(
            &idx,
            &ds,
            EngineOptions {
                workers: 4,
                seed: 0,
            },
        );
        for _ in 0..5 {
            engine.search_batch(&qs, 5, 20);
        }
        let pooled = engine.pooled_contexts();
        assert!((1..=4).contains(&pooled), "pooled={pooled}");
    }

    #[test]
    fn report_measurements_are_sane() {
        let (ds, qs, idx) = setup(SeedStrategy::Fixed(vec![0, 50]));
        let engine = QueryEngine::new(&idx, &ds);
        let r = engine.search_batch(&qs, 10, 60);
        assert!(r.qps() > 0.0);
        assert!(r.stats.ndc > 0);
        assert!(r.latency.p50 <= r.latency.p95);
        assert!(r.latency.p95 <= r.latency.p99);
        assert!(r.latency.p99 <= r.latency.max);
        assert!(r.latency.mean <= r.latency.max);
        assert!(r.wall >= r.latency.max / (r.workers as u32));
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut nanos: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_nanos(&mut nanos);
        assert_eq!(s.p50, Duration::from_nanos(50));
        assert_eq!(s.p95, Duration::from_nanos(95));
        assert_eq!(s.p99, Duration::from_nanos(99));
        assert_eq!(s.max, Duration::from_nanos(100));
        assert_eq!(s.mean, Duration::from_nanos(50));
    }
}
