//! Deterministic parallel construction: a scoped worker pool over
//! fixed-size work chunks, combined in chunk order.
//!
//! Every parallel phase of every builder routes through here, and all of
//! them share one invariant: **results are a pure function of the input,
//! never of the thread count**. Two rules enforce it:
//!
//! 1. **Fixed chunk sizes.** Work is cut into chunks of a constant size
//!    (like the PR-2 `Dataset::centroid`/`medoid` scheme), not
//!    `n.div_ceil(threads)` — so the partition of work units is identical
//!    whether 1 or 64 workers pull from the queue.
//! 2. **In-order combination.** Each chunk's result lands in a slot keyed
//!    by its chunk index; callers see results in chunk order regardless of
//!    which worker finished first.
//!
//! Workers are spawned with [`std::thread::scope`] (no runtime dependency)
//! and pull chunks from a shared atomic counter, so a slow chunk never
//! stalls the rest of the queue. Each worker builds its state once (for
//! search-based builders: a reusable [`crate::search::SearchScratch`]) and
//! carries it across every chunk it processes.
//!
//! The third piece is [`prefix_doubling`], the batch schedule ParlayANN
//! uses to parallelize *incremental* constructions (HNSW/NSW): insert
//! points in rounds of doubling size, where every point in a round
//! searches the frozen graph of all prior rounds.

use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default work-unit size for per-point construction loops. Small enough
/// to load-balance skewed work (beam searches vary), large enough that the
/// queue counter is not contended.
pub const CHUNK: usize = 256;

/// Cap on auto-detected construction threads — beyond this, queue and
/// allocator contention eat the gains at harness scales.
const MAX_AUTO_THREADS: usize = 16;

/// Resolves a requested construction thread count: `0` means "one per
/// available core" (capped at 16), any other value is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(MAX_AUTO_THREADS)
    }
}

/// The ranges `[0, chunk), [chunk, 2*chunk), ...` covering `0..n`.
fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    (0..n.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(n))
        .collect()
}

/// Maps fixed-size chunks of `0..n` through `f` on up to `threads`
/// workers; returns one result per chunk, **in chunk order**.
///
/// `init` builds each worker's reusable state (scratch buffers, stats)
/// once; `f` receives that state and the chunk's index range. Because the
/// chunk partition is fixed and results are slotted by chunk index, the
/// output is identical for any thread count — workers only decide *who*
/// computes a chunk, never *what* a chunk is.
pub fn par_chunks_map<R, S, I, F>(n: usize, chunk: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(n, chunk);
    let threads = threads.max(1).min(ranges.len().max(1));
    if threads <= 1 {
        let mut state = init();
        return ranges.into_iter().map(|r| f(&mut state, r)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= ranges.len() {
                        break;
                    }
                    *slots[c].lock() = Some(f(&mut state, ranges[c].clone()));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("chunk not processed"))
        .collect()
}

/// Fills `out` in place by fixed-size chunks: `f(state, start, slot)`
/// writes `slot = out[start..start+slot.len()]`. Same determinism contract
/// as [`par_chunks_map`]; used where each work unit owns a disjoint
/// output range (per-point neighbor lists).
pub fn par_fill<T, S, I, F>(out: &mut [T], chunk: usize, threads: usize, init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = out.len().div_ceil(chunk);
    let threads = threads.max(1).min(n_chunks.max(1));
    if threads <= 1 {
        let mut state = init();
        for (c, slot) in out.chunks_mut(chunk).enumerate() {
            f(&mut state, c * chunk, slot);
        }
        return;
    }
    // Hand each chunk's mutable slice out through a one-shot slot; the
    // slices are disjoint so workers never alias.
    let work: Vec<Mutex<Option<&mut [T]>>> =
        out.chunks_mut(chunk).map(|s| Mutex::new(Some(s))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= work.len() {
                        break;
                    }
                    let slot = work[c].lock().take().expect("chunk taken twice");
                    f(&mut state, c * chunk, slot);
                }
            });
        }
    });
}

/// The prefix-doubling batch schedule for incremental builders: point 0
/// seeds the graph, then batches `[1,2), [2,4), [4,8), ...` — each batch
/// at most `max_batch` points and at most as large as the already-built
/// prefix, so every inserted point searches a frozen graph of at least its
/// own batch's size.
pub fn prefix_doubling(n: usize, max_batch: usize) -> Vec<Range<usize>> {
    let max_batch = max_batch.max(1);
    let mut batches = Vec::new();
    let mut start = 1usize;
    while start < n {
        let size = start.min(max_batch).min(n - start);
        batches.push(start..start + size);
        start += size;
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_passes_explicit_and_caps_auto() {
        assert_eq!(resolve_threads(3), 3);
        let auto = resolve_threads(0);
        assert!((1..=MAX_AUTO_THREADS).contains(&auto));
    }

    #[test]
    fn par_chunks_map_is_thread_count_independent() {
        let expect: Vec<usize> = chunk_ranges(1_000, 64).iter().map(|r| r.len()).collect();
        for threads in [1, 2, 8] {
            let got = par_chunks_map(1_000, 64, threads, || 0usize, |_, r| r.len());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_fill_writes_every_slot_once() {
        for threads in [1, 3, 8] {
            let mut out = vec![usize::MAX; 997];
            par_fill(
                &mut out,
                100,
                threads,
                || (),
                |_, start, slot| {
                    for (j, x) in slot.iter_mut().enumerate() {
                        *x = start + j;
                    }
                },
            );
            assert!(out.iter().enumerate().all(|(i, &x)| x == i));
        }
    }

    #[test]
    fn worker_state_is_reused_across_chunks() {
        // Each worker counts how many chunks it handled; totals must cover
        // every chunk exactly once.
        let counts = par_chunks_map(
            512,
            16,
            4,
            || 0usize,
            |seen, _| {
                *seen += 1;
                1usize
            },
        );
        assert_eq!(counts.iter().sum::<usize>(), 512usize.div_ceil(16));
    }

    #[test]
    fn prefix_doubling_covers_exactly_once_and_doubles() {
        let batches = prefix_doubling(1_000, 256);
        assert_eq!(batches.first().unwrap().clone(), 1..2);
        let mut next = 1usize;
        for b in &batches {
            assert_eq!(b.start, next, "batches must be contiguous");
            assert!(b.len() <= 256);
            assert!(b.len() <= b.start, "batch may not outsize its prefix");
            next = b.end;
        }
        assert_eq!(next, 1_000);
    }

    #[test]
    fn prefix_doubling_handles_tiny_inputs() {
        assert!(prefix_doubling(0, 64).is_empty());
        assert!(prefix_doubling(1, 64).is_empty());
        assert_eq!(prefix_doubling(2, 64), vec![1..2]);
    }
}
