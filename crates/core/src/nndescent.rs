//! NN-Descent (Dong et al.), the refinement engine behind KGraph and the
//! initializer of choice (C1) for EFANNA, DPG, NSG, NSSG and the optimized
//! algorithm.
//!
//! Principle: "neighbors of neighbors are likely neighbors". Each vertex
//! keeps a bounded pool of its best known neighbors with *new/old* flags;
//! each iteration joins every vertex's sampled new neighbors against its
//! new+old neighbors (forward and reverse) and inserts improvements. The
//! paper's KGraph parameters map directly: `K` (result degree), `L` (pool
//! size), `iter`, `S` (sample), `R` (reverse sample).
//!
//! The local join runs in parallel, and its output is **independent of the
//! thread count**: a pool's final content is the top-`L` of all *distinct*
//! `(dist, id)` items ever offered to it ([`Neighbor`]'s total order breaks
//! distance ties by id, and insertion rejects exact duplicates), so the
//! order in which concurrent workers offer items cannot change what
//! survives. Distances are symmetric bit-for-bit, and the convergence
//! check counts *new-flagged pool items after the join* — a function of
//! pool content — rather than racing on a per-insert counter.
//!
//! # Termination contract
//!
//! Both descent engines in this crate — `nn_descent` here and
//! [`crate::rnndescent::rnn_descent`] — share one convergence rule,
//! [`descent_converged`]:
//!
//! - **What is counted.** After each refinement pass, the number of pool
//!   items still flagged *new* — discoveries the next pass would actually
//!   work on. The count is taken from **pool content after the pass**,
//!   never from a "successful inserts this pass" counter: pool content is
//!   the top-`L` of the distinct items offered (order-independent),
//!   whereas an insert counter depends on worker interleaving (an item can
//!   be inserted then displaced, or rejected because its displacer arrived
//!   first — the tally differs between orders even though the final pool
//!   is identical).
//! - **The threshold.** The pass loop stops early when the count drops
//!   below `DESCENT_DELTA × n × degree` — KGraph's `delta = 0.001` rule,
//!   where `degree` is the engine's working degree (`K` here, the initial
//!   out-degree `r` for RNN-Descent). `iters`/`inner` are therefore
//!   *budgets*, not fixed costs: a converged dataset stops in fewer
//!   passes, and extra budget changes nothing.
//! - **What "new" means.** An item is flagged new when it enters a pool
//!   and old once a pass has consumed it: sampled into a join here
//!   (`sample` bounds how many new items each vertex may consume per
//!   iteration — `sample = 0` therefore disables refinement entirely), or
//!   pruned-and-kept by RNN-Descent's update pass. Old items are
//!   re-compared only against new ones, which is what makes converged
//!   neighborhoods cheap in both engines.

use crate::parallel;
use crate::telemetry;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use weavess_data::{Dataset, Neighbor};

/// KGraph's `delta`: the early-termination fraction shared by both descent
/// engines (see the module-level *Termination contract*).
pub const DESCENT_DELTA: f64 = 0.001;

/// The shared convergence test: true when `new_flagged` — the number of
/// pool items still flagged new after a refinement pass, a pure function
/// of pool content and therefore of the input, never of thread count —
/// has dropped below `DESCENT_DELTA × n × degree`.
pub fn descent_converged(new_flagged: usize, n: usize, degree: usize) -> bool {
    new_flagged < (DESCENT_DELTA * (n * degree) as f64) as usize
}

/// NN-Descent parameters (KGraph's five sensitive knobs, Appendix H).
#[derive(Debug, Clone)]
pub struct NnDescentParams {
    /// Out-degree of the produced graph (`K`).
    pub k: usize,
    /// Neighbor-pool size during refinement (`L ≥ K`).
    pub l: usize,
    /// Refinement-iteration budget (`iter`) — an upper bound, not a fixed
    /// cost: iteration stops early per the module-level *Termination
    /// contract* ([`descent_converged`]).
    pub iters: usize,
    /// Forward sample size per vertex per iteration (`S`): how many
    /// new-flagged pool items each vertex may consume (join, then mark
    /// old) per iteration. `0` disables refinement — no pair is ever
    /// joined and the output is the initialization's top-`K`.
    pub sample: usize,
    /// Reverse sample size per vertex per iteration (`R`).
    pub reverse: usize,
    /// RNG seed for the random initialization and sampling.
    pub seed: u64,
    /// Construction threads (0 = one per available core). The produced
    /// graph is identical for every value.
    pub threads: usize,
}

impl Default for NnDescentParams {
    fn default() -> Self {
        NnDescentParams {
            k: 20,
            l: 30,
            iters: 8,
            sample: 10,
            reverse: 20,
            seed: 0xBEEF,
            threads: 0,
        }
    }
}

#[derive(Clone, Copy)]
struct FlaggedNeighbor {
    n: Neighbor,
    new: bool,
}

/// One vertex's pool, sorted nearest-first, bounded by `l`.
struct Pool {
    items: Vec<FlaggedNeighbor>,
}

impl Pool {
    /// Inserts; returns true when the pool improved.
    fn insert(&mut self, cap: usize, n: Neighbor) -> bool {
        let pos = self.items.partition_point(|x| x.n < n);
        if pos < self.items.len() && self.items[pos].n == n {
            return false;
        }
        if pos >= cap {
            return false;
        }
        self.items.insert(pos, FlaggedNeighbor { n, new: true });
        self.items.truncate(cap);
        true
    }
}

/// Runs NN-Descent and returns each vertex's `k` nearest discovered
/// neighbors (sorted nearest-first). When `initial` is given it seeds the
/// pools (EFANNA's KD-tree initialization); otherwise pools start random.
pub fn nn_descent(
    ds: &Dataset,
    params: &NnDescentParams,
    initial: Option<&[Vec<Neighbor>]>,
) -> Vec<Vec<Neighbor>> {
    let n = ds.len();
    assert!(n >= 2, "need at least two points");
    let l = params.l.max(params.k).max(2);
    let k = params.k.max(1);
    let threads = parallel::resolve_threads(params.threads);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let ndc = AtomicU64::new(0);

    // --- Initialization (C1): random or caller-provided pools. The RNG
    // draws stay sequential (one stream, identical at any thread count);
    // the distances they need are batch-scored in parallel below. Draw
    // rejection is by id, which reproduces the historical insert-then-
    // reject-duplicates stream exactly whenever pool distances are the
    // kernel's own (a duplicate (id, dist) pair is a duplicate id, since
    // the distance is a pure function of the pair — true for every
    // in-repo caller). ---
    let mut seeded: Vec<Pool> = Vec::with_capacity(n);
    let mut pad: Vec<Vec<u32>> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let mut pool = Pool { items: Vec::new() };
        if let Some(init) = initial {
            for nb in &init[v as usize] {
                if nb.id != v {
                    pool.insert(l, *nb);
                }
            }
        }
        let target = l.min(n - 1);
        let mut draws: Vec<u32> = Vec::new();
        while pool.items.len() + draws.len() < target {
            let cand = rng.gen_range(0..n as u32);
            if cand != v && !draws.contains(&cand) && !pool.items.iter().any(|x| x.n.id == cand) {
                draws.push(cand);
            }
        }
        seeded.push(pool);
        pad.push(draws);
    }
    let pools: Vec<Mutex<Pool>> = parallel::par_chunks_map(
        n,
        parallel::CHUNK,
        threads,
        Vec::<f32>::new,
        |dists, range| {
            let mut out: Vec<Pool> = Vec::with_capacity(range.len());
            let mut scored = 0u64;
            for v in range {
                let mut pool = Pool {
                    items: seeded[v].items.clone(),
                };
                if !pad[v].is_empty() {
                    ds.dist_to_many(ds.point(v as u32), &pad[v], dists);
                    scored += pad[v].len() as u64;
                    for (&cand, &d) in pad[v].iter().zip(dists.iter()) {
                        pool.insert(l, Neighbor::new(cand, d));
                    }
                }
                out.push(pool);
            }
            ndc.fetch_add(scored, Ordering::Relaxed);
            out
        },
    )
    .into_iter()
    .flatten()
    .map(Mutex::new)
    .collect();
    drop(seeded);
    drop(pad);
    for _iter in 0..params.iters {
        // --- Sample step: per-vertex forward new/old lists. ---
        let mut fwd_new: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut fwd_old: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            let mut pool = pools[v].lock();
            let mut sampled = 0usize;
            for item in pool.items.iter_mut() {
                if item.new {
                    if sampled < params.sample {
                        fwd_new[v].push(item.n.id);
                        item.new = false; // consumed: old next round
                        sampled += 1;
                    }
                } else {
                    fwd_old[v].push(item.n.id);
                }
            }
        }
        // --- Reverse lists (bounded random sample of R). ---
        let mut rev_new: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut rev_old: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n as u32 {
            for &u in &fwd_new[v as usize] {
                reservoir_push(&mut rev_new[u as usize], v, params.reverse, &mut rng);
            }
            for &u in &fwd_old[v as usize] {
                reservoir_push(&mut rev_old[u as usize], v, params.reverse, &mut rng);
            }
        }
        // --- Local join (parallel over fixed-size vertex chunks). ---
        parallel::par_chunks_map(
            n,
            parallel::CHUNK,
            threads,
            || {
                (
                    Vec::<u32>::new(),
                    Vec::<u32>::new(),
                    Vec::<u32>::new(),
                    Vec::<f32>::new(),
                )
            },
            |(news, olds, partners, dists), range| {
                let mut scored = 0u64;
                for v in range {
                    news.clear();
                    olds.clear();
                    news.extend_from_slice(&fwd_new[v]);
                    news.extend_from_slice(&rev_new[v]);
                    olds.extend_from_slice(&fwd_old[v]);
                    olds.extend_from_slice(&rev_old[v]);
                    news.sort_unstable();
                    news.dedup();
                    olds.sort_unstable();
                    olds.dedup();
                    // All partners of one `a` (new × new upper triangle,
                    // then new × old) are staged and scored with a single
                    // `dist_to_many` over `a`'s point — the same kernel as
                    // the pairwise path, so distances are bit-equal and
                    // the produced graph is unchanged.
                    for (i, &a) in news.iter().enumerate() {
                        partners.clear();
                        partners.extend_from_slice(&news[i + 1..]);
                        partners.extend(olds.iter().copied().filter(|&b| b != a));
                        ds.dist_to_many(ds.point(a), partners, dists);
                        scored += partners.len() as u64;
                        for (&b, &d) in partners.iter().zip(dists.iter()) {
                            join_at(&pools, l, a, b, d);
                        }
                    }
                }
                ndc.fetch_add(scored, Ordering::Relaxed);
            },
        );
        // KGraph-style delta termination on the thread-count-independent
        // metric of the shared contract (module docs): new-flagged items
        // after the join — surviving discoveries not yet consumed by
        // sampling.
        let discovered: usize = pools
            .iter()
            .map(|p| p.lock().items.iter().filter(|x| x.new).count())
            .sum();
        if descent_converged(discovered, n, k) {
            break;
        }
    }

    telemetry::add_span_ndc(ndc.load(Ordering::Relaxed));
    pools
        .into_iter()
        .map(|p| {
            let pool = p.into_inner();
            pool.items.iter().take(k).map(|f| f.n).collect()
        })
        .collect()
}

/// Tries the pair (a, b), whose distance `d` is already computed, in both
/// pools.
fn join_at(pools: &[Mutex<Pool>], l: usize, a: u32, b: u32, d: f32) {
    pools[a as usize].lock().insert(l, Neighbor::new(b, d));
    pools[b as usize].lock().insert(l, Neighbor::new(a, d));
}

/// Bounded reservoir-style push: appends until `cap`, then replaces a
/// random slot with probability cap/len — an O(1) approximation of
/// KGraph's reverse-neighbor sampling.
fn reservoir_push(list: &mut Vec<u32>, v: u32, cap: usize, rng: &mut StdRng) {
    if list.len() < cap.max(1) {
        list.push(v);
    } else {
        let slot = rng.gen_range(0..list.len() * 2);
        if slot < list.len() {
            list[slot] = v;
        }
    }
}

/// Graph quality of an NN-Descent output against the exact KNNG — a
/// convenience used by tests and the Figure 15 iteration study.
pub fn knn_recall(result: &[Vec<Neighbor>], exact: &[Vec<u32>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (row, truth) in result.iter().zip(exact) {
        let have: Vec<u32> = row.iter().map(|n| n.id).collect();
        for t in truth.iter().take(row.len()) {
            total += 1;
            if have.contains(t) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::exact_knn_graph;
    use weavess_data::synthetic::MixtureSpec;

    fn dataset() -> Dataset {
        MixtureSpec::table10(16, 1_000, 5, 3.0, 10).generate().0
    }

    #[test]
    fn converges_to_high_graph_quality() {
        let ds = dataset();
        let params = NnDescentParams {
            k: 10,
            l: 30,
            iters: 10,
            sample: 12,
            reverse: 20,
            seed: 7,
            threads: 4,
        };
        let g = nn_descent(&ds, &params, None);
        let exact = exact_knn_graph(&ds, 10, 4);
        let q = knn_recall(&g, &exact);
        assert!(q > 0.90, "graph quality {q}");
    }

    #[test]
    fn more_iterations_do_not_hurt_quality() {
        let ds = dataset();
        let exact = exact_knn_graph(&ds, 10, 4);
        let mut qualities = Vec::new();
        for iters in [1, 4, 10] {
            let params = NnDescentParams {
                k: 10,
                l: 20,
                iters,
                sample: 8,
                reverse: 10,
                seed: 7,
                threads: 4,
            };
            qualities.push(knn_recall(&nn_descent(&ds, &params, None), &exact));
        }
        assert!(qualities[2] >= qualities[0] - 0.02, "{qualities:?}");
        assert!(qualities[2] > 0.7, "{qualities:?}");
    }

    #[test]
    fn respects_k_and_excludes_self() {
        let ds = dataset();
        let params = NnDescentParams {
            k: 6,
            l: 12,
            iters: 3,
            ..Default::default()
        };
        let g = nn_descent(&ds, &params, None);
        for (v, row) in g.iter().enumerate() {
            assert!(row.len() <= 6);
            assert!(row.iter().all(|n| n.id != v as u32));
            assert!(row.windows(2).all(|w| w[0].dist <= w[1].dist));
        }
    }

    #[test]
    fn good_initialization_speeds_convergence() {
        let ds = dataset();
        let exact = exact_knn_graph(&ds, 10, 4);
        // One iteration from random vs one iteration from the exact graph.
        let params = NnDescentParams {
            k: 10,
            l: 20,
            iters: 1,
            sample: 8,
            reverse: 10,
            seed: 7,
            threads: 2,
        };
        let from_random = knn_recall(&nn_descent(&ds, &params, None), &exact);
        let init: Vec<Vec<Neighbor>> = exact
            .iter()
            .enumerate()
            .map(|(v, row)| {
                row.iter()
                    .map(|&u| Neighbor::new(u, ds.dist(v as u32, u)))
                    .collect()
            })
            .collect();
        let from_exact = knn_recall(&nn_descent(&ds, &params, Some(&init)), &exact);
        assert!(from_exact > from_random, "{from_exact} <= {from_random}");
        assert!(from_exact > 0.95);
    }

    #[test]
    fn descent_converged_threshold_is_delta_n_degree() {
        // n=1000, degree=10 → threshold 0.001 * 10_000 = 10: strictly
        // below converges, at the threshold does not.
        assert!(descent_converged(0, 1_000, 10));
        assert!(descent_converged(9, 1_000, 10));
        assert!(!descent_converged(10, 1_000, 10));
        assert!(!descent_converged(11, 1_000, 10));
        // Tiny problems (threshold truncates to 0): only an exact zero
        // count can never converge early — budget runs to completion.
        assert!(!descent_converged(0, 10, 10));
    }

    #[test]
    fn iteration_budget_is_cut_short_by_convergence() {
        // Once converged, surplus budget changes nothing: a 40-iteration
        // run and a 50-iteration run terminate at the same pass and emit
        // identical graphs (far sooner than either budget — the contract's
        // "iters is a budget" clause).
        let ds = dataset();
        let mk = |iters| NnDescentParams {
            k: 10,
            l: 20,
            iters,
            sample: 8,
            reverse: 10,
            seed: 7,
            threads: 2,
        };
        let digest = |g: &[Vec<Neighbor>]| {
            g.iter()
                .map(|r| {
                    r.iter()
                        .map(|n| (n.id, n.dist.to_bits()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        let a = nn_descent(&ds, &mk(40), None);
        let b = nn_descent(&ds, &mk(50), None);
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn zero_sample_disables_refinement() {
        // sample = 0 means no new item is ever consumed: no joins happen
        // and the output equals the initialization's top-K (the iters=0
        // run), regardless of the iteration budget.
        let ds = dataset();
        let mk = |iters, sample| NnDescentParams {
            k: 10,
            l: 20,
            iters,
            sample,
            reverse: 10,
            seed: 7,
            threads: 2,
        };
        let digest = |g: &[Vec<Neighbor>]| {
            g.iter()
                .map(|r| {
                    r.iter()
                        .map(|n| (n.id, n.dist.to_bits()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        let no_sampling = nn_descent(&ds, &mk(5, 0), None);
        let no_iterations = nn_descent(&ds, &mk(0, 8), None);
        assert_eq!(digest(&no_sampling), digest(&no_iterations));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let params = NnDescentParams {
            k: 8,
            l: 16,
            iters: 2,
            threads: 1,
            ..Default::default()
        };
        let a = nn_descent(&ds, &params, None);
        let b = nn_descent(&ds, &params, None);
        assert_eq!(
            a.iter()
                .map(|r| r.iter().map(|n| n.id).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
            b.iter()
                .map(|r| r.iter().map(|n| n.id).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        );
    }
}
