//! The §5.4 unified evaluation framework: a *Refinement*-strategy builder
//! with one pluggable choice per pipeline component.
//!
//! The paper's component study (Figure 10) fixes a benchmark algorithm
//! (Table 13) and swaps exactly one component per experiment; this module
//! is that machine. [`PipelineBuilder::benchmark`] reproduces the Table 13
//! configuration: `C1_NSG` (NN-Descent), `C2_NSSG` (expansion), `C3_HNSW`
//! (RNG rule), `C4_NSSG`/`C6_NSSG` (fixed random entries), `C5_IEH`
//! (no connectivity repair), `C7_NSW` (best-first).

use crate::components::candidates::{
    candidates_by_expansion, candidates_by_search, candidates_direct,
};
use crate::components::connectivity::{add_reverse_edges, dfs_repair};
use crate::components::init::{
    init_brute_force, init_kdtree_nn_descent, init_nn_descent, init_random, init_rnn_descent,
};
use crate::components::seeds::SeedStrategy;
use crate::components::selection::{
    select_angle, select_closest, select_dpg, select_mst, select_rng_alpha,
};
use crate::index::FlatIndex;
use crate::nndescent::NnDescentParams;
use crate::parallel;
use crate::rnndescent::RnnDescentParams;
use crate::search::{Router, SearchScratch, SearchStats};
use crate::telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use weavess_data::{Dataset, Neighbor};
use weavess_graph::CsrGraph;
use weavess_trees::{BkTree, KdForest, LshTable, VpTree};

/// C1 choice.
#[derive(Debug, Clone)]
pub enum InitChoice {
    /// Random neighbors (KGraph / Vamana style).
    Random {
        /// Neighbors per point.
        k: usize,
    },
    /// NN-Descent (`C1_NSG`).
    NnDescent(NnDescentParams),
    /// Relative NN-Descent (`C1_RNND`, arXiv 2310.20419): the pruning
    /// descent — same output contract as NN-Descent, far fewer distance
    /// computations.
    RnnDescent(RnnDescentParams),
    /// KD-forest assisted NN-Descent (`C1_EFANNA`).
    KdTree {
        /// Trees in the forest.
        n_trees: usize,
        /// Distance budget per tree per point.
        checks_per_tree: usize,
        /// The NN-Descent refinement that follows.
        nd: NnDescentParams,
    },
    /// Exact KNNG by brute force (`C1_IEH` / `C1_FANNG`).
    BruteForce {
        /// Neighbors per point.
        k: usize,
    },
}

/// C2 choice.
#[derive(Debug, Clone)]
pub enum CandidateChoice {
    /// Greedy search on the initial graph (`C2_NSW` / `C2_NSG`).
    Search {
        /// Search beam width (NSG's `L`).
        beam: usize,
        /// Candidate cap (NSG's `C`).
        cap: usize,
    },
    /// Neighbors + neighbors' neighbors (`C2_NSSG`).
    Expansion {
        /// Candidate cap.
        cap: usize,
    },
    /// Direct neighbors only (`C2_DPG`).
    Direct,
}

/// C3 choice.
#[derive(Debug, Clone)]
pub enum SelectionChoice {
    /// Distance-only top-K (`C3_KGraph`).
    Closest {
        /// Max degree.
        degree: usize,
    },
    /// RNG rule with Vamana's α (`C3_HNSW`/`C3_NSG` at α=1, `C3_Vamana` at α>1).
    RngAlpha {
        /// Max degree.
        degree: usize,
        /// Occlusion relaxation (≥ 1).
        alpha: f32,
    },
    /// NSSG's angle threshold (`C3_NSSG`).
    Angle {
        /// Max degree.
        degree: usize,
        /// Minimum pairwise angle in degrees.
        min_deg: f32,
    },
    /// DPG's angular diversification (`C3_DPG`).
    Dpg {
        /// Neighbors kept (the DPG paper's κ).
        kappa: usize,
    },
    /// MST-adjacency (`C3_HCNNG`).
    Mst,
}

/// C4/C6 choice (built into a [`SeedStrategy`] at build time).
#[derive(Debug, Clone)]
pub enum SeedChoice {
    /// Fresh random seeds every query (`C4_DPG` etc.).
    Random {
        /// Seeds per query.
        count: usize,
    },
    /// The dataset medoid (`C4_NSG` / `C4_Vamana`).
    Medoid,
    /// Random but fixed at build time (`C4_NSSG`).
    FixedRandom {
        /// Number of fixed entries.
        count: usize,
    },
    /// KD-forest leaf lookup (`C4_HCNNG`).
    KdLeaf {
        /// Trees.
        n_trees: usize,
        /// Seeds per query.
        count: usize,
    },
    /// KD-forest budgeted search (`C4_EFANNA` / `C4_SPTAG-KDT`).
    KdSearch {
        /// Trees.
        n_trees: usize,
        /// Seeds per query.
        count: usize,
        /// Distance budget per tree.
        checks_per_tree: usize,
    },
    /// VP-tree (`C4_NGT`).
    VpTree {
        /// Seeds per query.
        count: usize,
        /// Distance budget.
        checks: usize,
    },
    /// Balanced k-means tree (`C4_SPTAG-BKT`).
    BkTree {
        /// Seeds per query.
        count: usize,
        /// Distance budget.
        checks: usize,
    },
    /// LSH buckets (`C4_IEH`).
    Lsh {
        /// Hash tables.
        tables: usize,
        /// Bits per table.
        bits: usize,
        /// Seeds per query.
        count: usize,
    },
    /// PQ-compressed scan (the §4.1 OPQ-seed reference).
    Pq {
        /// Subspaces (must divide the dimension).
        m: usize,
        /// Seeds per query.
        count: usize,
    },
}

/// C5 choice.
#[derive(Debug, Clone)]
pub enum ConnectivityChoice {
    /// No repair (`C5_IEH` / `C5_Vamana`).
    None,
    /// NSG-style DFS repair from the medoid (`C5_NSG`).
    DfsRepair,
    /// DPG-style reverse edges (`C5_DPG`), bounded per vertex.
    ReverseEdges {
        /// Per-vertex degree cap after undirection.
        max_degree: usize,
    },
}

/// A full pipeline configuration.
///
/// ```
/// use weavess_core::index::{AnnIndex, SearchContext};
/// use weavess_core::pipeline::{PipelineBuilder, SeedChoice};
/// use weavess_data::synthetic::MixtureSpec;
///
/// let (base, queries) = MixtureSpec::table10(8, 500, 2, 5.0, 5).generate();
/// let mut builder = PipelineBuilder::benchmark(2, 2);
/// builder.seeds = SeedChoice::Medoid; // swap one component (C4)
/// let index = builder.build(&base);
/// let mut ctx = SearchContext::new(base.len());
/// let res = index.search(&base, queries.point(0), 5, 20, &mut ctx);
/// assert_eq!(res.len(), 5);
/// ```
pub struct PipelineBuilder {
    /// C1.
    pub init: InitChoice,
    /// C2.
    pub candidates: CandidateChoice,
    /// C3.
    pub selection: SelectionChoice,
    /// C4 + C6.
    pub seeds: SeedChoice,
    /// C5.
    pub connectivity: ConnectivityChoice,
    /// C7.
    pub router: Router,
    /// Construction threads (0 = one per available core). The built graph
    /// is identical for every value.
    pub threads: usize,
    /// Seed for every randomized stage.
    pub seed: u64,
    /// Name stamped on the built index.
    pub name: &'static str,
}

impl PipelineBuilder {
    /// The Table 13 benchmark configuration, with NN-Descent running
    /// `iters` iterations (Figure 15 studies this knob; the paper settles
    /// on 8).
    pub fn benchmark(iters: usize, threads: usize) -> Self {
        PipelineBuilder {
            init: InitChoice::NnDescent(NnDescentParams {
                k: 40,
                l: 60,
                iters,
                sample: 15,
                reverse: 30,
                seed: 0xBE11C4,
                threads,
            }),
            candidates: CandidateChoice::Expansion { cap: 100 },
            selection: SelectionChoice::RngAlpha {
                degree: 30,
                alpha: 1.0,
            },
            seeds: SeedChoice::FixedRandom { count: 8 },
            connectivity: ConnectivityChoice::None,
            router: Router::BestFirst,
            threads,
            seed: 0xBE11C4,
            name: "benchmark",
        }
    }

    /// Runs the pipeline.
    pub fn build(&self, ds: &Dataset) -> FlatIndex {
        self.build_timed(ds).0
    }

    /// Runs the pipeline and reports `(index, init_seconds, total_seconds)`
    /// for the Table 15 per-component construction-time study.
    pub fn build_timed(&self, ds: &Dataset) -> (FlatIndex, f64, f64) {
        let t0 = std::time::Instant::now();
        let threads = parallel::resolve_threads(self.threads);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // --- C1: initialization ---
        let init_lists: Vec<Vec<Neighbor>> = telemetry::span("C1 init", || match &self.init {
            InitChoice::Random { k } => init_random(ds, *k, self.seed),
            InitChoice::NnDescent(p) => init_nn_descent(ds, p),
            InitChoice::RnnDescent(p) => init_rnn_descent(ds, p),
            InitChoice::KdTree {
                n_trees,
                checks_per_tree,
                nd,
            } => {
                let forest = KdForest::build(ds, *n_trees, 32, &mut rng);
                init_kdtree_nn_descent(ds, &forest, *checks_per_tree, nd, threads)
            }
            InitChoice::BruteForce { k } => init_brute_force(ds, *k, threads),
        });
        let init_secs = t0.elapsed().as_secs_f64();

        // Entry for search-based acquisition and DFS repair.
        let medoid = ds.medoid();

        // --- C2 + C3: per-point candidate acquisition and selection ---
        let init_csr = CsrGraph::from_lists(
            &init_lists
                .iter()
                .map(|l| l.iter().map(|x| x.id).collect::<Vec<u32>>())
                .collect::<Vec<_>>(),
        );
        let n = ds.len();
        let mut new_lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        telemetry::span("C2+C3 candidates+selection", || {
            let ndc = AtomicU64::new(0);
            parallel::par_fill(
                &mut new_lists,
                parallel::CHUNK,
                threads,
                || (SearchScratch::new(n), SearchStats::default()),
                |(scratch, stats), start, slot| {
                    let before = stats.ndc;
                    for (j, out) in slot.iter_mut().enumerate() {
                        let p = (start + j) as u32;
                        let cands = match &self.candidates {
                            CandidateChoice::Search { beam, cap } => candidates_by_search(
                                ds,
                                &init_csr,
                                p,
                                &[medoid],
                                *beam,
                                *cap,
                                scratch,
                                stats,
                            ),
                            CandidateChoice::Expansion { cap } => {
                                candidates_by_expansion(ds, &init_lists, p, *cap)
                            }
                            CandidateChoice::Direct => candidates_direct(&init_lists, p),
                        };
                        *out = match &self.selection {
                            SelectionChoice::Closest { degree } => select_closest(&cands, *degree),
                            SelectionChoice::RngAlpha { degree, alpha } => {
                                select_rng_alpha(ds, p, &cands, *degree, *alpha)
                            }
                            SelectionChoice::Angle { degree, min_deg } => {
                                select_angle(ds, p, &cands, *degree, *min_deg)
                            }
                            SelectionChoice::Dpg { kappa } => select_dpg(ds, p, &cands, *kappa),
                            SelectionChoice::Mst => select_mst(ds, p, &cands),
                        };
                    }
                    ndc.fetch_add(stats.ndc - before, Ordering::Relaxed);
                },
            );
            telemetry::add_span_ndc(ndc.load(Ordering::Relaxed));
        });
        drop(init_csr);

        // --- C5: connectivity ---
        telemetry::span("C5 connectivity", || match &self.connectivity {
            ConnectivityChoice::None => {}
            ConnectivityChoice::DfsRepair => {
                dfs_repair(ds, &mut new_lists, medoid, 64);
            }
            ConnectivityChoice::ReverseEdges { max_degree } => {
                add_reverse_edges(&mut new_lists, *max_degree);
            }
        });

        // --- C4: seed preprocessing ---
        let seeds = telemetry::span("C4 seeds", || match &self.seeds {
            SeedChoice::Random { count } => SeedStrategy::Random { count: *count },
            SeedChoice::Medoid => SeedStrategy::Fixed(vec![medoid]),
            SeedChoice::FixedRandom { count } => {
                let fixed: Vec<u32> = (0..*count).map(|_| rng.gen_range(0..n as u32)).collect();
                SeedStrategy::Fixed(fixed)
            }
            SeedChoice::KdLeaf { n_trees, count } => SeedStrategy::KdLeaf {
                forest: KdForest::build(ds, *n_trees, 32, &mut rng),
                count: *count,
            },
            SeedChoice::KdSearch {
                n_trees,
                count,
                checks_per_tree,
            } => SeedStrategy::KdSearch {
                forest: KdForest::build(ds, *n_trees, 32, &mut rng),
                count: *count,
                checks_per_tree: *checks_per_tree,
            },
            SeedChoice::VpTree { count, checks } => SeedStrategy::Vp {
                tree: VpTree::build(ds, 16),
                count: *count,
                checks: *checks,
            },
            SeedChoice::BkTree { count, checks } => SeedStrategy::Bk {
                tree: BkTree::build(ds, 8, 32),
                count: *count,
                checks: *checks,
            },
            SeedChoice::Lsh {
                tables,
                bits,
                count,
            } => SeedStrategy::Lsh {
                table: LshTable::build(ds, *tables, *bits, &mut rng),
                count: *count,
                fallback: vec![medoid],
            },
            SeedChoice::Pq { m, count } => SeedStrategy::Pq {
                pq: weavess_data::pq::PqDataset::train(ds, *m, ds.len().min(20_000)),
                count: *count,
            },
        });

        let graph = telemetry::span("freeze", || {
            CsrGraph::from_lists(
                &new_lists
                    .iter()
                    .map(|l| l.iter().map(|x| x.id).collect::<Vec<u32>>())
                    .collect::<Vec<_>>(),
            )
        });
        let total_secs = t0.elapsed().as_secs_f64();
        (
            FlatIndex {
                name: self.name,
                graph,
                seeds,
                router: self.router.clone(),
            },
            init_secs,
            total_secs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{AnnIndex, SearchContext};
    use weavess_data::ground_truth::ground_truth;
    use weavess_data::metrics::{mean_recall, recall};
    use weavess_data::synthetic::MixtureSpec;

    fn dataset() -> (Dataset, Dataset) {
        MixtureSpec::table10(16, 1_500, 5, 3.0, 30).generate()
    }

    fn run_recall(idx: &FlatIndex, ds: &Dataset, qs: &Dataset, beam: usize) -> f64 {
        let gt = ground_truth(ds, qs, 10, 4);
        let mut ctx = SearchContext::new(ds.len());
        let mut total = 0.0;
        for qi in 0..qs.len() as u32 {
            let res: Vec<u32> = idx
                .search(ds, qs.point(qi), 10, beam, &mut ctx)
                .iter()
                .map(|n| n.id)
                .collect();
            total += recall(&res, &gt[qi as usize]);
        }
        total / qs.len() as f64
    }

    #[test]
    fn benchmark_pipeline_reaches_high_recall() {
        let (ds, qs) = dataset();
        let idx = PipelineBuilder::benchmark(4, 4).build(&ds);
        let r = run_recall(&idx, &ds, &qs, 80);
        assert!(r > 0.85, "recall={r}");
    }

    #[test]
    fn component_swaps_produce_working_indexes() {
        let (ds, qs) = dataset();
        let gt = ground_truth(&ds, &qs, 10, 4);
        let mut b = PipelineBuilder::benchmark(2, 4);
        b.selection = SelectionChoice::Angle {
            degree: 30,
            min_deg: 60.0,
        };
        b.connectivity = ConnectivityChoice::DfsRepair;
        b.seeds = SeedChoice::Medoid;
        b.router = Router::Guided;
        let idx = b.build(&ds);
        let mut ctx = SearchContext::new(ds.len());
        let results: Vec<Vec<u32>> = (0..qs.len() as u32)
            .map(|qi| {
                idx.search(&ds, qs.point(qi), 10, 80, &mut ctx)
                    .iter()
                    .map(|n| n.id)
                    .collect()
            })
            .collect();
        let r = mean_recall(&results, &gt);
        assert!(r > 0.5, "recall={r}");
    }

    #[test]
    fn build_timed_reports_monotone_times() {
        let (ds, _) = MixtureSpec::table10(8, 400, 3, 3.0, 5).generate();
        let (_, init_s, total_s) = PipelineBuilder::benchmark(2, 2).build_timed(&ds);
        assert!(init_s >= 0.0);
        assert!(total_s >= init_s);
    }

    #[test]
    fn rng_selection_bounds_degree() {
        let (ds, _) = dataset();
        let idx = PipelineBuilder::benchmark(2, 4).build(&ds);
        let stats = weavess_graph::metrics::degree_stats(idx.graph());
        assert!(stats.max <= 30, "max degree {}", stats.max);
    }
}
