//! Routing strategies (pipeline component C7) and search accounting.
//!
//! Every strategy operates on a frozen [`weavess_graph::CsrGraph`] (or any
//! [`weavess_graph::adjacency::GraphView`]), starts from
//! caller-provided seeds, and reports its work through [`SearchStats`]:
//! `ndc` (number of distance computations — the denominator of the paper's
//! *speedup* metric) and `hops` (expanded vertices — the paper's *query
//! path length*, which proxies I/O count on disk-resident indexes, §5.3).

mod backtrack;
mod beam;
pub mod filtered;
mod guided;
mod range;
mod scratch;
mod visited;

pub use backtrack::{backtrack_search, backtrack_search_traced};
pub use beam::{beam_search, beam_search_seeded, beam_search_seeded_traced, beam_search_traced};
pub use filtered::{filtered_beam_search, filtered_beam_search_traced};
pub use guided::{guided_search, guided_search_traced};
pub use range::{range_search, range_search_traced};
pub use scratch::SearchScratch;
pub use visited::VisitedPool;

use crate::telemetry::{NoopTracer, RouteTracer};
use weavess_data::vectors::VectorView;
use weavess_data::Neighbor;
use weavess_graph::adjacency::GraphView;

/// Per-query work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of distance computations (the paper's NDC; `speedup = |S| / ndc`).
    pub ndc: u64,
    /// Number of expanded vertices (the paper's query path length, PL).
    pub hops: u64,
    /// Maximum candidate-pool occupancy reached (the paper's
    /// candidate-set-size metric, CS). For range search — whose candidate
    /// queue is unbounded by design — this is the queue's peak length.
    pub pool_peak: u64,
}

impl SearchStats {
    /// Combines another query's counters (batch aggregation): counts add,
    /// the pool peak takes the max — both associative and commutative, so
    /// aggregates are independent of how queries were partitioned.
    pub fn merge(&mut self, other: SearchStats) {
        self.ndc += other.ndc;
        self.hops += other.hops;
        self.pool_peak = self.pool_peak.max(other.pool_peak);
    }
}

/// A routing strategy (C7) with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Router {
    /// The paper's Algorithm 1 (best-first search): used by NSW, HNSW,
    /// KGraph, IEH, EFANNA, DPG, NSG, NSSG, Vamana.
    BestFirst,
    /// NGT's variant: unbounded candidate queue, radius inflated by
    /// `(1 + epsilon)`. Larger ε alleviates local optima at more NDC.
    Range {
        /// Radius inflation factor ε.
        epsilon: f32,
    },
    /// FANNG's variant: best-first plus up to `extra` backtracks into
    /// not-yet-explored candidates after convergence.
    Backtrack {
        /// Number of post-convergence backtrack expansions.
        extra: usize,
    },
    /// HCNNG's guided search: skips neighbors whose dominant-coordinate
    /// direction disagrees with the query's, trading a little accuracy for
    /// fewer distance computations.
    Guided,
    /// The optimized algorithm's two-stage routing (§6): guided search with
    /// a reduced beam to approach the target cheaply, then best-first with
    /// the full beam to finish precisely.
    TwoStage {
        /// Fraction of the full beam used by the guided first stage.
        stage1_beam_frac: f32,
    },
}

impl Router {
    /// Routes a query from `seeds`, returning up to `beam` nearest
    /// candidates, nearest first. `beam` is the paper's *candidate set
    /// size* (CS); result quality and cost both grow with it.
    ///
    /// `ds` is any [`VectorView`] — the raw dataset, SQ8 codes, or a
    /// fused node arena ([`Router::Guided`] and [`Router::TwoStage`]
    /// additionally require raw coordinates for the direction gate).
    #[allow(clippy::too_many_arguments)]
    pub fn search(
        &self,
        ds: &(impl VectorView + ?Sized),
        g: &(impl GraphView + ?Sized),
        query: &[f32],
        seeds: &[u32],
        beam: usize,
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        self.search_traced(ds, g, query, seeds, beam, scratch, stats, &mut NoopTracer)
    }

    /// [`Router::search`] with a [`RouteTracer`] observing the route. The
    /// tracer is a monomorphized generic: with [`NoopTracer`] the hook
    /// calls inline to nothing and this compiles to exactly
    /// [`Router::search`].
    #[allow(clippy::too_many_arguments)]
    pub fn search_traced<T: RouteTracer>(
        &self,
        ds: &(impl VectorView + ?Sized),
        g: &(impl GraphView + ?Sized),
        query: &[f32],
        seeds: &[u32],
        beam: usize,
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
        tracer: &mut T,
    ) -> Vec<Neighbor> {
        match *self {
            Router::BestFirst => {
                beam_search_traced(ds, g, query, seeds, beam, scratch, stats, tracer)
            }
            Router::Range { epsilon } => {
                range_search_traced(ds, g, query, seeds, beam, epsilon, scratch, stats, tracer)
            }
            Router::Backtrack { extra } => {
                backtrack_search_traced(ds, g, query, seeds, beam, extra, scratch, stats, tracer)
            }
            Router::Guided => {
                guided_search_traced(ds, g, query, seeds, beam, scratch, stats, tracer)
            }
            Router::TwoStage { stage1_beam_frac } => {
                let b1 = ((beam as f32 * stage1_beam_frac) as usize).max(4).min(beam);
                let stage1 = guided_search_traced(ds, g, query, seeds, b1, scratch, stats, tracer);
                if stage1.is_empty() {
                    return stage1;
                }
                // Stage 2 continues from stage 1's already-scored pool in
                // the same visited epoch: the full beam re-expands every
                // frontier vertex, but only vertices stage 1 *gated out*
                // (guided search leaves skipped neighbors unvisited) cost
                // new distance computations.
                beam_search_seeded_traced(ds, g, query, &stage1, beam, scratch, stats, tracer)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SearchStats {
            ndc: 3,
            hops: 1,
            pool_peak: 9,
        };
        a.merge(SearchStats {
            ndc: 10,
            hops: 2,
            pool_peak: 5,
        });
        assert_eq!(
            a,
            SearchStats {
                ndc: 13,
                hops: 3,
                pool_peak: 9
            }
        );
    }
}
