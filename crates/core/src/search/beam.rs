//! Best-first search — the paper's Algorithm 1 (Appendix F), C7's
//! dominant implementation.

use super::scratch::{insert_unexpanded, SearchScratch};
use super::SearchStats;
use crate::telemetry::{NoopTracer, RouteTracer};
use weavess_data::prefetch::prefetch_enabled;
use weavess_data::vectors::VectorView;
use weavess_data::Neighbor;
use weavess_graph::adjacency::GraphView;

/// Best-first (beam) search from `seeds`, returning up to `beam` nearest
/// candidates nearest-first.
///
/// ```
/// use weavess_core::search::{beam_search, SearchScratch, SearchStats};
/// use weavess_data::Dataset;
/// use weavess_graph::CsrGraph;
///
/// // Three points on a line, chained 0 -> 1 -> 2.
/// let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
/// let g = CsrGraph::from_lists(&[vec![1u32], vec![0, 2], vec![1]]);
/// let mut scratch = SearchScratch::new(3);
/// let mut stats = SearchStats::default();
/// scratch.next_epoch();
/// let res = beam_search(&ds, &g, &[1.9], &[0], 3, &mut scratch, &mut stats);
/// assert_eq!(res[0].id, 2);
/// assert!(stats.ndc >= 3);
/// ```
///
/// The pool is a fixed-capacity sorted array; each iteration expands the
/// nearest unexpanded candidate and inserts its neighbors, exactly the
/// candidate-set discipline of Definition 4.7. Terminates when every pool
/// entry is expanded (the result set can no longer improve).
///
/// Expansion is batch-scored: all not-yet-visited neighbors of the
/// expanded vertex are staged and scored with one
/// [`VectorView::dist_to_many`] call, then inserted in the original
/// adjacency order — visit order, distances, and hence results are
/// bit-identical to scoring one neighbor at a time.
///
/// `ds` is any [`VectorView`]: the raw [`weavess_data::Dataset`], an SQ8
/// code table, or a fused node arena. While vertex `k` is expanded the
/// next pool candidate's node block and each staged neighbor's vector are
/// prefetched — pure hints, so results are identical with prefetch on or
/// off.
pub fn beam_search(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    beam: usize,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    beam_search_traced(ds, g, query, seeds, beam, scratch, stats, &mut NoopTracer)
}

/// [`beam_search`] with a [`RouteTracer`] observing seeds and expansions.
/// The tracer is monomorphized; with [`NoopTracer`] every hook inlines to
/// nothing and this is exactly [`beam_search`].
#[allow(clippy::too_many_arguments)]
pub fn beam_search_traced<T: RouteTracer>(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    seeds: &[u32],
    beam: usize,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
    tracer: &mut T,
) -> Vec<Neighbor> {
    let beam = beam.max(1);
    let pf = prefetch_enabled();
    let SearchScratch {
        visited,
        pool,
        expanded,
        batch_ids,
        batch_dists,
        ..
    } = scratch;
    pool.clear();
    expanded.clear();
    for &s in seeds {
        if visited.visit(s) {
            stats.ndc += 1;
            let d = ds.dist_to(query, s);
            tracer.on_seed(s, d);
            insert_unexpanded(pool, expanded, beam, Neighbor::new(s, d));
        }
    }
    stats.pool_peak = stats.pool_peak.max(pool.len() as u64);

    let mut k = 0usize;
    while k < pool.len() {
        if expanded[k] {
            k += 1;
            continue;
        }
        expanded[k] = true;
        stats.hops += 1;
        let v = pool[k].id;
        tracer.on_hop(v, pool[k].dist, stats.ndc, pool.len());
        if pf {
            if let Some(next) = pool.get(k + 1) {
                g.prefetch_neighbors(next.id);
            }
        }
        batch_ids.clear();
        for &u in g.neighbors(v) {
            if visited.visit(u) {
                if pf {
                    ds.prefetch_vector(u);
                }
                batch_ids.push(u);
            }
        }
        stats.ndc += batch_ids.len() as u64;
        ds.dist_to_many(query, batch_ids, batch_dists);
        let mut lowest_insert = usize::MAX;
        for (&u, &d) in batch_ids.iter().zip(batch_dists.iter()) {
            if let Some(pos) = insert_unexpanded(pool, expanded, beam, Neighbor::new(u, d)) {
                lowest_insert = lowest_insert.min(pos);
            }
        }
        stats.pool_peak = stats.pool_peak.max(pool.len() as u64);
        // Resume from the nearest new candidate if one arrived at or
        // above k (an insertion at exactly k shifts the just-expanded
        // entry right, leaving an unexpanded candidate at k).
        if lowest_insert <= k {
            k = lowest_insert;
        } else {
            k += 1;
        }
    }
    pool.clone()
}

/// Best-first continuation from an already-scored pool: entries enter the
/// pool *without* re-computing distances or touching the visited set (they
/// must already be marked visited this epoch). The two-stage router uses
/// this so stage 2 pays only for vertices stage 1 never scored.
pub fn beam_search_seeded(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    scored: &[Neighbor],
    beam: usize,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) -> Vec<Neighbor> {
    beam_search_seeded_traced(ds, g, query, scored, beam, scratch, stats, &mut NoopTracer)
}

/// [`beam_search_seeded`] with a [`RouteTracer`]. Pre-scored entries were
/// already reported by the stage that scored them, so only expansions are
/// traced here.
#[allow(clippy::too_many_arguments)]
pub fn beam_search_seeded_traced<T: RouteTracer>(
    ds: &(impl VectorView + ?Sized),
    g: &(impl GraphView + ?Sized),
    query: &[f32],
    scored: &[Neighbor],
    beam: usize,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
    tracer: &mut T,
) -> Vec<Neighbor> {
    let beam = beam.max(1);
    let pf = prefetch_enabled();
    let SearchScratch {
        visited,
        pool,
        expanded,
        batch_ids,
        batch_dists,
        ..
    } = scratch;
    pool.clear();
    expanded.clear();
    for &n in scored {
        debug_assert!(visited.is_visited(n.id));
        insert_unexpanded(pool, expanded, beam, n);
    }
    stats.pool_peak = stats.pool_peak.max(pool.len() as u64);
    let mut k = 0usize;
    while k < pool.len() {
        if expanded[k] {
            k += 1;
            continue;
        }
        expanded[k] = true;
        stats.hops += 1;
        let v = pool[k].id;
        tracer.on_hop(v, pool[k].dist, stats.ndc, pool.len());
        if pf {
            if let Some(next) = pool.get(k + 1) {
                g.prefetch_neighbors(next.id);
            }
        }
        batch_ids.clear();
        for &u in g.neighbors(v) {
            if visited.visit(u) {
                if pf {
                    ds.prefetch_vector(u);
                }
                batch_ids.push(u);
            }
        }
        stats.ndc += batch_ids.len() as u64;
        ds.dist_to_many(query, batch_ids, batch_dists);
        let mut lowest_insert = usize::MAX;
        for (&u, &d) in batch_ids.iter().zip(batch_dists.iter()) {
            if let Some(pos) = insert_unexpanded(pool, expanded, beam, Neighbor::new(u, d)) {
                lowest_insert = lowest_insert.min(pos);
            }
        }
        stats.pool_peak = stats.pool_peak.max(pool.len() as u64);
        if lowest_insert <= k {
            k = lowest_insert;
        } else {
            k += 1;
        }
    }
    pool.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavess_data::ground_truth::knn_scan;
    use weavess_data::synthetic::MixtureSpec;
    use weavess_data::Dataset;
    use weavess_graph::base::exact_knng;
    use weavess_graph::CsrGraph;

    fn setup() -> (Dataset, Dataset, CsrGraph) {
        let (base, queries) = MixtureSpec::table10(8, 500, 4, 3.0, 25).generate();
        let g = exact_knng(&base, 10, 4);
        (base, queries, g)
    }

    #[test]
    fn finds_true_nearest_on_exact_knng() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        let mut ok = 0usize;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            scratch.next_epoch();
            // Seed from several spread points to escape disconnected KNNG parts.
            let seeds: Vec<u32> = (0..8u32).map(|i| i * 61 % ds.len() as u32).collect();
            let res = beam_search(&ds, &g, q, &seeds, 40, &mut scratch, &mut stats);
            let truth = knn_scan(&ds, q, 1, None)[0].id;
            if res.first().map(|n| n.id) == Some(truth) {
                ok += 1;
            }
        }
        assert!(ok as f64 / qs.len() as f64 > 0.85, "ok={ok}/{}", qs.len());
        assert!(stats.ndc > 0 && stats.hops > 0);
        assert!(stats.pool_peak > 0 && stats.pool_peak <= 40);
    }

    #[test]
    fn result_is_sorted_and_bounded() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        scratch.next_epoch();
        let res = beam_search(&ds, &g, qs.point(0), &[0, 5], 16, &mut scratch, &mut stats);
        assert!(res.len() <= 16);
        assert!(res.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert_eq!(stats.pool_peak, res.len() as u64);
    }

    #[test]
    fn ndc_counts_each_vertex_once() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        scratch.next_epoch();
        beam_search(&ds, &g, qs.point(0), &[0], 64, &mut scratch, &mut stats);
        assert!(stats.ndc <= ds.len() as u64);
    }

    #[test]
    fn empty_seeds_give_empty_result() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut stats = SearchStats::default();
        scratch.next_epoch();
        let res = beam_search(&ds, &g, qs.point(0), &[], 8, &mut scratch, &mut stats);
        assert!(res.is_empty());
        assert_eq!(stats.ndc, 0);
        assert_eq!(stats.pool_peak, 0);
    }

    /// Regression: an insertion at exactly the resume index must re-enter
    /// the loop there. On a 1-d path graph the first expansion inserts the
    /// next-left vertex at position 0 while expanding position 0 — with a
    /// strict `<` resume check the search would only ever walk right.
    #[test]
    fn walks_both_directions_on_a_path_graph() {
        let ds = Dataset::from_rows(&(0..100).map(|i| vec![i as f32]).collect::<Vec<_>>());
        // Path graph: i <-> i+1.
        let lists: Vec<Vec<u32>> = (0..100u32)
            .map(|i| {
                let mut l = Vec::new();
                if i > 0 {
                    l.push(i - 1);
                }
                if i < 99 {
                    l.push(i + 1);
                }
                l
            })
            .collect();
        let g = CsrGraph::from_lists(&lists);
        let mut scratch = SearchScratch::new(100);
        let mut stats = SearchStats::default();
        scratch.next_epoch();
        // Query left of the seed: the search must walk 49 -> 42.
        let res = beam_search(&ds, &g, &[42.4], &[49], 20, &mut scratch, &mut stats);
        assert_eq!(res[0].id, 42, "failed to walk left: {:?}", &res[..3]);
    }

    #[test]
    fn larger_beam_never_reduces_accuracy() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let seeds: Vec<u32> = (0..4u32).collect();
        let mut hits_small = 0;
        let mut hits_large = 0;
        for qi in 0..qs.len() as u32 {
            let q = qs.point(qi);
            let truth: Vec<u32> = knn_scan(&ds, q, 10, None).iter().map(|n| n.id).collect();
            let mut s = SearchStats::default();
            scratch.next_epoch();
            let small = beam_search(&ds, &g, q, &seeds, 10, &mut scratch, &mut s);
            scratch.next_epoch();
            let large = beam_search(&ds, &g, q, &seeds, 80, &mut scratch, &mut s);
            hits_small += small
                .iter()
                .take(10)
                .filter(|n| truth.contains(&n.id))
                .count();
            hits_large += large
                .iter()
                .take(10)
                .filter(|n| truth.contains(&n.id))
                .count();
        }
        assert!(hits_large >= hits_small, "{hits_large} < {hits_small}");
    }

    /// The recording tracer must observe exactly `hops` expansions and one
    /// seed event per scored seed, without changing results or stats.
    #[test]
    fn recording_tracer_observes_the_route_without_changing_it() {
        let (ds, qs, g) = setup();
        let mut scratch = SearchScratch::new(ds.len());
        let mut plain = SearchStats::default();
        scratch.next_epoch();
        let a = beam_search(&ds, &g, qs.point(0), &[0, 5], 16, &mut scratch, &mut plain);
        let mut traced = SearchStats::default();
        let mut tracer = crate::telemetry::RecordingTracer::default();
        scratch.next_epoch();
        let b = beam_search_traced(
            &ds,
            &g,
            qs.point(0),
            &[0, 5],
            16,
            &mut scratch,
            &mut traced,
            &mut tracer,
        );
        assert_eq!(a, b);
        assert_eq!(plain, traced);
        assert_eq!(u64::from(tracer.hops()), traced.hops);
        assert!(tracer.replay_check(&ds, qs.point(0)));
    }
}
