//! Epoch-stamped visited set.
//!
//! Search visits thousands of vertices per query; clearing a boolean array
//! each time would cost O(n). An epoch stamp array makes reset O(1): a
//! vertex is visited iff its stamp equals the current epoch.

/// Reusable visited-set for graphs of a fixed vertex count.
#[derive(Debug, Clone)]
pub struct VisitedPool {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitedPool {
    /// A pool for `n` vertices, all unvisited.
    pub fn new(n: usize) -> Self {
        VisitedPool {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Starts a fresh query: every vertex becomes unvisited in O(1).
    pub fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped after ~4B queries: do the rare O(n) reset.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `v` visited; returns `true` when it was not yet visited this
    /// epoch (i.e. the caller should process it).
    #[inline]
    pub fn visit(&mut self, v: u32) -> bool {
        let s = &mut self.stamp[v as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// True when `v` was already visited this epoch.
    #[inline]
    pub fn is_visited(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    /// Fast-forwards so the epoch counter wraps after `remaining` more
    /// [`next_epoch`](Self::next_epoch) calls. Only jumps forward (stamps
    /// stay strictly older than the new epoch), so the visible state is
    /// exactly "fresh epoch, nothing visited" — this lets tests exercise
    /// the u32 rollover without ~4 billion queries.
    pub fn jump_near_rollover(&mut self, remaining: u32) {
        let target = u32::MAX - remaining;
        if target > self.epoch {
            self.epoch = target;
        }
    }

    /// Grows the pool to cover at least `n` vertices (new vertices start
    /// unvisited). Needed by dynamically updated indexes.
    pub fn ensure_len(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    /// Number of vertices this pool covers.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// True when the pool covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_marks_once_per_epoch() {
        let mut p = VisitedPool::new(4);
        assert!(p.visit(2));
        assert!(!p.visit(2));
        assert!(p.is_visited(2));
        assert!(!p.is_visited(1));
    }

    #[test]
    fn next_epoch_resets_in_constant_time() {
        let mut p = VisitedPool::new(4);
        p.visit(0);
        p.visit(3);
        p.next_epoch();
        assert!(!p.is_visited(0));
        assert!(!p.is_visited(3));
        assert!(p.visit(0));
    }

    #[test]
    fn epoch_wraparound_is_handled() {
        let mut p = VisitedPool::new(2);
        p.epoch = u32::MAX - 1;
        p.visit(0);
        p.next_epoch(); // MAX
        p.visit(1);
        p.next_epoch(); // wraps to 0 -> reset -> 1
        assert!(!p.is_visited(0));
        assert!(!p.is_visited(1));
        assert!(p.visit(0));
    }
}
